#!/usr/bin/env python
"""Crash-safety soak for `repro serve` (the CI soak job's driver).

Three phases over one seeded Poisson stream:

1. **Reference**: a clean, uninterrupted `repro serve` run; its final
   metrics JSON is the ground truth.
2. **Kill**: the same run with periodic checkpoints, SIGKILLed (not
   SIGTERM — no graceful drain, no atexit, nothing) once it is safely
   mid-stream.
3. **Resume**: `--resume` from the surviving checkpoint, run to
   completion.

The gate: phase 3's final metrics JSON must equal phase 1's **exactly**
(the `resumed` flag aside). Any drift — one job, one step, one histogram
bucket — fails the soak, because the resume contract is bit-identity,
not approximation.

Run locally:  python scripts/serve_soak.py --jobs 2000
CI (~60 s):   python scripts/serve_soak.py --jobs 60000 --kill-after 8
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _serve_cmd(args: argparse.Namespace, extra: list[str]) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        str(args.m),
        "--source",
        "poisson",
        "--policy",
        args.policy,
        "--jobs",
        str(args.jobs),
        "--rate",
        str(args.rate),
        "--dag-nodes",
        str(args.dag_nodes),
        "--seed",
        str(args.seed),
        "--tick-every",
        "0",
        "--quiet",
        "--arena",
        args.arena,
        *extra,
    ]


def _run(cmd: list[str], env: dict) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, env=env, capture_output=True, text=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--m", type=int, default=8)
    parser.add_argument("--policy", default="fifo", choices=("fifo", "lpf", "srpt"))
    parser.add_argument("--jobs", type=int, default=20_000)
    parser.add_argument("--rate", type=float, default=0.5)
    parser.add_argument("--dag-nodes", type=int, default=12)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--kill-after",
        type=float,
        default=3.0,
        help="seconds into the killed run before SIGKILL lands",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=500, metavar="STEPS"
    )
    parser.add_argument(
        "--arena",
        default="auto",
        choices=("auto", "on", "off"),
        help="engine commit path, passed through to `repro serve`",
    )
    args = parser.parse_args()

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)

    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        ref_json = os.path.join(tmp, "reference.json")
        resumed_json = os.path.join(tmp, "resumed.json")
        ckpt = os.path.join(tmp, "serve.ckpt")

        print(f"[1/3] clean reference run ({args.jobs} jobs) ...", flush=True)
        t0 = time.perf_counter()
        ref = _run(_serve_cmd(args, ["--metrics-out", ref_json]), env)
        print(f"      done in {time.perf_counter() - t0:.1f}s", flush=True)
        if ref.returncode != 0:
            print(ref.stderr, file=sys.stderr)
            print("FAIL: reference run did not complete", file=sys.stderr)
            return 1

        print(
            f"[2/3] checkpointed run, SIGKILL after ~{args.kill_after}s ...",
            flush=True,
        )
        proc = subprocess.Popen(
            _serve_cmd(
                args,
                [
                    "--checkpoint",
                    ckpt,
                    "--checkpoint-every",
                    str(args.checkpoint_every),
                ],
            ),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.perf_counter() + args.kill_after
        while time.perf_counter() < deadline and proc.poll() is None:
            time.sleep(0.05)
        # Wait for at least one checkpoint before killing: a kill before
        # the first checkpoint would make phase 3 a fresh (still valid,
        # but untested) run.
        while proc.poll() is None and not os.path.exists(ckpt):
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            print(f"      killed (exit {proc.returncode})", flush=True)
            if proc.returncode != -signal.SIGKILL:
                print("FAIL: process did not die from SIGKILL", file=sys.stderr)
                return 1
        else:
            print(
                "      WARNING: run finished before the kill landed; "
                "resume still exercises the final checkpoint",
                flush=True,
            )
        if not os.path.exists(ckpt):
            print("FAIL: no checkpoint file survived the kill", file=sys.stderr)
            return 1

        print("[3/3] resume from checkpoint, run to completion ...", flush=True)
        t0 = time.perf_counter()
        res = _run(
            _serve_cmd(
                args,
                [
                    "--checkpoint",
                    ckpt,
                    "--checkpoint-every",
                    str(args.checkpoint_every),
                    "--resume",
                    "--metrics-out",
                    resumed_json,
                ],
            ),
            env,
        )
        print(f"      done in {time.perf_counter() - t0:.1f}s", flush=True)
        if res.returncode != 0:
            print(res.stderr, file=sys.stderr)
            print("FAIL: resumed run did not complete", file=sys.stderr)
            return 1

        with open(ref_json, encoding="utf-8") as handle:
            reference = json.load(handle)
        with open(resumed_json, encoding="utf-8") as handle:
            resumed = json.load(handle)
        reference.pop("resumed", None)
        resumed.pop("resumed", None)
        if reference != resumed:
            drift = {
                key: (reference.get(key), resumed.get(key))
                for key in sorted(set(reference) | set(resumed))
                if reference.get(key) != resumed.get(key)
            }
            print(f"FAIL: resumed metrics drifted: {drift}", file=sys.stderr)
            return 1

        print(
            "PASS: resumed run reproduced the uninterrupted metrics "
            f"bit-identically (max_flow={reference['max_flow']}, "
            f"{reference['subjobs_completed']} subjobs, "
            f"live-subjob HWM {reference['live_subjob_hwm']})"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
