"""E9 — regenerate the tie-break ablation table (intra-job policy is the flaw)."""

from repro.experiments.e9_tiebreak_ablation import run


def test_e9_tiebreak_ablation(regenerate):
    result = regenerate(run, ms=(16, 32, 64), jobs_per_m=4, seed=0)
    lpf = [r for r in result.rows if r["tie_break"] == "LPF"]
    arb = [r for r in result.rows if r["tie_break"] == "arbitrary(asc)"]
    assert all(a["ratio"] > l["ratio"] for a, l in zip(arb, lpf))
