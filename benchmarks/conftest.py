"""Shared benchmark plumbing.

Each ``test_eN_*.py`` regenerates one paper artifact (table/figure) through
``pytest-benchmark`` (one timed round — the experiments are deterministic
end-to-end runs, not microbenchmarks), prints the regenerated table so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures it,
and asserts the experiment's claims.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentResult


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run an experiment once under the benchmark timer, print its table,
    and assert its claims hold."""

    def _run(run_fn, /, **params) -> ExperimentResult:
        result = benchmark.pedantic(
            run_fn, kwargs=params, rounds=1, iterations=1, warmup_rounds=0
        )
        with capsys.disabled():
            print()
            print(result.render())
        failed = result.failed_claims()
        assert not failed, "failed claims: " + "; ".join(
            c.description for c in failed
        )
        return result

    return _run
