"""E15 — regenerate the phased-generalization table (future-work probe)."""

from repro.experiments.e15_phased_generalization import run


def test_e15_phased_generalization(regenerate):
    result = regenerate(run, ms=(8, 16, 32), n_jobs=10, beta=8, seed=0)
    phased = [r for r in result.rows if r["scheduler"].startswith("PhasedA")]
    assert phased and all(r["ratio<="] <= 8 for r in phased)
