"""E5 — regenerate the Lemma 5.5 table: MC never idles granted processors."""

from repro.experiments.e5_mc_busy import run


def test_e5_mc_busy_property(regenerate):
    result = regenerate(run, width=8, n_nodes=300, trials=5, seed=0)
    assert all(r["work_conserving"] == r["cases"] for r in result.rows)
