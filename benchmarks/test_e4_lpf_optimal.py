"""E4 — regenerate the Lemma 5.3 / Corollary 5.4 table: LPF optimality."""

from repro.experiments.e4_lpf_optimal import run


def test_e4_lpf_matches_closed_form(regenerate):
    result = regenerate(
        run, ms=(2, 4, 8, 16), sizes=(20, 100, 400), alpha=4, trials=3, seed=0
    )
    assert all(r["LPF==OPT"] == r["cases"] for r in result.rows)
