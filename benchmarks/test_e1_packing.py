"""E1 — regenerate Figure 1 (two packings of one job on three processors)."""

from repro.experiments.e1_packing import run


def test_e1_figure1_packings(regenerate):
    result = regenerate(run, m=3)
    assert {r["packing"] for r in result.rows} == {"LPF", "reverse"}
