"""E2 — regenerate Figure 2: head/tail shape of LPF on m/alpha processors."""

from repro.experiments.e2_lpf_shape import run


def test_e2_lpf_head_tail_shape(regenerate):
    result = regenerate(run, ms=(16, 64), alpha=4, n_nodes=400, trials=5, seed=0)
    # Every row checked every trial.
    assert all(r["tail_packed"] == r["trials"] for r in result.rows)
