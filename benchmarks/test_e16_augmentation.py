"""E16 — regenerate the augmentation-evaporation table."""

from repro.experiments.e16_augmentation import run


def test_e16_augmentation(regenerate):
    result = regenerate(run, ms=(8, 16, 32), factors=(1, 2, 4), jobs_per_m=3)
    f1 = [r for r in result.rows if r["augmentation"] == "1x"]
    f2 = [r for r in result.rows if r["augmentation"] == "2x"]
    assert all(a["ratio_vs_OPT[m]"] > b["ratio_vs_OPT[m]"] for a, b in zip(f1, f2))
