"""E7 — regenerate the Theorem 5.7 table: guess-and-double on general arrivals."""

from repro.experiments.e7_algA_general import run


def test_e7_general_algA(regenerate):
    result = regenerate(run, ms=(8, 16, 32, 64), n_jobs=20, beta=8, seed=0)
    a_rows = [r for r in result.rows if r["restarts"] != ""]
    assert a_rows and all(r["ratio<="] <= 32 for r in a_rows)
