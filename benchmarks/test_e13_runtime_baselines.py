"""E13 — regenerate the runtime-baselines table (work stealing vs FIFO)."""

from repro.experiments.e13_runtime_baselines import run


def test_e13_runtime_baselines(regenerate):
    result = regenerate(run, m=16, n_jobs=16, elements=150, seed=0)
    adv = {r["scheduler"]: r for r in result.rows if r["workload"] == "adversarial"}
    # Pure work stealing has no age awareness: it blows up on the family.
    assert adv["WorkSteal[p2]"]["ratio"] > adv["FIFO[arbitrary]"]["ratio"]
