"""Engine microbenchmarks: subjobs scheduled per second.

Unlike the ``test_eN_*`` benches (one-shot experiment regenerations), these
are classic multi-round microbenchmarks of the simulation engine itself —
the numbers to watch when touching the hot loop in
``repro.core.simulator`` (see the profiling notes in that module).
"""

import numpy as np
import pytest

from repro.core import DAG, Instance, Job, simulate
from repro.core.kernels import available_backends
from repro.schedulers import (
    ArbitraryTieBreak,
    FIFOScheduler,
    LongestPathTieBreak,
    MostChildrenTieBreak,
    SRPTScheduler,
    WorkStealingScheduler,
)
from repro.workloads import layered_tree, quicksort_tree


_HAS_NUMBA = "numba" in available_backends()

requires_numba = pytest.mark.skipif(
    not _HAS_NUMBA, reason="numba not installed in this environment"
)


@pytest.fixture
def numba_backend(monkeypatch):
    """Route the engine's kernels through the numba backend for one bench,
    compiling (or disk-loading) every kernel outside the timed region."""
    from repro.core import kernels

    monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "numba")
    kernels._reset_for_testing()
    kernels.warmup(kernels.get_backend())
    yield
    kernels._reset_for_testing()


def _chain(n: int) -> DAG:
    return DAG.from_parents(np.arange(-1, n - 1, dtype=np.int64))


def _spider(legs: int, leg_len: int) -> DAG:
    parents = [-1]
    for _ in range(legs):
        parents.append(0)
        for _ in range(leg_len - 1):
            parents.append(len(parents) - 1)
    return DAG.from_parents(np.array(parents, dtype=np.int64))


@pytest.fixture(scope="module")
def packed_stream():
    """8 jobs x 4000 subjobs of m-wide layered rectangles: the engine's
    best case (always m ready nodes)."""
    dags = [layered_tree([16] * 250, seed=s) for s in range(8)]
    return Instance([Job(d, 100 * i, f"r{i}") for i, d in enumerate(dags)])


@pytest.fixture(scope="module")
def irregular_stream():
    """24 quicksort recursion trees: irregular widths, realistic shape."""
    dags = [quicksort_tree(1000, seed=s) for s in range(24)]
    return Instance([Job(d, 40 * i, f"q{i}") for i, d in enumerate(dags)])


@pytest.fixture(scope="module")
def parallel_chains():
    """16 jobs x one 4000-node chain each — a 16-wide rectangle tail, the
    macro-stepping best case (every step forced for the chains' whole
    length)."""
    return Instance([Job(_chain(4000), 0, f"c{i}") for i in range(16)])


@pytest.fixture(scope="module")
def spider_legs():
    """One root fanning into 16 legs of 2000: after the root, pure chain
    progress under LPF's non-constant kernel (times the encoded-frontier
    macro path)."""
    return Instance([Job(_spider(16, 2000), 0, "spider")])


def _throughput(benchmark, instance, scheduler_factory, m, **sim_kwargs):
    schedule = benchmark(
        lambda: simulate(instance, m, scheduler_factory(), **sim_kwargs)
    )
    benchmark.extra_info["subjobs"] = instance.total_work
    benchmark.extra_info["subjobs_per_sec"] = (
        instance.total_work / benchmark.stats.stats.mean
    )
    assert schedule.is_complete
    return schedule


def test_fifo_on_packed_rectangles(benchmark, packed_stream):
    _throughput(benchmark, packed_stream, lambda: FIFOScheduler(ArbitraryTieBreak()), 16)


def test_lpf_on_irregular_trees(benchmark, irregular_stream):
    _throughput(
        benchmark, irregular_stream, lambda: FIFOScheduler(LongestPathTieBreak()), 16
    )


def test_mc_on_irregular_trees(benchmark, irregular_stream):
    _throughput(
        benchmark,
        irregular_stream,
        lambda: FIFOScheduler(MostChildrenTieBreak()),
        16,
    )


def test_srpt_on_irregular_trees(benchmark, irregular_stream):
    """SRPT on the dynamic-job-order fast path: the engine recomputes the
    (remaining work, job id) walk from its own unfinished counts each
    step, so ``select()`` is never dispatched (see
    ``docs/engine-internals.md``, "Dynamic job order")."""
    schedule = _throughput(
        benchmark, irregular_stream, lambda: SRPTScheduler(), 16
    )
    assert schedule.engine_stats.select_calls == 0


def test_worksteal_on_irregular_trees(benchmark, irregular_stream):
    _throughput(
        benchmark, irregular_stream, lambda: WorkStealingScheduler(seed=0), 16
    )


def test_fifo_on_parallel_chains(benchmark, parallel_chains):
    """Chain-run macro-stepping collapses the whole rectangle tail into a
    handful of vectorized commits; compare against the per-step twin
    below for the compression win."""
    schedule = _throughput(
        benchmark, parallel_chains, lambda: FIFOScheduler(ArbitraryTieBreak()), 16
    )
    assert schedule.engine_stats.macro_steps > 0


def test_fifo_on_parallel_chains_per_step(benchmark, parallel_chains):
    """The same workload with ``use_macro_steps=False``: the per-step
    fast path's throughput floor the macro path is measured against."""
    schedule = _throughput(
        benchmark,
        parallel_chains,
        lambda: FIFOScheduler(ArbitraryTieBreak()),
        16,
        use_macro_steps=False,
    )
    assert schedule.engine_stats.macro_steps == 0


def test_lpf_on_spider_legs(benchmark, spider_legs):
    schedule = _throughput(
        benchmark, spider_legs, lambda: FIFOScheduler(LongestPathTieBreak()), 16
    )
    assert schedule.engine_stats.macro_steps > 0


def test_fifo_on_adversarial_combs(benchmark):
    """The Section-4 lower-bound family (comb gadgets with long handles):
    chain-heavy but overloaded, so macro commits rarely arm — this guards
    the macro-eligibility checks' overhead on the dispatch-heavy regime."""
    from repro.workloads import build_fifo_adversary

    instance = build_fifo_adversary(16, n_jobs=24, seed=0).instance
    _throughput(
        benchmark, instance, lambda: FIFOScheduler(ArbitraryTieBreak()), 16
    )


# ---------------------------------------------------------------------------
# Backend twins: the same workloads served by the numba kernel backend.
# Skipped (not failed) without numba; the optional backend-numba CI job
# runs them and records their baselines as the ``*_numba`` rows in
# ``BENCH_engine.json`` (``save_baseline.py --backend numba``).
# ---------------------------------------------------------------------------


@requires_numba
def test_fifo_on_packed_rectangles_numba(benchmark, packed_stream, numba_backend):
    schedule = _throughput(
        benchmark, packed_stream, lambda: FIFOScheduler(ArbitraryTieBreak()), 16
    )
    assert schedule.engine_stats.backend == "numba"


@requires_numba
def test_srpt_on_irregular_trees_numba(benchmark, irregular_stream, numba_backend):
    schedule = _throughput(
        benchmark, irregular_stream, lambda: SRPTScheduler(), 16
    )
    assert schedule.engine_stats.backend == "numba"


@requires_numba
def test_fifo_on_adversarial_combs_numba(benchmark, numba_backend):
    """The dispatch-heavy regime is where the compiled CSR gather's
    temporary-free loop has the most per-step work to win back."""
    from repro.workloads import build_fifo_adversary

    instance = build_fifo_adversary(16, n_jobs=24, seed=0).instance
    schedule = _throughput(
        benchmark, instance, lambda: FIFOScheduler(ArbitraryTieBreak()), 16
    )
    assert schedule.engine_stats.backend == "numba"


def test_adversary_cosimulation_build(benchmark):
    """Regression guard for the Section 4 co-simulation (it once lost 10x
    to a per-step set rebuild)."""
    from repro.workloads import build_fifo_adversary

    adv = benchmark(lambda: build_fifo_adversary(32, n_jobs=64))
    assert adv.fifo_max_flow > adv.opt_upper_bound


@pytest.fixture(scope="module")
def trial_sweep():
    """2000 small out-forest trials (3 jobs each): the homogeneous-sweep
    shape the batched engine targets. A slice of the 10^4-trial corpus in
    ``save_baseline.py`` (full size lives there; this keeps the pytest
    benches quick)."""
    from repro.workloads import random_out_forest

    out = []
    for s in range(2000):
        rng = np.random.default_rng(s)
        jobs = [
            Job(
                random_out_forest(40, seed=int(rng.integers(1 << 30))),
                release=int(rng.integers(0, 10)),
            )
            for _ in range(3)
        ]
        out.append(Instance(jobs))
    return out


def _sweep_throughput(benchmark, instances, scheduler_factory, m):
    from repro.core import simulate_batch

    schedules = benchmark(
        lambda: simulate_batch(instances, m, scheduler_factory())
    )
    subjobs = sum(inst.total_work for inst in instances)
    benchmark.extra_info["subjobs"] = subjobs
    benchmark.extra_info["subjobs_per_sec"] = (
        subjobs / benchmark.stats.stats.mean
    )
    return schedules


def test_fifo_batched_sweep(benchmark, trial_sweep):
    """The batched lockstep engine across the whole sweep in one call;
    compare against the per-instance twin below for the batching win."""
    schedules = _sweep_throughput(
        benchmark, trial_sweep, lambda: FIFOScheduler(ArbitraryTieBreak()), 4
    )
    stats = schedules[0].engine_stats
    assert stats is not None and stats.batch_steps > 0
    assert stats.fallback_runs == 0


def test_lpf_batched_sweep(benchmark, trial_sweep):
    schedules = _sweep_throughput(
        benchmark, trial_sweep, lambda: FIFOScheduler(LongestPathTieBreak()), 4
    )
    assert schedules[0].engine_stats.batch_steps > 0


def test_fifo_sweep_per_instance(benchmark, trial_sweep):
    """The same sweep as one ``simulate`` call per trial: the per-instance
    floor ``test_fifo_batched_sweep`` is measured against."""
    scheduler = FIFOScheduler(ArbitraryTieBreak())

    def run():
        return [simulate(inst, 4, scheduler) for inst in trial_sweep]

    schedules = benchmark(run)
    subjobs = sum(inst.total_work for inst in trial_sweep)
    benchmark.extra_info["subjobs"] = subjobs
    benchmark.extra_info["subjobs_per_sec"] = (
        subjobs / benchmark.stats.stats.mean
    )
    assert all(s.is_complete for s in schedules)
