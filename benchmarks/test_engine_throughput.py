"""Engine microbenchmarks: subjobs scheduled per second.

Unlike the ``test_eN_*`` benches (one-shot experiment regenerations), these
are classic multi-round microbenchmarks of the simulation engine itself —
the numbers to watch when touching the hot loop in
``repro.core.simulator`` (see the profiling notes in that module).
"""

import pytest

from repro.core import Instance, Job, simulate
from repro.schedulers import (
    ArbitraryTieBreak,
    FIFOScheduler,
    LongestPathTieBreak,
    MostChildrenTieBreak,
    SRPTScheduler,
    WorkStealingScheduler,
)
from repro.workloads import layered_tree, quicksort_tree


@pytest.fixture(scope="module")
def packed_stream():
    """8 jobs x 4000 subjobs of m-wide layered rectangles: the engine's
    best case (always m ready nodes)."""
    dags = [layered_tree([16] * 250, seed=s) for s in range(8)]
    return Instance([Job(d, 100 * i, f"r{i}") for i, d in enumerate(dags)])


@pytest.fixture(scope="module")
def irregular_stream():
    """24 quicksort recursion trees: irregular widths, realistic shape."""
    dags = [quicksort_tree(1000, seed=s) for s in range(24)]
    return Instance([Job(d, 40 * i, f"q{i}") for i, d in enumerate(dags)])


def _throughput(benchmark, instance, scheduler_factory, m):
    schedule = benchmark(lambda: simulate(instance, m, scheduler_factory()))
    benchmark.extra_info["subjobs"] = instance.total_work
    benchmark.extra_info["subjobs_per_sec"] = (
        instance.total_work / benchmark.stats.stats.mean
    )
    assert schedule.is_complete


def test_fifo_on_packed_rectangles(benchmark, packed_stream):
    _throughput(benchmark, packed_stream, lambda: FIFOScheduler(ArbitraryTieBreak()), 16)


def test_lpf_on_irregular_trees(benchmark, irregular_stream):
    _throughput(
        benchmark, irregular_stream, lambda: FIFOScheduler(LongestPathTieBreak()), 16
    )


def test_mc_on_irregular_trees(benchmark, irregular_stream):
    _throughput(
        benchmark,
        irregular_stream,
        lambda: FIFOScheduler(MostChildrenTieBreak()),
        16,
    )


def test_srpt_on_irregular_trees(benchmark, irregular_stream):
    """SRPT cannot use the fast path (its job order is not FIFO), so this
    tracks the dispatch path's throughput on the same workload."""
    _throughput(benchmark, irregular_stream, lambda: SRPTScheduler(), 16)


def test_worksteal_on_irregular_trees(benchmark, irregular_stream):
    _throughput(
        benchmark, irregular_stream, lambda: WorkStealingScheduler(seed=0), 16
    )


def test_adversary_cosimulation_build(benchmark):
    """Regression guard for the Section 4 co-simulation (it once lost 10x
    to a per-step set rebuild)."""
    from repro.workloads import build_fifo_adversary

    adv = benchmark(lambda: build_fifo_adversary(32, n_jobs=64))
    assert adv.fifo_max_flow > adv.opt_upper_bound
