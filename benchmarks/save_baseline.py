"""Record / compare engine-throughput baselines.

``python benchmarks/save_baseline.py`` re-times the engine microbenchmarks
(the same workloads as ``test_engine_throughput.py``) and writes their
subjobs/sec to ``BENCH_engine.json`` next to this script.

``python benchmarks/save_baseline.py --compare`` re-times them and exits
non-zero if any microbench regressed more than 20% against the recorded
baseline — the guard the CI throughput job runs.

Timings use best-of-N (default N=3) wall-clock rounds: the minimum is the
least noisy estimator for a deterministic workload on a shared machine.

Besides the engine benches this also records the lint tooling bench
(``--only lint_warm_cache_src``): cold vs warm incremental-cache wall
time over ``src/repro``, with a byte-identical report check.

The ``serve_steady_state_*`` rows time the streaming engine's
resident-arena path on a ~2k-live-job Poisson chain soak, with
``*_per_job`` twins recording the retained per-job reference loop on the
identical workload — the ratio between the paired rows is the arena's
documented steady-state speedup.

``--backend numba`` adds the kernel-backend dimension: the engine benches
are re-timed under the numba backend (kernels compiled outside the
timers) and recorded/compared as ``<name>_numba`` rows next to the numpy
defaults. The flag refuses to run where numba is unavailable rather than
silently recording fallback-to-numpy numbers under a numba label.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"
REGRESSION_TOLERANCE = 0.20  # fail --compare below 80% of baseline throughput


def _packed_stream():
    from repro.core import Instance, Job
    from repro.workloads import layered_tree

    dags = [layered_tree([16] * 250, seed=s) for s in range(8)]
    return Instance([Job(d, 100 * i, f"r{i}") for i, d in enumerate(dags)])


def _irregular_stream():
    from repro.core import Instance, Job
    from repro.workloads import quicksort_tree

    dags = [quicksort_tree(1000, seed=s) for s in range(24)]
    return Instance([Job(d, 40 * i, f"q{i}") for i, d in enumerate(dags)])


def _bench_fifo_packed():
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler

    return _packed_stream(), (lambda: FIFOScheduler(ArbitraryTieBreak())), 16


def _bench_lpf_irregular():
    from repro.schedulers import FIFOScheduler, LongestPathTieBreak

    return _irregular_stream(), (lambda: FIFOScheduler(LongestPathTieBreak())), 16


def _bench_mc_irregular():
    from repro.schedulers import FIFOScheduler, MostChildrenTieBreak

    return _irregular_stream(), (lambda: FIFOScheduler(MostChildrenTieBreak())), 16


def _bench_srpt_irregular():
    from repro.schedulers import SRPTScheduler

    return _irregular_stream(), (lambda: SRPTScheduler()), 16


def _bench_worksteal_irregular():
    from repro.schedulers import WorkStealingScheduler

    return _irregular_stream(), (lambda: WorkStealingScheduler(seed=0)), 16


def _parallel_chains():
    import numpy as np

    from repro.core import DAG, Instance, Job

    def chain(n):
        return DAG.from_parents(np.arange(-1, n - 1, dtype=np.int64))

    return Instance([Job(chain(4000), 0, f"c{i}") for i in range(16)])


def _spider_legs():
    import numpy as np

    from repro.core import DAG, Instance, Job

    parents = [-1]
    for _ in range(16):
        parents.append(0)
        for _ in range(2000 - 1):
            parents.append(len(parents) - 1)
    dag = DAG.from_parents(np.array(parents, dtype=np.int64))
    return Instance([Job(dag, 0, "spider")])


def _bench_fifo_parallel_chains():
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler

    return _parallel_chains(), (lambda: FIFOScheduler(ArbitraryTieBreak())), 16


def _bench_fifo_parallel_chains_per_step():
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler

    return (
        _parallel_chains(),
        (lambda: FIFOScheduler(ArbitraryTieBreak())),
        16,
        {"use_macro_steps": False},
    )


def _bench_lpf_spider_legs():
    from repro.schedulers import FIFOScheduler, LongestPathTieBreak

    return _spider_legs(), (lambda: FIFOScheduler(LongestPathTieBreak())), 16


def _bench_fifo_adversarial_combs():
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler
    from repro.workloads import build_fifo_adversary

    instance = build_fifo_adversary(16, n_jobs=24, seed=0).instance
    return instance, (lambda: FIFOScheduler(ArbitraryTieBreak())), 16


#: name -> setup() returning (instance, scheduler_factory, m) or
#: (instance, scheduler_factory, m, simulate_kwargs). Names match the
#: corresponding ``test_engine_throughput.py`` benchmarks. The
#: ``*_per_step`` twin pins the same workload with macro-stepping off, so
#: the recorded baseline itself documents the compression win.
MICROBENCHES = {
    "fifo_on_packed_rectangles": _bench_fifo_packed,
    "lpf_on_irregular_trees": _bench_lpf_irregular,
    "mc_on_irregular_trees": _bench_mc_irregular,
    "srpt_on_irregular_trees": _bench_srpt_irregular,
    "worksteal_on_irregular_trees": _bench_worksteal_irregular,
    "fifo_on_parallel_chains": _bench_fifo_parallel_chains,
    "fifo_on_parallel_chains_per_step": _bench_fifo_parallel_chains_per_step,
    "lpf_on_spider_legs": _bench_lpf_spider_legs,
    "fifo_on_adversarial_combs": _bench_fifo_adversarial_combs,
}

_SWEEP_TRIALS = 10_000
_sweep_instances_cache = None


def _sweep_instances():
    """The 10^4-trial sweep corpus (3 small out-forest jobs per trial),
    generated once and shared by every sweep bench so the batched and
    pool paths time the exact same instances."""
    global _sweep_instances_cache
    if _sweep_instances_cache is None:
        import numpy as np

        from repro.core import Instance, Job
        from repro.workloads import random_out_forest

        out = []
        for s in range(_SWEEP_TRIALS):
            rng = np.random.default_rng(s)
            jobs = [
                Job(
                    random_out_forest(40, seed=int(rng.integers(1 << 30))),
                    release=int(rng.integers(0, 10)),
                )
                for _ in range(3)
            ]
            out.append(Instance(jobs))
        _sweep_instances_cache = out
    return _sweep_instances_cache


def _pool_sweep_worker(task):
    """Per-trial pool dispatch: the pre-batching way `repeat_experiment`
    fanned independent trials out (module-level for picklability)."""
    import numpy as np

    from repro.core import simulate
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler

    instance, m = task
    schedule = simulate(instance, m, FIFOScheduler(ArbitraryTieBreak()))
    return sum(int(np.asarray(c).size) for c in schedule.completion)


def _sweep_bench_batched(tie_break_name):
    instances = _sweep_instances()  # generated in setup, outside the timer

    def run():
        from repro.core import simulate_batch
        from repro.schedulers import (
            ArbitraryTieBreak,
            FIFOScheduler,
            LongestPathTieBreak,
        )

        tb = (
            LongestPathTieBreak()
            if tie_break_name == "lpf"
            else ArbitraryTieBreak()
        )
        schedules = simulate_batch(instances, 4, FIFOScheduler(tb))
        stats = schedules[0].engine_stats
        assert stats is not None and stats.batch_steps > 0
        return sum(s.instance.total_work for s in schedules)

    return run


def _sweep_bench_pool():
    instances = _sweep_instances()

    def run():
        import os

        from repro.experiments import shared_pool

        pool = shared_pool(os.cpu_count() or 1)
        tasks = [(inst, 4) for inst in instances]
        return sum(pool.map(_pool_sweep_worker, tasks, chunksize=64))

    return run


#: Whole-sweep benches: name -> (setup() -> run(), rounds_cap). ``run``
#: executes the sweep and returns the subjob count it completed. The
#: ``pool_sweep`` entry is the pre-batching per-trial persistent-pool
#: path — the denominator of the batched engine's headline speedup — and
#: is capped at one round to keep ``--compare`` runs bounded.
SWEEP_BENCHES = {
    "batched_sweep_10k_fifo": (lambda: _sweep_bench_batched("fifo"), 3),
    "batched_sweep_10k_lpf": (lambda: _sweep_bench_batched("lpf"), 3),
    "pool_sweep_10k_fifo": (lambda: _sweep_bench_pool(), 1),
}


class _SteadyStream:
    """Index-pure arrival source over pre-built DAGs (Poisson gaps).

    DAG generation is hoisted out of the timed region — the bench times
    the streaming engine, not the workload generator — by cycling a
    fixed pool of chain DAGs under a real Poisson gap schedule.
    """

    def __init__(self, rate, seed, dags, n_jobs):
        from repro.workloads.arrivals import PoissonSource

        gaps = PoissonSource(rate=rate, seed=seed, dag_nodes=2, n_jobs=n_jobs)
        self._gaps = [gaps.gap_before(i) for i in range(n_jobs)]
        self._dags = dags
        self.n_jobs = n_jobs

    def dag_at(self, index):
        return self._dags[index % len(self._dags)]

    def gap_before(self, index):
        return self._gaps[index]

    def fingerprint(self):
        return f"bench-steady-{self.n_jobs}"


_steady_source_cache = None


def _steady_source():
    """The ~2k-live-job Poisson soak: rate-4 arrivals of ~500-node chain
    jobs, so the live window plateaus around 2,400 jobs whose frontiers
    are one node each — the per-job commit loop's worst case and the
    resident arena's steady state. Built once, shared by every stream
    bench (the source is stateless and index-pure)."""
    global _steady_source_cache
    if _steady_source_cache is None:
        import numpy as np

        from repro.core import DAG

        rng = np.random.default_rng(0)
        dags = [
            DAG.from_parents(np.arange(-1, n - 1, dtype=np.int64))
            for n in rng.integers(450, 550, size=48)
        ]
        _steady_source_cache = _SteadyStream(4, 7, dags, 2400)
    return _steady_source_cache


def _stream_bench(policy, arena):
    source = _steady_source()  # built in setup, outside the timer

    def run():
        from repro.streaming import StreamingEngine

        engine = StreamingEngine(source, 2500, policy=policy, arena=arena)
        engine.run()
        stats = engine.stats
        if arena:
            assert stats.stream_arena_steps + stats.stream_epoch_steps > 0
        else:
            assert stats.stream_arena_steps == 0
        return engine.metrics.summary()["subjobs_completed"]

    return run


#: Streaming-service benches: the resident-arena path on the steady-state
#: soak, with the retained per-job reference loop recorded as a
#: ``*_per_job`` twin on the same workload — the ratio between the two
#: rows is the arena's documented speedup (target >= 5x; measured ~25x).
#: The per-job twins are capped at one round: they are the denominator,
#: not the product.
STREAM_BENCHES = {
    "serve_steady_state_fifo": (lambda: _stream_bench("fifo", True), 3),
    "serve_steady_state_srpt": (lambda: _stream_bench("srpt", True), 3),
    "serve_steady_state_fifo_per_job": (
        lambda: _stream_bench("fifo", False),
        1,
    ),
    "serve_steady_state_srpt_per_job": (
        lambda: _stream_bench("srpt", False),
        1,
    ),
}


def _bench_lint_warm_cache(rounds: int) -> dict:
    """Cold vs warm incremental lint over ``src/repro``.

    Times one cold whole-program run into a fresh cache, then best-of-N
    warm runs against it, asserting every warm report is byte-identical
    to the cold one. The throughput figure (files per warm second) feeds
    the generic ``--compare`` guard; ``cold_seconds``/``warm_speedup``
    are recorded alongside so the baseline documents the cache win.
    """
    import shutil
    import tempfile

    from repro.lint import lint_paths

    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    tmp = Path(tempfile.mkdtemp(prefix="repro-lint-bench-"))
    try:
        cache = tmp / "cache"
        start = time.perf_counter()
        cold = lint_paths([src], cache_dir=cache)
        cold_seconds = time.perf_counter() - start
        cold_blob = json.dumps(cold.to_json(), sort_keys=True)
        best = float("inf")
        for _ in range(max(1, rounds)):
            start = time.perf_counter()
            warm = lint_paths([src], cache_dir=cache)
            best = min(best, time.perf_counter() - start)
            assert json.dumps(warm.to_json(), sort_keys=True) == cold_blob, (
                "warm lint report differs from cold run"
            )
        files = int(cold.files_checked)
        return {
            "subjobs": files,
            "best_seconds": round(best, 6),
            "subjobs_per_sec": round(files / best, 1),
            "cold_seconds": round(cold_seconds, 6),
            "warm_speedup": round(cold_seconds / best, 2),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


#: Tooling benches: name -> bench(rounds) returning a measurement row in
#: the same shape as the engine benches ("subjobs" = files linted).
LINT_BENCHES = {
    "lint_warm_cache_src": _bench_lint_warm_cache,
}


def all_bench_names() -> list[str]:
    return [*MICROBENCHES, *SWEEP_BENCHES, *STREAM_BENCHES, *LINT_BENCHES]


def measure(
    rounds: int = 3,
    only: list[str] | None = None,
    backend: str | None = None,
) -> dict:
    """Time every microbench; returns name -> measurement dict.

    With ``backend`` set to a non-default kernel backend the engine
    benches are timed under it (kernels pre-compiled outside the timers)
    and recorded under ``<name>_<backend>`` keys — the backend dimension
    of the baseline. The lint benches never touch the kernels and are
    skipped for non-default backends.
    """
    from repro.core import simulate

    suffix = ""
    if backend is not None and backend != "numpy":
        from repro.core import kernels

        os.environ[kernels.BACKEND_ENV_VAR] = backend
        kernels._reset_for_testing()
        resolved = kernels.get_backend()
        if resolved.name != backend:
            raise RuntimeError(
                f"backend {backend!r} requested but {resolved.name!r} would "
                "serve the calls (is the dependency installed?); refusing to "
                f"record {backend} baselines measured on {resolved.name}"
            )
        kernels.warmup(resolved)  # compile before any timer starts
        suffix = f"_{backend}"

    selected = set(only) if only is not None else None

    def wanted(name):
        return selected is None or name in selected

    out = {}
    for name, setup in MICROBENCHES.items():
        if not wanted(name):
            continue
        instance, scheduler_factory, m, *rest = setup()
        sim_kwargs = rest[0] if rest else {}
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            schedule = simulate(instance, m, scheduler_factory(), **sim_kwargs)
            best = min(best, time.perf_counter() - start)
        assert schedule.is_complete
        out[name + suffix] = {
            "subjobs": int(instance.total_work),
            "best_seconds": round(best, 6),
            "subjobs_per_sec": round(instance.total_work / best, 1),
        }
    for name, (setup, rounds_cap) in {**SWEEP_BENCHES, **STREAM_BENCHES}.items():
        if not wanted(name):
            continue
        run = setup()
        best = float("inf")
        for _ in range(max(1, min(rounds, rounds_cap))):
            start = time.perf_counter()
            subjobs = run()
            best = min(best, time.perf_counter() - start)
        out[name + suffix] = {
            "subjobs": int(subjobs),
            "best_seconds": round(best, 6),
            "subjobs_per_sec": round(subjobs / best, 1),
        }
    for name, bench in LINT_BENCHES.items():
        if suffix or not wanted(name):
            continue
        out[name] = bench(rounds)
    return out


def save(rounds: int, only: list[str] | None = None,
         backend: str | None = None) -> int:
    results = measure(rounds, only, backend)
    if only is not None or (backend is not None and backend != "numpy"):
        # Partial re-record: merge into the existing baseline rather than
        # dropping every bench that was not re-timed.
        merged = {}
        if BASELINE_PATH.is_file():
            try:
                merged = json.loads(BASELINE_PATH.read_text())
            except json.JSONDecodeError:
                merged = {}
        merged.update(results)
        results = merged
    BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
    for name, row in results.items():
        rate = row.get("subjobs_per_sec") if isinstance(row, dict) else None
        if isinstance(rate, (int, float)):
            print(f"{name:<32} {rate:>12,.0f} subjobs/s")
        else:
            # Placeholder row (e.g. a *_numba twin recorded only by the
            # optional-backend CI job) merged through from the baseline.
            print(f"{name:<32} {'(pending)':>12}")
    print(f"wrote {BASELINE_PATH}")
    return 0


def _render_diff_table(rows: list[tuple[str, str, str, str, str]]) -> str:
    """Markdown diff table — readable both in a terminal and in the GitHub
    job summary (``$GITHUB_STEP_SUMMARY``)."""
    header = ("bench", "baseline subjobs/s", "current subjobs/s", "ratio", "verdict")
    table = [header, *rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = [
        "| " + " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) + " |"
        for row in table
    ]
    lines.insert(1, "|" + "|".join("-" * (w + 2) for w in widths) + "|")
    return "\n".join(lines)


def _publish_step_summary(markdown: str) -> None:
    """Append to the GitHub Actions job summary when running in CI."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as fh:
        fh.write("## Engine throughput vs recorded baseline\n\n")
        fh.write(markdown + "\n")


def compare(rounds: int, only: list[str] | None = None,
            backend: str | None = None) -> int:
    if not BASELINE_PATH.is_file():
        print(f"no baseline at {BASELINE_PATH}; run without --compare first",
              file=sys.stderr)
        return 2
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except json.JSONDecodeError as exc:
        print(
            f"baseline {BASELINE_PATH} is not valid JSON ({exc}); "
            "re-record it with `python benchmarks/save_baseline.py`",
            file=sys.stderr,
        )
        return 2
    results = measure(rounds, only, backend)
    status = 0
    rows: list[tuple[str, str, str, str, str]] = []
    for name, row in results.items():
        now = row["subjobs_per_sec"]
        entry = baseline.get(name)
        base = entry.get("subjobs_per_sec") if isinstance(entry, dict) else None
        if not isinstance(base, (int, float)) or base <= 0:
            rows.append((name, "(no baseline)", f"{now:,.0f}", "-", "new"))
            continue
        ratio = now / base
        verdict = "ok"
        if ratio < 1.0 - REGRESSION_TOLERANCE:
            verdict = "REGRESSION"
            status = 1
        rows.append((name, f"{base:,.0f}", f"{now:,.0f}", f"{ratio:.2f}x", verdict))
    table = _render_diff_table(rows)
    print(table)
    if status:
        print(
            f"\nthroughput REGRESSION: at least one bench fell below "
            f"{(1.0 - REGRESSION_TOLERANCE):.0%} of its recorded baseline"
        )
    _publish_step_summary(table)
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the recorded baseline instead of overwriting it",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds per bench (best-of)"
    )
    parser.add_argument(
        "--only",
        type=str,
        default=None,
        help="comma-separated bench names to run (others are skipped; with "
        "a plain save the rest of the recorded baseline is kept)",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "numba"),
        default=None,
        help="kernel backend to time the engine benches under; a "
        "non-default backend records/compares `<name>_<backend>` rows "
        "(and errors out rather than silently timing a fallback)",
    )
    args = parser.parse_args(argv)
    only = None
    if args.only is not None:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in only if name not in all_bench_names()]
        if unknown:
            print(
                f"unknown bench name(s): {', '.join(unknown)}; "
                f"choose from: {', '.join(all_bench_names())}",
                file=sys.stderr,
            )
            return 2
    try:
        if args.compare:
            return compare(args.rounds, only, args.backend)
        return save(args.rounds, only, args.backend)
    except Exception as exc:  # the CI guard wants an exit code, not a traceback
        print(f"benchmark harness failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
