"""Record / compare engine-throughput baselines.

``python benchmarks/save_baseline.py`` re-times the engine microbenchmarks
(the same workloads as ``test_engine_throughput.py``) and writes their
subjobs/sec to ``BENCH_engine.json`` next to this script.

``python benchmarks/save_baseline.py --compare`` re-times them and exits
non-zero if any microbench regressed more than 20% against the recorded
baseline — the guard the CI throughput job runs.

Timings use best-of-N (default N=3) wall-clock rounds: the minimum is the
least noisy estimator for a deterministic workload on a shared machine.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"
REGRESSION_TOLERANCE = 0.20  # fail --compare below 80% of baseline throughput


def _packed_stream():
    from repro.core import Instance, Job
    from repro.workloads import layered_tree

    dags = [layered_tree([16] * 250, seed=s) for s in range(8)]
    return Instance([Job(d, 100 * i, f"r{i}") for i, d in enumerate(dags)])


def _irregular_stream():
    from repro.core import Instance, Job
    from repro.workloads import quicksort_tree

    dags = [quicksort_tree(1000, seed=s) for s in range(24)]
    return Instance([Job(d, 40 * i, f"q{i}") for i, d in enumerate(dags)])


def _bench_fifo_packed():
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler

    return _packed_stream(), (lambda: FIFOScheduler(ArbitraryTieBreak())), 16


def _bench_lpf_irregular():
    from repro.schedulers import FIFOScheduler, LongestPathTieBreak

    return _irregular_stream(), (lambda: FIFOScheduler(LongestPathTieBreak())), 16


def _bench_mc_irregular():
    from repro.schedulers import FIFOScheduler, MostChildrenTieBreak

    return _irregular_stream(), (lambda: FIFOScheduler(MostChildrenTieBreak())), 16


def _bench_srpt_irregular():
    from repro.schedulers import SRPTScheduler

    return _irregular_stream(), (lambda: SRPTScheduler()), 16


def _bench_worksteal_irregular():
    from repro.schedulers import WorkStealingScheduler

    return _irregular_stream(), (lambda: WorkStealingScheduler(seed=0)), 16


def _parallel_chains():
    import numpy as np

    from repro.core import DAG, Instance, Job

    def chain(n):
        return DAG.from_parents(np.arange(-1, n - 1, dtype=np.int64))

    return Instance([Job(chain(4000), 0, f"c{i}") for i in range(16)])


def _spider_legs():
    import numpy as np

    from repro.core import DAG, Instance, Job

    parents = [-1]
    for _ in range(16):
        parents.append(0)
        for _ in range(2000 - 1):
            parents.append(len(parents) - 1)
    dag = DAG.from_parents(np.array(parents, dtype=np.int64))
    return Instance([Job(dag, 0, "spider")])


def _bench_fifo_parallel_chains():
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler

    return _parallel_chains(), (lambda: FIFOScheduler(ArbitraryTieBreak())), 16


def _bench_fifo_parallel_chains_per_step():
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler

    return (
        _parallel_chains(),
        (lambda: FIFOScheduler(ArbitraryTieBreak())),
        16,
        {"use_macro_steps": False},
    )


def _bench_lpf_spider_legs():
    from repro.schedulers import FIFOScheduler, LongestPathTieBreak

    return _spider_legs(), (lambda: FIFOScheduler(LongestPathTieBreak())), 16


def _bench_fifo_adversarial_combs():
    from repro.schedulers import ArbitraryTieBreak, FIFOScheduler
    from repro.workloads import build_fifo_adversary

    instance = build_fifo_adversary(16, n_jobs=24, seed=0).instance
    return instance, (lambda: FIFOScheduler(ArbitraryTieBreak())), 16


#: name -> setup() returning (instance, scheduler_factory, m) or
#: (instance, scheduler_factory, m, simulate_kwargs). Names match the
#: corresponding ``test_engine_throughput.py`` benchmarks. The
#: ``*_per_step`` twin pins the same workload with macro-stepping off, so
#: the recorded baseline itself documents the compression win.
MICROBENCHES = {
    "fifo_on_packed_rectangles": _bench_fifo_packed,
    "lpf_on_irregular_trees": _bench_lpf_irregular,
    "mc_on_irregular_trees": _bench_mc_irregular,
    "srpt_on_irregular_trees": _bench_srpt_irregular,
    "worksteal_on_irregular_trees": _bench_worksteal_irregular,
    "fifo_on_parallel_chains": _bench_fifo_parallel_chains,
    "fifo_on_parallel_chains_per_step": _bench_fifo_parallel_chains_per_step,
    "lpf_on_spider_legs": _bench_lpf_spider_legs,
    "fifo_on_adversarial_combs": _bench_fifo_adversarial_combs,
}


def measure(rounds: int = 3) -> dict:
    """Time every microbench; returns name -> measurement dict."""
    from repro.core import simulate

    out = {}
    for name, setup in MICROBENCHES.items():
        instance, scheduler_factory, m, *rest = setup()
        sim_kwargs = rest[0] if rest else {}
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            schedule = simulate(instance, m, scheduler_factory(), **sim_kwargs)
            best = min(best, time.perf_counter() - start)
        assert schedule.is_complete
        out[name] = {
            "subjobs": int(instance.total_work),
            "best_seconds": round(best, 6),
            "subjobs_per_sec": round(instance.total_work / best, 1),
        }
    return out


def save(rounds: int) -> int:
    results = measure(rounds)
    BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
    for name, row in results.items():
        print(f"{name:<32} {row['subjobs_per_sec']:>12,.0f} subjobs/s")
    print(f"wrote {BASELINE_PATH}")
    return 0


def _render_diff_table(rows: list[tuple[str, str, str, str, str]]) -> str:
    """Markdown diff table — readable both in a terminal and in the GitHub
    job summary (``$GITHUB_STEP_SUMMARY``)."""
    header = ("bench", "baseline subjobs/s", "current subjobs/s", "ratio", "verdict")
    table = [header, *rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = [
        "| " + " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) + " |"
        for row in table
    ]
    lines.insert(1, "|" + "|".join("-" * (w + 2) for w in widths) + "|")
    return "\n".join(lines)


def _publish_step_summary(markdown: str) -> None:
    """Append to the GitHub Actions job summary when running in CI."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as fh:
        fh.write("## Engine throughput vs recorded baseline\n\n")
        fh.write(markdown + "\n")


def compare(rounds: int) -> int:
    if not BASELINE_PATH.is_file():
        print(f"no baseline at {BASELINE_PATH}; run without --compare first",
              file=sys.stderr)
        return 2
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except json.JSONDecodeError as exc:
        print(
            f"baseline {BASELINE_PATH} is not valid JSON ({exc}); "
            "re-record it with `python benchmarks/save_baseline.py`",
            file=sys.stderr,
        )
        return 2
    results = measure(rounds)
    status = 0
    rows: list[tuple[str, str, str, str, str]] = []
    for name, row in results.items():
        now = row["subjobs_per_sec"]
        entry = baseline.get(name)
        base = entry.get("subjobs_per_sec") if isinstance(entry, dict) else None
        if not isinstance(base, (int, float)) or base <= 0:
            rows.append((name, "(no baseline)", f"{now:,.0f}", "-", "new"))
            continue
        ratio = now / base
        verdict = "ok"
        if ratio < 1.0 - REGRESSION_TOLERANCE:
            verdict = "REGRESSION"
            status = 1
        rows.append((name, f"{base:,.0f}", f"{now:,.0f}", f"{ratio:.2f}x", verdict))
    table = _render_diff_table(rows)
    print(table)
    if status:
        print(
            f"\nthroughput REGRESSION: at least one bench fell below "
            f"{(1.0 - REGRESSION_TOLERANCE):.0%} of its recorded baseline"
        )
    _publish_step_summary(table)
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the recorded baseline instead of overwriting it",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds per bench (best-of)"
    )
    args = parser.parse_args(argv)
    try:
        return compare(args.rounds) if args.compare else save(args.rounds)
    except Exception as exc:  # the CI guard wants an exit code, not a traceback
        print(f"benchmark harness failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
