"""E12 — regenerate the beyond-batched probe table (conjecture evidence)."""

from repro.experiments.e12_fifo_beyond_batched import run


def test_e12_beyond_batched(regenerate):
    result = regenerate(run, ms=(4, 8, 16, 32), n_batches=12, seed=0)
    assert all(r["within_envelope"] for r in result.rows)
