"""E14 — regenerate the SRPT-vs-FIFO norm trade-off table."""

from repro.experiments.e14_norm_tradeoff import run


def test_e14_norm_tradeoff(regenerate):
    result = regenerate(run, m=16, small=32, disparities=(4, 16, 48), seed=0)
    srpt = [r for r in result.rows if r["scheduler"].startswith("SRPT")]
    fifo = [r for r in result.rows if r["scheduler"].startswith("FIFO")]
    assert all(s["mean_flow"] <= f["mean_flow"] for s, f in zip(srpt, fifo))
