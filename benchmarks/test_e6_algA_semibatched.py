"""E6 — regenerate the Theorem 5.6 table: Algorithm A vs FIFO, semi-batched."""

from repro.experiments.e6_algA_semibatched import run


def test_e6_algA_constant_fifo_grows(regenerate):
    result = regenerate(run, ms=(8, 16, 32, 64), n_jobs=24, seed=0, alpha=4)
    a_rows = [r for r in result.rows if r["scheduler"].startswith("AlgA")]
    assert max(r["ratio"] for r in a_rows) <= 8.0
