"""E17 — regenerate the non-clairvoyant lower-bound reach table."""

from repro.experiments.e17_nonclairvoyant_lower_bound import run


def test_e17_nonclairvoyant_reach(regenerate):
    result = regenerate(run, ms=(8, 16, 32, 64), jobs_per_m=3, seed=0)
    assert all(r["adaptive_flow"] == r["asc|last"] for r in result.rows)
