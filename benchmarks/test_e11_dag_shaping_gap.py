"""E11 — regenerate the shaping-gap table: LPF optimal on trees only."""

from repro.experiments.e11_dag_shaping_gap import run


def test_e11_shaping_gap(regenerate):
    result = regenerate(run, n_nodes=10, m=2, trials=60, seed=0)
    witness_row = [r for r in result.rows if r["family"] == "pinned-witness"][0]
    assert witness_row["max_gap"] >= 1
