"""E8 — regenerate the Theorem 6.1 table: FIFO on batched instances."""

from repro.experiments.e8_fifo_batched import run


def test_e8_fifo_batched_log_bound(regenerate):
    result = regenerate(run, ms=(4, 8, 16, 32), n_batches=12, seed=0)
    assert all(r["lemma6.4"] and r["lemma6.5"] for r in result.rows)
