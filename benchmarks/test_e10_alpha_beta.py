"""E10 — regenerate the alpha/beta ablation table for Algorithm A."""

from repro.experiments.e10_alpha_beta import run


def test_e10_alpha_beta_ablation(regenerate):
    result = regenerate(
        run, m=32, alphas=(3, 4, 8, 16), betas=(4, 8, 32, 258), n_jobs=12, seed=0
    )
    beta_rows = [r for r in result.rows if r["sweep"] == "beta"]
    assert beta_rows[-1]["restarts"] == 0  # beta=258 never needs to double here
