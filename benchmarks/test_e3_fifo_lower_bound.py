"""E3 — regenerate the Theorem 4.2 table: FIFO's ratio grows as Omega(log m).

The default sweep stops at m=64 to keep the bench under ~20 s; run
``examples/adversarial_fifo.py --full`` for the m=128 row (8.4M subjobs).
"""

from repro.experiments.e3_fifo_lower_bound import run


def test_e3_fifo_omega_log_m(regenerate):
    result = regenerate(run, ms=(8, 16, 32, 64), jobs_per_m=4)
    ratios = [r["ratio>="] for r in result.rows]
    # Each doubling of m should add a roughly constant increment (~1).
    increments = [b - a for a, b in zip(ratios, ratios[1:])]
    assert all(0.3 <= inc <= 2.0 for inc in increments), increments
