"""Property-based tests for Algorithm 𝒜 on random semi-batched inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, Job, simulate
from repro.schedulers import (
    SemiBatchedOutTreeScheduler,
    max_flow_lower_bound,
    single_forest_opt,
)

from .strategies import out_forests


@st.composite
def semibatched_cases(draw):
    """(instance, opt_param, m): random out-forest cohorts released at
    multiples of ceil(opt/2), with opt an upper bound on the true optimum
    (max solo optimum — valid because batch windows can be serialized)."""
    m = draw(st.integers(4, 12))
    n_cohorts = draw(st.integers(1, 4))
    dags = [draw(out_forests(max_nodes=20)) for _ in range(n_cohorts)]
    solo = max(single_forest_opt(d, m) for d in dags)
    # A valid upper bound on OPT of the batched release: serialize windows.
    opt = max(2, solo * 2)
    half = -(-opt // 2)
    jobs = [Job(d, i * half, f"c{i}") for i, d in enumerate(dags)]
    return Instance(jobs), opt, m


@given(semibatched_cases())
@settings(max_examples=25)
def test_algA_feasible_on_random_semibatched(case):
    instance, opt, m = case
    scheduler = SemiBatchedOutTreeScheduler(opt=opt, alpha=4)
    schedule = simulate(
        instance, m, scheduler, max_steps=instance.horizon_hint * 8 + 600 * opt
    )
    schedule.validate()


@given(semibatched_cases())
@settings(max_examples=25)
def test_algA_within_flow_guarantee(case):
    """Every job's flow stays within the Theorem 5.6 bound β·opt/2 for the
    opt parameter supplied."""
    instance, opt, m = case
    scheduler = SemiBatchedOutTreeScheduler(opt=opt, alpha=4)
    schedule = simulate(
        instance, m, scheduler, max_steps=instance.horizon_hint * 8 + 600 * opt
    )
    assert int(schedule.flows.max()) <= scheduler.flow_guarantee()


@given(semibatched_cases())
@settings(max_examples=20)
def test_algA_never_beats_lower_bound(case):
    instance, opt, m = case
    scheduler = SemiBatchedOutTreeScheduler(opt=opt, alpha=4)
    schedule = simulate(
        instance, m, scheduler, max_steps=instance.horizon_hint * 8 + 600 * opt
    )
    assert schedule.max_flow >= max_flow_lower_bound(instance, m)
