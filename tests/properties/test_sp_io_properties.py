"""Property-based tests for SP recognition, segmentation and serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Instance,
    Job,
    is_series_parallel,
    series_segments,
    simulate,
    sp_decomposition,
)
from repro.core.io import (
    instance_from_dict,
    instance_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.schedulers import FIFOScheduler, PhasedOutForestScheduler, SRPTScheduler

from .strategies import general_dags, instances, out_forests, out_trees


@given(out_forests())
def test_every_out_forest_is_series_parallel(forest):
    assert is_series_parallel(forest)


@given(out_trees(max_nodes=15), out_trees(max_nodes=15))
def test_compositions_stay_sp(a, b):
    assert is_series_parallel(a.series(b))
    assert is_series_parallel(a.parallel(b))


@given(general_dags(max_nodes=12))
def test_decomposition_leaves_partition(dag):
    tree = sp_decomposition(dag)
    if tree is not None:
        assert sorted(tree.leaves()) == list(range(dag.n))


@given(out_trees(max_nodes=12), out_trees(max_nodes=12))
@settings(max_examples=30)
def test_series_segments_of_composed_trees(a, b):
    dag = a.series(b)
    segments = series_segments(dag)
    assert segments is not None
    assert sum(len(s) for s in segments) == dag.n
    for seg in segments:
        sub, _ = dag.induced_subgraph(seg)
        assert sub.is_out_forest


@given(general_dags(max_nodes=10))
@settings(max_examples=30)
def test_segments_imply_sp(dag):
    """If a DAG decomposes into segments, it must be series-parallel."""
    if series_segments(dag) is not None:
        assert is_series_parallel(dag)


@given(instances(max_jobs=3))
@settings(max_examples=25)
def test_instance_dict_roundtrip(instance):
    back = instance_from_dict(instance_to_dict(instance))
    assert len(back) == len(instance)
    for a, b in zip(back, instance):
        assert a.dag == b.dag and a.release == b.release


@given(instances(max_jobs=3), st.integers(1, 4))
@settings(max_examples=25)
def test_schedule_dict_roundtrip(instance, m):
    schedule = simulate(instance, m, FIFOScheduler())
    back = schedule_from_dict(schedule_to_dict(schedule))
    assert back.max_flow == schedule.max_flow
    for a, b in zip(back.completion, schedule.completion):
        assert np.array_equal(a, b)


@given(instances(max_jobs=3), st.integers(1, 5))
@settings(max_examples=25)
def test_srpt_always_feasible(instance, m):
    schedule = simulate(instance, m, SRPTScheduler())
    schedule.validate()


@given(
    st.lists(
        st.tuples(out_trees(max_nodes=8), st.integers(0, 10)),
        min_size=1,
        max_size=3,
    ),
    st.integers(4, 8),
)
@settings(max_examples=20)
def test_phased_feasible_on_tree_streams(jobs_spec, m):
    """Out-trees are one-segment phased jobs; PhasedA must handle any
    stream of them."""
    instance = Instance([Job(dag, r) for dag, r in jobs_spec])
    schedule = simulate(
        instance, m, PhasedOutForestScheduler(beta=4), max_steps=200_000
    )
    schedule.validate()
