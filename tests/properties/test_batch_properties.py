"""Property suite for the batched multi-instance engine.

Three-way differential testing: for every batch in the corpus,
``simulate_batch`` (the lockstep structure-of-arrays engine), per-instance
``simulate`` (the vectorized single-instance engine), and the per-node
reference loop (``_simulate_reference``) must produce bit-identical
completion arrays — over random/adversarial/packed/chain corpora, ragged
batch compositions, shared and per-instance availability traces, and
batches mixing kernel-eligible with fallback-only instances.

A dedicated engagement test asserts the batched path actually runs
(``batch_steps > 0``) so the equivalences above are never vacuous; the
macro test likewise pins ``macro_steps > 0`` for the batched chain-run
commit.
"""

import numpy as np
import pytest

from repro.core import DAG, Instance, Job, as_trace, simulate, simulate_batch
from repro.core.simulator import _simulate_reference
from repro.faults import availability_suite
from repro.schedulers import (
    FIFOScheduler,
    LPFScheduler,
    RandomTieBreak,
    ReverseTieBreak,
)
from repro.workloads import (
    build_fifo_adversary,
    layered_tree,
    random_attachment_tree,
    random_out_forest,
)

# ---------------------------------------------------------------------------
# Corpus builders: each returns a *batch* (list of instances). Chain-heavy
# batches exercise the batched macro commit; packed/adversarial/random
# batches exercise the per-step selection gather; ragged batches exercise
# the per-instance offset bookkeeping (instances of very different sizes
# terminating at very different times).
# ---------------------------------------------------------------------------


def _chain(n: int) -> DAG:
    return DAG.from_parents(np.arange(-1, n - 1, dtype=np.int64))


def _chains_batch(seed: int) -> list[Instance]:
    rng = np.random.default_rng(seed)
    return [
        Instance(
            [
                Job(_chain(int(rng.integers(15, 50))), int(rng.integers(0, 4)))
                for _ in range(int(rng.integers(1, 4)))
            ]
        )
        for _ in range(int(rng.integers(2, 7)))
    ]


def _random_batch(seed: int) -> list[Instance]:
    rng = np.random.default_rng(seed + 100)
    out = []
    for _ in range(int(rng.integers(2, 7))):
        jobs = [
            Job(
                random_out_forest(int(rng.integers(5, 40)),
                                  seed=int(rng.integers(1 << 30))),
                int(rng.integers(0, 10)),
            )
            for _ in range(int(rng.integers(1, 4)))
        ]
        out.append(Instance(jobs))
    return out


def _packed_batch(seed: int) -> list[Instance]:
    return [
        Instance([Job(layered_tree([4] * 5, seed=seed + i + j), 3 * j)
                  for j in range(2)])
        for i in range(4)
    ]


def _adversarial_batch(seed: int) -> list[Instance]:
    return [build_fifo_adversary(4, 3, seed=seed + i).instance
            for i in range(3)]


def _ragged_batch(seed: int) -> list[Instance]:
    """Sizes spanning two orders of magnitude: the small instances finish
    (and must freeze) while the large ones keep stepping."""
    rng = np.random.default_rng(seed + 200)
    sizes = [2, 3, 150, 5, 220, 8]
    return [
        Instance(
            [Job(random_attachment_tree(n, rng), int(rng.integers(0, 5)))]
        )
        for n in sizes
    ]


BUILDERS = (
    _chains_batch,
    _random_batch,
    _packed_batch,
    _adversarial_batch,
    _ragged_batch,
)
CORPUS = [(b, s) for b in BUILDERS for s in range(3)]

SCHEDULERS = {
    "fifo": lambda: FIFOScheduler(),
    "fifo-reverse": lambda: FIFOScheduler(ReverseTieBreak()),
    "lpf": lambda: LPFScheduler(),
}


def _three_way(
    instances,
    make_scheduler,
    m,
    availability=None,
    per_instance_availability=None,
    **kwargs,
):
    """Assert batched / per-instance / reference bit-identity; return the
    batched schedules (whose shared ``engine_stats`` callers may inspect).

    ``availability`` is one shared spec for the whole batch;
    ``per_instance_availability`` a list with one spec (or ``None``) per
    instance. Pass at most one of the two.
    """
    assert availability is None or per_instance_availability is None
    av_arg = (
        per_instance_availability
        if per_instance_availability is not None
        else availability
    )
    batched = simulate_batch(
        instances, m, make_scheduler(), availability=av_arg, **kwargs
    )
    for b, inst in enumerate(instances):
        av = (
            per_instance_availability[b]
            if per_instance_availability is not None
            else availability
        )
        per = simulate(inst, m, make_scheduler(), availability=av, **kwargs)
        ref = _simulate_reference(inst, m, make_scheduler(), availability=av)
        for i, (x, y, z) in enumerate(
            zip(batched[b].completion, per.completion, ref.completion)
        ):
            assert np.array_equal(x, y), (
                f"batched vs per-instance diverged: instance {b} job {i}"
            )
            assert np.array_equal(x, z), (
                f"batched vs reference diverged: instance {b} job {i}"
            )
        batched[b].validate()
    return batched


@pytest.mark.parametrize(
    "builder,seed", CORPUS, ids=[f"{b.__name__[1:]}-{s}" for b, s in CORPUS]
)
@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
def test_three_way_bit_identity(builder, seed, policy):
    batch = builder(seed)
    for m in (1, 3, 8):
        _three_way(batch, SCHEDULERS[policy], m)


def test_batched_path_actually_engages():
    """If every instance fell back to the per-instance engine, all the
    equivalences in this file would be vacuous."""
    batch = _random_batch(0)
    schedules = _three_way(batch, FIFOScheduler, 4)
    stats = schedules[0].engine_stats
    assert stats is not None
    assert stats.batch_steps > 0
    assert stats.fallback_runs == 0
    assert sum(stats.batch_size_histogram.values()) == stats.batch_steps


def test_batched_macro_commit_engages_on_chains():
    """Parallel chains across several instances: the batched chain-run
    macro commit must fire (Δt from the per-instance row minimum), and the
    result must still be bit-identical."""
    batch = [
        Instance([Job(_chain(120), 0), Job(_chain(90), 5)]) for _ in range(5)
    ]
    schedules = _three_way(batch, FIFOScheduler, 4)
    stats = schedules[0].engine_stats
    assert stats.macro_steps > 0
    assert stats.compressed_steps > stats.macro_steps


def test_impure_tie_break_falls_back_per_instance():
    """RandomTieBreak is impure (no kernel): every instance must take the
    per-instance fallback — counted, and still correct vs the reference."""
    batch = _random_batch(1)
    schedules = simulate_batch(
        batch, 3, FIFOScheduler(RandomTieBreak(), seed=11)
    )
    for b, inst in enumerate(batch):
        ref = simulate(inst, 3, FIFOScheduler(RandomTieBreak(), seed=11))
        for x, y in zip(schedules[b].completion, ref.completion):
            assert np.array_equal(x, y)


def test_mixed_eligibility_batches():
    """A kernel-less scheduler config (use_priority_kernel=False) makes
    every instance ineligible; the batched entry point must transparently
    produce the same schedules anyway and count the fallbacks."""
    from repro.core import engine_stats_snapshot

    batch = _chains_batch(2)
    before = engine_stats_snapshot()
    schedules = simulate_batch(
        batch, 4, FIFOScheduler(use_priority_kernel=False)
    )
    delta = engine_stats_snapshot().delta(before)
    assert delta.fallback_runs == len(batch)
    for b, inst in enumerate(batch):
        per = simulate(inst, 4, FIFOScheduler(use_priority_kernel=False))
        for x, y in zip(schedules[b].completion, per.completion):
            assert np.array_equal(x, y)


@pytest.mark.parametrize("m", (2, 5))
def test_three_way_identity_under_shared_availability(m):
    """Adversarial + seeded random traces applied batch-wide (the scalar
    broadcast semantics): zero-capacity prefixes, bursts, and ramps must
    leave all three engines bit-identical."""
    batch = _random_batch(m) + [Instance([Job(_chain(60), 0)])]
    for name, trace in availability_suite(m, 30, n_random=6, seed=m):
        try:
            _three_way(batch, FIFOScheduler, m, availability=trace)
        except AssertionError as exc:  # pragma: no cover - diagnostics
            raise AssertionError(f"trace {name!r} (m={m}): {exc}") from exc


def test_three_way_identity_under_per_instance_availability():
    """Each instance under its own trace (including ``None`` holes =
    constant capacity): the padded per-instance capacity matrix must keep
    every row on its own regime."""
    m = 4
    rng = np.random.default_rng(7)
    batch = _random_batch(3)
    traces = []
    for b in range(len(batch)):
        if b % 3 == 0:
            traces.append(None)
        else:
            traces.append(
                as_trace([int(c) for c in rng.integers(0, m + 1, size=6)], m)
            )
    _three_way(batch, FIFOScheduler, m, per_instance_availability=traces)


def test_single_instance_batch_matches_simulate():
    """B=1 is the degenerate lockstep: still must match exactly."""
    inst = Instance([Job(random_out_forest(30, seed=5), 0)])
    _three_way([inst], LPFScheduler, 2)


def test_batch_reuse_via_prepacked_instance_batch():
    """Passing a pre-packed ``InstanceBatch`` (the sweep-reuse path) must
    be bit-identical to packing internally."""
    from repro.core import pack_instances

    batch = _random_batch(4)
    packed = pack_instances(batch)
    first = simulate_batch(batch, 4, FIFOScheduler(), batch=packed)
    second = simulate_batch(batch, 4, FIFOScheduler())
    for a, b in zip(first, second):
        for x, y in zip(a.completion, b.completion):
            assert np.array_equal(x, y)
