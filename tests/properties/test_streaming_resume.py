"""Crash-safety properties of the streaming engine.

The contract under test (docs/serving.md): a streaming run that is
checkpointed, killed, restored from the on-disk checkpoint, and drained
produces **bit-identical** final metrics to the same run left
uninterrupted — across every policy, arbitrary checkpoint epochs
(including several kill/restore cycles in one run), and restricted
availability traces. The checkpoint round-trips through the real file
format (`save_checkpoint`/`load_checkpoint`), not just the in-memory
snapshot, so framing and integrity checks ride along.

A second property pins the engine's semantics to the batch reference:
over any finite stream prefix, the per-job flows of the streaming engine
equal `simulate()`'s under the matching scheduler.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulator import simulate
from repro.schedulers.base import ArbitraryTieBreak, LongestPathTieBreak
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.streaming import (
    StreamingEngine,
    load_checkpoint,
    save_checkpoint,
)
from repro.workloads.arrivals import AdversarialDripSource, PoissonSource

POLICIES = ("fifo", "lpf", "srpt")

_BATCH_FACTORIES = {
    "fifo": lambda: FIFOScheduler(ArbitraryTieBreak()),
    "lpf": lambda: FIFOScheduler(LongestPathTieBreak()),
    "srpt": SRPTScheduler,
}


def _source(kind: str, seed: int, n_jobs: int, m: int):
    if kind == "poisson":
        return PoissonSource(
            rate=0.5, seed=seed, dag_nodes=12, family="attachment", n_jobs=n_jobs
        )
    if kind == "galton":
        return PoissonSource(
            rate=0.3,
            seed=seed,
            dag_nodes=18,
            family="galton-watson",
            n_jobs=n_jobs,
        )
    return AdversarialDripSource(m, period=3, seed=seed, n_jobs=n_jobs)


def _final_state(engine: StreamingEngine) -> str:
    """The bit-identity surface, serialized canonically."""
    return json.dumps(
        {"t": engine.t, "summary": engine.metrics.summary()}, sort_keys=True
    )


@settings(max_examples=25)
@given(
    policy=st.sampled_from(POLICIES),
    kind=st.sampled_from(("poisson", "galton", "drip")),
    seed=st.integers(0, 10_000),
    n_jobs=st.integers(1, 25),
    m=st.integers(2, 6),
    epochs=st.lists(st.integers(1, 40), min_size=1, max_size=3),
    availability=st.one_of(
        st.none(), st.lists(st.integers(0, 2), min_size=1, max_size=15)
    ),
)
def test_kill_restore_drain_is_bit_identical(
    tmp_path_factory, policy, kind, seed, n_jobs, m, epochs, availability
):
    """checkpoint → kill → restore → drain == uninterrupted, exactly."""
    source = _source(kind, seed, n_jobs, m)
    avail = None if availability is None else [min(v, m) for v in availability]
    kwargs = dict(policy=policy, availability=avail)

    reference = StreamingEngine(source, m, **kwargs)
    reference.run()
    expected = _final_state(reference)

    path = tmp_path_factory.mktemp("ckpt") / "stream.ckpt"
    engine = StreamingEngine(source, m, **kwargs)
    for epoch in epochs:  # several kill/restore cycles in one run
        for _ in range(epoch):
            if not engine.step():
                break
        save_checkpoint(path, engine.snapshot())
        # "Kill": drop the engine entirely; restore from disk only.
        engine = StreamingEngine.from_snapshot(
            load_checkpoint(path), source, m, **kwargs
        )
    engine.run()
    assert _final_state(engine) == expected


@settings(max_examples=25)
@given(
    policy=st.sampled_from(POLICIES),
    kind=st.sampled_from(("poisson", "drip")),
    seed=st.integers(0, 10_000),
    n_jobs=st.integers(1, 20),
    m=st.integers(2, 6),
)
def test_streaming_matches_batch_simulate(policy, kind, seed, n_jobs, m):
    """Per-job flows of the streaming engine equal `simulate()`'s."""
    source = _source(kind, seed, n_jobs, m)
    flows = {}
    engine = StreamingEngine(
        source,
        m,
        policy=policy,
        on_retire=lambda index, flow: flows.__setitem__(index, flow),
    )
    engine.run()
    schedule = simulate(
        source.prefix_instance(n_jobs), m, _BATCH_FACTORIES[policy]()
    )
    assert [flows[j] for j in range(n_jobs)] == [
        schedule.job_flow(j) for j in range(n_jobs)
    ]


@settings(max_examples=15)
@given(
    policy=st.sampled_from(POLICIES),
    seed=st.integers(0, 10_000),
    cut=st.integers(1, 60),
)
def test_resume_under_availability_trace(tmp_path_factory, policy, seed, cut):
    """One deep trace-restricted run, killed at a drawn step, resumes
    bit-identically (capacity gaps span the kill point)."""
    m = 4
    trace = [0, 1, 0, 2, 4, 0, 0, 3, 1, 4] * 8
    source = PoissonSource(rate=0.7, seed=seed, dag_nodes=10, n_jobs=30)
    kwargs = dict(policy=policy, availability=trace)

    reference = StreamingEngine(source, m, **kwargs)
    reference.run()

    path = tmp_path_factory.mktemp("ckpt") / "trace.ckpt"
    engine = StreamingEngine(source, m, **kwargs)
    for _ in range(cut):
        if not engine.step():
            break
    save_checkpoint(path, engine.snapshot())
    engine = StreamingEngine.from_snapshot(
        load_checkpoint(path), source, m, **kwargs
    )
    engine.run()
    assert _final_state(engine) == _final_state(reference)


def test_fingerprint_mismatch_is_rejected(tmp_path):
    """A checkpoint resumes only under the configuration that wrote it."""
    from repro.core.exceptions import ConfigurationError

    source = PoissonSource(rate=0.5, seed=1, dag_nodes=8, n_jobs=10)
    engine = StreamingEngine(source, 3, policy="fifo")
    engine.step()
    path = tmp_path / "fp.ckpt"
    save_checkpoint(path, engine.snapshot())
    snapshot = load_checkpoint(path)
    other_source = PoissonSource(rate=0.5, seed=2, dag_nodes=8, n_jobs=10)
    for bad in (
        lambda: StreamingEngine.from_snapshot(snapshot, source, 4, policy="fifo"),
        lambda: StreamingEngine.from_snapshot(snapshot, source, 3, policy="srpt"),
        lambda: StreamingEngine.from_snapshot(
            snapshot, other_source, 3, policy="fifo"
        ),
    ):
        with pytest.raises(ConfigurationError):
            bad()
