"""Exhaustive verification over ALL small tree/forest shapes.

Stronger than sampling: for every out-forest up to 6 nodes (720 shapes per
size-6 batch) the core claims hold without exception.
"""

import pytest

from repro.analysis import check_lpf_ancestor_structure, check_mc_busy, head_tail_shape
from repro.schedulers import lpf_flow, lpf_schedule, single_forest_opt
from repro.workloads.enumerate_shapes import (
    all_out_forests,
    all_out_trees,
    count_out_forests,
    count_out_trees,
)


class TestEnumeration:
    def test_tree_counts(self):
        assert sum(1 for _ in all_out_trees(1)) == count_out_trees(1) == 1
        assert sum(1 for _ in all_out_trees(4)) == count_out_trees(4) == 6

    def test_forest_counts(self):
        assert sum(1 for _ in all_out_forests(3)) == count_out_forests(3) == 6

    def test_all_are_trees(self):
        assert all(d.is_out_tree for d in all_out_trees(5))

    def test_all_are_forests(self):
        assert all(d.is_out_forest for d in all_out_forests(4))

    def test_distinct_shapes_present(self):
        spans = {d.span for d in all_out_trees(5)}
        assert spans == {2, 3, 4, 5}  # star through chain

    def test_validation(self):
        with pytest.raises(Exception):
            list(all_out_trees(0))


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
@pytest.mark.parametrize("m", [1, 2, 3])
def test_corollary_5_4_exhaustive(n, m):
    """LPF flow equals the closed form on EVERY out-forest of size n."""
    for forest in all_out_forests(n):
        assert lpf_flow(forest, m) == single_forest_opt(forest, m)


@pytest.mark.parametrize("width", [2, 3])
def test_lemma_5_2_exhaustive(width):
    """The ancestor-chain structure holds on every out-tree up to size 6."""
    for tree in all_out_trees(6):
        schedule = lpf_schedule(tree, width)
        assert check_lpf_ancestor_structure(schedule, width).ok


@pytest.mark.parametrize("width", [2])
def test_lemma_5_5_exhaustive(width):
    """MC's busy property holds on the LPF tail of every out-tree up to
    size 5, under a fixed awkward allocation pattern."""
    for tree in all_out_trees(5):
        schedule = lpf_schedule(tree, width)
        shape = head_tail_shape(schedule, width)
        steps = [nodes for _, nodes in schedule.job_steps(0)][shape.head_length :]
        if not steps:
            continue
        alloc = [1, width, 0, width, 1] * (2 * tree.n + 2)
        assert check_mc_busy(steps, tree, alloc).ok


def test_tail_rectangle_exhaustive():
    """Figure 2's packed tail holds for every out-forest of size 5 at
    every width."""
    for forest in all_out_forests(5):
        for width in (1, 2, 3):
            schedule = lpf_schedule(forest, width)
            assert head_tail_shape(schedule, width).tail_fully_packed


def test_corollary_5_4_exhaustive_n7_trees():
    """All 720 out-tree shapes on 7 nodes, m = 2: LPF equals the closed
    form (trees only — the forest sweep at n=7 would be 5040 shapes)."""
    for tree in all_out_trees(7):
        assert lpf_flow(tree, 2) == single_forest_opt(tree, 2)
