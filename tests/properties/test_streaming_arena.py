"""Three-way bit-identity suite for the resident streaming arena.

The arena contract (docs/serving.md, docs/engine-internals.md): the
resident-arena commit path — whole-window kernel passes plus epoch
macro-stepping — is observationally identical to the retained per-job
reference loop, which is itself pinned to batch ``simulate()``. Three
legs, compared on every observable surface:

1. **arena** (``arena=True``): SoA commits + ``macro_fill`` epochs;
2. **per-job** (``arena=False``): the ``_LiveJob`` dict reference;
3. **simulate**: per-job flows on the materialized stream prefix.

The properties cover fifo/lpf/srpt × Poisson / Galton-Watson /
adversarial-drip sources × restricted availability traces × random
SIGKILL epochs (checkpoint → drop the engine → restore from the file
format), including *cross-path* resumes — a checkpoint written by the
arena engine drained by the per-job engine and vice versa, since the
snapshot layout is deliberately path-free.

Engagement guards keep the suite honest: deterministic runs assert the
arena commit path (``stream_arena_steps``) and the epoch macro path
(``stream_epoch_steps``) actually fire, so a regression that silently
routed everything through the reference loop would fail loudly rather
than pass vacuously.
"""

import json
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulator import simulate
from repro.schedulers.base import ArbitraryTieBreak, LongestPathTieBreak
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.streaming import (
    StreamingEngine,
    load_checkpoint,
    save_checkpoint,
)
from repro.workloads.arrivals import AdversarialDripSource, PoissonSource

POLICIES = ("fifo", "lpf", "srpt")

_BATCH_FACTORIES = {
    "fifo": lambda: FIFOScheduler(ArbitraryTieBreak()),
    "lpf": lambda: FIFOScheduler(LongestPathTieBreak()),
    "srpt": SRPTScheduler,
}


def _source(kind: str, seed: int, n_jobs: int, m: int):
    if kind == "poisson":
        return PoissonSource(
            rate=0.5, seed=seed, dag_nodes=12, family="attachment", n_jobs=n_jobs
        )
    if kind == "galton":
        return PoissonSource(
            rate=0.3,
            seed=seed,
            dag_nodes=18,
            family="galton-watson",
            n_jobs=n_jobs,
        )
    return AdversarialDripSource(m, period=3, seed=seed, n_jobs=n_jobs)


def _final_state(engine: StreamingEngine) -> str:
    """The bit-identity surface, serialized canonically."""
    return json.dumps(
        {"t": engine.t, "summary": engine.metrics.summary()}, sort_keys=True
    )


def _run_collecting(source, m, *, arena, **kwargs):
    """Run one engine to completion; returns (engine, per-job flows)."""
    flows: dict[int, int] = {}
    engine = StreamingEngine(
        source,
        m,
        arena=arena,
        on_retire=lambda index, flow: flows.__setitem__(index, flow),
        **kwargs,
    )
    engine.run()
    return engine, flows


@settings(max_examples=25)
@given(
    policy=st.sampled_from(POLICIES),
    kind=st.sampled_from(("poisson", "galton", "drip")),
    seed=st.integers(0, 10_000),
    n_jobs=st.integers(1, 25),
    m=st.integers(2, 6),
    availability=st.one_of(
        st.none(), st.lists(st.integers(0, 3), min_size=1, max_size=15)
    ),
)
def test_arena_matches_per_job_and_simulate(
    policy, kind, seed, n_jobs, m, availability
):
    """arena ≡ per-job on (t, summary) and retirement order/flows, and
    both ≡ ``simulate()`` on per-job flows over the materialized prefix."""
    avail = None if availability is None else [min(v, m) for v in availability]
    kwargs = dict(policy=policy, availability=avail)
    arena_engine, arena_flows = _run_collecting(
        _source(kind, seed, n_jobs, m), m, arena=True, **kwargs
    )
    ref_engine, ref_flows = _run_collecting(
        _source(kind, seed, n_jobs, m), m, arena=False, **kwargs
    )
    assert _final_state(arena_engine) == _final_state(ref_engine)
    # Same flows AND the same retirement order (dicts preserve it).
    assert list(arena_flows.items()) == list(ref_flows.items())
    # The arena engine must actually have used the arena path.
    if arena_engine.stats.stream_steps > 0:
        assert (
            arena_engine.stats.stream_arena_steps
            + arena_engine.stats.stream_epoch_steps
            > 0
        )
    assert ref_engine.stats.stream_arena_steps == 0
    # Third leg: the batch engine on the materialized prefix.
    schedule = simulate(
        _source(kind, seed, n_jobs, m).prefix_instance(n_jobs),
        m,
        _BATCH_FACTORIES[policy](),
        availability=avail,
    )
    assert [arena_flows[j] for j in range(n_jobs)] == [
        schedule.job_flow(j) for j in range(n_jobs)
    ]


@settings(max_examples=25, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    kind=st.sampled_from(("poisson", "galton", "drip")),
    seed=st.integers(0, 10_000),
    n_jobs=st.integers(1, 25),
    m=st.integers(2, 6),
    epochs=st.lists(st.integers(1, 40), min_size=1, max_size=3),
    resume_paths=st.lists(st.booleans(), min_size=3, max_size=3),
    availability=st.one_of(
        st.none(), st.lists(st.integers(0, 2), min_size=1, max_size=15)
    ),
)
def test_kill_restore_cross_path_bit_identical(
    tmp_path_factory,
    policy,
    kind,
    seed,
    n_jobs,
    m,
    epochs,
    resume_paths,
    availability,
):
    """checkpoint → SIGKILL → restore → drain reproduces the uninterrupted
    per-job run exactly — with each restore drawn onto a random path
    (arena or per-job), so checkpoints cross the path boundary freely."""
    source = _source(kind, seed, n_jobs, m)
    avail = None if availability is None else [min(v, m) for v in availability]
    kwargs = dict(policy=policy, availability=avail)

    reference = StreamingEngine(source, m, arena=False, **kwargs)
    reference.run()
    expected = _final_state(reference)

    path = tmp_path_factory.mktemp("ckpt") / "arena.ckpt"
    engine = StreamingEngine(source, m, arena=True, **kwargs)
    for epoch, use_arena in zip(epochs, resume_paths):
        for _ in range(epoch):
            if not engine.step():
                break
        save_checkpoint(path, engine.snapshot())
        # "Kill": drop the engine entirely; restore from disk only.
        engine = StreamingEngine.from_snapshot(
            load_checkpoint(path), source, m, arena=use_arena, **kwargs
        )
    engine.run()
    assert _final_state(engine) == expected


@settings(max_examples=20, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    kind=st.sampled_from(("poisson", "drip")),
    seed=st.integers(0, 10_000),
    cuts=st.lists(st.integers(1, 80), min_size=1, max_size=2),
)
def test_snapshot_bytes_identical_across_paths(policy, kind, seed, cuts):
    """At every drawn time boundary the two paths produce byte-identical
    pickled snapshots (the checkpoint file payload), stepping each engine
    with ``t_limit`` so macro-windows respect the boundary."""
    m = 4
    n_jobs = 20
    kwargs = dict(policy=policy)
    arena_engine = StreamingEngine(_source(kind, seed, n_jobs, m), m, arena=True, **kwargs)
    ref_engine = StreamingEngine(_source(kind, seed, n_jobs, m), m, arena=False, **kwargs)
    t = 0
    for cut in cuts:
        t += cut
        for engine in (arena_engine, ref_engine):
            while not engine.complete and engine.t < t:
                engine.step(t_limit=t)
        assert arena_engine.t == ref_engine.t
        assert pickle.dumps(arena_engine.snapshot()) == pickle.dumps(
            ref_engine.snapshot()
        )


# ---------------------------------------------------------------------------
# Engagement guards: the suite above is vacuous if the fast paths never run.
# ---------------------------------------------------------------------------


def test_arena_commit_path_engages():
    """A mixed Poisson stream drives the per-step arena commit kernel."""
    source = PoissonSource(rate=0.7, seed=11, dag_nodes=40, n_jobs=60)
    engine = StreamingEngine(source, 6, policy="srpt", arena=True)
    engine.run()
    assert engine.stats.stream_arena_steps > 0
    assert engine.stats.kernel_dispatches.get("arena_gather", 0) > 0
    assert engine.stats.kernel_dispatches.get("arena_commit", 0) > 0


def test_epoch_macro_path_engages():
    """A chain-heavy drip stream qualifies for epoch macro-windows, and
    the compressed steps are accounted (each macro covers >= 2 steps)."""
    source = AdversarialDripSource(4, period=3, seed=5, n_jobs=30)
    engine = StreamingEngine(source, 4, policy="fifo", arena=True)
    engine.run()
    assert engine.stats.stream_epoch_steps > 0
    assert (
        engine.stats.stream_epoch_compressed
        >= 2 * engine.stats.stream_epoch_steps
    )
    assert engine.stats.kernel_dispatches.get("macro_fill", 0) > 0
    # The macro path must not have cost bit-identity.
    reference = StreamingEngine(
        AdversarialDripSource(4, period=3, seed=5, n_jobs=30),
        4,
        policy="fifo",
        arena=False,
    )
    reference.run()
    assert _final_state(engine) == _final_state(reference)


def test_epoch_macro_respects_t_limit():
    """With ``t_limit`` pinning every step, macro-windows never cross the
    boundary: the engine visits exactly the same ``t`` values."""
    def visited(arena: bool, t_limit_every: int) -> list[int]:
        engine = StreamingEngine(
            AdversarialDripSource(4, period=3, seed=9, n_jobs=15),
            4,
            policy="fifo",
            arena=arena,
        )
        seen = [engine.t]
        while True:
            boundary = (engine.t // t_limit_every + 1) * t_limit_every
            if not engine.step(t_limit=boundary):
                break
            seen.append(engine.t)
        return seen

    arena_ts = visited(True, 7)
    ref_ts = visited(False, 7)
    # The arena path may compress runs of t values into macro jumps, but
    # must stop at every boundary the per-step path stops at.
    boundaries = {t for t in ref_ts if t % 7 == 0}
    assert boundaries <= set(arena_ts)
