"""Property-based tests for the Most-Children algorithm (Lemma 5.5)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_mc_busy, head_tail_shape
from repro.schedulers import MostChildrenReplayer, lpf_schedule

from .strategies import out_forests


@given(out_forests(), st.integers(1, 5), st.integers(0, 2**31 - 1))
@settings(max_examples=40)
def test_lemma_5_5_busy_property(forest, width, seed):
    """MC on an LPF tail never idles a granted processor, for any
    allocation sequence with m_t <= width."""
    schedule = lpf_schedule(forest, width)
    shape = head_tail_shape(schedule, width)
    steps = [nodes for _, nodes in schedule.job_steps(0)][shape.head_length :]
    if not steps:
        return
    rng = np.random.default_rng(seed)
    horizon = 4 * sum(len(s) for s in steps) + 8
    alloc = rng.integers(0, width + 1, size=horizon).tolist()
    res = check_mc_busy(steps, forest, alloc)
    assert res.ok, res.detail


@given(out_forests(), st.integers(1, 5))
@settings(max_examples=30)
def test_mc_replays_exactly_once(forest, width):
    """Every subjob of the input schedule is selected exactly once."""
    schedule = lpf_schedule(forest, width)
    steps = [nodes for _, nodes in schedule.job_steps(0)]
    replayer = MostChildrenReplayer(steps, forest)
    done: set[int] = set()
    completed: set[int] = set()
    for _ in range(10 * forest.n + 10):
        if replayer.finished:
            break
        picks = replayer.select(
            width, lambda v: all(int(p) in completed for p in forest.parents(v))
        )
        for v in picks:
            assert v not in done
            done.add(v)
        completed = set(done)
    assert replayer.finished
    assert done == set(range(forest.n))


@given(out_forests(), st.integers(1, 5))
@settings(max_examples=30)
def test_mc_respects_precedence(forest, width):
    """Selections filtered by readiness never run a child before its
    parent completed in a strictly earlier round."""
    schedule = lpf_schedule(forest, width)
    steps = [nodes for _, nodes in schedule.job_steps(0)]
    replayer = MostChildrenReplayer(steps, forest)
    completed: set[int] = set()
    while not replayer.finished:
        picks = replayer.select(
            width, lambda v: all(int(p) in completed for p in forest.parents(v))
        )
        assert picks, "stalled replay"
        for v in picks:
            for p in forest.parents(v):
                assert int(p) in completed
        completed.update(picks)


@given(out_forests(min_nodes=2), st.integers(2, 5))
@settings(max_examples=25)
def test_mc_prefers_levels_in_order(forest, width):
    """MC never starts level k+1 while level k has READY unprocessed
    subjobs (the minimal-level rule, modulo readiness)."""
    schedule = lpf_schedule(forest, width)
    steps = [nodes for _, nodes in schedule.job_steps(0)]
    level_of = {}
    for k, nodes in enumerate(steps):
        for v in nodes:
            level_of[int(v)] = k
    replayer = MostChildrenReplayer(steps, forest)
    completed: set[int] = set()
    processed: set[int] = set()
    while not replayer.finished:
        ready_levels = [
            level_of[v]
            for v in range(forest.n)
            if v not in processed
            and all(int(p) in completed for p in forest.parents(v))
        ]
        picks = replayer.select(
            1, lambda v: all(int(p) in completed for p in forest.parents(v))
        )
        if not picks:
            break
        assert level_of[picks[0]] == min(ready_levels)
        processed.update(picks)
        completed = set(processed)
