"""Exhaustive cross-validation of series-parallel recognition.

The Valdes–Tarjan–Lawler characterization: a partial order is
series-parallel iff it contains no induced "N" (a < c, b < c, b < d, and no
other relations among {a, b, c, d}). We brute-force that definition over
the transitive closure and compare against ``is_series_parallel`` for
EVERY dag on up to 5 nodes (all 2^10 = 1024 edge subsets at n = 5).
"""

import itertools

import numpy as np
import pytest

from repro.core import DAG, is_series_parallel


def _closure(dag: DAG) -> np.ndarray:
    n = dag.n
    reach = np.zeros((n, n), dtype=bool)
    for u in dag.topological_order[::-1]:
        kids = dag.children(int(u))
        if kids.size:
            reach[u, kids] = True
            reach[u] |= reach[kids].any(axis=0)
    return reach


def _has_induced_n(reach: np.ndarray) -> bool:
    """Brute-force N detection on the partial order's closure."""
    n = reach.shape[0]

    def rel(x, y):
        if reach[x, y]:
            return "<"
        if reach[y, x]:
            return ">"
        return "|"

    for quad in itertools.permutations(range(n), 4):
        a, b, c, d = quad
        if (
            rel(a, c) == "<"
            and rel(b, c) == "<"
            and rel(b, d) == "<"
            and rel(a, b) == "|"
            and rel(a, d) == "|"
            and rel(c, d) == "|"
        ):
            return True
    return False


def _all_dags(n: int):
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for mask in range(1 << len(pairs)):
        edges = [pairs[k] for k in range(len(pairs)) if mask >> k & 1]
        yield DAG(n, edges)


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_recognizer_matches_n_free_definition_small(n):
    for dag in _all_dags(n):
        expected = not _has_induced_n(_closure(dag))
        assert is_series_parallel(dag) == expected, dag.edge_list()


def test_recognizer_matches_n_free_definition_n5():
    mismatches = []
    for dag in _all_dags(5):
        expected = not _has_induced_n(_closure(dag))
        if is_series_parallel(dag) != expected:
            mismatches.append(dag.edge_list())
    assert not mismatches, mismatches[:5]


@pytest.mark.parametrize("n", [2, 3, 4])
def test_transitive_reduction_exhaustive(n):
    """Reduction preserves reachability and is minimal for every small DAG."""
    for dag in _all_dags(n):
        reduced = dag.transitive_reduction()
        assert np.array_equal(_closure(reduced), _closure(dag))
        # Minimality: removing any edge of the reduction changes closure.
        edges = reduced.edge_list()
        for k in range(len(edges)):
            smaller = DAG(dag.n, edges[:k] + edges[k + 1 :])
            assert not np.array_equal(_closure(smaller), _closure(dag))
