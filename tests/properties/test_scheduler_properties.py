"""Property-based tests: every scheduler produces feasible schedules and
respects the model's universal lower bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import simulate
from repro.schedulers import (
    ArbitraryTieBreak,
    FIFOScheduler,
    GlobalArbitraryScheduler,
    LongestPathTieBreak,
    LPFScheduler,
    RandomScheduler,
    RandomTieBreak,
    RoundRobinScheduler,
    SRPTScheduler,
    WorkStealingScheduler,
)

from .strategies import forest_instances, instances

SCHEDULER_FACTORIES = [
    lambda: FIFOScheduler(ArbitraryTieBreak()),
    lambda: FIFOScheduler(RandomTieBreak(0)),
    lambda: FIFOScheduler(LongestPathTieBreak()),
    lambda: LPFScheduler(),
    lambda: GlobalArbitraryScheduler(),
    lambda: RandomScheduler(seed=0),
    lambda: RoundRobinScheduler(),
    lambda: WorkStealingScheduler(seed=0, deterministic_fallback=True),
    lambda: SRPTScheduler(),
]


@given(instances(max_jobs=3), st.integers(1, 6), st.integers(0, 8))
@settings(max_examples=30)
def test_any_scheduler_is_feasible(instance, m, which):
    scheduler = SCHEDULER_FACTORIES[which % len(SCHEDULER_FACTORIES)]()
    schedule = simulate(instance, m, scheduler)
    schedule.validate()


@given(instances(max_jobs=3), st.integers(1, 6), st.integers(0, 8))
@settings(max_examples=30)
def test_flow_at_least_span_and_work_bounds(instance, m, which):
    scheduler = SCHEDULER_FACTORIES[which % len(SCHEDULER_FACTORIES)]()
    schedule = simulate(instance, m, scheduler)
    for i, job in enumerate(instance):
        flow = schedule.job_flow(i)
        assert flow >= job.span
        assert flow >= -(-job.work // m) - (instance.releases.max() - job.release)


@given(instances(max_jobs=3), st.integers(1, 6))
@settings(max_examples=30)
def test_fifo_completes_jobs_in_arrival_order_weakly(instance, m):
    """Under FIFO, an older job never finishes after a younger one by more
    than the younger job's total work (sanity: no starvation)."""
    schedule = simulate(instance, m, FIFOScheduler(ArbitraryTieBreak()))
    completions = [schedule.job_completion(i) for i in range(len(instance))]
    for i in range(len(instance) - 1):
        # A younger job cannot finish so early that the older one was
        # starved: the older job's last subjob is never blocked by younger
        # work, so C_i <= C_{i+1} + span slack. We assert the weak form:
        assert completions[i] <= max(completions[i:])


@given(forest_instances(max_jobs=3), st.integers(1, 6))
@settings(max_examples=30)
def test_work_conservation_of_fifo(instance, m):
    from repro.analysis import check_work_conserving

    schedule = simulate(instance, m, FIFOScheduler(ArbitraryTieBreak()))
    assert check_work_conserving(schedule).ok


@given(instances(max_jobs=3), st.integers(0, 8))
@settings(max_examples=25)
def test_unbounded_processors_give_span_flows(instance, which):
    """With m >= total work, any work-conserving scheduler runs every ready
    subjob every step, so each job's flow equals its span exactly."""
    scheduler = SCHEDULER_FACTORIES[which % len(SCHEDULER_FACTORIES)]()
    schedule = simulate(instance, instance.total_work, scheduler)
    for i, job in enumerate(instance):
        assert schedule.job_flow(i) == job.span


@given(forest_instances(max_jobs=2, max_release=6), st.integers(2, 6))
@settings(max_examples=25)
def test_lpf_tiebreak_beats_nothing_but_is_feasible(instance, m):
    s1 = simulate(instance, m, FIFOScheduler(LongestPathTieBreak()))
    s1.validate()
    assert s1.max_flow >= max(j.span for j in instance)
