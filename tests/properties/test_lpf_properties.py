"""Property-based tests for Lemma 5.2 / 5.3 / Corollary 5.4."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_lpf_ancestor_structure, head_tail_shape
from repro.schedulers import depth_profile_lower_bound, lpf_flow, lpf_schedule, single_forest_opt

from .strategies import general_dags, out_forests, out_trees


@given(out_forests(), st.integers(1, 8))
def test_lpf_is_optimal_on_forests(forest, m):
    """Corollary 5.4: LPF's flow equals the closed form exactly."""
    assert lpf_flow(forest, m) == single_forest_opt(forest, m)


@given(out_trees(), st.integers(1, 8))
def test_lpf_is_optimal_on_trees(tree, m):
    assert lpf_flow(tree, m) == single_forest_opt(tree, m)


@given(out_forests(), st.integers(2, 8), st.integers(2, 4))
@settings(max_examples=30)
def test_lemma_5_3_alpha_competitive(forest, m, alpha):
    """LPF on fewer processors degrades by at most the processor ratio."""
    width = max(1, m // alpha)
    factor = -(-m // width)  # ceil(m / width)
    assert lpf_flow(forest, width) <= factor * single_forest_opt(forest, m)


@given(out_forests(), st.integers(1, 6))
@settings(max_examples=30)
def test_lemma_5_2_structure(forest, width):
    schedule = lpf_schedule(forest, width)
    assert check_lpf_ancestor_structure(schedule, width).ok


@given(out_forests(), st.integers(1, 6))
@settings(max_examples=30)
def test_tail_is_rectangle(forest, width):
    """Figure 2: after the last idle step, LPF uses all `width` processors
    every step except possibly the final one."""
    schedule = lpf_schedule(forest, width)
    assert head_tail_shape(schedule, width).tail_fully_packed


@given(out_forests(), st.integers(2, 8))
@settings(max_examples=30)
def test_head_ends_within_opt(forest, m):
    """The last idle step of LPF[m/4] falls within OPT[m] time units."""
    width = max(1, m // 4)
    schedule = lpf_schedule(forest, width)
    shape = head_tail_shape(schedule, width)
    assert shape.head_length <= single_forest_opt(forest, m)


@given(general_dags(), st.integers(1, 6))
@settings(max_examples=30)
def test_lpf_not_below_lower_bound_on_dags(dag, m):
    """On general DAGs LPF is not optimal, but can never beat the
    depth-profile lower bound."""
    assert lpf_flow(dag, m) >= depth_profile_lower_bound(dag, m)


@given(out_forests())
def test_one_processor_serializes(forest):
    assert lpf_flow(forest, 1) == forest.work


@given(out_forests())
def test_many_processors_reach_span(forest):
    assert lpf_flow(forest, forest.work) == forest.span
