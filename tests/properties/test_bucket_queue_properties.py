"""Property tests for the priority-kernel fast path.

Two layers of guarantees, pinned bit-for-bit:

1. :class:`BucketReadyQueue` pops in exactly :class:`ReadyHeap` order for
   every pure tie-break with a priority kernel, under arbitrary
   interleaved push/pop sequences (the kernel contract: sorting by
   ``(kernel[v], v)`` equals sorting by ``(key(job, v), v)``).
2. ``simulate`` on the kernel path produces completion arrays identical to
   both the pure-Python reference engine and the kernel-disabled heap
   path, across random trees, the Section 4 adversarial family, and
   packed rectangles with known OPT.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, Job, simulate
from repro.core.simulator import _simulate_reference
from repro.schedulers import (
    ArbitraryTieBreak,
    DepthTieBreak,
    FIFOScheduler,
    LongestPathTieBreak,
    LPFScheduler,
    MostChildrenTieBreak,
    RandomTieBreak,
    ReverseTieBreak,
    make_ready_queue,
)
from repro.schedulers.base import BucketReadyQueue, ReadyHeap
from repro.workloads import build_fifo_adversary, packed_instance

from .strategies import instances, out_forests, out_trees

KERNEL_TIE_BREAKS = [
    ArbitraryTieBreak,
    ReverseTieBreak,
    DepthTieBreak,
    LongestPathTieBreak,
    MostChildrenTieBreak,
]


# ---------------------------------------------------------------------------
# Layer 1: queue-level pop-order identity.
# ---------------------------------------------------------------------------


@given(
    out_forests(max_nodes=40),
    st.integers(0, len(KERNEL_TIE_BREAKS) - 1),
    st.data(),
)
@settings(max_examples=60)
def test_bucket_queue_pops_exactly_heap_order(dag, which, data):
    """Interleave random pushes and pops; the two structures must agree on
    every popped node, at every length, down to an empty queue."""
    job = Job(dag, 0)
    policy = KERNEL_TIE_BREAKS[which]()
    kernel = policy.priority_kernel(job)
    assert kernel is not None
    heap = ReadyHeap(job, policy)
    bucket = BucketReadyQueue(kernel)
    pending = list(range(dag.n))
    while pending or heap:
        if pending and (not heap or data.draw(st.booleans(), label="push?")):
            batch = data.draw(
                st.integers(1, len(pending)), label="batch size"
            )
            chunk, pending = pending[:batch], pending[batch:]
            heap.push_all(chunk)
            bucket.push_all(chunk)
        else:
            k = data.draw(st.integers(1, len(heap)), label="pop count")
            assert bucket.pop_up_to(k) == heap.pop_up_to(k)
        assert len(bucket) == len(heap)
        if heap:
            assert bucket.peek() == heap.peek()


@given(out_trees(max_nodes=30), st.integers(0, len(KERNEL_TIE_BREAKS) - 1))
@settings(max_examples=40)
def test_kernel_order_matches_key_order(dag, which):
    """The kernel contract itself: sorting all nodes by ``(kernel[v], v)``
    equals sorting them by ``(key(job, v), v)``."""
    job = Job(dag, 0)
    policy = KERNEL_TIE_BREAKS[which]()
    kernel = policy.priority_kernel(job)
    by_kernel = sorted(range(dag.n), key=lambda v: (int(kernel[v]), v))
    by_key = sorted(range(dag.n), key=lambda v: (policy.key(job, v), v))
    assert by_kernel == by_key


@given(out_trees(max_nodes=25))
@settings(max_examples=20)
def test_factory_picks_bucket_queue_only_for_pure_kernels(dag):
    job = Job(dag, 0)
    assert isinstance(
        make_ready_queue(job, LongestPathTieBreak()), BucketReadyQueue
    )
    # Random is impure: its key order depends on RNG state, so no kernel.
    assert isinstance(
        make_ready_queue(job, RandomTieBreak(seed=3)), ReadyHeap
    )


# ---------------------------------------------------------------------------
# Layer 2: full-schedule bit-identity on the kernel path.
# ---------------------------------------------------------------------------

SCHEDULER_FACTORIES = {
    "fifo": lambda kernel: FIFOScheduler(use_priority_kernel=kernel),
    "lpf": lambda kernel: LPFScheduler(use_priority_kernel=kernel),
    "mc": lambda kernel: FIFOScheduler(
        MostChildrenTieBreak(), use_priority_kernel=kernel
    ),
}


def _assert_three_way_identical(instance, factory, m):
    kernel = simulate(instance, m, factory(True))
    heap = simulate(instance, m, factory(False))
    ref = _simulate_reference(instance, m, factory(True))
    for i in range(len(instance)):
        assert np.array_equal(kernel.completion[i], heap.completion[i]), (
            f"kernel vs heap diverged on job {i}, m={m}"
        )
        assert np.array_equal(kernel.completion[i], ref.completion[i]), (
            f"kernel vs reference diverged on job {i}, m={m}"
        )
    kernel.validate()


@given(
    instances(max_jobs=3, dag_strategy=out_trees(max_nodes=20)),
    st.integers(1, 6),
)
@settings(max_examples=25, deadline=None)
def test_kernel_path_identical_on_random_trees(instance, m):
    for factory in SCHEDULER_FACTORIES.values():
        _assert_three_way_identical(instance, factory, m)


@given(
    instances(max_jobs=2, dag_strategy=out_forests(max_nodes=20)),
    st.integers(1, 5),
)
@settings(max_examples=20, deadline=None)
def test_kernel_path_identical_on_random_forests(instance, m):
    for factory in SCHEDULER_FACTORIES.values():
        _assert_three_way_identical(instance, factory, m)


@pytest.mark.parametrize("name", sorted(SCHEDULER_FACTORIES))
@pytest.mark.parametrize("m", [2, 4])
def test_kernel_path_identical_on_adversarial_instances(name, m):
    """Section 4 adversarial instances: layered out-trees engineered to
    truncate FIFO mid-frontier — the regime the priority commit covers."""
    adversary = build_fifo_adversary(m, n_jobs=2 * m)
    _assert_three_way_identical(
        adversary.instance, SCHEDULER_FACTORIES[name], m
    )


@pytest.mark.parametrize("name", sorted(SCHEDULER_FACTORIES))
def test_kernel_path_identical_on_packed_rectangles(name):
    packed = packed_instance(8, 6, flow=12, period=4, seed=5)
    for m in (3, 8):
        _assert_three_way_identical(packed.instance, SCHEDULER_FACTORIES[name], m)


def test_kernel_path_engages_on_truncating_workload():
    """Guard against silently testing the no-op: the adversarial runs above
    must actually take kernel-commit steps."""
    from repro.workloads import layered_tree

    inst = Instance(
        [Job(layered_tree([7] * 12, seed=s), 4 * s) for s in range(3)]
    )
    st_ = simulate(inst, 5, LPFScheduler()).engine_stats
    assert st_.kernel_steps > 0
