"""Property-based tests of the Section 6 invariants on random batched
instances (the paper proves these for arbitrary DAG jobs — we generate
general DAGs, not just trees)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_lemma_6_4, check_lemma_6_5
from repro.core import simulate
from repro.schedulers import FIFOScheduler, exact_opt
from repro.workloads import batched_instance

from .strategies import general_dags, out_forests


@st.composite
def batched_with_exact_opt(draw, dag_strategy, max_batches=4):
    """Small batched instance + its exact OPT (via the search solver on the
    single worst batch, which is exact because batch windows are
    disjoint... verified by taking the max over per-batch exact optima)."""
    from repro.core import Instance, Job

    n = draw(st.integers(1, max_batches))
    dags = [draw(dag_strategy) for _ in range(n)]
    m = draw(st.integers(1, 3))
    per_batch = []
    for d in dags:
        opt, _ = exact_opt(Instance([Job(d, 0)]), m)
        per_batch.append(opt)
    period = max(per_batch)
    return batched_instance(dags, period), m, period


@given(batched_with_exact_opt(general_dags(max_nodes=6)))
@settings(max_examples=25)
def test_lemma_6_4_on_random_batched_dags(case):
    instance, m, opt = case
    schedule = simulate(instance, m, FIFOScheduler())
    assert check_lemma_6_4(schedule, opt).ok


@given(batched_with_exact_opt(general_dags(max_nodes=6)))
@settings(max_examples=25)
def test_lemma_6_5_on_random_batched_dags(case):
    instance, m, opt = case
    schedule = simulate(instance, m, FIFOScheduler())
    assert check_lemma_6_5(schedule, opt).ok


@given(batched_with_exact_opt(out_forests(max_nodes=8)))
@settings(max_examples=25)
def test_lemma_6_5_on_random_batched_forests(case):
    instance, m, opt = case
    schedule = simulate(instance, m, FIFOScheduler())
    assert check_lemma_6_5(schedule, opt).ok


@given(batched_with_exact_opt(general_dags(max_nodes=6)))
@settings(max_examples=20)
def test_theorem_6_1_flow_bound(case):
    """FIFO's max flow stays within (log2 tau + 1) * OPT."""
    import math

    from repro.analysis import tau

    instance, m, opt = case
    schedule = simulate(instance, m, FIFOScheduler())
    bound = (int(math.log2(tau(m, opt))) + 1) * opt
    assert schedule.max_flow <= bound


@given(batched_with_exact_opt(general_dags(max_nodes=6)))
@settings(max_examples=20)
def test_z_never_exceeds_opt_before_completion(case):
    """Proposition 6.2 consequence: z_i(t) <= OPT while job i is alive."""
    from repro.analysis import idle_count_curve

    instance, m, opt = case
    schedule = simulate(instance, m, FIFOScheduler())
    horizon = schedule.makespan
    for i in range(len(instance)):
        c_i = schedule.job_completion(i)
        z = idle_count_curve(schedule, i, horizon)
        assert int(z[min(c_i, horizon)]) <= opt
