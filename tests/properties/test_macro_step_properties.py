"""Property suite for chain-run macro-stepping.

Three-way differential testing: for every corpus instance the macro engine
(``simulate`` with a ``macro_step_safe`` scheduler), the per-step vectorized
engine (``use_macro_steps=False``), and the per-node reference loop
(``_simulate_reference``) must produce bit-identical completion arrays —
including under every adversarial/random availability trace and with chaos
hooks attached (which must force the per-step fallback: ``macro_steps == 0``).

A dedicated pure-chain test asserts the macro path actually engages
(``macro_steps > 0``) so the equivalence above is never vacuous.
"""

import numpy as np
import pytest

from repro.core import DAG, Instance, Job, SimulationObserver, simulate
from repro.core.simulator import _simulate_reference
from repro.faults import FaultInjector, availability_suite
from repro.schedulers import (
    FIFOScheduler,
    LPFScheduler,
    RandomTieBreak,
    ReverseTieBreak,
)
from repro.workloads import (
    build_fifo_adversary,
    layered_tree,
    phased_parallel_for,
    random_attachment_tree,
)

# ---------------------------------------------------------------------------
# Corpus builders. Chain-heavy shapes (chains, spiders, caterpillars) exercise
# long macro commits; packed/phased/adversarial/random shapes exercise the
# Δt bounds (arrival gaps, run ends) and the per-step interleavings.
# ---------------------------------------------------------------------------


def _chain(n: int) -> DAG:
    return DAG.from_parents(np.arange(-1, n - 1, dtype=np.int64))


def _spider(legs: int, leg_len: int) -> DAG:
    """A root fanning out into ``legs`` chains of ``leg_len`` nodes."""
    parents = [-1]
    for _ in range(legs):
        parents.append(0)
        for _ in range(leg_len - 1):
            parents.append(len(parents) - 1)
    return DAG.from_parents(np.array(parents, dtype=np.int64))


def _caterpillar(spine: int) -> DAG:
    """A chain with one leaf hanging off every spine node (indegree-1
    children of outdegree-2 parents: chain links everywhere are broken)."""
    parents = list(range(-1, spine - 1))
    parents.extend(range(spine))
    return DAG.from_parents(np.array(parents, dtype=np.int64))


def _pure_chains(seed: int) -> Instance:
    rng = np.random.default_rng(seed)
    return Instance(
        [
            Job(_chain(int(rng.integers(20, 60))), int(rng.integers(0, 3)))
            for _ in range(4)
        ]
    )


def _spiders(seed: int) -> Instance:
    rng = np.random.default_rng(seed + 100)
    return Instance(
        [
            Job(_spider(int(rng.integers(2, 5)), int(rng.integers(8, 25))), 5 * i)
            for i in range(3)
        ]
    )


def _caterpillars(seed: int) -> Instance:
    rng = np.random.default_rng(seed + 200)
    return Instance(
        [Job(_caterpillar(int(rng.integers(10, 30))), int(r))
         for r in rng.integers(0, 10, size=3)]
    )


def _packed(seed: int) -> Instance:
    return Instance(
        [Job(layered_tree([4] * 6, seed=seed + i), 3 * i) for i in range(3)]
    )


def _phased(seed: int) -> Instance:
    return Instance(
        [Job(phased_parallel_for(4, 6, seed=seed), 0),
         Job(_chain(40), 2),
         Job(phased_parallel_for(3, 8, seed=seed + 1), 15)]
    )


def _adversarial(seed: int) -> Instance:
    return build_fifo_adversary(4, 3, seed=seed).instance


def _random_mix(seed: int) -> Instance:
    rng = np.random.default_rng(seed + 300)
    jobs = [
        Job(random_attachment_tree(int(rng.integers(10, 40)), rng),
            int(rng.integers(0, 20)))
        for _ in range(4)
    ]
    jobs.append(Job(_chain(int(rng.integers(30, 80))), int(rng.integers(0, 20))))
    return Instance(jobs)


BUILDERS = (
    _pure_chains,
    _spiders,
    _caterpillars,
    _packed,
    _phased,
    _adversarial,
    _random_mix,
)
CORPUS = [(b, s) for b in BUILDERS for s in range(3)]

SCHEDULERS = {
    "fifo": lambda: FIFOScheduler(),
    "fifo-reverse": lambda: FIFOScheduler(ReverseTieBreak()),
    "lpf": lambda: LPFScheduler(),
}


def _three_way(instance, make_scheduler, m, **kwargs):
    """Assert macro / per-step / reference bit-identity; return the macro
    run's schedule (whose ``engine_stats`` callers may inspect)."""
    macro = simulate(instance, m, make_scheduler(), **kwargs)
    per_step = simulate(
        instance, m, make_scheduler(), use_macro_steps=False, **kwargs
    )
    assert per_step.engine_stats.macro_steps == 0
    ref = _simulate_reference(instance, m, make_scheduler(), **kwargs)
    for i, (a, b, c) in enumerate(
        zip(macro.completion, per_step.completion, ref.completion)
    ):
        assert np.array_equal(a, b), f"macro vs per-step diverged on job {i}"
        assert np.array_equal(a, c), f"macro vs reference diverged on job {i}"
    macro.validate()
    return macro


@pytest.mark.parametrize(
    "builder,seed", CORPUS, ids=[f"{b.__name__[1:]}-{s}" for b, s in CORPUS]
)
@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
def test_three_way_bit_identity(builder, seed, policy):
    instance = builder(seed)
    for m in (2, 8):
        _three_way(instance, SCHEDULERS[policy], m)


def test_macro_path_actually_engages_on_pure_chains():
    """Parallel chains are the macro-stepping sweet spot; if ``macro_steps``
    stayed zero here, every equivalence in this file would be vacuous."""
    inst = Instance([Job(_chain(50), 0) for _ in range(4)])
    macro = _three_way(inst, FIFOScheduler, 4)
    stats = macro.engine_stats
    assert stats.macro_steps > 0
    assert stats.compressed_steps > stats.macro_steps  # Δt > 1 by definition
    assert stats.compressed_steps <= stats.fast_forwarded_steps
    assert stats.steps == macro.makespan


def test_macro_engages_on_priority_kernel_path():
    """LPF keeps encoded (priority-ranked) frontiers; the macro commit must
    fire there too, through the ``prio_enc`` re-encoding."""
    inst = Instance([Job(_spider(8, 40), 0)])
    macro = _three_way(inst, LPFScheduler, 8)
    assert macro.engine_stats.macro_steps > 0


@pytest.mark.parametrize("m", (2, 5))
def test_three_way_identity_under_availability_traces(m):
    """Every adversarial pattern plus seeded random traces: the availability
    change-point bound must keep macro commits inside constant-capacity
    windows, so all three engines still agree bit-for-bit."""
    instance = _random_mix(m)
    chain_inst = Instance([Job(_chain(60), 0), Job(_chain(45), 4)])
    for name, trace in availability_suite(m, 40, n_random=10, seed=m):
        for inst in (instance, chain_inst):
            try:
                _three_way(inst, FIFOScheduler, m, availability=trace)
            except AssertionError as exc:  # pragma: no cover - diagnostics
                raise AssertionError(f"trace {name!r} (m={m}): {exc}") from exc


def test_fault_injector_forces_per_step_fallback():
    """Chaos hooks observe individual steps, so the engine must not macro-
    (or fast-)forward past them — and must still match the reference."""
    inst = Instance([Job(_chain(50), 0), Job(_chain(50), 1)])
    for seed in range(3):
        injector = FaultInjector(
            crash_times=(1, 5), perturb_delivery=True, seed=seed
        )
        macro = simulate(inst, 4, FIFOScheduler(), fault_injector=injector)
        assert macro.engine_stats.macro_steps == 0
        assert macro.engine_stats.fast_forwarded_steps == 0
        injector2 = FaultInjector(
            crash_times=(1, 5), perturb_delivery=True, seed=seed
        )
        ref = _simulate_reference(
            inst, 4, FIFOScheduler(), fault_injector=injector2
        )
        assert all(
            np.array_equal(a, b)
            for a, b in zip(macro.completion, ref.completion)
        )


def test_observer_forces_per_step_fallback():
    class Counter(SimulationObserver):
        def __init__(self):
            self.n = 0

        def on_step(self, t, selection, state):
            self.n += 1

    inst = Instance([Job(_chain(40), 0)])
    obs = Counter()
    s = simulate(inst, 2, FIFOScheduler(), observer=obs)
    assert s.engine_stats.macro_steps == 0
    assert obs.n == s.makespan  # every step observed, none compressed away


def test_impure_tiebreak_never_macro_steps():
    inst = Instance([Job(_chain(40), 0)])
    s = simulate(inst, 2, FIFOScheduler(RandomTieBreak(seed=3)))
    assert s.engine_stats.macro_steps == 0


def test_use_macro_steps_flag_is_a_pure_toggle():
    """``use_macro_steps=False`` must change counters only, never the
    schedule; ``True`` cannot force macro past an ineligible contract."""
    inst = Instance([Job(_chain(50), 0), Job(_spider(3, 20), 2)])
    on = simulate(inst, 4, FIFOScheduler())
    off = simulate(inst, 4, FIFOScheduler(), use_macro_steps=False)
    assert on.engine_stats.macro_steps > 0
    assert off.engine_stats.macro_steps == 0
    assert all(
        np.array_equal(a, b) for a, b in zip(on.completion, off.completion)
    )
    forced = simulate(
        inst, 4, FIFOScheduler(RandomTieBreak(seed=1)), use_macro_steps=True
    )
    assert forced.engine_stats.macro_steps == 0
