"""Four-way kernel-backend parity suite.

The backend registry's contract is that the backend choice is invisible to
correctness: for every instance in the corpus, the engine running on the
backend under test — batched *and* per-instance — must produce completion
arrays bit-identical to the numpy reference backend *and* to the per-node
reference loop (``_simulate_reference``). That is the four-way check:

1. ``simulate_batch`` under ``REPRO_BACKEND=<backend>``;
2. per-instance ``simulate`` under ``REPRO_BACKEND=<backend>``;
3. per-instance ``simulate`` under ``REPRO_BACKEND=numpy``;
4. the per-node reference loop (backend-free by construction).

The suite is parametrized over ``REPRO_BACKEND``; the numba parameter
skips (not fails) when numba is not installed, so the full matrix only
runs in the optional backend-numba CI job. Kernel-level parity tests pin
each numba translation against the numpy reference on random inputs.

SRPT rides along with FIFO/LPF here because its vectorized path exercises
the dynamic-job-order fast path plus the ``merge_sorted`` kernel — and its
heap path is the retained bit-identity reference for that contract.
"""

import numpy as np
import pytest

from repro.core import simulate, simulate_batch
from repro.core.kernels import available_backends, get_backend
from repro.core.simulator import _simulate_reference, engine_stats_snapshot
from repro.schedulers import FIFOScheduler, LPFScheduler, ReverseTieBreak
from repro.schedulers.srpt import SRPTScheduler

from .test_batch_properties import (
    _adversarial_batch,
    _chains_batch,
    _ragged_batch,
    _random_batch,
)

_HAS_NUMBA = "numba" in available_backends()

BACKENDS = [
    "numpy",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            not _HAS_NUMBA, reason="numba not installed in this environment"
        ),
    ),
]

BUILDERS = (_chains_batch, _random_batch, _adversarial_batch, _ragged_batch)
CORPUS = [(b, s) for b in BUILDERS for s in range(2)]

SCHEDULERS = {
    "fifo": lambda: FIFOScheduler(),
    "fifo-reverse": lambda: FIFOScheduler(ReverseTieBreak()),
    "lpf": lambda: LPFScheduler(),
    "srpt": lambda: SRPTScheduler(),
}


@pytest.fixture
def backend_env(monkeypatch):
    """Set ``REPRO_BACKEND`` for one test and restore registry state."""
    from repro.core import kernels

    def activate(name: str) -> None:
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, name)
        kernels._reset_for_testing()

    yield activate
    kernels._reset_for_testing()


def _four_way(instances, make_scheduler, m, backend, activate):
    activate(backend)
    batched = simulate_batch(instances, m, make_scheduler())
    under_test = [simulate(inst, m, make_scheduler()) for inst in instances]
    activate("numpy")
    numpy_runs = [simulate(inst, m, make_scheduler()) for inst in instances]
    refs = [_simulate_reference(inst, m, make_scheduler()) for inst in instances]
    for b, inst in enumerate(instances):
        legs = (
            batched[b].completion,
            under_test[b].completion,
            numpy_runs[b].completion,
            refs[b].completion,
        )
        for i, (w, x, y, z) in enumerate(zip(*legs)):
            assert np.array_equal(w, x), (
                f"[{backend}] batched vs per-instance: instance {b} job {i}"
            )
            assert np.array_equal(x, y), (
                f"[{backend}] backend vs numpy reference: instance {b} job {i}"
            )
            assert np.array_equal(y, z), (
                f"[{backend}] numpy vs per-node reference: instance {b} job {i}"
            )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "builder,seed", CORPUS, ids=[f"{b.__name__[1:]}-{s}" for b, s in CORPUS]
)
@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
def test_four_way_bit_identity(builder, seed, policy, backend, backend_env):
    batch = builder(seed)
    for m in (1, 3, 8):
        _four_way(batch, SCHEDULERS[policy], m, backend, backend_env)


@pytest.mark.parametrize("backend", BACKENDS)
def test_stats_record_active_backend(backend, backend_env):
    """EngineStats carries the backend that actually served the run."""
    backend_env(backend)
    inst = _random_batch(7)[0]
    before = engine_stats_snapshot()
    simulate(inst, 4, FIFOScheduler())
    delta = engine_stats_snapshot().delta(before)
    assert delta.backend == get_backend().name
    assert sum(delta.kernel_dispatches.values()) > 0


# ---------------------------------------------------------------------------
# Kernel-level parity: each numba translation against the numpy reference.
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not _HAS_NUMBA, reason="numba not installed")
@pytest.mark.parametrize("seed", range(5))
def test_kernel_level_parity(seed):
    from repro.core.kernels import numpy_backend
    from repro.core.kernels.numba_backend import load

    compiled = load()
    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 200))
    # A random forest CSR: each node's children listed in ascending order.
    parents = np.array(
        [-1] + [int(rng.integers(0, i)) for i in range(1, n)], dtype=np.int64
    )
    order = np.argsort(parents[1:], kind="stable")
    indices = (order + 1).astype(np.int64)
    counts = np.bincount(parents[1:], minlength=n)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    nodes = np.unique(rng.integers(0, n, size=rng.integers(1, n + 1)))

    np.testing.assert_array_equal(
        compiled["csr_children"](indptr, indices, nodes),
        numpy_backend.csr_children(indptr, indices, nodes),
    )

    comp_a = np.zeros(n, dtype=np.int64)
    comp_b = np.zeros(n, dtype=np.int64)
    kids_a = compiled["commit_frontier"](indptr, indices, comp_a, nodes, 7)
    kids_b = numpy_backend.commit_frontier(indptr, indices, comp_b, nodes, 7)
    np.testing.assert_array_equal(kids_a, kids_b)
    np.testing.assert_array_equal(comp_a, comp_b)

    steps = rng.integers(1, 30, size=n).astype(np.int64)
    bound = int(rng.integers(1, 40))
    assert compiled["chain_min_dt"](steps, nodes, bound) == (
        numpy_backend.chain_min_dt(steps, nodes, bound)
    )

    a = np.unique(rng.integers(0, 1000, size=rng.integers(0, 30)))
    b = np.unique(rng.integers(1000, 2000, size=rng.integers(0, 30)))
    np.testing.assert_array_equal(
        compiled["merge_sorted"](a, b), numpy_backend.merge_sorted(a, b)
    )

    n_seg = int(rng.integers(1, 8))
    lens = rng.integers(0, 6, size=n_seg)
    seg = np.concatenate(([0], np.cumsum(lens))).astype(np.int64)
    fkeys = rng.permutation(int(seg[-1])).astype(np.int64)
    k = np.array([int(rng.integers(0, ln + 1)) for ln in lens], dtype=np.int64)
    ta, ra = compiled["batch_take"](fkeys, seg, k, int(k.sum()))
    tb, rb = numpy_backend.batch_take(fkeys, seg, k, int(k.sum()))
    np.testing.assert_array_equal(ta, tb)
    np.testing.assert_array_equal(ra, rb)

    # arena_gather: ragged prefix take over a resident frontier buffer.
    np.testing.assert_array_equal(
        compiled["arena_gather"](fkeys, seg[:-1].copy(), k, int(k.sum())),
        numpy_backend.arena_gather(fkeys, seg[:-1].copy(), k, int(k.sum())),
    )


@pytest.mark.skipif(not _HAS_NUMBA, reason="numba not installed")
@pytest.mark.parametrize("seed", range(5))
def test_arena_commit_parity(seed):
    """arena_commit mutates fbuf in place; both backends must leave the
    whole buffer (merged frontiers + untouched slack) byte-identical."""
    from repro.core.kernels import numpy_backend
    from repro.core.kernels.numba_backend import load

    compiled = load()
    rng = np.random.default_rng(seed + 100)
    n_slots = int(rng.integers(1, 6))
    slot_cap = 12
    offsets = (np.arange(n_slots) * slot_cap).astype(np.int64)
    sizes = rng.integers(0, 6, size=n_slots).astype(np.int64)
    fbuf = np.zeros(n_slots * slot_cap, dtype=np.int64)
    pool = rng.permutation(10_000)
    cursor = 0
    new_per_slot = []
    for s in range(n_slots):
        total = int(sizes[s]) + int(rng.integers(0, 5))
        draw = np.sort(pool[cursor : cursor + total]).astype(np.int64)
        cursor += total
        fbuf[offsets[s] : offsets[s] + sizes[s]] = draw[: sizes[s]]
        new_per_slot.append(rng.permutation(draw[sizes[s] :]))
    touched = [s for s in range(n_slots) if new_per_slot[s].size]
    if not touched:
        touched = [0]  # degenerate: commit an empty batch to slot 0
    slots = np.array(touched, dtype=np.int64)
    seg = np.concatenate(
        ([0], np.cumsum([new_per_slot[s].size for s in touched]))
    ).astype(np.int64)
    new_keys = (
        np.concatenate([new_per_slot[s] for s in touched])
        if seg[-1]
        else np.empty(0, dtype=np.int64)
    )
    fbuf_a, fbuf_b = fbuf.copy(), fbuf.copy()
    compiled["arena_commit"](fbuf_a, offsets, sizes.copy(), slots, seg, new_keys)
    numpy_backend.arena_commit(fbuf_b, offsets, sizes.copy(), slots, seg, new_keys)
    np.testing.assert_array_equal(fbuf_a, fbuf_b)


def test_registry_covers_arena_kernels():
    """The registry's kernel roster includes the arena kernels and the
    numpy reference implements every name natively."""
    from repro.core.kernels import KERNEL_NAMES

    backend = get_backend("numpy")
    assert "arena_gather" in KERNEL_NAMES
    assert "arena_commit" in KERNEL_NAMES
    assert backend.supported == frozenset(KERNEL_NAMES)
    for kname in KERNEL_NAMES:
        assert callable(getattr(backend, kname))


@pytest.mark.skipif(not _HAS_NUMBA, reason="numba not installed")
@pytest.mark.parametrize("seed", range(3))
def test_macro_fill_parity(seed):
    """macro_fill on a genuine chain layout (runs of length >= dt)."""
    from repro.core.kernels import numpy_backend
    from repro.core.kernels.numba_backend import load

    compiled = load()
    rng = np.random.default_rng(seed + 50)
    # Build disjoint chains laid out contiguously in run_nodes.
    run_lens = rng.integers(3, 12, size=5)
    run_nodes = np.arange(int(run_lens.sum()), dtype=np.int64)
    node_index = run_nodes.copy()  # identity layout
    steps_to_end = np.concatenate(
        [np.arange(ln, 0, -1, dtype=np.int64) for ln in run_lens]
    )
    starts = np.concatenate(([0], np.cumsum(run_lens)[:-1]))
    gids = starts.astype(np.int64)  # the chain heads
    dt = 2
    comp_a = np.zeros(run_nodes.size, dtype=np.int64)
    comp_b = np.zeros(run_nodes.size, dtype=np.int64)
    na, ta = compiled["macro_fill"](
        run_nodes, node_index, steps_to_end, comp_a, gids, 10, dt
    )
    nb, tb = numpy_backend.macro_fill(
        run_nodes, node_index, steps_to_end, comp_b, gids, 10, dt
    )
    np.testing.assert_array_equal(na, nb)
    np.testing.assert_array_equal(ta, tb)
    np.testing.assert_array_equal(comp_a, comp_b)
