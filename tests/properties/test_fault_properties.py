"""Property suite for fluctuating allocations and fault injection.

Acceptance-level properties, checked over 200+ availability traces
(every adversarial pattern plus seeded random traces, across several
machine sizes):

* **Lemma 5.5** — Most-Children replay of a packed LPF tail never idles a
  granted processor, whatever the trace does;
* **engine integrity** — under every trace, with and without an attached
  :class:`~repro.faults.FaultInjector` (scheduler crash/restart plus
  perturbed ready delivery), the vectorized engine produces a schedule
  that validates and is bit-identical to the reference loop.
"""

import numpy as np
import pytest

from repro.analysis.invariants import check_mc_busy, head_tail_shape
from repro.core import Instance, Job, simulate
from repro.core.simulator import _simulate_reference
from repro.faults import FaultInjector, availability_suite
from repro.schedulers import FIFOScheduler, LPFScheduler, lpf_schedule
from repro.workloads.random_trees import random_attachment_tree

#: Machine sizes × random traces per size; together with the 7 adversarial
#: patterns per size this yields 4 * (7 + 45) = 208 distinct traces.
MS = (2, 3, 5, 8)
N_RANDOM = 45
HORIZON = 40


def _suite(m: int) -> list[tuple[str, object]]:
    return list(availability_suite(m, HORIZON, n_random=N_RANDOM, seed=m))


def _instance(m: int) -> Instance:
    rng = np.random.default_rng(100 + m)
    jobs = [
        Job(random_attachment_tree(int(rng.integers(10, 25)), rng),
            int(rng.integers(0, 6)))
        for _ in range(2)
    ]
    return Instance(jobs)


def test_trace_count_meets_acceptance_floor():
    assert sum(len(_suite(m)) for m in MS) >= 200


@pytest.mark.parametrize("m", MS)
def test_mc_replay_never_idles_granted_processors(m):
    """Lemma 5.5 (work-conserving form): replaying a packed LPF tail keeps
    every granted processor busy under every one of the suite's traces."""
    dag = random_attachment_tree(30, np.random.default_rng(m))
    lpf = lpf_schedule(dag, m)
    shape = head_tail_shape(lpf, m)
    steps = [nodes for _, nodes in lpf.job_steps(0)]
    tail = steps[shape.head_length:]
    assert tail, "fixture tree must produce a non-empty packed tail"
    tail_work = sum(len(nodes) for nodes in tail)
    for name, trace in _suite(m):
        # Enough allocation steps to finish the tail even if every explicit
        # step granted zero: HORIZON (possible zeros) + tail work (each
        # granted step completes at least one node when work remains).
        assert check_mc_busy(tail, dag, trace.prefix(HORIZON + tail_work)), (
            f"MC replay idled a granted processor under trace {name!r} "
            f"(m={m})"
        )


@pytest.mark.parametrize("m", MS)
def test_engine_matches_reference_and_validates_under_every_trace(m):
    instance = _instance(m)
    for name, trace in _suite(m):
        fast = simulate(instance, m, FIFOScheduler(), availability=trace)
        fast.validate()
        ref = _simulate_reference(
            instance, m, FIFOScheduler(), availability=trace
        )
        assert all(
            np.array_equal(a, b)
            for a, b in zip(fast.completion, ref.completion)
        ), f"engine/reference divergence under trace {name!r} (m={m})"


@pytest.mark.parametrize("m", (2, 5))
@pytest.mark.parametrize("scheduler_cls", (FIFOScheduler, LPFScheduler))
def test_injected_faults_keep_engines_bit_identical(m, scheduler_cls):
    """Crash/restart plus perturbed delivery under adversarial traces: the
    run must still validate and the engines must still agree bit-for-bit
    (a subset of sizes keeps the quadratic-cost reference loop affordable;
    the chaos suite covers the randomized long tail)."""
    instance = _instance(m)
    for i, (name, trace) in enumerate(_suite(m)[:12]):
        # Early crash steps: every run dispatches at t=1 (some makespans
        # under generous random traces are below 10).
        injector = FaultInjector(
            crash_times=(1, 4 + i % 5),
            perturb_delivery=True,
            seed=1000 * m + i,
        )
        fast = simulate(
            instance, m, scheduler_cls(),
            availability=trace, fault_injector=injector,
        )
        fast.validate()
        assert injector.crashes, f"no crash fired under {name!r}"
        ref = _simulate_reference(
            instance, m, scheduler_cls(),
            availability=trace, fault_injector=injector,
        )
        assert all(
            np.array_equal(a, b)
            for a, b in zip(fast.completion, ref.completion)
        ), f"faulted engine/reference divergence under {name!r} (m={m})"
