"""Property-based tests for DAG invariants."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DAG

from .strategies import general_dags, out_forests, out_trees


@given(general_dags())
def test_depth_of_roots_is_one(dag):
    assert bool(np.all(dag.depth[dag.roots] == 1))


@given(general_dags())
def test_height_of_leaves_is_one(dag):
    assert bool(np.all(dag.height[dag.leaves] == 1))


@given(general_dags())
def test_edge_increases_depth_and_decreases_height(dag):
    for u, v in dag.edge_list():
        assert dag.depth[v] >= dag.depth[u] + 1
        assert dag.height[u] >= dag.height[v] + 1


@given(general_dags())
def test_span_consistency(dag):
    """max depth == max height == longest path length."""
    assert dag.span == int(dag.depth.max()) == int(dag.height.max())


@given(general_dags())
def test_depth_plus_height_bounded_by_span(dag):
    # Each node lies on a path of depth + height - 1 nodes <= span.
    assert bool(np.all(dag.depth + dag.height - 1 <= dag.span))


@given(general_dags())
def test_deeper_than_profile_monotone(dag):
    profile = dag.deeper_than_profile
    assert bool(np.all(np.diff(profile) <= 0))
    assert profile[0] <= dag.work
    assert profile[-1] == 0


@given(general_dags())
def test_deeper_than_zero_counts_non_roots(dag):
    assert dag.deeper_than(1) == dag.n - int((dag.depth == 1).sum())


@given(general_dags())
def test_topological_order_respects_edges(dag):
    pos = np.empty(dag.n, dtype=np.int64)
    pos[dag.topological_order] = np.arange(dag.n)
    for u, v in dag.edge_list():
        assert pos[u] < pos[v]


@given(general_dags())
def test_indegree_outdegree_sum_to_edges(dag):
    assert int(dag.indegree.sum()) == dag.n_edges
    assert int(dag.outdegree.sum()) == dag.n_edges


@given(out_trees())
def test_out_tree_predicates(tree):
    assert tree.is_out_tree
    assert tree.is_out_forest
    assert tree.roots.size == 1
    assert tree.n_edges == tree.n - 1


@given(out_forests())
def test_forest_parent_array_roundtrip(forest):
    rebuilt = DAG.from_parents(forest.parent_array())
    assert rebuilt == forest


@given(out_forests())
def test_forest_components_partition_nodes(forest):
    seen = set()
    for root in forest.roots:
        comp = set(forest.descendants(int(root)).tolist()) | {int(root)}
        assert not (seen & comp)
        seen |= comp
    assert seen == set(range(forest.n))


@given(general_dags(), st.integers(0, 30))
def test_deeper_than_matches_profile(dag, d):
    if d <= dag.span:
        assert dag.deeper_than(d) == int(dag.deeper_than_profile[d])
    else:
        assert dag.deeper_than(d) == 0


@given(out_trees(max_nodes=15))
def test_induced_subgraph_of_executed_prefix_is_forest(tree):
    """Removing a downward-closed 'executed' set from an out-tree leaves an
    out-forest (the guess-and-double restart relies on this)."""
    # Execute nodes in topological order up to half.
    order = tree.topological_order
    k = tree.n // 2
    remaining = np.sort(order[k:])
    if remaining.size == 0:
        return
    sub, ids = tree.induced_subgraph(remaining)
    assert sub.is_out_forest
    assert sub.n == remaining.size


@given(general_dags(max_nodes=12))
def test_union_preserves_structure(dag):
    union, offsets = DAG.disjoint_union([dag, dag])
    assert union.n == 2 * dag.n
    assert union.span == dag.span
    assert union.deeper_than(0) == 2 * dag.deeper_than(0)


@given(out_trees(max_nodes=12), out_trees(max_nodes=12))
def test_series_span_adds(a, b):
    assert a.series(b).span == a.span + b.span


@given(out_trees(max_nodes=12), out_trees(max_nodes=12))
def test_parallel_span_maxes(a, b):
    assert a.parallel(b).span == max(a.span, b.span)
