"""Hypothesis configuration for the property suite."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,  # simulations have variable per-example cost
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
