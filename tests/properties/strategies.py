"""Hypothesis strategies for DAGs, trees, and instances."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core import DAG, Instance, Job

__all__ = [
    "out_trees",
    "out_forests",
    "general_dags",
    "jobs",
    "instances",
    "forest_instances",
]


@st.composite
def out_trees(draw, min_nodes: int = 1, max_nodes: int = 25) -> DAG:
    """A rooted out-tree: node i > 0 attaches to a drawn parent < i."""
    n = draw(st.integers(min_nodes, max_nodes))
    parents = [-1]
    for i in range(1, n):
        parents.append(draw(st.integers(0, i - 1)))
    return DAG.from_parents(np.array(parents, dtype=np.int64))


@st.composite
def out_forests(draw, min_nodes: int = 1, max_nodes: int = 25) -> DAG:
    """An out-forest: node i is a root or attaches to a parent < i."""
    n = draw(st.integers(min_nodes, max_nodes))
    parents = [-1]
    for i in range(1, n):
        parents.append(draw(st.integers(-1, i - 1)))
    return DAG.from_parents(np.array(parents, dtype=np.int64))


@st.composite
def general_dags(draw, min_nodes: int = 1, max_nodes: int = 15) -> DAG:
    """A general DAG: edges only from lower to higher ids (acyclic by
    construction), each possible edge present with drawn probability."""
    n = draw(st.integers(min_nodes, max_nodes))
    edges = []
    for v in range(1, n):
        k = draw(st.integers(0, min(3, v)))
        parents = draw(
            st.lists(st.integers(0, v - 1), min_size=k, max_size=k, unique=True)
        )
        edges.extend((p, v) for p in parents)
    return DAG(n, edges)


@st.composite
def jobs(draw, dag_strategy=None, max_release: int = 20) -> Job:
    dag = draw(dag_strategy if dag_strategy is not None else general_dags())
    release = draw(st.integers(0, max_release))
    return Job(dag, release)


@st.composite
def instances(
    draw, min_jobs: int = 1, max_jobs: int = 4, dag_strategy=None, max_release: int = 20
) -> Instance:
    n = draw(st.integers(min_jobs, max_jobs))
    return Instance(
        [draw(jobs(dag_strategy=dag_strategy, max_release=max_release)) for _ in range(n)]
    )


def forest_instances(min_jobs: int = 1, max_jobs: int = 4, max_release: int = 20):
    return instances(
        min_jobs=min_jobs,
        max_jobs=max_jobs,
        dag_strategy=out_forests(),
        max_release=max_release,
    )
