"""Property-based tests: renderers and fairness metrics agree with the
schedules they summarize."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fairness_report, flow_percentile
from repro.core import simulate
from repro.schedulers import FIFOScheduler
from repro.viz import render_gantt, render_profile

from .strategies import instances


@given(instances(max_jobs=3), st.integers(1, 5))
@settings(max_examples=25)
def test_gantt_glyph_counts_match_usage(instance, m):
    """Each rendered column contains exactly usage[t] non-idle glyphs."""
    schedule = simulate(instance, m, FIFOScheduler())
    out = render_gantt(schedule, show_axis=False, idle_char=".")
    rows = [line.split("|")[1] for line in out.splitlines()]
    usage = schedule.usage_profile()
    for col in range(schedule.makespan):
        glyphs = sum(1 for row in rows if row[col] != ".")
        assert glyphs == int(usage[col + 1])


@given(instances(max_jobs=3), st.integers(1, 5))
@settings(max_examples=25)
def test_profile_counts_match_usage(instance, m):
    schedule = simulate(instance, m, FIFOScheduler())
    out = render_profile(schedule, collapse=False)
    usage = schedule.usage_profile()
    for line, t in zip(out.splitlines(), range(1, schedule.makespan + 1)):
        assert line.rstrip().endswith(str(int(usage[t])))


@given(instances(max_jobs=4), st.integers(1, 5))
@settings(max_examples=25)
def test_fairness_report_consistency(instance, m):
    schedule = simulate(instance, m, FIFOScheduler())
    report = fairness_report(schedule)
    flows = schedule.flows
    assert report.max_flow == int(flows.max()) == schedule.max_flow
    assert report.total_flow == int(flows.sum())
    assert report.mean_flow == float(flows.mean())
    assert 0 < report.jain_index <= 1 + 1e-12
    assert report.max_stretch >= 1.0 - 1e-12  # nothing beats its own bound
    assert report.p95_flow <= report.max_flow + 1e-12
    assert flow_percentile(schedule, 0) <= flow_percentile(schedule, 100)


@given(instances(max_jobs=2), st.integers(2, 5))
@settings(max_examples=20)
def test_single_flow_value_gives_jain_one(instance, m):
    """If all jobs happen to have equal flows, Jain's index is exactly 1."""
    schedule = simulate(instance, m, FIFOScheduler())
    report = fairness_report(schedule)
    if len(set(schedule.flows.tolist())) == 1:
        assert report.jain_index == 1.0
