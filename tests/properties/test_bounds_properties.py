"""Property-based cross-validation: lower bounds vs the exact solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, Job, simulate
from repro.schedulers import (
    FIFOScheduler,
    LongestPathTieBreak,
    depth_profile_lower_bound,
    exact_opt,
    max_flow_lower_bound,
    single_forest_opt,
)

from .strategies import general_dags, instances, out_forests


@given(instances(max_jobs=3, dag_strategy=general_dags(max_nodes=5), max_release=6))
@settings(max_examples=25)
def test_lower_bound_never_exceeds_exact_opt(instance):
    for m in (1, 2):
        opt, witness = exact_opt(instance, m)
        assert max_flow_lower_bound(instance, m) <= opt
        witness.validate()
        assert witness.max_flow == opt


@given(out_forests(max_nodes=10), st.integers(1, 3))
@settings(max_examples=25)
def test_exact_solver_agrees_with_closed_form_on_single_forest(forest, m):
    instance = Instance([Job(forest, 0)])
    opt, _ = exact_opt(instance, m)
    assert opt == single_forest_opt(forest, m)


@given(general_dags(max_nodes=8), st.integers(1, 3))
@settings(max_examples=25)
def test_depth_profile_bound_is_achievable_or_below(dag, m):
    instance = Instance([Job(dag, 0)])
    opt, _ = exact_opt(instance, m)
    assert depth_profile_lower_bound(dag, m) <= opt


@given(instances(max_jobs=3, dag_strategy=general_dags(max_nodes=5), max_release=6))
@settings(max_examples=20)
def test_no_online_algorithm_beats_exact(instance):
    m = 2
    opt, _ = exact_opt(instance, m)
    fifo = simulate(instance, m, FIFOScheduler(LongestPathTieBreak()))
    assert fifo.max_flow >= opt


@given(general_dags(max_nodes=8))
@settings(max_examples=25)
def test_bounds_monotone_in_m(dag):
    values = [depth_profile_lower_bound(dag, m) for m in (1, 2, 3, 4)]
    assert values == sorted(values, reverse=True)
