"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DAG, Instance, Job, chain, complete_kary_tree, star


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_tree() -> DAG:
    """Root 0 -> {1, 2}; 2 -> {3, 4}; 4 -> 5. Span 4, work 6."""
    return DAG(6, [(0, 1), (0, 2), (2, 3), (2, 4), (4, 5)])


@pytest.fixture
def diamond() -> DAG:
    """A general (non-forest) DAG: 0 -> {1, 2} -> 3."""
    return DAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def two_job_instance(small_tree) -> Instance:
    return Instance(
        [Job(small_tree, 0, "early"), Job(star(3), 2, "late")]
    )


@pytest.fixture
def kary() -> DAG:
    return complete_kary_tree(2, 4)  # 15 nodes, span 4


@pytest.fixture
def chain5() -> DAG:
    return chain(5)
