"""Documentation correctness: the README's Python snippets actually run.

Parses fenced ``python`` code blocks out of README.md and executes the
ones that import from :mod:`repro` — stale documentation fails CI.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def _python_blocks() -> list[str]:
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    return [b for b in blocks if "repro" in b]


def test_readme_has_python_examples():
    assert _python_blocks(), "README lost its code examples"


@pytest.mark.parametrize("idx", range(len(_python_blocks())))
def test_readme_python_block_executes(idx):
    block = _python_blocks()[idx]
    namespace: dict = {}
    exec(compile(block, f"README.md[block {idx}]", "exec"), namespace)


def test_readme_mentions_every_experiment():
    text = README.read_text()
    from repro.experiments import EXPERIMENTS

    for exp_id in EXPERIMENTS:
        assert exp_id in text, f"{exp_id} missing from README results table"


def test_design_doc_lists_every_bench_target():
    design = (README.parent / "DESIGN.md").read_text()
    import re as _re

    bench_dir = README.parent / "benchmarks"
    for bench in bench_dir.glob("test_e*.py"):
        if not _re.match(r"test_e\d", bench.name):
            continue  # microbenchmarks are not experiment regenerations
        assert bench.name in design, f"{bench.name} missing from DESIGN.md index"


def test_doc_cited_test_paths_exist():
    """Docs cite test files as evidence; those files must exist."""
    root = README.parent
    cited = set()
    for doc in [root / "docs" / "paper_map.md", root / "EXPERIMENTS.md",
                root / "DESIGN.md", root / "CONTRIBUTING.md"]:
        for match in re.findall(r"`(tests/[\w/]+\.py)", doc.read_text()):
            cited.add(match)
        for match in re.findall(r"`(benchmarks/[\w/]+\.py)", doc.read_text()):
            cited.add(match)
    missing = [c for c in sorted(cited) if not (root / c).exists()]
    assert not missing, missing
