"""Observer-based invariants of Algorithm 𝒜's processor budget.

The Section 5.3 analysis relies on structural facts about 𝒜's schedule;
these tests watch real executions and assert them step by step:

* head phases (the verbatim LPF replays) never occupy more than
  ``2·(m // α)`` processors — at most two cohorts are ever inside their
  head window;
* total usage never exceeds ``m`` (engine-enforced, asserted anyway);
* cohort enrollments are spaced at least ``half`` apart.
"""

import numpy as np
import pytest

from repro.core import Instance, Job, SimulationObserver, simulate
from repro.schedulers import (
    GeneralOutTreeScheduler,
    PhasedOutForestScheduler,
    SemiBatchedOutTreeScheduler,
)
from repro.workloads import (
    galton_watson_tree,
    random_attachment_tree,
    semi_batched_instance,
    series_of_trees,
)


class HeadUsageObserver(SimulationObserver):
    """Counts, per step, how many scheduled subjobs belong to cohorts that
    are inside their head window."""

    def __init__(self, scheduler):
        self.scheduler = scheduler
        self.max_head_usage = 0
        self.max_total = 0

    def on_step(self, t, selection, state):
        self.max_total = max(self.max_total, len(selection))
        heads = 0
        for cohort in self.scheduler._cohorts:
            if cohort.release <= t < cohort.release + cohort.head_steps:
                members = {m.job_id for m in cohort.members}
                heads += sum(1 for job_id, _ in selection if job_id in members)
        self.max_head_usage = max(self.max_head_usage, heads)


@pytest.mark.parametrize("alpha", [3, 4, 8])
def test_semibatched_head_budget(alpha):
    rng = np.random.default_rng(0)
    m = 16
    dags = [random_attachment_tree(60, rng) for _ in range(6)]
    inst = semi_batched_instance(dags, half_period=8)
    sched = SemiBatchedOutTreeScheduler(opt=16, alpha=alpha)
    obs = HeadUsageObserver(sched)
    result = simulate(inst, m, sched, observer=obs, max_steps=200_000)
    result.validate()
    group = m // alpha
    assert obs.max_head_usage <= 2 * group
    assert obs.max_total <= m


def test_general_head_budget_with_restarts():
    rng = np.random.default_rng(1)
    m = 16
    jobs = [
        Job(random_attachment_tree(80, rng), int(r))
        for r in (0, 3, 9, 20, 21)
    ]
    inst = Instance(jobs)
    sched = GeneralOutTreeScheduler(alpha=4, beta=4, initial_guess=1)
    obs = HeadUsageObserver(sched)
    result = simulate(inst, m, sched, observer=obs, max_steps=400_000)
    result.validate()
    assert sched.n_restarts >= 1  # the scenario exercises restarts
    assert obs.max_head_usage <= 2 * (m // 4)


def test_phased_head_budget():
    rng = np.random.default_rng(2)
    m = 16
    jobs = [Job(series_of_trees(3, 40, rng), int(r)) for r in (0, 5, 11)]
    inst = Instance(jobs)
    sched = PhasedOutForestScheduler(alpha=4, beta=8)
    obs = HeadUsageObserver(sched)
    result = simulate(inst, m, sched, observer=obs, max_steps=400_000)
    result.validate()
    assert obs.max_head_usage <= 2 * (m // 4)


def test_cohort_spacing_at_least_half():
    """Enrollment boundaries within one epoch are >= half apart."""
    rng = np.random.default_rng(3)
    m = 16
    jobs = [Job(galton_watson_tree(50, rng), int(r)) for r in (0, 2, 5, 13)]
    inst = Instance(jobs)
    sched = GeneralOutTreeScheduler(alpha=4, beta=8, initial_guess=8)
    result = simulate(inst, m, sched, max_steps=400_000)
    result.validate()
    assert sched.n_restarts == 0  # single epoch in this scenario
    releases = sorted(c.release for c in sched._cohorts)
    assert all(b - a >= sched.half for a, b in zip(releases, releases[1:]))
