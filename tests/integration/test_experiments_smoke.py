"""Integration: every registered experiment runs at reduced scale and its
claims hold (the benchmarks run them at full scale)."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment

from repro.experiments.registry import SCALE_PRESETS

SMOKE = "smoke"


@pytest.mark.parametrize("experiment_id", sorted(SCALE_PRESETS[SMOKE]))
def test_experiment_runs_and_claims_hold(experiment_id):
    result = run_experiment(experiment_id, scale=SMOKE)
    assert result.experiment_id == experiment_id
    assert result.rows or result.figures
    failed = result.failed_claims()
    assert not failed, [c.description for c in failed]


def test_registry_covers_design_doc_index():
    assert len(EXPERIMENTS) == 17


def test_smoke_preset_covers_every_experiment():
    from repro.experiments import SCALE_PRESETS

    assert set(SCALE_PRESETS["smoke"]) == set(EXPERIMENTS)


def test_unknown_scale_rejected():
    with pytest.raises(KeyError, match="unknown scale"):
        run_experiment("E1", scale="galactic")


def test_render_is_printable():
    result = run_experiment("E1")
    out = result.render()
    assert "paper artifact" in out and "claims:" in out
