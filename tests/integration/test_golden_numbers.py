"""Golden-number regression tests.

Every generator and scheduler in the library is deterministic given its
seed, so the headline measurements are exact integers. Pinning them guards
against silent behavioural regressions (a change that alters these numbers
is either a bug or a deliberate semantic change that must update this file
and EXPERIMENTS.md together).
"""

import pytest

from repro.core import Instance, Job, simulate
from repro.schedulers import (
    ArbitraryTieBreak,
    FIFOScheduler,
    LongestPathTieBreak,
    exact_opt,
    lpf_flow,
    single_forest_opt,
)
from repro.workloads import build_fifo_adversary, packed_instance, quicksort_tree


class TestAdversarialGolden:
    """The Theorem 4.2 family (EXPERIMENTS.md E3 table)."""

    @pytest.mark.parametrize(
        "m,expected_flow,expected_opt",
        [(8, 25, 9), (16, 62, 17), (32, 151, 33)],
    )
    def test_fifo_flow_and_witness(self, m, expected_flow, expected_opt):
        adv = build_fifo_adversary(m, n_jobs=4 * m)
        assert adv.fifo_max_flow == expected_flow
        assert adv.opt_upper_bound == expected_opt

    def test_total_nodes_m8(self):
        adv = build_fifo_adversary(8, n_jobs=32)
        assert adv.instance.total_work == 2159

    def test_lpf_tiebreak_collapses_exactly_to_opt(self):
        adv = build_fifo_adversary(16, n_jobs=64)
        s = simulate(adv.instance, 16, FIFOScheduler(LongestPathTieBreak()))
        assert s.max_flow == 17


class TestLpfGolden:
    def test_quicksort_tree_seeded(self):
        dag = quicksort_tree(100, seed=1)
        assert (dag.n, dag.span) == (100, 14)
        assert single_forest_opt(dag, 4) == 27
        assert lpf_flow(dag, 4) == 27

    def test_known_counterexample_values(self):
        from repro.experiments.e11_dag_shaping_gap import known_counterexample

        dag, m = known_counterexample()
        assert lpf_flow(dag, m) == 5
        opt, _ = exact_opt(Instance([Job(dag, 0)]), m)
        assert opt == 4


class TestPackedGolden:
    def test_packed_witness_and_fifo(self):
        pk = packed_instance(m=8, n_jobs=6, flow=12, period=4, seed=0)
        assert pk.instance.total_work == 256
        assert pk.witness.max_flow == 12
        fifo = simulate(pk.instance, 8, FIFOScheduler(ArbitraryTieBreak()))
        assert fifo.max_flow == 12


class TestFigure1Golden:
    def test_packing_flows(self):
        from repro.experiments.e1_packing import figure1_dag

        dag = figure1_dag()
        assert lpf_flow(dag, 3) == 4
        assert single_forest_opt(dag, 3) == 4
