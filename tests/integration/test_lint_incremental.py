"""The incremental lint cache: correctness under edits, byte-identical
warm runs, and cross-file invalidation through summary dependencies."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import lint_paths
from repro.lint.registry import RULES

#: Small file-set with cross-module call chains and a mix of clean and
#: violating files; index-addressable so hypothesis can pick edit subsets.
_FILES = {
    "pkg/__init__.py": "",
    "pkg/rand_util.py": (
        "import numpy as np\n"
        "def draw():\n"
        "    return np.random.rand()\n"
    ),
    "pkg/helpers.py": (
        "from .rand_util import draw\n"
        "def jitter():\n"
        "    return draw()\n"
    ),
    "pkg/sched.py": (
        "from .helpers import jitter\n"
        "class BatchScheduler:\n"
        "    batch_capable = True\n"
        "    def frontier_priorities(self, instance):\n"
        "        return None\n"
        "    def select(self, m, state):\n"
        "        return jitter()\n"
    ),
    "pkg/clean.py": "def add(a, b):\n    return a + b\n",
    "pkg/sloppy.py": (
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except:\n"
        "        return None\n"
    ),
}

#: Replacement bodies an edit can swap in (index-addressable).
_EDITS = [
    "def touched():\n    return 1\n",  # wipes prior content/violations
    "x = 1\n# touched\n",
    (
        "import numpy as np\n"
        "def fresh_violation():\n"
        "    return np.random.rand()\n"
    ),
]


def _write_tree(root, files):
    for rel, content in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(content)
    return root / "pkg"


def _report_blob(report) -> str:
    return json.dumps(report.to_json(), sort_keys=True)


def test_warm_run_is_byte_identical_and_reuses_cache(tmp_path):
    pkg = _write_tree(tmp_path, _FILES)
    cache = tmp_path / "cache"
    cold = lint_paths([pkg], cache_dir=cache)
    assert (cache / "cache.json").is_file()
    warm = lint_paths([pkg], cache_dir=cache)
    assert _report_blob(cold) == _report_blob(warm)
    assert cold.violations, "fixture unexpectedly clean"


def test_editing_distant_helper_invalidates_dependents(tmp_path):
    """sched.py never changes, but fixing the RNG read two modules away
    must clear sched.py's cached RPR310 finding on the next warm run."""
    pkg = _write_tree(tmp_path, _FILES)
    cache = tmp_path / "cache"
    cold = lint_paths([pkg], cache_dir=cache)
    assert any(v.rule_id == "RPR310" for v in cold.violations)

    (pkg / "rand_util.py").write_text("def draw():\n    return 0.5\n")
    warm = lint_paths([pkg], cache_dir=cache)
    assert not any(v.rule_id == "RPR310" for v in warm.violations)
    # And the invalidation is precise: the unrelated sloppy.py finding
    # came straight from cache and is still present.
    assert any(v.rule_id == "RPR202" for v in warm.violations)


def test_breaking_a_helper_creates_findings_in_unchanged_files(tmp_path):
    files = dict(_FILES)
    files["pkg/rand_util.py"] = "def draw():\n    return 0.5\n"
    pkg = _write_tree(tmp_path, files)
    cache = tmp_path / "cache"
    cold = lint_paths([pkg], cache_dir=cache)
    assert not any(v.rule_id == "RPR310" for v in cold.violations)

    # Re-introduce the RNG read: the cached (clean) sched.py entry must
    # be re-linted because its recorded summary dependency changed.
    (pkg / "rand_util.py").write_text(_FILES["pkg/rand_util.py"])
    warm = lint_paths([pkg], cache_dir=cache)
    assert any(v.rule_id == "RPR310" for v in warm.violations)


def test_cache_survives_syntax_errors(tmp_path):
    pkg = _write_tree(tmp_path, _FILES)
    cache = tmp_path / "cache"
    (pkg / "broken.py").write_text("def broken(:\n")
    cold = lint_paths([pkg], cache_dir=cache)
    warm = lint_paths([pkg], cache_dir=cache)
    assert _report_blob(cold) == _report_blob(warm)
    assert any(v.rule_id == "RPR999" for v in warm.violations)
    # Repairing the file clears the syntax finding.
    (pkg / "broken.py").write_text("def fixed():\n    return 1\n")
    repaired = lint_paths([pkg], cache_dir=cache)
    assert not any(v.rule_id == "RPR999" for v in repaired.violations)


def test_select_runs_do_not_poison_the_cache(tmp_path):
    pkg = _write_tree(tmp_path, _FILES)
    cache = tmp_path / "cache"
    full_cold = lint_paths([pkg], cache_dir=cache)
    # A --select style partial run must not overwrite full findings.
    lint_paths([pkg], rules=[RULES["RPR202"]], cache_dir=cache)
    full_warm = lint_paths([pkg], cache_dir=cache)
    assert _report_blob(full_cold) == _report_blob(full_warm)


@settings(max_examples=15, deadline=None)
@given(
    edits=st.lists(
        st.tuples(
            st.sampled_from(sorted(k for k in _FILES if k != "pkg/__init__.py")),
            st.integers(min_value=0, max_value=len(_EDITS) - 1),
        ),
        max_size=4,
    )
)
def test_warm_cache_always_matches_cold_run(tmp_path_factory, edits):
    """Property: after ANY sequence of file edits, a warm incremental run
    reports exactly what a from-scratch run over the same tree reports."""
    root = tmp_path_factory.mktemp("prop")
    pkg = _write_tree(root, _FILES)
    cache = root / "cache"
    lint_paths([pkg], cache_dir=cache)  # populate

    files = dict(_FILES)
    for rel, edit_index in edits:
        files[rel] = _EDITS[edit_index]
        (root / rel).write_text(files[rel])

    warm = lint_paths([pkg], cache_dir=cache)
    cold = lint_paths([pkg])  # no cache: ground truth
    assert _report_blob(warm) == _report_blob(cold)
