"""Seed robustness: experiment claims hold across multiple seeds, not just
the default one (guards the headline tables against seed luck)."""

import pytest

from repro.experiments import repeat_experiment
from repro.experiments.e5_mc_busy import run as run_e5
from repro.experiments.e11_dag_shaping_gap import run as run_e11
from repro.experiments.e14_norm_tradeoff import run as run_e14


def test_repeat_experiment_aggregates():
    results, rates = repeat_experiment(
        run_e5, seeds=[0, 1, 2], width=4, n_nodes=60, trials=2
    )
    assert len(results) == 3
    assert rates  # one entry per claim
    assert all(0 <= v <= 1 for v in rates.values())


@pytest.mark.parametrize(
    "run_fn,params",
    [
        (run_e5, dict(width=4, n_nodes=60, trials=2)),
        (run_e11, dict(trials=10)),
        (run_e14, dict(m=8, small=16, disparities=(4, 16))),
    ],
)
def test_claims_hold_across_seeds(run_fn, params):
    _, rates = repeat_experiment(run_fn, seeds=[0, 7, 1234], **params)
    fragile = {d: r for d, r in rates.items() if r < 1.0}
    assert not fragile, fragile
