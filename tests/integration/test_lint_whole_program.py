"""Whole-program lint: interprocedural findings across a fixture package.

The acceptance fixture for the RPR31x family: a scheduler that declares
``batch_capable = True`` while its ``select()`` reaches an unseeded RNG
read two helper calls deep, in *other modules*. No per-file rule can see
the contradiction; the whole-program analyzer must flag it at the
declaration site and name the full call chain in the message.
"""

import json

import pytest

from repro.lint import lint_paths
from repro.lint.registry import RULES


def _write_fixture(root):
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    # Hop 2: the actual unseeded RNG read.
    (pkg / "rand_util.py").write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def draw():\n"
        "    return np.random.rand()\n"
    )
    # Hop 1: an innocent-looking forwarder in a second module.
    (pkg / "helpers.py").write_text(
        "from .rand_util import draw\n"
        "\n"
        "\n"
        "def jitter():\n"
        "    return draw()\n"
    )
    # The contract declaration, two modules away from the RNG read.
    (pkg / "sched.py").write_text(
        "from .helpers import jitter\n"
        "\n"
        "\n"
        "class BatchScheduler:\n"
        "    batch_capable = True\n"
        "\n"
        "    def frontier_priorities(self, instance):\n"
        "        return None\n"
        "\n"
        "    def select(self, m, state):\n"
        "        return jitter()\n"
    )
    return pkg


@pytest.fixture()
def fixture_pkg(tmp_path):
    return _write_fixture(tmp_path)


def test_hidden_rng_two_calls_deep_fires_rpr310(fixture_pkg):
    report = lint_paths([fixture_pkg], rules=[RULES["RPR310"]])
    hits = [v for v in report.violations if v.rule_id == "RPR310"]
    assert len(hits) == 1, [v.format() for v in report.violations]
    (violation,) = hits
    # Flagged at the scheduler's `select`, not at the distant RNG read.
    assert violation.path.endswith("sched.py")
    # The message names the complete helper chain.
    assert (
        "BatchScheduler.select -> pkg.helpers.jitter -> pkg.rand_util.draw"
        in violation.message
    )
    assert "batch_capable" in violation.message


def test_full_ruleset_flags_both_layers(fixture_pkg):
    report = lint_paths([fixture_pkg])
    by_rule = {}
    for violation in report.violations:
        by_rule.setdefault(violation.rule_id, []).append(violation)
    # The distant read itself trips the per-file rule in rand_util.py ...
    assert any(v.path.endswith("rand_util.py") for v in by_rule["RPR001"])
    # ... and the contract contradiction is pinned to the scheduler.
    assert any(v.path.endswith("sched.py") for v in by_rule["RPR310"])


def test_fixing_the_distant_helper_clears_the_finding(fixture_pkg):
    (fixture_pkg / "rand_util.py").write_text(
        "def draw():\n    return 0.5\n"
    )
    report = lint_paths([fixture_pkg], rules=[RULES["RPR310"]])
    assert report.violations == []


def test_serial_parallel_cached_reports_are_bit_identical(fixture_pkg, tmp_path):
    cache_dir = tmp_path / "cache"
    serial = lint_paths([fixture_pkg])
    parallel = lint_paths([fixture_pkg], jobs=2)
    cold = lint_paths([fixture_pkg], cache_dir=cache_dir)
    warm = lint_paths([fixture_pkg], cache_dir=cache_dir)
    blobs = {
        json.dumps(r.to_json(), sort_keys=True)
        for r in (serial, parallel, cold, warm)
    }
    assert len(blobs) == 1, "serial/parallel/cold/warm reports differ"
    assert serial.violations, "fixture unexpectedly clean"


def test_restrict_reports_only_named_files(fixture_pkg):
    sched = str(fixture_pkg / "sched.py")
    report = lint_paths([fixture_pkg], restrict={sched})
    assert report.files_checked == 1
    assert report.violations, "whole-program finding lost under restrict"
    assert all(v.path == sched for v in report.violations)
    # The interprocedural finding survives scoping: the unchanged helper
    # modules still feed the call graph.
    assert any(v.rule_id == "RPR310" for v in report.violations)
