"""Chaos tests: end-to-end fault recovery across the harness.

Covers the acceptance scenario — a sweep that hits an injected worker
crash, a hang exceeding the task timeout, and a corrupted cache/journal
entry still completes (via retry, pool rebuild, or serial degradation),
and a killed-then-resumed sweep matches the uninterrupted run exactly.
"""

import os
import time

import pytest

from repro.experiments import (
    SupervisorConfig,
    repeat_experiment,
    run_supervised,
    shutdown_shared_pool,
)
from repro.experiments.e5_mc_busy import run as e5_run
from repro.faults import run_chaos_trials

E5_PARAMS = dict(width=4, n_nodes=40, trials=1)


def _misbehave_once(task):
    """Crash hard, hang, or corrupt its own journal entry — once each,
    gated on per-fault sentinel files — then succeed on retry."""
    sentinel_dir, mode, x = task
    sentinel = os.path.join(sentinel_dir, f"{mode}-{x}")
    if mode == "crash" and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    if mode == "hang" and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        time.sleep(60)
    return 10 * x


def _interrupt_at(task):
    """Raise KeyboardInterrupt for the marked seed, once (sentinel-gated)."""
    run_fn, params, seed = task
    sentinel = params["sentinel"]
    if seed == params["kill_at"] and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        raise KeyboardInterrupt
    return run_fn(seed=seed, width=params["width"], n_nodes=params["n_nodes"],
                  trials=params["trials"])


def _e5_task(seed, sentinel, kill_at):
    return (
        e5_run,
        dict(sentinel=sentinel, kill_at=kill_at, **E5_PARAMS),
        seed,
    )


@pytest.fixture(autouse=True)
def _fresh_pool():
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


class TestMixedFaultSweep:
    def test_sweep_completes_through_crash_and_hang(self, tmp_path):
        config = SupervisorConfig(
            task_timeout=2.0, max_retries=3, max_pool_rebuilds=4,
            backoff_base=0.001, backoff_cap=0.002,
        )
        tasks = [
            (str(tmp_path), mode, x)
            for x, mode in enumerate(["ok", "crash", "ok", "hang", "ok"])
        ]
        out = run_supervised(
            _misbehave_once, tasks, n_workers=2, config=config
        )
        assert out.results == [0, 10, 20, 30, 40]
        # At least one forced rebuild; a single one may recover both faults
        # (killing the crashed pool also reclaims the sleeping worker, whose
        # sentinel then lets the retry succeed).
        assert out.pool_rebuilds >= 1
        assert not out.degraded_to_serial


class TestKilledThenResumedSweep:
    def test_resumed_sweep_matches_uninterrupted_run(self, tmp_path):
        seeds = [0, 1, 2, 3]
        baseline, baseline_rates = repeat_experiment(
            e5_run, seeds, **E5_PARAMS
        )

        sentinel = str(tmp_path / "killed")
        ckpt = tmp_path / "journal"
        keys = [f"e5|seed={s}" for s in seeds]
        tasks = [_e5_task(s, sentinel, kill_at=2) for s in seeds]

        out = run_supervised(
            _interrupt_at, tasks, n_workers=2,
            keys=keys, checkpoint_dir=ckpt,
        )
        assert out.interrupted
        assert 0 < out.completed < len(seeds)

        # Second invocation: the sentinel exists, so the killed seed runs
        # normally; earlier seeds come from the journal.
        out2 = run_supervised(
            _interrupt_at, tasks, n_workers=2,
            keys=keys, checkpoint_dir=ckpt,
        )
        assert not out2.interrupted
        assert out2.resumed == out.completed
        resumed_renders = [r.render() for r in out2.results]
        assert resumed_renders == [r.render() for r in baseline]

    def test_repeat_experiment_checkpoint_roundtrip(self, tmp_path):
        seeds = [0, 1]
        plain, plain_rates = repeat_experiment(e5_run, seeds, **E5_PARAMS)
        first, first_rates = repeat_experiment(
            e5_run, seeds, n_workers=2, checkpoint_dir=tmp_path, **E5_PARAMS
        )
        second, second_rates = repeat_experiment(
            e5_run, seeds, n_workers=2, checkpoint_dir=tmp_path, **E5_PARAMS
        )
        assert first_rates == plain_rates == second_rates
        assert [r.render() for r in first] == [r.render() for r in plain]
        assert [r.render() for r in second] == [r.render() for r in plain]

    def test_resumed_stats_are_not_double_folded(self, tmp_path):
        from repro.core import engine_stats_snapshot

        seeds = [0, 1]
        repeat_experiment(
            e5_run, seeds, n_workers=2, checkpoint_dir=tmp_path, **E5_PARAMS
        )
        before = engine_stats_snapshot()
        repeat_experiment(
            e5_run, seeds, n_workers=2, checkpoint_dir=tmp_path, **E5_PARAMS
        )
        delta = engine_stats_snapshot().delta(before)
        assert delta.steps == 0  # fully resumed: no engine effort re-counted


class TestRunAllCheckpoint:
    def test_run_all_killed_then_resumed_matches(self, tmp_path, monkeypatch):
        from repro.experiments import run_all

        only = ["E1", "E2"]
        baseline = run_all("smoke", only=only)
        # Seed the journal with a partial sweep (E1 only), as a killed run
        # would leave it, then resume the full sweep.
        partial = tmp_path / "journal"
        run_all("smoke", only=["E1"], checkpoint_dir=partial)
        resumed = run_all("smoke", only=only, checkpoint_dir=partial)
        assert [r.render() for r in resumed] == [r.render() for r in baseline]


class TestChaosSuite:
    def test_chaos_trials_pass_and_exercise_faults(self):
        report = run_chaos_trials(seed=20260806, trials=2)
        assert report.ok, report.failures
        assert report.traces_checked >= 2 * 9 * 4
        assert report.injected_crashes > 0
        assert report.perturbed_steps > 0
        assert report.mc_replays > 0
        assert str(report.seed) in report.summary()

    def test_chaos_unknown_pattern_rejected(self):
        with pytest.raises(KeyError):
            run_chaos_trials(seed=1, trials=1, patterns=["no-such-pattern"])

    def test_chaos_cli_roundtrip(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--seed", "5", "--trials", "1",
                     "--fault-trace", "blackout"]) == 0
        out = capsys.readouterr().out
        assert "chaos[seed=5]" in out and "OK" in out
