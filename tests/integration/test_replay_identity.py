"""Integration: the adversary co-simulation is bit-identical to the general
engine replaying the frozen instance — the load-bearing property that makes
the Theorem 4.2 reproduction trustworthy."""

import numpy as np
import pytest

from repro.core import simulate
from repro.schedulers import ArbitraryTieBreak, FIFOScheduler
from repro.workloads import build_fifo_adversary


@pytest.mark.parametrize("m", [2, 3, 4, 8, 16, 32])
def test_replay_identity_across_machine_sizes(m):
    adv = build_fifo_adversary(m, n_jobs=2 * m)
    replay = simulate(adv.instance, m, FIFOScheduler(ArbitraryTieBreak()))
    for a, b in zip(replay.completion, adv.fifo_schedule.completion):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("n_layers", [1, 3, 8])
def test_replay_identity_with_custom_layers(n_layers):
    adv = build_fifo_adversary(8, n_jobs=10, n_layers=n_layers)
    replay = simulate(adv.instance, 8, FIFOScheduler(ArbitraryTieBreak()))
    for a, b in zip(replay.completion, adv.fifo_schedule.completion):
        assert np.array_equal(a, b)


def test_witness_and_fifo_agree_on_work():
    adv = build_fifo_adversary(8, n_jobs=12)
    assert adv.opt_witness.instance is adv.instance
    # Both schedules run every subjob exactly once.
    for a, b in zip(adv.opt_witness.completion, adv.fifo_schedule.completion):
        assert a.shape == b.shape
        assert (a > 0).all() and (b > 0).all()
