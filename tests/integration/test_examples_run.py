"""Integration: the example scripts execute end to end (small arguments)."""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *argv: str, capsys=None):
    old = sys.argv
    sys.argv = [script, *argv]
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old


def test_examples_directory_has_quickstart_plus_scenarios():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "LPF on 3 processors" in out
    assert "max flow" in out


def test_quicksort_workload(capsys):
    _run("quicksort_workload.py", "--m", "8", "--jobs", "6", "--elements", "40")
    out = capsys.readouterr().out
    assert "scheduler" in out and "ratio_vs_LB" in out


def test_adversarial_fifo(capsys):
    _run("adversarial_fifo.py", "--jobs-per-m", "2")
    out = capsys.readouterr().out
    assert "ratio>=" in out
    assert "OPT" in out


def test_batched_server(capsys):
    _run("batched_server.py", "--m", "8", "--batches", "5")
    out = capsys.readouterr().out
    assert "lemma6.4" in out and "lemma6.5" in out


def test_shaping_demo(capsys):
    _run("shaping_demo.py", "--m", "8", "--nodes", "80")
    out = capsys.readouterr().out
    assert "HOLDS" in out


def test_fairness_tradeoff(capsys):
    _run("fairness_tradeoff.py", "--m", "8", "--small", "16", "--disparity", "8")
    out = capsys.readouterr().out
    assert "SRPT" in out and "big_job_flow" in out


def test_phased_pipeline(capsys):
    _run("phased_pipeline.py", "--m", "8", "--jobs", "4")
    out = capsys.readouterr().out
    assert "PhasedA" in out and "segments" in out


def test_cluster_report(capsys):
    _run("cluster_report.py", "--m", "8", "--jobs", "6")
    out = capsys.readouterr().out
    assert "utilization" in out and "per-job flows:" in out


def test_lemma55_gap_demo(capsys):
    _run("lemma55_gap_demo.py")
    out = capsys.readouterr().out
    assert "literal Lemma 5.5 claim fails" in out
    assert "work-conserving busyness: HOLDS" in out
