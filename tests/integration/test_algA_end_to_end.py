"""Integration: Algorithm 𝒜 end-to-end on the instance families the paper
cares about, checking both feasibility and the headline competitive shape."""

import numpy as np
import pytest

from repro.analysis import OptReference, run_case
from repro.core import simulate
from repro.schedulers import (
    GeneralOutTreeScheduler,
    SemiBatchedOutTreeScheduler,
)
from repro.workloads import (
    build_fifo_adversary,
    packed_instance,
    poisson_instance,
    random_attachment_tree,
    semi_batched_instance,
)


class TestSemiBatchedOnPacked:
    @pytest.mark.parametrize("m", [8, 16])
    def test_constant_ratio_on_packed(self, m):
        flow = 2 * m
        pk = packed_instance(m, n_jobs=8, flow=flow, period=flow // 2, seed=0)
        alg = SemiBatchedOutTreeScheduler(opt=flow, alpha=4)
        case = run_case(
            pk.instance,
            m,
            alg,
            OptReference.witness(pk.witness),
            max_steps=pk.instance.horizon_hint * 8 + 1000 * flow,
        )
        assert case.ratio <= 6.0  # far inside the 129 guarantee

    def test_all_flows_within_guarantee(self):
        m, flow = 8, 16
        pk = packed_instance(m, n_jobs=10, flow=flow, period=flow // 2, seed=1)
        alg = SemiBatchedOutTreeScheduler(opt=flow, alpha=4)
        schedule = simulate(
            pk.instance, m, alg, max_steps=pk.instance.horizon_hint * 8 + 1000 * flow
        )
        schedule.validate()
        assert int(schedule.flows.max()) <= alg.flow_guarantee()


class TestAdversarialSeparation:
    def test_algA_beats_fifo_at_scale(self):
        """On the adversarial family at m=32, 𝒜 stays constant while
        arbitrary FIFO exceeds it — the paper's separation, end to end."""
        m = 32
        adv = build_fifo_adversary(m, n_jobs=4 * m)
        alg = SemiBatchedOutTreeScheduler(opt=2 * (m + 1), alpha=4)
        s = simulate(
            adv.instance, m, alg, max_steps=adv.instance.horizon_hint * 8 + 10_000
        )
        s.validate()
        ratio_a = s.max_flow / adv.opt_upper_bound
        assert ratio_a <= 4.5
        assert adv.ratio_lower_bound > ratio_a


class TestGeneralEndToEnd:
    def test_poisson_stream(self):
        rng = np.random.default_rng(0)
        dags = [random_attachment_tree(64, rng) for _ in range(12)]
        inst = poisson_instance(dags, rate=0.1, seed=rng)
        alg = GeneralOutTreeScheduler(alpha=4, beta=8)
        s = simulate(inst, 16, alg, max_steps=inst.horizon_hint * 16 + 50_000)
        s.validate()
        lb = OptReference.lower(inst, 16).value
        assert s.max_flow <= 40 * lb  # loose sanity envelope

    def test_semibatched_wrapper_consistency(self):
        """General 𝒜 run on an already semi-batched instance behaves
        comparably to the semi-batched core given the right guess."""
        rng = np.random.default_rng(1)
        dags = [random_attachment_tree(48, rng) for _ in range(6)]
        inst = semi_batched_instance(dags, half_period=16)
        core = SemiBatchedOutTreeScheduler(opt=32, alpha=4)
        s_core = simulate(inst, 8, core, max_steps=inst.horizon_hint * 8 + 50_000)
        wrapper = GeneralOutTreeScheduler(alpha=4, beta=8, initial_guess=16)
        s_wrap = simulate(inst, 8, wrapper, max_steps=inst.horizon_hint * 8 + 50_000)
        s_core.validate()
        s_wrap.validate()
        assert s_wrap.max_flow <= 4 * s_core.max_flow + 64
