"""End-to-end test of the ``repro lint`` CLI as a real subprocess.

Builds a temp package seeded with one violation per rule id, runs
``python -m repro lint`` over it, and asserts on the exit code, the set of
rule ids reported, and the JSON payload shape — the same contract the CI
lint job relies on.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.registry import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

EXPECTED_RULE_IDS = sorted(rule.rule_id for rule in all_rules())


def run_lint(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )


@pytest.fixture(scope="module")
def seeded_package(tmp_path_factory) -> Path:
    """A temp package with exactly one file per rule, each file seeded with
    that rule's own ``bad_example``."""
    pkg = tmp_path_factory.mktemp("lintpkg") / "seeded"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for rule in all_rules():
        name = f"bad_{rule.rule_id.lower()}.py"
        (pkg / name).write_text(rule.bad_example)
    return pkg


def test_clean_tree_exits_zero(tmp_path):
    (tmp_path / "fine.py").write_text("import numpy as np\n\nX = np.arange(3)\n")
    proc = run_lint(str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violations" in proc.stdout


def test_seeded_package_fires_every_rule(seeded_package):
    proc = run_lint(str(seeded_package), "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr

    payload = json.loads(proc.stdout)
    assert payload["version"] == 2
    # __init__.py plus one seeded file per rule.
    assert payload["files_checked"] == 1 + len(EXPECTED_RULE_IDS)
    assert payload["suppressed"] == 0
    assert payload["baselined"] == 0
    assert payload["violation_count"] == len(payload["violations"])
    for entry in payload["violations"]:
        assert set(entry) == {"path", "line", "col", "rule_id", "message"}
        assert entry["line"] >= 1
    fired = {entry["rule_id"] for entry in payload["violations"]}
    assert fired == set(EXPECTED_RULE_IDS), (
        f"missing: {set(EXPECTED_RULE_IDS) - fired}; extra: "
        f"{fired - set(EXPECTED_RULE_IDS)}"
    )
    # Each seeded file must be flagged by the rule it was seeded with.
    for rule_id in EXPECTED_RULE_IDS:
        expected_file = f"bad_{rule_id.lower()}.py"
        assert any(
            entry["rule_id"] == rule_id and entry["path"].endswith(expected_file)
            for entry in payload["violations"]
        ), f"{rule_id} did not fire on {expected_file}"


def test_text_format_reports_locations(seeded_package):
    proc = run_lint(str(seeded_package))
    assert proc.returncode == 1
    assert "RPR202" in proc.stdout
    # path:line:col: prefix on every violation line.
    body = proc.stdout.strip().splitlines()
    assert all(":" in line for line in body[:-1])
    assert "violations in" in body[-1]


def test_select_runs_only_requested_rule(seeded_package):
    proc = run_lint(str(seeded_package), "--select", "RPR202", "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert {e["rule_id"] for e in payload["violations"]} == {"RPR202"}


def test_select_unknown_rule_is_usage_error(seeded_package):
    proc = run_lint(str(seeded_package), "--select", "RPR777")
    assert proc.returncode == 2
    assert "RPR777" in proc.stderr


def test_missing_path_is_usage_error(tmp_path):
    proc = run_lint(str(tmp_path / "does_not_exist.txt"))
    assert proc.returncode == 2


def test_reasoned_suppression_exits_zero(tmp_path):
    (tmp_path / "suppressed.py").write_text(
        "try:\n"
        "    x = 1\n"
        "except:  # repro-lint: disable=RPR202 (fixture exercises the pragma)\n"
        "    x = 0\n"
    )
    proc = run_lint(str(tmp_path), "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["violations"] == []
    assert payload["suppressed"] == 1


def test_reasonless_suppression_fails_with_rpr000(tmp_path):
    (tmp_path / "suppressed.py").write_text(
        "try:\n"
        "    x = 1\n"
        "except:  # repro-lint: disable=RPR202\n"
        "    x = 0\n"
    )
    proc = run_lint(str(tmp_path), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert {e["rule_id"] for e in payload["violations"]} == {"RPR000", "RPR202"}


def test_list_rules_prints_catalog():
    proc = run_lint("--list-rules")
    assert proc.returncode == 0
    for rule_id in EXPECTED_RULE_IDS:
        assert rule_id in proc.stdout


def test_repo_src_tree_is_clean():
    """Dogfood: the shipped source tree passes its own linter."""
    proc = run_lint(str(SRC))
    assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# Incremental/parallel/scoped flags
# ----------------------------------------------------------------------

BAD_EXCEPT = (
    "try:\n"
    "    x = 1\n"
    "except:\n"
    "    pass\n"
)


def run_lint_in(cwd: Path, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


def _git(cwd: Path, *argv: str) -> None:
    subprocess.run(
        ["git", *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
        timeout=60,
        env={
            **os.environ,
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.invalid",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.invalid",
        },
    )


def test_changed_scopes_report_to_git_diff(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "old.py").write_text(BAD_EXCEPT)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    (pkg / "new.py").write_text(BAD_EXCEPT)

    proc = run_lint_in(tmp_path, "pkg", "--changed", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    # Only the untracked file is reported; the committed violation is not.
    assert payload["files_checked"] == 1
    assert all(v["path"].endswith("new.py") for v in payload["violations"])

    full = run_lint_in(tmp_path, "pkg", "--format", "json")
    assert json.loads(full.stdout)["files_checked"] == 3


def test_baseline_accepts_existing_debt_but_not_new(tmp_path):
    (tmp_path / "legacy.py").write_text(BAD_EXCEPT)
    record = run_lint_in(tmp_path, ".", "--update-baseline")
    assert record.returncode == 0, record.stdout + record.stderr
    assert (tmp_path / "lint-baseline.json").is_file()

    clean = run_lint_in(tmp_path, ".", "--format", "json")
    assert clean.returncode == 0, clean.stdout + clean.stderr
    payload = json.loads(clean.stdout)
    assert payload["violations"] == []
    assert payload["baselined"] >= 1

    (tmp_path / "fresh.py").write_text(BAD_EXCEPT)
    dirty = run_lint_in(tmp_path, ".", "--format", "json")
    assert dirty.returncode == 1
    payload = json.loads(dirty.stdout)
    assert all(v["path"].endswith("fresh.py") for v in payload["violations"])


def test_jobs_and_cache_reports_match_serial(tmp_path, seeded_package):
    serial = run_lint_in(tmp_path, str(seeded_package), "--format", "json")
    parallel = run_lint_in(
        tmp_path, str(seeded_package), "--jobs", "4", "--format", "json"
    )
    warm = run_lint_in(tmp_path, str(seeded_package), "--format", "json")
    assert serial.stdout == parallel.stdout == warm.stdout
    assert (tmp_path / ".repro-lint-cache" / "cache.json").is_file()


def test_no_cache_writes_nothing(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    proc = run_lint_in(tmp_path, ".", "--no-cache")
    assert proc.returncode == 0
    assert not (tmp_path / ".repro-lint-cache").exists()


def test_sarif_output_is_valid_json(tmp_path, seeded_package):
    proc = run_lint_in(
        tmp_path,
        str(seeded_package),
        "--format",
        "sarif",
        "--output",
        str(tmp_path / "out.sarif"),
    )
    assert proc.returncode == 1
    log = json.loads((tmp_path / "out.sarif").read_text())
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert {r["ruleId"] for r in run["results"]} >= {"RPR202", "RPR310"}
