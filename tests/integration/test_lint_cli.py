"""End-to-end test of the ``repro lint`` CLI as a real subprocess.

Builds a temp package seeded with one violation per rule id, runs
``python -m repro lint`` over it, and asserts on the exit code, the set of
rule ids reported, and the JSON payload shape — the same contract the CI
lint job relies on.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.registry import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

EXPECTED_RULE_IDS = sorted(rule.rule_id for rule in all_rules())


def run_lint(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


@pytest.fixture(scope="module")
def seeded_package(tmp_path_factory) -> Path:
    """A temp package with exactly one file per rule, each file seeded with
    that rule's own ``bad_example``."""
    pkg = tmp_path_factory.mktemp("lintpkg") / "seeded"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for rule in all_rules():
        name = f"bad_{rule.rule_id.lower()}.py"
        (pkg / name).write_text(rule.bad_example)
    return pkg


def test_clean_tree_exits_zero(tmp_path):
    (tmp_path / "fine.py").write_text("import numpy as np\n\nX = np.arange(3)\n")
    proc = run_lint(str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violations" in proc.stdout


def test_seeded_package_fires_every_rule(seeded_package):
    proc = run_lint(str(seeded_package), "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr

    payload = json.loads(proc.stdout)
    assert payload["version"] == 1
    # __init__.py plus one seeded file per rule.
    assert payload["files_checked"] == 1 + len(EXPECTED_RULE_IDS)
    assert payload["suppressed"] == 0
    assert payload["violation_count"] == len(payload["violations"])
    for entry in payload["violations"]:
        assert set(entry) == {"path", "line", "col", "rule_id", "message"}
        assert entry["line"] >= 1
    fired = {entry["rule_id"] for entry in payload["violations"]}
    assert fired == set(EXPECTED_RULE_IDS), (
        f"missing: {set(EXPECTED_RULE_IDS) - fired}; extra: "
        f"{fired - set(EXPECTED_RULE_IDS)}"
    )
    # Each seeded file must be flagged by the rule it was seeded with.
    for rule_id in EXPECTED_RULE_IDS:
        expected_file = f"bad_{rule_id.lower()}.py"
        assert any(
            entry["rule_id"] == rule_id and entry["path"].endswith(expected_file)
            for entry in payload["violations"]
        ), f"{rule_id} did not fire on {expected_file}"


def test_text_format_reports_locations(seeded_package):
    proc = run_lint(str(seeded_package))
    assert proc.returncode == 1
    assert "RPR202" in proc.stdout
    # path:line:col: prefix on every violation line.
    body = proc.stdout.strip().splitlines()
    assert all(":" in line for line in body[:-1])
    assert "violations in" in body[-1]


def test_select_runs_only_requested_rule(seeded_package):
    proc = run_lint(str(seeded_package), "--select", "RPR202", "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert {e["rule_id"] for e in payload["violations"]} == {"RPR202"}


def test_select_unknown_rule_is_usage_error(seeded_package):
    proc = run_lint(str(seeded_package), "--select", "RPR777")
    assert proc.returncode == 2
    assert "RPR777" in proc.stderr


def test_missing_path_is_usage_error(tmp_path):
    proc = run_lint(str(tmp_path / "does_not_exist.txt"))
    assert proc.returncode == 2


def test_reasoned_suppression_exits_zero(tmp_path):
    (tmp_path / "suppressed.py").write_text(
        "try:\n"
        "    x = 1\n"
        "except:  # repro-lint: disable=RPR202 (fixture exercises the pragma)\n"
        "    x = 0\n"
    )
    proc = run_lint(str(tmp_path), "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["violations"] == []
    assert payload["suppressed"] == 1


def test_reasonless_suppression_fails_with_rpr000(tmp_path):
    (tmp_path / "suppressed.py").write_text(
        "try:\n"
        "    x = 1\n"
        "except:  # repro-lint: disable=RPR202\n"
        "    x = 0\n"
    )
    proc = run_lint(str(tmp_path), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert {e["rule_id"] for e in payload["violations"]} == {"RPR000", "RPR202"}


def test_list_rules_prints_catalog():
    proc = run_lint("--list-rules")
    assert proc.returncode == 0
    for rule_id in EXPECTED_RULE_IDS:
        assert rule_id in proc.stdout


def test_repo_src_tree_is_clean():
    """Dogfood: the shipped source tree passes its own linter."""
    proc = run_lint(str(SRC))
    assert proc.returncode == 0, proc.stdout + proc.stderr
