"""End-to-end tests of the ``repro serve`` CLI as a real subprocess.

A scaled-down version of the CI soak (``scripts/serve_soak.py``): run a
seeded finite Poisson stream to completion, run it again with
checkpoints and ``SIGKILL`` it mid-stream, resume with ``--resume``, and
assert the resumed run's final metrics JSON equals the clean run's
bit-for-bit. Also covers tick emission, graceful SIGTERM drain, and the
exit-status contract.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

STREAM_ARGS = [
    "4",
    "--source",
    "poisson",
    "--rate",
    "0.6",
    "--dag-nodes",
    "10",
    "--seed",
    "123",
    "--jobs",
    "400",
    "--tick-every",
    "0",
    "--quiet",
]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_serve(*argv: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve", *argv],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
        timeout=timeout,
    )


def test_sigkill_then_resume_is_bit_identical(tmp_path):
    clean_json = tmp_path / "clean.json"
    result = run_serve(*STREAM_ARGS, "--metrics-out", str(clean_json))
    assert result.returncode == 0, result.stderr

    ckpt = tmp_path / "serve.ckpt"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            *STREAM_ARGS,
            "--checkpoint",
            str(ckpt),
            "--checkpoint-every",
            "25",
        ],
        env=_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline and proc.poll() is None:
        if ckpt.exists():
            break
        time.sleep(0.05)
    assert ckpt.exists(), "no checkpoint appeared before the deadline"
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
        assert proc.wait(timeout=30) == -signal.SIGKILL

    resumed_json = tmp_path / "resumed.json"
    result = run_serve(
        *STREAM_ARGS,
        "--checkpoint",
        str(ckpt),
        "--resume",
        "--metrics-out",
        str(resumed_json),
    )
    assert result.returncode == 0, result.stderr
    assert "resumed from" in result.stderr

    clean = json.loads(clean_json.read_text())
    resumed = json.loads(resumed_json.read_text())
    assert clean.pop("resumed") is False
    assert resumed.pop("resumed") is True
    assert clean == resumed


def test_arena_flag_paths_are_bit_identical(tmp_path):
    """`--arena on` and `--arena off` produce identical metrics JSON —
    the commit path is invisible to every observable surface."""
    args = [a if a != "400" else "150" for a in STREAM_ARGS]
    outputs = {}
    for mode in ("on", "off"):
        out = tmp_path / f"arena-{mode}.json"
        result = run_serve(*args, "--arena", mode, "--metrics-out", str(out))
        assert result.returncode == 0, result.stderr
        outputs[mode] = json.loads(out.read_text())
    assert outputs["on"] == outputs["off"]


def test_max_steps_interrupt_exit_status(tmp_path):
    ckpt = tmp_path / "int.ckpt"
    result = run_serve(
        *STREAM_ARGS, "--checkpoint", str(ckpt), "--max-steps", "10"
    )
    assert result.returncode == 130
    assert ckpt.exists()
    assert "checkpoint saved" in result.stderr


def test_ticks_are_json_lines(tmp_path):
    args = [a for a in STREAM_ARGS if a != "--quiet"]
    # Replace the tick-every value (args are ["--tick-every", "0", ...]).
    args[args.index("--tick-every") + 1] = "40"
    result = run_serve(*args)
    assert result.returncode == 0, result.stderr
    lines = [ln for ln in result.stdout.splitlines() if ln.strip()]
    assert len(lines) >= 2  # at least one tick plus the final summary
    ticks = [json.loads(ln) for ln in lines[:-1]]
    assert all("window_throughput" in tick for tick in ticks)
    assert [tick["t"] for tick in ticks] == sorted(tick["t"] for tick in ticks)
    summary = json.loads(lines[-1])
    assert summary["complete"] is True
    assert summary["status"] == 0


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_sigterm_drains_gracefully(tmp_path):
    out = tmp_path / "drained.json"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "4",
            "--source",
            "poisson",
            "--rate",
            "0.4",
            "--dag-nodes",
            "10",
            "--seed",
            "7",
            "--jobs",
            "4000",
            "--tick-every",
            "0",
            "--quiet",
            "--metrics-out",
            str(out),
        ],
        env=_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    time.sleep(2.0)  # let it get past startup and admit some jobs
    proc.send_signal(signal.SIGTERM)
    _, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 0, stderr
    assert "drain requested" in stderr
    summary = json.loads(out.read_text())
    assert summary["drained"] is True
    # Drain stops admission: fewer jobs admitted than the stream holds.
    assert summary["jobs_admitted"] < 4000
    assert summary["jobs_completed"] == summary["jobs_admitted"]
