"""Unit tests for the ratio_sweep helper."""

import numpy as np
import pytest

from repro.analysis import OptReference, ratio_sweep
from repro.schedulers import ArbitraryTieBreak, FIFOScheduler, LPFScheduler
from repro.workloads import build_fifo_adversary, packed_instance


class TestRatioSweep:
    def test_adversarial_sweep_classified_logarithmic(self):
        def case(m):
            adv = build_fifo_adversary(m, n_jobs=3 * m)
            return adv.instance, OptReference.witness(adv.opt_witness)

        cases, growth = ratio_sweep(
            lambda m: FIFOScheduler(ArbitraryTieBreak()), case, (8, 16, 32)
        )
        assert growth == "logarithmic"
        assert [c.m for c in cases] == [8, 16, 32]

    def test_packed_sweep_classified_constant(self):
        rng = np.random.default_rng(0)

        def case(m):
            pk = packed_instance(m, n_jobs=6, flow=2 * m, period=m, seed=rng)
            return pk.instance, OptReference.witness(pk.witness)

        cases, growth = ratio_sweep(lambda m: LPFScheduler(), case, (8, 16, 32))
        assert growth == "constant"
        assert all(c.ratio <= 2.0 for c in cases)

    def test_needs_two_ms(self):
        def case(m):
            pk = packed_instance(m, n_jobs=2, flow=m, period=m, seed=0)
            return pk.instance, OptReference.witness(pk.witness)

        from repro.core import ConfigurationError

        with pytest.raises(ConfigurationError):
            ratio_sweep(lambda m: LPFScheduler(), case, (8,))
