"""Regression tests for the Lemma 5.5 subtlety (see repro.schedulers.mc).

Randomized search over LPF tails of small out-forests found inputs where a
*literal* reading of the paper's MC algorithm — strict max-children order
with arbitrary tie-breaking, minimal-level discipline — cannot keep all
granted processors busy: same-step enabling forces a deviation from
max-children order, after which the proof's dichotomy no longer holds.

These pinned instances exercise exactly that state; the shipped MC (height
tie-break + work-conserving fallback sweep) must keep the busy property on
all of them.
"""

import numpy as np
import pytest

from repro.analysis import check_mc_busy, head_tail_shape
from repro.core import DAG
from repro.schedulers import lpf_schedule

#: (parents, width, allocation seed) triples found by randomized search
#: against the pre-fix implementation (strict order, id tie-break, no
#: fallback): each made it idle a granted processor mid-replay.
COUNTEREXAMPLES = [
    ([-1, -1, 1, 2, 0, 2, 5, 5, 5, 2, 8, -1], 2, 668121),
    ([-1, -1, 1, 2, 1, 4, 5, -1, 7, 1, 5], 3, 630904),
    ([-1, 0, 0, -1, 1, 3, 3, 5, 7, 7, 2, 9, 8], 2, 837868),
]


def _tail_and_alloc(parents, width, seed):
    forest = DAG.from_parents(np.array(parents, dtype=np.int64))
    schedule = lpf_schedule(forest, width)
    shape = head_tail_shape(schedule, width)
    steps = [nodes for _, nodes in schedule.job_steps(0)][shape.head_length :]
    rng = np.random.default_rng(seed)
    alloc = rng.integers(
        0, width + 1, size=4 * sum(len(s) for s in steps) + 8
    ).tolist()
    return forest, steps, alloc


@pytest.mark.parametrize("parents,width,seed", COUNTEREXAMPLES)
def test_pinned_counterexamples_now_pass(parents, width, seed):
    forest, steps, alloc = _tail_and_alloc(parents, width, seed)
    assert steps, "fixture invariant: non-empty packed tail"
    result = check_mc_busy(steps, forest, alloc)
    assert result.ok, result.detail


@pytest.mark.parametrize("parents,width,seed", COUNTEREXAMPLES)
def test_tails_satisfy_lemma_preconditions(parents, width, seed):
    """The counterexamples are legitimate Lemma 5.5 inputs: fully packed
    except possibly the final step."""
    forest, steps, _ = _tail_and_alloc(parents, width, seed)
    widths = [len(s) for s in steps]
    assert all(w == width for w in widths[:-1])
    assert 1 <= widths[-1] <= width


def test_forced_deviation_state_reached():
    """On the first counterexample, replaying with constant full grants
    passes through the forced-deviation state (a blocked max-children
    subjob) and still stays busy."""
    forest, steps, _ = _tail_and_alloc(*COUNTEREXAMPLES[0])
    assert check_mc_busy(steps, forest, [2] * 40).ok


def test_randomized_confidence_sweep():
    """A broader randomized sweep (500 forests x random allocations) with
    the fixed MC: zero busy-property violations."""
    rng = np.random.default_rng(7)
    failures = 0
    for _ in range(500):
        n = int(rng.integers(4, 16))
        parents = [-1] + [int(rng.integers(-1, i)) for i in range(1, n)]
        forest = DAG.from_parents(np.array(parents, dtype=np.int64))
        width = int(rng.integers(2, 5))
        schedule = lpf_schedule(forest, width)
        shape = head_tail_shape(schedule, width)
        steps = [nodes for _, nodes in schedule.job_steps(0)][shape.head_length :]
        if not steps:
            continue
        alloc = rng.integers(
            0, width + 1, size=4 * sum(len(s) for s in steps) + 8
        ).tolist()
        failures += not check_mc_busy(steps, forest, alloc).ok
    assert failures == 0


class TestForcedIdleState:
    """A state where NO scheduler can fill the grant: after {2,3,5,6,8}
    complete, the only remaining subjobs are {4,7,10} (ready) and {9},
    whose parent 7 runs in the same step. Granted 4 processors, at most 3
    subjobs can feasibly run — the literal Lemma 5.5 claim fails while
    work conservation (the achievable optimum) holds."""

    PARENTS = [-1, -1, 0, 2, 2, 1, 0, 5, 0, 7, 2]
    WIDTH = 4
    ALLOC = [1, 0, 4, 4, 4, 4, 4]

    def _tail(self):
        forest = DAG.from_parents(np.array(self.PARENTS, dtype=np.int64))
        schedule = lpf_schedule(forest, self.WIDTH)
        shape = head_tail_shape(schedule, self.WIDTH)
        steps = [n for _, n in schedule.job_steps(0)][shape.head_length :]
        return forest, steps

    def test_strict_lemma_fails(self):
        forest, steps = self._tail()
        res = check_mc_busy(steps, forest, self.ALLOC, strict=True)
        assert not res.ok
        assert "strict" in res.detail

    def test_work_conservation_holds(self):
        forest, steps = self._tail()
        assert check_mc_busy(steps, forest, self.ALLOC).ok

    def test_input_satisfies_lemma_preconditions(self):
        _, steps = self._tail()
        widths = [len(s) for s in steps]
        assert all(w == self.WIDTH for w in widths[:-1])
