"""EngineStats: per-run counters, the process-wide accumulator, and the
stats attached to schedules by ``simulate``."""

import pytest

from repro.core import (
    EngineStats,
    Instance,
    Job,
    chain,
    engine_stats_snapshot,
    reset_engine_stats,
    simulate,
)
from repro.schedulers import FIFOScheduler
from repro.workloads import layered_tree


def _packed_instance():
    return Instance([Job(layered_tree([4] * 20, seed=0), 5 * i) for i in range(2)])


class TestPerRunStats:
    def test_attached_to_schedule(self):
        s = simulate(_packed_instance(), 4, FIFOScheduler())
        st = s.engine_stats
        assert isinstance(st, EngineStats)
        assert st.selections == s.instance.total_work
        assert st.steps == s.makespan
        assert st.steps == st.fast_forwarded_steps + st.select_calls
        assert st.sim_seconds > 0

    def test_fast_path_counters_consistent(self):
        # m=4 keeps the whole run in the forced regime (never resyncs).
        st = simulate(_packed_instance(), 4, FIFOScheduler()).engine_stats
        assert st.fast_forwarded_steps > 0
        assert st.resyncs == 0 and st.select_calls == 0
        # m=6 truncates job 1 mid-frontier once both overlap. With the
        # priority kernel (the default) the engine resolves truncations
        # itself — still zero dispatches, with kernel steps counted.
        st = simulate(_packed_instance(), 6, FIFOScheduler()).engine_stats
        assert st.fast_forwarded_steps > 0
        assert st.kernel_steps > 0
        assert st.select_calls == 0 and st.resyncs == 0
        assert st.fast_fraction == 1.0

    def test_kernel_disabled_resyncs_like_before(self):
        # Forcing the reference heap path restores the pre-kernel behavior:
        # a mid-frontier truncation leaves fast mode and resyncs.
        scheduler = FIFOScheduler(use_priority_kernel=False)
        st = simulate(_packed_instance(), 6, scheduler).engine_stats
        assert st.fast_forwarded_steps > 0
        assert st.kernel_steps == 0
        assert st.select_calls > 0
        assert st.resyncs >= 1
        assert 0.0 < st.fast_fraction < 1.0

    def test_ns_per_subjob_positive(self):
        s = simulate(Instance([Job(chain(5), 0)]), 1, FIFOScheduler())
        assert s.engine_stats.ns_per_subjob > 0

    def test_schedules_built_directly_have_none(self):
        s = simulate(Instance([Job(chain(2), 0)]), 1, FIFOScheduler())
        from repro.core import Schedule

        rebuilt = Schedule(s.instance, s.m, s.completion)
        assert rebuilt.engine_stats is None


class TestAccumulator:
    def test_snapshot_delta_counts_runs(self):
        before = engine_stats_snapshot()
        simulate(Instance([Job(chain(6), 0)]), 2, FIFOScheduler())
        after = engine_stats_snapshot()
        d = after.delta(before)
        assert d.selections == 6
        assert d.steps == 6
        assert d.sim_seconds > 0

    def test_reset_zeroes(self):
        simulate(Instance([Job(chain(3), 0)]), 1, FIFOScheduler())
        reset_engine_stats()
        snap = engine_stats_snapshot()
        assert snap.steps == 0 and snap.selections == 0

    def test_snapshot_is_a_copy(self):
        snap = engine_stats_snapshot()
        snap.steps += 1000
        assert engine_stats_snapshot().steps != snap.steps or snap.steps == 1000


class TestArithmetic:
    def test_add_and_delta_roundtrip(self):
        a = EngineStats(steps=5, fast_forwarded_steps=2, selections=40,
                        select_calls=3, resyncs=1, sim_seconds=0.5)
        b = EngineStats(steps=2, selections=10, select_calls=2, sim_seconds=0.1)
        total = EngineStats()
        total.add(a)
        total.add(b)
        d = total.delta(a)
        assert (d.steps, d.selections, d.select_calls) == (2, 10, 2)
        assert d.sim_seconds == pytest.approx(0.1)

    def test_summary_mentions_key_fields(self):
        st = EngineStats(steps=10, fast_forwarded_steps=4, selections=100,
                         select_calls=6, resyncs=2, sim_seconds=0.01)
        text = st.summary()
        for fragment in ("steps=10", "fast=4", "selections=100", "ns/subjob"):
            assert fragment in text

    def test_fast_fraction_handles_zero_steps(self):
        assert EngineStats().fast_fraction == 0.0
        assert EngineStats().ns_per_subjob == 0.0


class TestBatchedCounters:
    def test_record_batch_step_buckets_by_power_of_two(self):
        st = EngineStats()
        for n_active in (1, 2, 3, 4, 1000):
            st.record_batch_step(n_active)
        assert st.batch_steps == 5
        assert st.batch_size_histogram == {0: 1, 1: 2, 2: 1, 9: 1}

    def test_add_merges_histograms_key_wise(self):
        """The per-worker aggregation bug this guards: folding worker
        deltas must SUM histogram buckets, not overwrite them (overwrite
        keeps only the last worker's counts)."""
        total = EngineStats()
        a = EngineStats(batch_steps=3, batch_size_histogram={1: 2, 3: 1})
        b = EngineStats(batch_steps=2, batch_size_histogram={1: 1, 5: 1})
        total.add(a)
        total.add(b)
        assert total.batch_steps == 5
        assert total.batch_size_histogram == {1: 3, 3: 1, 5: 1}

    def test_delta_subtracts_histograms_per_key(self):
        now = EngineStats(
            batch_steps=7,
            fallback_runs=3,
            batch_size_histogram={1: 4, 2: 2, 5: 1},
        )
        before = EngineStats(
            batch_steps=4, fallback_runs=1, batch_size_histogram={1: 4, 2: 1}
        )
        d = now.delta(before)
        assert d.batch_steps == 3
        assert d.fallback_runs == 2
        assert d.batch_size_histogram == {2: 1, 5: 1}  # equal keys dropped

    def test_snapshot_histogram_is_a_deep_copy(self):
        baseline = engine_stats_snapshot().batch_size_histogram.get(61, 0)
        snap = engine_stats_snapshot()
        snap.batch_size_histogram[61] = baseline + 99
        # Mutating the snapshot's dict must not write through to the
        # global accumulator (a shallow replace() would share the dict).
        assert engine_stats_snapshot().batch_size_histogram.get(61, 0) == baseline

    def test_summary_omits_batch_fields_when_unused(self):
        st = EngineStats(steps=10, selections=5)
        assert "batch_steps" not in st.summary()

    def test_summary_includes_batch_fields_when_used(self):
        st = EngineStats(
            batch_steps=4,
            fallback_runs=1,
            batch_size_histogram={3: 4},
            steps=40,
        )
        text = st.summary()
        assert "batch_steps=4" in text
        assert "fallback_runs=1" in text
        assert "2^3" in text
