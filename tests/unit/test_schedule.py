"""Unit tests for Schedule: metrics, structure queries, validation."""

import numpy as np
import pytest

from repro.core import (
    InfeasibleScheduleError,
    Instance,
    Job,
    Schedule,
    ScheduleError,
    chain,
    star,
)


@pytest.fixture
def inst():
    # chain(3) released at 0, star(2) (3 nodes) released at 1
    return Instance([Job(chain(3), 0, "c"), Job(star(2), 1, "s")])


@pytest.fixture
def sched(inst):
    # m=2. chain: 1,2,3. star: root at 2, leaves at 3,4.
    return Schedule(
        inst,
        2,
        [np.array([1, 2, 3]), np.array([2, 3, 4])],
    )


class TestConstruction:
    def test_bad_m(self, inst):
        with pytest.raises(ScheduleError):
            Schedule(inst, 0, [np.zeros(3, int), np.zeros(3, int)])

    def test_wrong_number_of_arrays(self, inst):
        with pytest.raises(ScheduleError, match="must match job count"):
            Schedule(inst, 2, [np.zeros(3, int)])

    def test_wrong_array_shape(self, inst):
        with pytest.raises(ScheduleError, match="shape"):
            Schedule(inst, 2, [np.zeros(4, int), np.zeros(3, int)])

    def test_negative_time(self, inst):
        with pytest.raises(ScheduleError, match="negative"):
            Schedule(inst, 2, [np.array([-1, 1, 2]), np.zeros(3, int)])

    def test_completion_frozen(self, sched):
        with pytest.raises(ValueError):
            sched.completion[0][0] = 9


class TestMetrics:
    def test_job_completion(self, sched):
        assert sched.job_completion(0) == 3
        assert sched.job_completion(1) == 4

    def test_job_flow_subtracts_release(self, sched):
        assert sched.job_flow(0) == 3
        assert sched.job_flow(1) == 3  # 4 - release 1

    def test_flows_and_max_flow(self, sched):
        assert sched.flows.tolist() == [3, 3]
        assert sched.max_flow == 3

    def test_total_flow(self, sched):
        assert sched.total_flow == 6

    def test_makespan(self, sched):
        assert sched.makespan == 4

    def test_is_complete(self, sched, inst):
        assert sched.is_complete
        partial = Schedule(inst, 2, [np.array([1, 2, 0]), np.zeros(3, int)])
        assert not partial.is_complete

    def test_incomplete_job_completion_raises(self, inst):
        partial = Schedule(inst, 2, [np.array([1, 0, 0]), np.zeros(3, int)])
        with pytest.raises(ScheduleError, match="not fully scheduled"):
            partial.job_completion(0)

    def test_empty_partial_makespan(self, inst):
        partial = Schedule(inst, 2, [np.zeros(3, int), np.zeros(3, int)])
        assert partial.makespan == 0


class TestStructure:
    def test_usage_profile(self, sched):
        assert sched.usage_profile().tolist() == [0, 1, 2, 2, 1]

    def test_usage_profile_restricted(self, sched):
        assert sched.usage_profile([0]).tolist() == [0, 1, 1, 1, 0]

    def test_at(self, sched):
        assert sched.at(2) == [(0, 1), (1, 0)]
        assert sched.at(99) == []

    def test_job_steps(self, sched):
        steps = sched.job_steps(1)
        assert [t for t, _ in steps] == [2, 3, 4]
        assert [s.tolist() for _, s in steps] == [[0], [1], [2]]

    def test_job_steps_groups_same_time(self, inst):
        s = Schedule(inst, 3, [np.array([1, 2, 3]), np.array([2, 3, 3])])
        steps = s.job_steps(1)
        assert [t for t, _ in steps] == [2, 3]
        assert steps[1][1].tolist() == [1, 2]

    def test_job_steps_partial(self, inst):
        s = Schedule(inst, 2, [np.array([1, 0, 0]), np.zeros(3, int)])
        assert [t for t, _ in s.job_steps(0)] == [1]
        assert s.job_steps(1) == []

    def test_idle_steps(self, sched):
        # usage [_,1,2,2,1] with m=2: idle at t=1 and t=4
        assert sched.idle_steps().tolist() == [1, 4]


class TestValidation:
    def test_valid_schedule_passes(self, sched):
        sched.validate()
        assert sched.is_feasible()

    def test_capacity_violation(self, inst):
        s = Schedule(inst, 1, [np.array([1, 2, 3]), np.array([2, 3, 3])])
        with pytest.raises(InfeasibleScheduleError, match="capacity"):
            s.validate()

    def test_precedence_violation(self, inst):
        s = Schedule(inst, 2, [np.array([2, 1, 3]), np.array([2, 3, 4])])
        with pytest.raises(InfeasibleScheduleError, match="precedence"):
            s.validate()

    def test_simultaneous_parent_child_rejected(self, inst):
        s = Schedule(inst, 2, [np.array([1, 1, 2]), np.array([2, 3, 4])])
        with pytest.raises(InfeasibleScheduleError, match="precedence"):
            s.validate()

    def test_release_violation(self, inst):
        # star released at 1 cannot complete a node at t=1
        s = Schedule(inst, 2, [np.array([1, 2, 3]), np.array([1, 2, 3])])
        with pytest.raises(InfeasibleScheduleError, match="release"):
            s.validate()

    def test_incomplete_rejected_when_required(self, inst):
        s = Schedule(inst, 2, [np.array([1, 2, 0]), np.array([2, 3, 4])])
        with pytest.raises(InfeasibleScheduleError, match="never scheduled"):
            s.validate()
        # ... but accepted as a partial schedule
        s.validate(require_complete=False)

    def test_orphan_child_rejected_even_partial(self, inst):
        s = Schedule(inst, 2, [np.array([0, 2, 0]), np.zeros(3, int)])
        with pytest.raises(InfeasibleScheduleError, match="predecessor"):
            s.validate(require_complete=False)

    def test_collects_multiple_violations(self, inst):
        s = Schedule(inst, 1, [np.array([2, 1, 3]), np.array([1, 1, 1])])
        with pytest.raises(InfeasibleScheduleError) as exc:
            s.validate()
        assert len(exc.value.violations) >= 2

    def test_is_feasible_false(self, inst):
        s = Schedule(inst, 1, [np.array([1, 2, 3]), np.array([2, 3, 3])])
        assert not s.is_feasible()

    def test_repr(self, sched):
        assert "complete" in repr(sched)
