"""Unit tests for the stream-API arrival sources (`repro.workloads.arrivals`)."""

import pytest

from repro.workloads.arrivals import (
    AdversarialDripSource,
    ArrivalSource,
    PoissonSource,
    TraceReplaySource,
    stream_prefix_instance,
)

SOURCES = {
    "poisson": lambda: PoissonSource(rate=0.5, seed=11, dag_nodes=10, n_jobs=20),
    "poisson-gw": lambda: PoissonSource(
        rate=0.2, seed=3, dag_nodes=16, family="galton-watson", n_jobs=20
    ),
    "poisson-layered": lambda: PoissonSource(
        rate=1.5, seed=7, dag_nodes=25, family="layered", n_jobs=20
    ),
    "drip": lambda: AdversarialDripSource(6, period=4, seed=5, n_jobs=20),
}


def _dag_signature(dag):
    return (dag.n, dag.child_indptr.tobytes(), dag.child_indices.tobytes())


@pytest.mark.parametrize("name", sorted(SOURCES))
class TestIndexPurity:
    def test_dag_at_is_pure(self, name):
        source = SOURCES[name]()
        for k in (0, 1, 7, 19):
            assert _dag_signature(source.dag_at(k)) == _dag_signature(
                source.dag_at(k)
            )

    def test_gap_before_is_pure_and_nonnegative(self, name):
        source = SOURCES[name]()
        for k in range(20):
            gap = source.gap_before(k)
            assert gap == source.gap_before(k)
            assert gap >= 0

    def test_out_of_order_access_matches_sequential(self, name):
        """Reading index 15 first must not change what index 3 yields —
        the checkpoint/resume path reads indices out of order."""
        probe = SOURCES[name]()
        probe.dag_at(15), probe.gap_before(15)
        fresh = SOURCES[name]()
        assert _dag_signature(probe.dag_at(3)) == _dag_signature(fresh.dag_at(3))
        assert probe.gap_before(3) == fresh.gap_before(3)

    def test_releases_nondecreasing(self, name):
        source = SOURCES[name]()
        releases = [source.release_of(k) for k in range(20)]
        assert releases == sorted(releases)

    def test_prefix_instance_matches_release_of(self, name):
        source = SOURCES[name]()
        instance = stream_prefix_instance(source, 12)
        assert len(instance.jobs) == 12
        for k, job in enumerate(instance):
            assert job.release == source.release_of(k)
            assert _dag_signature(job.dag) == _dag_signature(source.dag_at(k))

    def test_fingerprint_is_stable_and_seed_sensitive(self, name):
        source = SOURCES[name]()
        assert source.fingerprint() == SOURCES[name]().fingerprint()


def test_poisson_fingerprint_differs_across_seeds():
    a = PoissonSource(rate=0.5, seed=1, dag_nodes=10)
    b = PoissonSource(rate=0.5, seed=2, dag_nodes=10)
    assert a.fingerprint() != b.fingerprint()


def test_poisson_dags_vary_across_indices():
    source = PoissonSource(rate=0.5, seed=0, dag_nodes=30)
    signatures = {_dag_signature(source.dag_at(k)) for k in range(8)}
    assert len(signatures) > 1


def test_poisson_rejects_bad_parameters():
    with pytest.raises(Exception):
        PoissonSource(rate=0.0)
    with pytest.raises(Exception):
        PoissonSource(rate=0.5, dag_nodes=0)
    with pytest.raises(Exception):
        PoissonSource(rate=0.5, family="nope")


def test_release_of_bounds_checked():
    source = PoissonSource(rate=0.5, seed=0, dag_nodes=8, n_jobs=5)
    with pytest.raises(Exception):
        source.release_of(-1)
    with pytest.raises(Exception):
        source.release_of(5)


def test_drip_shape_targets_half_width():
    source = AdversarialDripSource(8, period=3, depth=4, seed=0)
    dag = source.dag_at(0)
    assert dag.n == 4 * 4  # ⌈m/2⌉ wide × depth layers
    assert source.gap_before(0) == 0
    assert source.gap_before(1) == 3


class TestTraceReplay:
    def _instance(self):
        return PoissonSource(rate=0.8, seed=9, dag_nodes=6, n_jobs=10).prefix_instance(
            10
        )

    def test_roundtrip_from_instance(self):
        instance = self._instance()
        source = TraceReplaySource.from_instance(instance)
        assert source.n_jobs == 10
        replayed = source.prefix_instance(10)
        for orig, rep in zip(instance, replayed):
            assert orig.release == rep.release
            assert _dag_signature(orig.dag) == _dag_signature(rep.dag)

    def test_fingerprint_tracks_content(self):
        instance = self._instance()
        a = TraceReplaySource.from_instance(instance)
        b = TraceReplaySource.from_instance(instance)
        assert a.fingerprint() == b.fingerprint()
        other = PoissonSource(rate=0.8, seed=10, dag_nodes=6, n_jobs=10)
        c = TraceReplaySource.from_instance(other.prefix_instance(10))
        assert a.fingerprint() != c.fingerprint()

    def test_rejects_decreasing_releases(self):
        instance = self._instance()
        jobs = list(instance)
        shuffled = [jobs[3], jobs[0]] + jobs[4:]
        with pytest.raises(Exception):
            TraceReplaySource(tuple(shuffled))


def test_abstract_base_requires_all_hooks():
    with pytest.raises(TypeError):
        ArrivalSource()  # type: ignore[abstract]
