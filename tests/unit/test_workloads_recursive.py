"""Unit tests for the program-shaped workload generators."""

import pytest

from repro.core import ConfigurationError
from repro.workloads import (
    divide_and_conquer_tree,
    map_reduce_dag,
    parallel_for_tree,
    quicksort_tree,
)


class TestQuicksort:
    def test_is_out_tree(self):
        d = quicksort_tree(100, seed=0)
        assert d.is_out_tree

    def test_node_count_bounded(self):
        # At most 2n-1 call nodes for n elements (every call splits work).
        d = quicksort_tree(64, seed=1)
        assert 1 <= d.n <= 2 * 64

    def test_cutoff_shrinks_tree(self):
        full = quicksort_tree(200, seed=2, cutoff=1)
        coarse = quicksort_tree(200, seed=2, cutoff=16)
        assert coarse.n < full.n

    def test_deterministic(self):
        assert quicksort_tree(50, 3) == quicksort_tree(50, 3)

    def test_single_element(self):
        assert quicksort_tree(1, 0).n == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            quicksort_tree(0)
        with pytest.raises(ConfigurationError):
            quicksort_tree(5, cutoff=0)


class TestDivideAndConquer:
    def test_balanced_binary(self):
        d = divide_and_conquer_tree(8, fanout=2)
        assert d.is_out_tree
        assert d.leaves.size == 8
        assert d.span == 4  # root + 3 levels of splits

    def test_prologue_adds_chain(self):
        plain = divide_and_conquer_tree(4, fanout=2, prologue=0)
        chained = divide_and_conquer_tree(4, fanout=2, prologue=3)
        assert chained.span == plain.span + 3 * (plain.span - 1)

    def test_fanout(self):
        d = divide_and_conquer_tree(9, fanout=3)
        assert int(d.outdegree.max()) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            divide_and_conquer_tree(0)
        with pytest.raises(ConfigurationError):
            divide_and_conquer_tree(4, fanout=1)
        with pytest.raises(ConfigurationError):
            divide_and_conquer_tree(4, prologue=-1)


class TestParallelFor:
    def test_structure(self):
        d = parallel_for_tree(5, body_span=2)
        assert d.is_out_tree
        assert d.n == 5 * 3  # spine node + 2 body nodes per iteration

    def test_span(self):
        # last spine node at depth k, its body adds body_span
        d = parallel_for_tree(4, body_span=3)
        assert d.span == 4 + 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            parallel_for_tree(0)
        with pytest.raises(ConfigurationError):
            parallel_for_tree(3, body_span=0)


class TestMapReduce:
    def test_not_a_forest(self):
        d = map_reduce_dag(4, map_span=2)
        assert not d.is_out_forest  # the reduction joins

    def test_single_sink(self):
        d = map_reduce_dag(8, map_span=1, reduce_fanin=2)
        assert d.leaves.size == 1

    def test_node_count(self):
        # root + width*map_span + reduction nodes
        d = map_reduce_dag(4, map_span=2, reduce_fanin=2)
        assert d.n == 1 + 8 + (2 + 1)

    def test_span(self):
        d = map_reduce_dag(4, map_span=2, reduce_fanin=2)
        assert d.span == 1 + 2 + 2  # root, map chain, 2 reduce levels

    def test_width_one(self):
        d = map_reduce_dag(1, map_span=3)
        assert d.is_chain  # no reduction needed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            map_reduce_dag(0)
        with pytest.raises(ConfigurationError):
            map_reduce_dag(4, map_span=0)
        with pytest.raises(ConfigurationError):
            map_reduce_dag(4, reduce_fanin=1)
