"""Unit tests for experiment plumbing (tables, claims, registry)."""

import pytest

from repro.experiments import Claim, ExperimentResult, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len(lines) == 4  # header, separator, 2 rows

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_float_formatting(self):
        out = format_table([{"x": 1.23456}])
        assert "1.235" in out

    def test_bool_formatting(self):
        out = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert out  # does not raise

    def test_empty(self):
        assert format_table([]) == "(no rows)"


class TestExperimentResult:
    def _result(self):
        r = ExperimentResult("EX", "title", "Theorem 0")
        r.rows = [{"k": 1}]
        return r

    def test_claims_hold(self):
        r = self._result()
        r.add_claim("fine", True)
        assert r.claims_hold()
        r.add_claim("broken", False, "boom")
        assert not r.claims_hold()
        assert [c.description for c in r.failed_claims()] == ["broken"]

    def test_render_contains_everything(self):
        r = self._result()
        r.notes.append("a note")
        r.figures.append("ASCII ART")
        r.add_claim("fine", True)
        out = r.render()
        assert "EX: title" in out
        assert "Theorem 0" in out
        assert "ASCII ART" in out
        assert "note: a note" in out
        assert "[PASS] fine" in out

    def test_claim_render_marks(self):
        assert "[PASS]" in Claim("d", True).render()
        assert "[FAIL]" in Claim("d", False).render()
        assert "(why)" in Claim("d", False, "why").render()


class TestRegistry:
    def test_all_experiments_registered(self):
        from repro.experiments import EXPERIMENTS

        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 18)}

    def test_entries_well_formed(self):
        from repro.experiments import EXPERIMENTS

        for exp in EXPERIMENTS.values():
            assert callable(exp.run)
            assert exp.paper_artifact
            assert exp.description

    def test_run_experiment_dispatches(self):
        from repro.experiments import run_experiment

        result = run_experiment("E1")
        assert result.experiment_id == "E1"
        assert result.claims_hold()

    def test_unknown_id(self):
        from repro.experiments import run_experiment

        with pytest.raises(KeyError):
            run_experiment("E99")


class TestRunAll:
    def test_run_all_with_shrunk_registry(self, monkeypatch):
        from repro.experiments import registry

        shrunk = {"E1": registry.EXPERIMENTS["E1"]}
        monkeypatch.setattr(registry, "EXPERIMENTS", shrunk)
        results = registry.run_all()
        assert [r.experiment_id for r in results] == ["E1"]
        assert results[0].claims_hold()

    def test_run_all_forwards_overrides(self, monkeypatch):
        from repro.experiments import registry

        shrunk = {"E5": registry.EXPERIMENTS["E5"]}
        monkeypatch.setattr(registry, "EXPERIMENTS", shrunk)
        results = registry.run_all(E5={"trials": 1, "n_nodes": 40})
        assert sum(r["cases"] for r in results[0].rows) == 12  # 3 workloads x 1 trial x 4 patterns


class TestScalePresets:
    def test_preset_keys_are_registered_experiments(self):
        from repro.experiments import EXPERIMENTS, SCALE_PRESETS

        for scale, table in SCALE_PRESETS.items():
            assert set(table) <= set(EXPERIMENTS), scale

    def test_preset_params_match_run_signatures(self):
        import inspect

        from repro.experiments import EXPERIMENTS, SCALE_PRESETS

        for scale, table in SCALE_PRESETS.items():
            for exp_id, params in table.items():
                sig = inspect.signature(EXPERIMENTS[exp_id].run)
                for key in params:
                    assert key in sig.parameters, f"{scale}/{exp_id}: {key}"
