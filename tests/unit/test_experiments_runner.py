"""Unit tests for experiment plumbing (tables, claims, registry)."""

import pytest

from repro.experiments import (
    Claim,
    ExperimentResult,
    format_table,
    repeat_experiment,
)
from repro.experiments.e5_mc_busy import run as run_e5


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len(lines) == 4  # header, separator, 2 rows

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_float_formatting(self):
        out = format_table([{"x": 1.23456}])
        assert "1.235" in out

    def test_bool_formatting(self):
        out = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert out  # does not raise

    def test_empty(self):
        assert format_table([]) == "(no rows)"


class TestExperimentResult:
    def _result(self):
        r = ExperimentResult("EX", "title", "Theorem 0")
        r.rows = [{"k": 1}]
        return r

    def test_claims_hold(self):
        r = self._result()
        r.add_claim("fine", True)
        assert r.claims_hold()
        r.add_claim("broken", False, "boom")
        assert not r.claims_hold()
        assert [c.description for c in r.failed_claims()] == ["broken"]

    def test_render_contains_everything(self):
        r = self._result()
        r.notes.append("a note")
        r.figures.append("ASCII ART")
        r.add_claim("fine", True)
        out = r.render()
        assert "EX: title" in out
        assert "Theorem 0" in out
        assert "ASCII ART" in out
        assert "note: a note" in out
        assert "[PASS] fine" in out

    def test_claim_render_marks(self):
        assert "[PASS]" in Claim("d", True).render()
        assert "[FAIL]" in Claim("d", False).render()
        assert "(why)" in Claim("d", False, "why").render()


class TestRegistry:
    def test_all_experiments_registered(self):
        from repro.experiments import EXPERIMENTS

        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 18)}

    def test_entries_well_formed(self):
        from repro.experiments import EXPERIMENTS

        for exp in EXPERIMENTS.values():
            assert callable(exp.run)
            assert exp.paper_artifact
            assert exp.description

    def test_run_experiment_dispatches(self):
        from repro.experiments import run_experiment

        result = run_experiment("E1")
        assert result.experiment_id == "E1"
        assert result.claims_hold()

    def test_unknown_id(self):
        from repro.experiments import run_experiment

        with pytest.raises(KeyError):
            run_experiment("E99")


class TestRunAll:
    def test_run_all_with_shrunk_registry(self, monkeypatch):
        from repro.experiments import registry

        shrunk = {"E1": registry.EXPERIMENTS["E1"]}
        monkeypatch.setattr(registry, "EXPERIMENTS", shrunk)
        results = registry.run_all()
        assert [r.experiment_id for r in results] == ["E1"]
        assert results[0].claims_hold()

    def test_run_all_forwards_overrides(self, monkeypatch):
        from repro.experiments import registry

        shrunk = {"E5": registry.EXPERIMENTS["E5"]}
        monkeypatch.setattr(registry, "EXPERIMENTS", shrunk)
        results = registry.run_all(E5={"trials": 1, "n_nodes": 40})
        assert sum(r["cases"] for r in results[0].rows) == 12  # 3 workloads x 1 trial x 4 patterns


def _stub_taking_hook(seed=0, hook=None):
    """Module-level (hence picklable) stub taking an arbitrary parameter."""
    r = ExperimentResult("EX", "stub", "none")
    r.add_claim("always", True)
    return r


class TestRepeatExperiment:
    @staticmethod
    def _stub(seed=0):
        r = ExperimentResult("EX", "stub", "none")
        r.add_claim("always", True)
        if seed >= 1:
            r.add_claim("late", seed == 1)
        return r

    def test_pass_rates_cover_claims_missing_on_some_seeds(self):
        results, rates = repeat_experiment(self._stub, seeds=[0, 1, 2])
        assert len(results) == 3
        assert rates["always"] == pytest.approx(1.0)
        # "late" first appears at seed 1, holds only there: absent (seed 0)
        # and failing (seed 2) both count against it.
        assert rates["late"] == pytest.approx(1 / 3)

    def test_parallel_matches_serial(self):
        params = dict(width=4, n_nodes=40, trials=1)
        serial, serial_rates = repeat_experiment(run_e5, seeds=[0, 1], **params)
        fanned, fanned_rates = repeat_experiment(
            run_e5, seeds=[0, 1], n_workers=2, **params
        )
        assert [r.render() for r in fanned] == [r.render() for r in serial]
        assert fanned_rates == serial_rates

    def test_unpicklable_run_fn_falls_back_to_serial(self):
        probe = []
        run_fn = lambda seed=0: probe.append(seed) or self._stub(seed)  # noqa: E731
        with pytest.warns(RuntimeWarning, match="run_fn .*cannot be pickled"):
            results, _ = repeat_experiment(run_fn, seeds=[0, 1], n_workers=2)
        assert len(results) == 2
        assert probe == [0, 1]  # ran in this process, in seed order

    def test_unpicklable_param_named_in_warning(self):
        # The run function itself pickles fine; the lambda parameter is the
        # culprit and the warning should say so by name.
        with pytest.warns(RuntimeWarning, match="parameter hook="):
            results, _ = repeat_experiment(
                _stub_taking_hook, seeds=[0, 1], n_workers=2, hook=lambda: None
            )
        assert len(results) == 2

    def test_parallel_propagates_engine_stats(self):
        from repro.core import engine_stats_snapshot

        params = dict(width=4, n_nodes=40, trials=1)
        before = engine_stats_snapshot()
        repeat_experiment(run_e5, seeds=[0, 1], n_workers=2, **params)
        delta = engine_stats_snapshot().delta(before)
        # The work happened in worker processes, but their EngineStats
        # deltas were folded back into this process's accumulator.
        assert delta.steps > 0
        assert delta.selections > 0


class TestRunAllParallel:
    def test_only_filters_and_keeps_registry_order(self):
        from repro.experiments import run_all

        results = run_all("smoke", only=["E5", "E1"])
        assert [r.experiment_id for r in results] == ["E1", "E5"]

    def test_only_rejects_unknown_ids(self):
        from repro.experiments import run_all

        with pytest.raises(KeyError, match="E99"):
            run_all("smoke", only=["E99"])

    def test_parallel_matches_serial(self):
        from repro.experiments import run_all

        serial = run_all("smoke", only=["E1", "E5"])
        fanned = run_all("smoke", n_workers=2, only=["E1", "E5"])
        assert [r.render() for r in fanned] == [r.render() for r in serial]


class TestEngineStatsNotes:
    def test_opt_in_appends_engine_note(self):
        from repro.experiments import run_experiment

        plain = run_experiment("E5", "smoke")
        assert not any(n.startswith("engine: ") for n in plain.notes)
        stats = run_experiment("E5", "smoke", engine_stats=True)
        assert stats.notes[-1].startswith("engine: ")
        assert "steps" in stats.notes[-1]

    def test_parallel_run_all_carries_engine_notes(self):
        from repro.experiments import run_all

        results = run_all("smoke", n_workers=2, engine_stats=True, only=["E1", "E5"])
        assert all(r.notes[-1].startswith("engine: ") for r in results)


class TestSharedPool:
    def test_pool_is_reused_across_calls(self):
        from repro.experiments import shared_pool, shutdown_shared_pool

        shutdown_shared_pool()
        first = shared_pool(2)
        assert shared_pool(2) is first
        assert shared_pool(1) is first  # smaller requests reuse the pool
        grown = shared_pool(3)  # larger requests replace it
        assert grown is not first
        shutdown_shared_pool()

    def test_repeat_experiment_uses_shared_pool(self):
        from repro.experiments import pool, shared_pool, shutdown_shared_pool

        shutdown_shared_pool()
        live = shared_pool(2)
        repeat_experiment(run_e5, seeds=[0, 1], n_workers=2, width=4,
                          n_nodes=40, trials=1)
        assert pool._pool is live  # still the same executor afterwards
        shutdown_shared_pool()

    def test_rejects_bad_worker_count(self):
        from repro.experiments import shared_pool

        with pytest.raises(ValueError):
            shared_pool(0)

    def test_worker_initializer_ships_cache_dir(self, tmp_path, monkeypatch):
        from repro.experiments import pool as pool_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        pool_mod.shutdown_shared_pool()
        try:
            live = pool_mod.shared_pool(2)
            dirs = set(
                live.map(_read_cache_env, range(2))
            )
            assert dirs == {str(tmp_path)}
        finally:
            pool_mod.shutdown_shared_pool()


def _read_cache_env(_):
    import os

    return os.environ.get("REPRO_CACHE_DIR")


class TestScalePresets:
    def test_preset_keys_are_registered_experiments(self):
        from repro.experiments import EXPERIMENTS, SCALE_PRESETS

        for scale, table in SCALE_PRESETS.items():
            assert set(table) <= set(EXPERIMENTS), scale

    def test_preset_params_match_run_signatures(self):
        import inspect

        from repro.experiments import EXPERIMENTS, SCALE_PRESETS

        for scale, table in SCALE_PRESETS.items():
            for exp_id, params in table.items():
                sig = inspect.signature(EXPERIMENTS[exp_id].run)
                for key in params:
                    assert key in sig.parameters, f"{scale}/{exp_id}: {key}"
