"""Unit tests for the adversary's key-placement parameter (E17 substrate)."""

import numpy as np
import pytest

from repro.core import ConfigurationError, simulate
from repro.schedulers import ArbitraryTieBreak, FIFOScheduler, ReverseTieBreak
from repro.workloads import build_fifo_adversary


class TestPlacementInvariance:
    @pytest.mark.parametrize("m", [4, 8, 16])
    def test_trace_flow_identical_across_placements(self, m):
        flows = {
            placement: build_fifo_adversary(
                m, 2 * m, key_placement=placement, seed=1
            ).fifo_max_flow
            for placement in ("last", "first", "random")
        }
        assert len(set(flows.values())) == 1

    def test_trace_usage_profile_identical(self):
        a = build_fifo_adversary(8, 16, key_placement="last")
        b = build_fifo_adversary(8, 16, key_placement="first")
        assert np.array_equal(
            a.fifo_schedule.usage_profile(), b.fifo_schedule.usage_profile()
        )

    def test_per_job_flows_identical(self):
        a = build_fifo_adversary(8, 16, key_placement="last")
        b = build_fifo_adversary(8, 16, key_placement="random", seed=9)
        assert a.fifo_schedule.flows.tolist() == b.fifo_schedule.flows.tolist()


class TestPlacementStructure:
    def test_first_placement_keys_have_smallest_ids(self):
        adv = build_fifo_adversary(6, 6, key_placement="first")
        for job in adv.instance:
            dag = job.dag
            for d in range(1, dag.span):
                level = np.nonzero(dag.depth == d)[0]
                internal = level[dag.outdegree[level] > 0]
                assert internal.size == 1
                assert int(internal[0]) == int(level.min())

    def test_random_placement_reproducible(self):
        a = build_fifo_adversary(6, 6, key_placement="random", seed=3)
        b = build_fifo_adversary(6, 6, key_placement="random", seed=3)
        for ja, jb in zip(a.instance, b.instance):
            assert ja.dag == jb.dag

    def test_witness_valid_for_every_placement(self):
        for placement in ("last", "first", "random"):
            adv = build_fifo_adversary(6, 6, key_placement=placement, seed=0)
            adv.opt_witness.validate()
            assert adv.opt_upper_bound <= 7

    def test_invalid_placement_rejected(self):
        with pytest.raises(ConfigurationError, match="key_placement"):
            build_fifo_adversary(4, 4, key_placement="middle")


class TestMatchedReplays:
    def test_desc_on_first_equals_adaptive(self):
        adv = build_fifo_adversary(8, 16, key_placement="first")
        replay = simulate(adv.instance, 8, FIFOScheduler(ReverseTieBreak()))
        assert replay.max_flow == adv.fifo_max_flow

    def test_asc_on_first_escapes(self):
        adv = build_fifo_adversary(8, 16, key_placement="first")
        replay = simulate(adv.instance, 8, FIFOScheduler(ArbitraryTieBreak()))
        assert replay.max_flow <= adv.opt_upper_bound

    def test_asc_on_last_still_exact(self):
        adv = build_fifo_adversary(8, 16, key_placement="last")
        replay = simulate(adv.instance, 8, FIFOScheduler(ArbitraryTieBreak()))
        for a, b in zip(replay.completion, adv.fifo_schedule.completion):
            assert np.array_equal(a, b)
