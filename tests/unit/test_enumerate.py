"""Unit tests for the exhaustive shape enumeration."""

import pytest

from repro.core import ConfigurationError
from repro.workloads.enumerate_shapes import (
    all_out_forests,
    all_out_trees,
    count_out_forests,
    count_out_trees,
)


class TestCounts:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 1), (3, 2), (5, 24)])
    def test_tree_count_formula(self, n, expected):
        assert count_out_trees(n) == expected
        assert sum(1 for _ in all_out_trees(n)) == expected

    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (4, 24)])
    def test_forest_count_formula(self, n, expected):
        assert count_out_forests(n) == expected
        assert sum(1 for _ in all_out_forests(n)) == expected


class TestShapes:
    def test_trees_all_distinct_parent_arrays(self):
        seen = set()
        for tree in all_out_trees(5):
            key = tuple(tree.parent_array().tolist())
            assert key not in seen
            seen.add(key)

    def test_forests_include_antichain_and_chain(self):
        spans = {d.span for d in all_out_forests(4)}
        assert 1 in spans  # antichain (all roots)
        assert 4 in spans  # chain

    def test_every_size_present(self):
        assert all(d.n == 4 for d in all_out_trees(4))


class TestValidation:
    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            list(all_out_trees(0))
        with pytest.raises(ConfigurationError):
            list(all_out_forests(0))
        with pytest.raises(ConfigurationError):
            count_out_trees(0)
        with pytest.raises(ConfigurationError):
            count_out_forests(-1)
