"""Additional Schedule surface: restricted profiles, window metrics,
multi-job step grouping — the pieces the Section 6 analysis leans on."""

import pytest

from repro.core import Instance, Job, antichain, chain, simulate, star
from repro.schedulers import FIFOScheduler


@pytest.fixture
def three_jobs():
    return Instance(
        [
            Job(chain(3), 0, "a"),
            Job(star(2), 2, "b"),
            Job(antichain(2), 4, "c"),
        ]
    )


class TestRestrictedProfiles:
    def test_restriction_is_monotone_in_job_sets(self, three_jobs):
        s = simulate(three_jobs, 2, FIFOScheduler())
        full = s.usage_profile()
        partial = s.usage_profile([0, 1])
        smallest = s.usage_profile([0])
        assert (partial <= full).all()
        assert (smallest <= partial).all()

    def test_restriction_sums_to_work(self, three_jobs):
        s = simulate(three_jobs, 2, FIFOScheduler())
        for i, job in enumerate(three_jobs):
            assert int(s.usage_profile([i]).sum()) == job.work

    def test_idle_steps_of_restriction_superset(self, three_jobs):
        """Fewer jobs -> at least as many idle steps in the restriction."""
        s = simulate(three_jobs, 2, FIFOScheduler())
        idle_full = set(s.idle_steps().tolist())
        idle_restricted = set(s.idle_steps([0]).tolist())
        assert idle_full <= idle_restricted


class TestStepGrouping:
    def test_job_steps_cover_all_nodes(self, three_jobs):
        s = simulate(three_jobs, 2, FIFOScheduler())
        for i, job in enumerate(three_jobs):
            total = sum(len(nodes) for _, nodes in s.job_steps(i))
            assert total == job.work

    def test_job_steps_times_increasing(self, three_jobs):
        s = simulate(three_jobs, 2, FIFOScheduler())
        for i in range(len(three_jobs)):
            times = [t for t, _ in s.job_steps(i)]
            assert times == sorted(times)
            assert len(set(times)) == len(times)

    def test_at_consistent_with_job_steps(self, three_jobs):
        s = simulate(three_jobs, 2, FIFOScheduler())
        for i in range(len(three_jobs)):
            for t, nodes in s.job_steps(i):
                at = {v for j, v in s.at(t) if j == i}
                assert at == set(nodes.tolist())


class TestFlowsVector:
    def test_flows_align_with_job_flow(self, three_jobs):
        s = simulate(three_jobs, 2, FIFOScheduler())
        for i in range(len(three_jobs)):
            assert s.flows[i] == s.job_flow(i)

    def test_total_flow_is_sum(self, three_jobs):
        s = simulate(three_jobs, 2, FIFOScheduler())
        assert s.total_flow == int(s.flows.sum())

    def test_makespan_equals_last_completion(self, three_jobs):
        s = simulate(three_jobs, 2, FIFOScheduler())
        assert s.makespan == max(
            s.job_completion(i) for i in range(len(three_jobs))
        )
