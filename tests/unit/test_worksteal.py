"""Unit tests for the work-stealing baseline."""

import numpy as np
import pytest

from repro.analysis import check_work_conserving
from repro.core import Instance, Job, antichain, chain, simulate, star
from repro.schedulers import WorkStealingScheduler
from repro.workloads import quicksort_tree


@pytest.fixture
def stream():
    return Instance(
        [
            Job(quicksort_tree(40, 1), 0, "qs"),
            Job(star(6), 3, "wide"),
            Job(chain(5), 5, "deep"),
        ]
    )


class TestFeasibility:
    def test_valid_schedule(self, stream):
        s = simulate(stream, 4, WorkStealingScheduler(seed=0))
        s.validate()

    def test_single_worker(self, stream):
        s = simulate(stream, 1, WorkStealingScheduler(seed=0))
        s.validate()
        assert s.makespan >= stream.total_work

    def test_seeded_reproducible(self, stream):
        a = simulate(stream, 4, WorkStealingScheduler(seed=3))
        b = simulate(stream, 4, WorkStealingScheduler(seed=3))
        assert all(np.array_equal(x, y) for x, y in zip(a.completion, b.completion))

    def test_different_seeds_may_differ(self, stream):
        a = simulate(stream, 4, WorkStealingScheduler(seed=1))
        b = simulate(stream, 4, WorkStealingScheduler(seed=2))
        # Not guaranteed to differ, but flows are always feasible.
        a.validate()
        b.validate()


class TestStealing:
    def test_steals_happen_on_parallel_work(self):
        # A wide job entering at one worker must be stolen to spread.
        inst = Instance([Job(star(40), 0)])
        ws = WorkStealingScheduler(seed=0, steal_attempts=4)
        s = simulate(inst, 8, ws)
        s.validate()
        assert ws.steal_count > 0

    def test_deterministic_fallback_is_work_conserving(self):
        inst = Instance([Job(star(30), 0), Job(antichain(10), 2)])
        ws = WorkStealingScheduler(seed=0, deterministic_fallback=True)
        s = simulate(inst, 6, ws)
        assert check_work_conserving(s).ok

    def test_random_variant_may_leave_idle_processors(self):
        # With 1 probe and lots of workers, steal misses happen; the run
        # still completes correctly.
        inst = Instance([Job(star(50), 0)])
        ws = WorkStealingScheduler(seed=0, steal_attempts=1)
        s = simulate(inst, 16, ws)
        s.validate()
        assert ws.steal_miss_count >= 0  # counter wired up

    def test_makespan_near_greedy_bound(self):
        """Work stealing obeys the Graham bound W/m + span (for the
        work-conserving variant)."""
        dag = quicksort_tree(200, 3)
        inst = Instance([Job(dag, 0)])
        ws = WorkStealingScheduler(seed=0, deterministic_fallback=True)
        s = simulate(inst, 4, ws)
        assert s.max_flow <= dag.work // 4 + dag.span + 1


class TestConfig:
    def test_bad_attempts(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(steal_attempts=0)

    def test_name(self):
        assert WorkStealingScheduler().name == "WorkSteal[p2]"
        assert (
            WorkStealingScheduler(deterministic_fallback=True).name
            == "WorkSteal[wc]"
        )
