"""Runtime backstop for lint rule RPR201.

The engine freezes the instance-level CSR (``Instance.flat_graph``) with
``writeable=False``. Static analysis catches direct writes in this repo's
own source; the backstop below catches writes smuggled in from anywhere
else (user code, notebooks) at the next engine checkpoint. It is a plain
``assert`` — active in development and CI, compiled out under ``python -O``.
"""

import numpy as np
import pytest

from repro.core import Instance, Job, Schedule, chain, simulate, star
from repro.core.schedule import _flat_graph_still_frozen
from repro.schedulers import FIFOScheduler

requires_debug = pytest.mark.skipif(
    not __debug__, reason="asserts compiled out under python -O"
)


def small_instance() -> Instance:
    return Instance([Job(star(3), release=0), Job(chain(2), release=1)])


def test_flat_graph_ships_frozen():
    flat = small_instance().flat_graph
    assert flat.writable_arrays() == []
    with pytest.raises(ValueError):
        flat.indegree[0] = 99


def test_writable_arrays_names_the_thawed_array():
    flat = small_instance().flat_graph
    flat.indegree.setflags(write=True)
    assert flat.writable_arrays() == ["indegree"]
    flat.offsets.setflags(write=True)
    assert flat.writable_arrays() == ["offsets", "indegree"]


def test_frozen_check_does_not_force_csr_construction():
    instance = small_instance()
    assert _flat_graph_still_frozen(instance)
    assert "flat_graph" not in instance.__dict__, (
        "the backstop must not materialize the lazy CSR"
    )
    instance.flat_graph  # force it
    assert _flat_graph_still_frozen(instance)


@requires_debug
def test_schedule_checkpoint_rejects_thawed_csr():
    instance = small_instance()
    instance.flat_graph.child_indices.setflags(write=True)
    completion = [np.zeros(job.dag.n, dtype=np.int64) for job in instance]
    with pytest.raises(AssertionError, match="RPR201"):
        Schedule(instance, 2, completion)


@requires_debug
def test_simulate_checkpoint_rejects_thawed_csr():
    instance = small_instance()
    instance.flat_graph.indegree.setflags(write=True)
    with pytest.raises(AssertionError):
        simulate(instance, 2, FIFOScheduler())


def test_refreezing_restores_normal_operation():
    instance = small_instance()
    flat = instance.flat_graph
    flat.indegree.setflags(write=True)
    flat.indegree.setflags(write=False)
    schedule = simulate(instance, 2, FIFOScheduler())
    assert schedule.is_complete
