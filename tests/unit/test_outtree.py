"""Unit tests for Algorithm 𝒜 (semi-batched core + guess-and-double)."""

import numpy as np
import pytest

from repro.core import ConfigurationError, DAG, Instance, Job, chain, simulate, star
from repro.schedulers import (
    GeneralOutTreeScheduler,
    SemiBatchedOutTreeScheduler,
    lpf_schedule,
    single_forest_opt,
)
from repro.workloads import (
    galton_watson_tree,
    random_attachment_tree,
    semi_batched_instance,
)


def _forest_instance(half, n=4, size=40, seed=0):
    rng = np.random.default_rng(seed)
    dags = [galton_watson_tree(size, rng) for _ in range(n)]
    return semi_batched_instance(dags, half)


class TestConfigValidation:
    def test_alpha_too_small(self):
        with pytest.raises(ConfigurationError, match="alpha"):
            SemiBatchedOutTreeScheduler(opt=4, alpha=2)

    def test_opt_positive(self):
        with pytest.raises(ConfigurationError, match="opt"):
            SemiBatchedOutTreeScheduler(opt=0)

    def test_m_at_least_alpha(self):
        sched = SemiBatchedOutTreeScheduler(opt=4, alpha=4)
        with pytest.raises(ConfigurationError, match="m="):
            simulate(_forest_instance(2), 3, sched)

    def test_rejects_non_forest(self, diamond):
        inst = Instance([Job(diamond, 0)])
        with pytest.raises(ConfigurationError, match="out-forest"):
            simulate(inst, 8, SemiBatchedOutTreeScheduler(opt=4))

    def test_rejects_off_grid_releases(self):
        inst = Instance([Job(chain(3), 0), Job(chain(3), 5)])
        with pytest.raises(ConfigurationError, match="semi-batched"):
            simulate(inst, 8, SemiBatchedOutTreeScheduler(opt=8))  # half=4

    def test_general_beta_validation(self):
        with pytest.raises(ConfigurationError):
            GeneralOutTreeScheduler(beta=1)

    def test_general_guess_validation(self):
        with pytest.raises(ConfigurationError):
            GeneralOutTreeScheduler(initial_guess=0)

    def test_flow_guarantee_value(self):
        s = SemiBatchedOutTreeScheduler(opt=10, beta=258)
        assert s.flow_guarantee() == 1290

    def test_half_rounding(self):
        assert SemiBatchedOutTreeScheduler(opt=7).half == 4
        assert SemiBatchedOutTreeScheduler(opt=8).half == 4


class TestSemiBatchedExecution:
    def test_feasible_end_to_end(self):
        inst = _forest_instance(half=8)
        sched = SemiBatchedOutTreeScheduler(opt=16, alpha=4)
        s = simulate(inst, 8, sched, max_steps=50_000)
        s.validate()

    def test_head_is_verbatim_lpf(self):
        """During the first 2*half steps after arrival, the cohort runs
        exactly its LPF[m/alpha] schedule."""
        dag = galton_watson_tree(60, 1)
        opt = 2 * single_forest_opt(dag, 8)
        half = -(-opt // 2)
        inst = Instance([Job(dag, 0)])
        sched = SemiBatchedOutTreeScheduler(opt=opt, alpha=4)
        s = simulate(inst, 8, sched, max_steps=50_000)
        reference = lpf_schedule(dag, 2)  # m//alpha = 2
        for v in range(dag.n):
            if reference.completion[0][v] <= 2 * half:
                assert s.completion[0][v] == reference.completion[0][v]

    def test_respects_flow_guarantee(self):
        inst = _forest_instance(half=8, n=6)
        sched = SemiBatchedOutTreeScheduler(opt=16, alpha=4)
        s = simulate(inst, 8, sched, max_steps=100_000)
        assert s.max_flow <= sched.flow_guarantee()

    def test_merges_same_time_arrivals(self):
        # Two jobs at t=0 become one cohort; still feasible & finite.
        inst = Instance([Job(star(10), 0), Job(chain(5), 0)])
        s = simulate(inst, 8, SemiBatchedOutTreeScheduler(opt=10), max_steps=10_000)
        s.validate()

    def test_name(self):
        assert "AlgA-semibatched" in SemiBatchedOutTreeScheduler(opt=4).name

    def test_clairvoyant(self):
        assert SemiBatchedOutTreeScheduler(opt=4).clairvoyant


class TestGeneralScheduler:
    def test_feasible_on_arbitrary_arrivals(self):
        rng = np.random.default_rng(2)
        jobs = [Job(random_attachment_tree(30, rng), int(r)) for r in [0, 3, 7, 11, 30]]
        inst = Instance(jobs)
        alg = GeneralOutTreeScheduler(alpha=4, beta=4)
        s = simulate(inst, 8, alg, max_steps=200_000)
        s.validate()

    def test_restarts_happen_with_small_guess(self):
        # Work far exceeding AOPT=1 forces at least one doubling.
        rng = np.random.default_rng(3)
        jobs = [Job(random_attachment_tree(200, rng), 0)]
        inst = Instance(jobs)
        alg = GeneralOutTreeScheduler(alpha=4, beta=4, initial_guess=1)
        s = simulate(inst, 8, alg, max_steps=200_000)
        s.validate()
        assert alg.n_restarts >= 1
        assert alg.aopt == 2**alg.n_restarts

    def test_large_initial_guess_avoids_restarts(self):
        rng = np.random.default_rng(4)
        jobs = [Job(random_attachment_tree(50, rng), 0)]
        inst = Instance(jobs)
        alg = GeneralOutTreeScheduler(alpha=4, beta=8, initial_guess=64)
        s = simulate(inst, 8, alg, max_steps=200_000)
        s.validate()
        assert alg.n_restarts == 0

    def test_restart_reschedules_remainder_completely(self):
        """After restarts every subjob still runs exactly once (validate()
        checks uniqueness + completeness)."""
        rng = np.random.default_rng(5)
        jobs = [Job(random_attachment_tree(120, rng), 0), Job(chain(40), 2)]
        inst = Instance(jobs)
        alg = GeneralOutTreeScheduler(alpha=4, beta=2, initial_guess=1)
        s = simulate(inst, 8, alg, max_steps=400_000)
        s.validate()
        assert alg.n_restarts >= 1

    def test_rejects_non_forest(self, diamond):
        inst = Instance([Job(diamond, 0)])
        with pytest.raises(ConfigurationError, match="out-forest"):
            simulate(inst, 8, GeneralOutTreeScheduler())

    def test_name(self):
        assert GeneralOutTreeScheduler(beta=8).name == "AlgA[a=4,b=8]"


class TestCohortMapping:
    def test_to_global_roundtrip(self):
        from repro.schedulers.outtree import _Cohort, _Member

        dag_a, dag_b = star(2), chain(3)
        union, offsets = DAG.disjoint_union([dag_a, dag_b])
        cohort = _Cohort(
            release=0,
            members=[
                _Member(7, np.arange(dag_a.n)),
                _Member(9, np.arange(dag_b.n)),
            ],
            dag=union,
            offsets=offsets,
        )
        assert cohort.to_global(0) == (7, 0)
        assert cohort.to_global(2) == (7, 2)
        assert cohort.to_global(3) == (9, 0)
        assert cohort.to_global(5) == (9, 2)
