"""Unit tests for the simulation engine: semantics, protocol enforcement."""

import pytest

from repro.core import (
    ConfigurationError,
    Instance,
    Job,
    Scheduler,
    SchedulerProtocolError,
    SimulationError,
    SimulationObserver,
    chain,
    simulate,
    star,
)


class GreedyStub(Scheduler):
    """Minimal correct work-conserving scheduler for engine tests."""

    def reset(self, instance, m):
        self.ready = set()
        self.events: list[tuple] = []

    def on_job_arrival(self, t, job_id, job):
        self.events.append(("arrive", t, job_id))

    def on_nodes_ready(self, t, job_id, nodes):
        self.events.append(("ready", t, job_id, tuple(int(v) for v in nodes)))
        self.ready.update((job_id, int(v)) for v in nodes)

    def select(self, t, capacity):
        chosen = sorted(self.ready)[:capacity]
        self.ready.difference_update(chosen)
        return chosen


class TestEngineSemantics:
    def test_single_chain_runs_sequentially(self):
        inst = Instance([Job(chain(4), 0)])
        s = simulate(inst, 3, GreedyStub())
        assert s.completion[0].tolist() == [1, 2, 3, 4]

    def test_release_respected(self):
        inst = Instance([Job(chain(2), 5)])
        s = simulate(inst, 1, GreedyStub())
        assert s.completion[0].tolist() == [6, 7]

    def test_fast_forward_over_idle_gap(self):
        inst = Instance([Job(chain(1), 0), Job(chain(1), 1000)])
        s = simulate(inst, 1, GreedyStub(), max_steps=1100)
        assert s.completion[0][0] == 1
        assert s.completion[1][0] == 1001

    def test_arrival_events_delivered_once(self):
        stub = GreedyStub()
        inst = Instance([Job(star(2), 0), Job(chain(1), 2)])
        simulate(inst, 2, stub)
        arrivals = [e for e in stub.events if e[0] == "arrive"]
        assert arrivals == [("arrive", 0, 0), ("arrive", 2, 1)]

    def test_roots_ready_at_arrival(self):
        stub = GreedyStub()
        inst = Instance([Job(star(2), 3)])
        simulate(inst, 4, stub)
        assert ("ready", 3, 0, (0,)) in stub.events

    def test_children_ready_after_completion(self):
        stub = GreedyStub()
        inst = Instance([Job(chain(3), 0)])
        simulate(inst, 1, stub)
        ready_events = [e for e in stub.events if e[0] == "ready"]
        assert ready_events == [
            ("ready", 0, 0, (0,)),
            ("ready", 1, 0, (1,)),
            ("ready", 2, 0, (2,)),
        ]

    def test_capacity_limits_per_step(self):
        inst = Instance([Job(star(10), 0)])
        s = simulate(inst, 3, GreedyStub())
        usage = s.usage_profile()
        assert usage[1:].max() <= 3

    def test_result_validates(self, two_job_instance):
        s = simulate(two_job_instance, 2, GreedyStub())
        s.validate()

    def test_m_must_be_positive(self, two_job_instance):
        with pytest.raises(ConfigurationError):
            simulate(two_job_instance, 0, GreedyStub())


class LazyStub(GreedyStub):
    """Never schedules anything — must hit the max_steps guard."""

    def select(self, t, capacity):
        return []


class TestLivelockGuard:
    def test_lazy_scheduler_detected(self):
        inst = Instance([Job(chain(2), 0)])
        with pytest.raises(SimulationError, match="livelocked"):
            simulate(inst, 1, LazyStub(), max_steps=50)


class OverSelector(GreedyStub):
    def select(self, t, capacity):
        return [(0, v) for v in range(capacity + 1)]


class NonReadySelector(GreedyStub):
    def select(self, t, capacity):
        return [(0, 99)]


class DuplicateSelector(GreedyStub):
    def select(self, t, capacity):
        pick = sorted(self.ready)[:1]
        return pick + pick


class UnknownJobSelector(GreedyStub):
    def select(self, t, capacity):
        return [(42, 0)]


class TestProtocolEnforcement:
    @pytest.mark.parametrize(
        "bad,msg",
        [
            (OverSelector, "selected"),
            (NonReadySelector, "non-ready"),
            (DuplicateSelector, "twice"),
            (UnknownJobSelector, "unknown job"),
        ],
    )
    def test_bad_selections_rejected(self, bad, msg):
        inst = Instance([Job(star(5), 0)])
        with pytest.raises(SchedulerProtocolError, match=msg):
            simulate(inst, 3, bad())


class CountingObserver(SimulationObserver):
    def __init__(self):
        self.steps = []

    def on_step(self, t, selection, state):
        self.steps.append((t, len(selection), state.total_unfinished))


class TestObserver:
    def test_observer_sees_every_step(self):
        obs = CountingObserver()
        inst = Instance([Job(chain(3), 0)])
        simulate(inst, 1, GreedyStub(), observer=obs)
        assert [s[0] for s in obs.steps] == [0, 1, 2]
        # unfinished counts decrease to 0
        assert [s[2] for s in obs.steps] == [2, 1, 0]


class TestEngineState:
    def test_state_shapes(self, two_job_instance):
        from repro.core import EngineState

        state = EngineState(two_job_instance, 2)
        assert state.total_unfinished == two_job_instance.total_work
        assert state.ready_count() == 0
        assert state.unfinished_job_ids() == [0, 1]
