"""The opt-in on-disk workload cache: hits, misses, and safety valves."""

import numpy as np
import pytest

from repro.workloads import (
    build_fifo_adversary,
    clear_workload_cache,
    layered_tree,
    quicksort_tree,
    workload_cache_dir,
)
from repro.workloads.cache import cached_generator


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _entries(path):
    return sorted(path.glob("*.wlcache"))


class TestActivation:
    def test_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert workload_cache_dir() is None
        layered_tree([3, 3], seed=0)
        assert not list(tmp_path.iterdir())

    def test_env_resolved_at_call_time(self, cache_dir):
        assert workload_cache_dir() == cache_dir


class TestRoundTrip:
    def test_layered_tree_hit_is_identical(self, cache_dir):
        first = layered_tree([4] * 6, seed=3)
        assert len(_entries(cache_dir)) == 1
        second = layered_tree([4] * 6, seed=3)
        assert len(_entries(cache_dir)) == 1  # served from disk
        assert np.array_equal(first.child_indptr, second.child_indptr)
        assert np.array_equal(first.child_indices, second.child_indices)

    def test_distinct_args_get_distinct_entries(self, cache_dir):
        layered_tree([4] * 6, seed=3)
        layered_tree([4] * 6, seed=4)
        quicksort_tree(30, seed=3)
        assert len(_entries(cache_dir)) == 3

    def test_adversary_roundtrip(self, cache_dir):
        first = build_fifo_adversary(4, 2)
        assert len(_entries(cache_dir)) == 1
        second = build_fifo_adversary(4, 2)
        assert len(_entries(cache_dir)) == 1
        for a, b in zip(
            first.fifo_schedule.completion, second.fifo_schedule.completion
        ):
            assert np.array_equal(a, b)
        assert len(first.instance) == len(second.instance)

    def test_clear(self, cache_dir):
        layered_tree([3, 3], seed=0)
        quicksort_tree(20, seed=0)
        assert clear_workload_cache() == 2
        assert not _entries(cache_dir)


class TestSafetyValves:
    def test_no_seed_is_never_cached(self, cache_dir):
        layered_tree([3, 3])
        quicksort_tree(20)
        assert not _entries(cache_dir)

    def test_generator_seed_is_never_cached(self, cache_dir):
        rng = np.random.default_rng(0)
        quicksort_tree(20, seed=rng)
        assert not _entries(cache_dir)

    def test_random_key_placement_needs_int_seed(self, cache_dir):
        build_fifo_adversary(4, 2, key_placement="random", seed=None)
        assert not _entries(cache_dir)
        build_fifo_adversary(4, 2, key_placement="random", seed=5)
        assert len(_entries(cache_dir)) == 1

    @pytest.mark.parametrize(
        "garbage",
        [
            b"not a pickle",  # UnpicklingError
            b"garbage\n",  # parses as protocol-0 text, then ValueError
            b"",  # EOFError
        ],
    )
    def test_corrupt_entry_regenerates(self, cache_dir, garbage):
        layered_tree([3, 3], seed=1)
        (entry,) = _entries(cache_dir)
        entry.write_bytes(garbage)
        tree = layered_tree([3, 3], seed=1)
        assert tree.n == 6


class TestSchemaVersioning:
    def test_current_schema_is_v3(self):
        from repro.workloads import cache as cache_mod

        assert cache_mod._SCHEMA_VERSION == 3

    def test_v2_entries_are_invalidated_cleanly(self, cache_dir, monkeypatch):
        """Entries written under schema v2 never satisfy a v3 lookup: the
        version is folded into the key, so old files are simply unmatched
        (left dangling, not deserialized) and the generator re-runs."""
        from repro.workloads import cache as cache_mod

        calls = []

        @cached_generator
        def make(n: int, seed=None):
            calls.append(n)
            return list(range(n))

        monkeypatch.setattr(cache_mod, "_SCHEMA_VERSION", 2)
        assert make(5, seed=9) == [0, 1, 2, 3, 4]
        (v2_entry,) = _entries(cache_dir)
        assert calls == [5]

        monkeypatch.setattr(cache_mod, "_SCHEMA_VERSION", 3)
        assert make(5, seed=9) == [0, 1, 2, 3, 4]
        assert calls == [5, 5]  # regenerated, not served from the v2 file
        entries = _entries(cache_dir)
        assert len(entries) == 2 and v2_entry in entries

        # And the v3 entry round-trips as usual.
        assert make(5, seed=9) == [0, 1, 2, 3, 4]
        assert calls == [5, 5]


class TestDecorator:
    def test_wraps_metadata_and_custom_fn(self, cache_dir):
        calls = []

        @cached_generator
        def make(n: int, seed=None):
            """Docstring survives."""
            calls.append(n)
            return list(range(n))

        assert make.__doc__ == "Docstring survives."
        assert make(4, seed=1) == [0, 1, 2, 3]
        assert make(4, seed=1) == [0, 1, 2, 3]
        assert calls == [4]  # second call served from disk
