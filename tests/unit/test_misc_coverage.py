"""Coverage for corners the main suites skip: solver limits, CLI `all`,
boundary arithmetic, cached properties."""

import numpy as np
import pytest

from repro.core import Instance, Job, SolverError, chain, star
from repro.schedulers import GeneralOutTreeScheduler


class TestSolverLimits:
    def test_branch_state_cap(self):
        # Drive the feasibility DFS directly with an impossible deadline and
        # a tiny expansion budget: the guard must trip before exhaustion.
        from repro.schedulers.offline import _feasible_with_deadline

        inst = Instance([Job(chain(6), 0)])
        with pytest.raises(SolverError, match="states"):
            _feasible_with_deadline(inst, 1, flow_bound=6, max_states=2)


class TestDagCachedProps:
    def test_max_depth_equals_span(self, kary):
        assert kary.max_depth == kary.span

    def test_n_edges(self, kary):
        assert kary.n_edges == kary.n - 1

    def test_hash_usable_in_sets(self, small_tree, kary):
        assert len({small_tree, kary, small_tree}) == 2


class TestEpochBoundaries:
    def test_next_boundary_arithmetic(self):
        alg = GeneralOutTreeScheduler(initial_guess=4)
        inst = Instance([Job(chain(2), 0)])
        alg.reset(inst, 8)
        assert alg._next_boundary(0) == 0
        assert alg._next_boundary(1) == 4
        assert alg._next_boundary(4) == 4
        assert alg._next_boundary(5) == 8
        alg.epoch_start = 3
        assert alg._next_boundary(3) == 3
        assert alg._next_boundary(4) == 7

    def test_half_tracks_aopt(self):
        alg = GeneralOutTreeScheduler(initial_guess=2)
        inst = Instance([Job(chain(2), 0)])
        alg.reset(inst, 8)
        assert alg.half == 2
        alg.aopt = 16
        assert alg.half == 16


class TestScheduleAtOrdering:
    def test_at_returns_sorted_pairs(self):
        from repro.core import Schedule

        inst = Instance([Job(star(2), 0), Job(star(2), 0)])
        s = Schedule(
            inst, 4, [np.array([1, 2, 2]), np.array([1, 2, 2])]
        )
        assert s.at(2) == sorted(s.at(2))


class TestCliAll:
    def test_all_with_shrunk_registry(self, monkeypatch, capsys):
        from repro.cli import main
        from repro.experiments import registry

        shrunk = {"E1": registry.EXPERIMENTS["E1"]}
        monkeypatch.setattr(registry, "EXPERIMENTS", shrunk)
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_all_only_and_jobs(self, capsys):
        from repro.cli import main

        assert main(["all", "--scale", "smoke", "--only", "E1,E5", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E5:" in out
        assert out.index("E1:") < out.index("E5:")  # registry order kept

    def test_run_engine_stats_note(self, capsys):
        from repro.cli import main

        assert main(["run", "E5", "--scale", "smoke", "--engine-stats"]) == 0
        out = capsys.readouterr().out
        assert "note: engine: " in out


class TestClairvoyanceMatrix:
    """The information-model flags match the paper's Section 3 taxonomy."""

    def test_nonclairvoyant_policies(self):
        from repro.schedulers import (
            ArbitraryTieBreak,
            DepthTieBreak,
            FIFOScheduler,
            GlobalArbitraryScheduler,
            RandomScheduler,
            RandomTieBreak,
            ReverseTieBreak,
            RoundRobinScheduler,
            WorkStealingScheduler,
        )

        for sched in (
            FIFOScheduler(ArbitraryTieBreak()),
            FIFOScheduler(ReverseTieBreak()),
            FIFOScheduler(RandomTieBreak(0)),
            FIFOScheduler(DepthTieBreak()),
            GlobalArbitraryScheduler(),
            RandomScheduler(0),
            RoundRobinScheduler(),
            WorkStealingScheduler(0),
        ):
            assert not sched.clairvoyant, sched.name

    def test_clairvoyant_policies(self):
        from repro.schedulers import (
            GeneralOutTreeScheduler,
            LongestPathTieBreak,
            LPFScheduler,
            FIFOScheduler,
            MostChildrenTieBreak,
            PhasedOutForestScheduler,
            SemiBatchedOutTreeScheduler,
            SRPTScheduler,
        )

        for sched in (
            FIFOScheduler(LongestPathTieBreak()),
            FIFOScheduler(MostChildrenTieBreak()),
            LPFScheduler(),
            SemiBatchedOutTreeScheduler(opt=4),
            GeneralOutTreeScheduler(),
            PhasedOutForestScheduler(),
            SRPTScheduler(),
        ):
            assert sched.clairvoyant, sched.name
