"""Unit tests for packed instances and arrival processes."""

import numpy as np
import pytest

from repro.core import ConfigurationError, chain, star
from repro.workloads import (
    batched_instance,
    bursty_instance,
    packed_instance,
    poisson_instance,
    random_series_parallel,
    semi_batched_instance,
)


class TestPackedInstance:
    def test_witness_flow_exact(self):
        pk = packed_instance(m=6, n_jobs=5, flow=8, period=4, seed=0)
        assert pk.witness.max_flow == 8
        assert pk.flow == 8
        pk.witness.validate()

    def test_steady_state_fully_packed(self):
        pk = packed_instance(m=6, n_jobs=6, flow=8, period=4, seed=1)
        usage = pk.witness.usage_profile()
        # Steady-state columns (after ramp-up, before ramp-down) are full.
        start = pk.flow + 1
        end = pk.instance.releases.max()
        assert bool(np.all(usage[start : end + 1] == 6))

    def test_per_job_flow_uniform(self):
        pk = packed_instance(m=8, n_jobs=4, flow=6, period=3, seed=2)
        assert pk.witness.flows.tolist() == [6, 6, 6, 6]

    def test_releases(self):
        pk = packed_instance(m=4, n_jobs=3, flow=4, period=2, seed=0)
        assert pk.instance.releases.tolist() == [0, 2, 4]

    def test_jobs_are_forests(self):
        pk = packed_instance(m=4, n_jobs=3, flow=4, period=2, seed=0)
        assert pk.instance.is_out_forest

    def test_m_too_small_rejected(self):
        with pytest.raises(ConfigurationError, match="too small"):
            packed_instance(m=2, n_jobs=4, flow=9, period=3, seed=0)

    def test_flow_period_relation(self):
        with pytest.raises(ConfigurationError, match="flow must be >= period"):
            packed_instance(m=4, n_jobs=2, flow=2, period=3, seed=0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            packed_instance(m=0, n_jobs=1, flow=2, period=2)
        with pytest.raises(ConfigurationError):
            packed_instance(m=2, n_jobs=0, flow=2, period=2)
        with pytest.raises(ConfigurationError):
            packed_instance(m=2, n_jobs=1, flow=2, period=0)


class TestBatchedInstance:
    def test_releases(self):
        inst = batched_instance([chain(2), chain(2), chain(2)], period=5)
        assert inst.releases.tolist() == [0, 5, 10]
        assert inst.is_batched(5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            batched_instance([], 4)
        with pytest.raises(ConfigurationError):
            batched_instance([chain(1)], 0)


class TestSemiBatchedInstance:
    def test_consecutive_slots(self):
        inst = semi_batched_instance([chain(2)] * 3, half_period=4)
        assert inst.releases.tolist() == [0, 4, 8]
        assert inst.is_semi_batched(4)

    def test_skip_slots(self):
        inst = semi_batched_instance([chain(2)] * 3, 4, skip_slots=[1])
        assert inst.releases.tolist() == [0, 8, 12]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            semi_batched_instance([], 4)
        with pytest.raises(ConfigurationError):
            semi_batched_instance([chain(1)], 0)


class TestPoisson:
    def test_nondecreasing_releases(self):
        inst = poisson_instance([star(2)] * 20, rate=0.5, seed=0)
        rel = inst.releases
        assert bool(np.all(np.diff(rel) >= 0))

    def test_first_job_at_zero(self):
        inst = poisson_instance([chain(2)] * 3, rate=1.0, seed=1)
        assert inst.releases.min() == 0

    def test_rate_scales_density(self):
        slow = poisson_instance([chain(2)] * 50, rate=0.1, seed=2)
        fast = poisson_instance([chain(2)] * 50, rate=10.0, seed=2)
        assert slow.releases.max() > fast.releases.max()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_instance([chain(1)], rate=0)
        with pytest.raises(ConfigurationError):
            poisson_instance([], rate=1.0)


class TestBursty:
    def test_burst_structure(self):
        inst = bursty_instance([chain(2)] * 6, burst_size=3, quiet_gap=10)
        assert inst.releases.tolist() == [0, 0, 0, 10, 10, 10]

    def test_zero_gap(self):
        inst = bursty_instance([chain(2)] * 4, burst_size=2, quiet_gap=0)
        assert inst.releases.tolist() == [0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bursty_instance([chain(1)], burst_size=0, quiet_gap=1)
        with pytest.raises(ConfigurationError):
            bursty_instance([chain(1)], burst_size=1, quiet_gap=-1)
        with pytest.raises(ConfigurationError):
            bursty_instance([], burst_size=1, quiet_gap=1)


class TestSeriesParallel:
    def test_size_close_to_target(self):
        d = random_series_parallel(60, seed=0)
        assert 40 <= d.n <= 80

    def test_acyclic_by_construction(self):
        for seed in range(5):
            d = random_series_parallel(30, seed=seed)
            assert d.span >= 1  # depth computation implies acyclicity

    def test_pure_series_is_chain(self):
        d = random_series_parallel(10, seed=0, p_series=1.0)
        assert d.is_chain

    def test_pure_parallel_is_antichain(self):
        d = random_series_parallel(10, seed=0, p_series=0.0)
        assert d.span == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_series_parallel(0)
        with pytest.raises(ConfigurationError):
            random_series_parallel(5, p_series=1.5)
        with pytest.raises(ConfigurationError):
            random_series_parallel(5, max_parallel=1)
