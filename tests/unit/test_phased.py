"""Unit tests for phased jobs: segment decomposition + phased scheduler."""

import numpy as np
import pytest

from repro.core import (
    ConfigurationError,
    DAG,
    Instance,
    Job,
    series_segments,
    simulate,
    star,
)
from repro.schedulers import GeneralOutTreeScheduler, PhasedOutForestScheduler
from repro.workloads import phased_parallel_for, series_of_trees


class TestSeriesSegments:
    def test_forest_is_one_segment(self, small_tree):
        segs = series_segments(small_tree)
        assert len(segs) == 1
        assert segs[0].tolist() == list(range(small_tree.n))

    def test_two_phase_job(self):
        dag = star(3).series(star(2))
        segs = series_segments(dag)
        assert len(segs) == 2
        assert sum(len(s) for s in segs) == dag.n

    def test_segments_cover_and_are_forests(self):
        dag = series_of_trees(4, 20, seed=0)
        segs = series_segments(dag)
        assert segs is not None
        covered = np.concatenate(segs)
        assert sorted(covered.tolist()) == list(range(dag.n))
        for seg in segs:
            sub, _ = dag.induced_subgraph(seg)
            assert sub.is_out_forest

    def test_segments_ordered_forward(self):
        dag = series_of_trees(3, 10, seed=1)
        segs = series_segments(dag)
        depth = dag.depth
        for a, b in zip(segs, segs[1:]):
            assert depth[a].max() < depth[b].min()

    def test_parallel_phased_jobs_rejected(self):
        phased = star(2).series(star(2))
        dag = phased.parallel(phased)
        assert series_segments(dag) is None

    def test_non_sp_rejected(self):
        n_dag = DAG(4, [(0, 2), (1, 2), (1, 3)])
        assert series_segments(n_dag) is None

    def test_pfor_pipeline_segment_count(self):
        dag = phased_parallel_for(5, 4)
        segs = series_segments(dag)
        assert len(segs) == 5

    def test_diamond_has_segments(self, diamond):
        # 0 -> {1,2} -> 3: segments {0,1,2} (still an out-tree after the
        # maximal merge) followed by {3}.
        segs = series_segments(diamond)
        assert segs is not None
        assert [len(s) for s in segs] == [3, 1]


class TestPhasedWorkloads:
    def test_series_of_trees_shape(self):
        dag = series_of_trees(3, 15, seed=0)
        assert dag.n == 45
        assert not dag.is_out_forest  # the joins add multi-parents

    def test_single_phase_is_forest(self):
        assert series_of_trees(1, 10, seed=0).is_out_forest

    def test_pfor_counts(self):
        dag = phased_parallel_for(3, 5)
        assert dag.n == 3 * 6
        assert dag.span == 3 * 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            series_of_trees(0, 5)
        with pytest.raises(ConfigurationError):
            series_of_trees(2, 0)
        with pytest.raises(ConfigurationError):
            phased_parallel_for(0, 3)
        with pytest.raises(ConfigurationError):
            phased_parallel_for(3, 0)


class TestPhasedScheduler:
    def test_feasible_on_phased_stream(self):
        rng = np.random.default_rng(0)
        jobs = [
            Job(series_of_trees(3, 24, rng), r, f"p{r}") for r in (0, 4, 9)
        ]
        inst = Instance(jobs)
        s = simulate(inst, 8, PhasedOutForestScheduler(beta=8), max_steps=200_000)
        s.validate()

    def test_plain_forests_still_work(self, two_job_instance):
        s = simulate(
            two_job_instance, 8, PhasedOutForestScheduler(beta=8), max_steps=50_000
        )
        s.validate()

    def test_base_algorithm_rejects_phased(self):
        inst = Instance([Job(star(2).series(star(2)), 0)])
        with pytest.raises(ConfigurationError, match="out-forest"):
            simulate(inst, 8, GeneralOutTreeScheduler())

    def test_phased_rejects_non_sp(self):
        n_dag = DAG(4, [(0, 2), (1, 2), (1, 3)])
        inst = Instance([Job(n_dag, 0)])
        with pytest.raises(ConfigurationError, match="series of out-forests"):
            simulate(inst, 8, PhasedOutForestScheduler())

    def test_segments_execute_in_order(self):
        dag = phased_parallel_for(3, 4)
        inst = Instance([Job(dag, 0)])
        s = simulate(inst, 8, PhasedOutForestScheduler(beta=8), max_steps=100_000)
        s.validate()
        segs = series_segments(dag)
        comp = s.completion[0]
        for a, b in zip(segs, segs[1:]):
            assert comp[a].max() < comp[b].min() + 1  # later segments later

    def test_restarts_with_phases(self):
        rng = np.random.default_rng(2)
        jobs = [Job(series_of_trees(4, 60, rng), 0)]
        inst = Instance(jobs)
        alg = PhasedOutForestScheduler(beta=2, initial_guess=1)
        s = simulate(inst, 8, alg, max_steps=500_000)
        s.validate()
        assert alg.n_restarts >= 1

    def test_name(self):
        assert PhasedOutForestScheduler(beta=8).name == "PhasedA[a=4,b=8]"
