"""Unit tests for the work-conserving baselines."""

import numpy as np
import pytest

from repro.analysis import check_work_conserving
from repro.core import Instance, Job, antichain, chain, simulate, star
from repro.schedulers import (
    GlobalArbitraryScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

SCHEDULERS = [
    GlobalArbitraryScheduler,
    lambda: RandomScheduler(seed=1),
    RoundRobinScheduler,
]


@pytest.fixture
def mixed_instance():
    return Instance(
        [
            Job(star(8), 0, "wide"),
            Job(chain(6), 1, "deep"),
            Job(antichain(5), 3, "flat"),
        ]
    )


class TestFeasibility:
    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_valid_schedules(self, make, mixed_instance):
        s = simulate(mixed_instance, 3, make() if callable(make) else make)
        s.validate()

    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_work_conserving(self, make, mixed_instance):
        s = simulate(mixed_instance, 3, make() if callable(make) else make)
        assert check_work_conserving(s).ok

    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_single_processor_serializes(self, make, mixed_instance):
        s = simulate(mixed_instance, 1, make() if callable(make) else make)
        assert s.makespan >= mixed_instance.total_work


class TestRandomScheduler:
    def test_seeded_reproducible(self, mixed_instance):
        a = simulate(mixed_instance, 2, RandomScheduler(seed=9))
        b = simulate(mixed_instance, 2, RandomScheduler(seed=9))
        assert all(
            np.array_equal(x, y) for x, y in zip(a.completion, b.completion)
        )

    def test_name(self):
        assert RandomScheduler().name == "Greedy[random]"


class TestRoundRobin:
    def test_alternates_between_jobs(self):
        inst = Instance([Job(antichain(4), 0), Job(antichain(4), 0)])
        s = simulate(inst, 2, RoundRobinScheduler())
        # With capacity 2 and two jobs, each step runs one subjob of each.
        for t in range(1, s.makespan + 1):
            jobs_at_t = {j for j, _ in s.at(t)}
            assert len(jobs_at_t) == 2

    def test_name(self):
        assert RoundRobinScheduler().name == "RoundRobin"


class TestGlobalArbitrary:
    def test_fills_capacity(self):
        inst = Instance([Job(antichain(9), 0)])
        s = simulate(inst, 3, GlobalArbitraryScheduler())
        assert s.makespan == 3
        assert s.usage_profile()[1:].tolist() == [3, 3, 3]
