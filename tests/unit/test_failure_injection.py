"""Failure-injection tests: corrupted inputs, misbehaving schedulers,
checker negatives — the library must fail loudly and precisely."""

import numpy as np
import pytest

from repro.core import (
    ConfigurationError,
    Instance,
    Job,
    Schedule,
    Scheduler,
    SchedulerProtocolError,
    antichain,
    chain,
    simulate,
    star,
)
from repro.workloads import batched_instance


class TestCheckerNegatives:
    def test_lemma_6_5_detects_violation(self):
        """A hand-built schedule that parks the oldest job way too long
        must fail Lemma 6.5's clause (1)."""
        from repro.analysis import check_lemma_6_5

        opt = 2
        # 40 batches: enough that i - log tau > 0 (tau(1, 2) = 4 -> log 2).
        dags = [chain(2) for _ in range(40)]
        inst = batched_instance(dags, opt)
        m = 1
        # Schedule every job immediately except job 0, which is parked to
        # the very end (flow 80+). This violates the induction's clause (1)
        # at some batch time.
        completions = []
        horizon = 40 * opt
        for i, job in enumerate(inst):
            c = np.zeros(2, dtype=np.int64)
            if i == 0:
                c[:] = [horizon + 1, horizon + 2]
            else:
                c[:] = [job.release + 1, job.release + 2]
            completions.append(c)
        sched = Schedule(inst, m, completions)
        sched.validate()
        assert not check_lemma_6_5(sched, opt).ok
        # It is also NOT a FIFO schedule, consistent with the lemma failing
        # (Lemma 6.4 may or may not fail; 6.5's clause (1) must).

    def test_head_tail_reports_ragged_interior(self):
        from repro.analysis import head_tail_shape

        inst = Instance([Job(antichain(7), 0)])
        # widths: 2, 1, 2, 2 — interior dip at t=2.
        comp = np.array([1, 1, 2, 3, 3, 4, 4])
        sched = Schedule(inst, 2, [comp])
        shape = head_tail_shape(sched, 2)
        assert shape.last_idle_step == 2
        assert shape.head_length == 2

    def test_fairness_requires_complete_schedule(self):
        from repro.analysis import fairness_report
        from repro.core import ScheduleError

        inst = Instance([Job(chain(2), 0)])
        partial = Schedule(inst, 1, [np.array([1, 0])])
        with pytest.raises(ScheduleError):
            fairness_report(partial)


class TestCorruptArchives:
    def test_npz_with_wrong_completion_shape(self, tmp_path):
        from repro.core import load_schedule_npz, save_schedule_npz
        from repro.schedulers import FIFOScheduler

        inst = Instance([Job(star(3), 0)])
        sched = simulate(inst, 2, FIFOScheduler())
        path = tmp_path / "x.npz"
        save_schedule_npz(sched, path)
        # Corrupt: truncate one completion array.
        data = dict(np.load(path))
        data["job0_completion"] = data["job0_completion"][:-1]
        np.savez_compressed(path, **data)
        with pytest.raises(Exception):
            load_schedule_npz(path)

    def test_instance_json_garbage(self, tmp_path):
        from repro.core import load_instance_json

        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(Exception):
            load_instance_json(path)


class MidRunCrasher(Scheduler):
    """Behaves for two steps, then selects garbage."""

    def reset(self, instance, m):
        self.ready = set()
        self.steps = 0

    def on_nodes_ready(self, t, job_id, nodes):
        self.ready.update((job_id, int(v)) for v in nodes)

    def select(self, t, capacity):
        self.steps += 1
        if self.steps > 2:
            return [(0, 10_000)]
        chosen = sorted(self.ready)[:capacity]
        self.ready.difference_update(chosen)
        return chosen


class TestMisbehavingSchedulers:
    def test_mid_run_protocol_violation_caught(self):
        inst = Instance([Job(chain(10), 0)])
        with pytest.raises(SchedulerProtocolError, match="non-ready"):
            simulate(inst, 1, MidRunCrasher())

    def test_scheduler_exception_propagates(self):
        class Boom(Scheduler):
            def reset(self, instance, m):
                pass

            def select(self, t, capacity):
                raise RuntimeError("scheduler bug")

        inst = Instance([Job(chain(2), 0)])
        with pytest.raises(RuntimeError, match="scheduler bug"):
            simulate(inst, 1, Boom())

    def test_negative_job_id_rejected(self):
        class NegativeJob(Scheduler):
            def reset(self, instance, m):
                pass

            def select(self, t, capacity):
                return [(-1, 0)]

        inst = Instance([Job(chain(2), 0)])
        with pytest.raises(SchedulerProtocolError):
            simulate(inst, 1, NegativeJob())


class TestConfigErrorsEverywhere:
    """Constructor validation is uniform across the library."""

    def test_exceptions_share_base(self):
        from repro.core import ReproError

        for exc in (ConfigurationError, SchedulerProtocolError):
            assert issubclass(exc, ReproError)

    def test_infeasible_error_collects_violations(self):
        from repro.core import InfeasibleScheduleError

        inst = Instance([Job(chain(3), 0)])
        bad = Schedule(inst, 1, [np.array([3, 2, 1])])
        with pytest.raises(InfeasibleScheduleError) as err:
            bad.validate()
        assert err.value.violations
        assert "precedence" in str(err.value)
