"""Edge cases for trace collection and the remaining small surfaces."""

import pytest

from repro.core import (
    Instance,
    Job,
    MetricsCollector,
    TraceSummary,
    antichain,
    chain,
    simulate,
)
from repro.schedulers import FIFOScheduler, WorkStealingScheduler


class TestTraceEdges:
    def test_empty_utilization_profile(self):
        assert MetricsCollector().utilization_profile().size == 0

    def test_gap_between_arrivals_not_observed(self):
        """Fast-forwarded dead time produces no observed steps."""
        inst = Instance([Job(chain(2), 0), Job(chain(2), 100)])
        collector = MetricsCollector()
        simulate(inst, 1, FIFOScheduler(), observer=collector, max_steps=200)
        assert collector.times == [0, 1, 100, 101]

    def test_summary_is_frozen_dataclass(self):
        inst = Instance([Job(antichain(4), 0)])
        collector = MetricsCollector()
        simulate(inst, 2, FIFOScheduler(), observer=collector)
        summary = collector.summary()
        assert isinstance(summary, TraceSummary)
        with pytest.raises(AttributeError):
            summary.n_steps = 99

    def test_worksteal_counters_reset_between_runs(self):
        inst = Instance([Job(antichain(20), 0)])
        ws = WorkStealingScheduler(seed=0, steal_attempts=4)
        simulate(inst, 4, ws)
        first = ws.steal_count
        simulate(inst, 4, ws)
        assert ws.steal_count == first  # reset() zeroed and re-accumulated

    def test_collector_reusable_is_cumulative(self):
        """A collector passed to two runs keeps appending (documented as
        per-run objects; this pins the current behaviour)."""
        inst = Instance([Job(chain(2), 0)])
        collector = MetricsCollector()
        simulate(inst, 1, FIFOScheduler(), observer=collector)
        n1 = len(collector.times)
        simulate(inst, 1, FIFOScheduler(), observer=collector)
        assert len(collector.times) == 2 * n1


class TestCaseResultRepr:
    def test_ratio_property(self):
        from repro.analysis import CaseResult, OptReference

        case = CaseResult(
            scheduler="X",
            clairvoyant=False,
            m=2,
            n_jobs=1,
            total_work=4,
            max_flow=8,
            opt_reference=OptReference.exact(4),
            makespan=8,
        )
        assert case.ratio == 2.0
