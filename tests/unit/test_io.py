"""Unit tests for serialization round-trips."""

import numpy as np
import pytest

from repro.core import (
    DAG,
    Instance,
    Job,
    load_instance_json,
    load_schedule_npz,
    save_instance_json,
    save_schedule_npz,
    simulate,
    star,
)
from repro.core.io import (
    dag_from_dict,
    dag_to_dict,
    instance_from_dict,
    instance_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.schedulers import FIFOScheduler
from repro.workloads import build_fifo_adversary


@pytest.fixture
def instance(small_tree):
    return Instance([Job(small_tree, 0, "a"), Job(star(3), 2, "b")])


@pytest.fixture
def schedule(instance):
    return simulate(instance, 2, FIFOScheduler())


class TestDictRoundtrips:
    def test_dag(self, small_tree):
        assert dag_from_dict(dag_to_dict(small_tree)) == small_tree

    def test_dag_no_edges(self):
        d = DAG(3)
        assert dag_from_dict(dag_to_dict(d)) == d

    def test_instance(self, instance):
        back = instance_from_dict(instance_to_dict(instance))
        assert len(back) == len(instance)
        for a, b in zip(back, instance):
            assert a.dag == b.dag
            assert a.release == b.release
            assert a.label == b.label

    def test_schedule(self, schedule):
        back = schedule_from_dict(schedule_to_dict(schedule))
        assert back.m == schedule.m
        assert back.max_flow == schedule.max_flow
        for a, b in zip(back.completion, schedule.completion):
            assert np.array_equal(a, b)
        back.validate()

    def test_dict_is_json_safe(self, schedule):
        import json

        json.dumps(schedule_to_dict(schedule))


class TestFileRoundtrips:
    def test_instance_json(self, instance, tmp_path):
        path = tmp_path / "inst.json"
        save_instance_json(instance, path)
        back = load_instance_json(path)
        assert back.releases.tolist() == instance.releases.tolist()
        assert [j.label for j in back] == [j.label for j in instance]

    def test_schedule_npz(self, schedule, tmp_path):
        path = tmp_path / "sched.npz"
        save_schedule_npz(schedule, path)
        back = load_schedule_npz(path)
        assert back.m == schedule.m
        assert back.flows.tolist() == schedule.flows.tolist()
        back.validate()

    def test_npz_roundtrip_of_adversarial_family(self, tmp_path):
        adv = build_fifo_adversary(4, n_jobs=6)
        path = tmp_path / "adv.npz"
        save_schedule_npz(adv.fifo_schedule, path)
        back = load_schedule_npz(path)
        assert back.max_flow == adv.fifo_max_flow
        for a, b in zip(back.completion, adv.fifo_schedule.completion):
            assert np.array_equal(a, b)

    def test_npz_accepts_str_paths(self, schedule, tmp_path):
        path = str(tmp_path / "s.npz")
        save_schedule_npz(schedule, path)
        assert load_schedule_npz(path).max_flow == schedule.max_flow
