"""Unit tests for series-parallel recognition."""

import pytest

from repro.core import (
    DAG,
    GraphError,
    antichain,
    chain,
    complete_kary_tree,
    is_series_parallel,
    sp_decomposition,
    star,
)
from repro.workloads import (
    map_reduce_dag,
    parallel_for_tree,
    quicksort_tree,
    random_series_parallel,
)


class TestPositive:
    def test_single_node(self):
        assert is_series_parallel(chain(1))
        assert sp_decomposition(chain(1)).kind == "leaf"

    def test_chain(self):
        tree = sp_decomposition(chain(4))
        assert tree.kind == "series"
        assert tree.size() == 4

    def test_antichain(self):
        tree = sp_decomposition(antichain(3))
        assert tree.kind == "parallel"
        assert len(tree.children) == 3

    def test_star(self):
        tree = sp_decomposition(star(3))
        assert tree.kind == "series"
        assert [c.kind for c in tree.children] == ["leaf", "parallel"]

    def test_all_out_trees_are_sp(self):
        for dag in (complete_kary_tree(3, 3), quicksort_tree(40, 0), parallel_for_tree(6, body_span=2)):
            assert is_series_parallel(dag)

    def test_fork_join_is_sp(self):
        assert is_series_parallel(map_reduce_dag(8, map_span=2))

    def test_builder_outputs_recognized(self):
        for seed in range(6):
            assert is_series_parallel(random_series_parallel(25, seed=seed))

    def test_compositions_recognized(self):
        dag = (chain(2).parallel(chain(3))).series(star(2))
        assert is_series_parallel(dag)

    def test_diamond_is_sp(self, diamond):
        # 0 -> {1,2} -> 3 is series(leaf, parallel, leaf) as a partial order.
        assert is_series_parallel(diamond)


class TestNegative:
    def test_the_n(self):
        # a -> c, b -> c, b -> d: the canonical forbidden pattern.
        assert not is_series_parallel(DAG(4, [(0, 2), (1, 2), (1, 3)]))

    def test_n_embedded_in_larger_dag(self):
        edges = [(0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5)]
        assert not is_series_parallel(DAG(6, edges))

    def test_known_lpf_counterexample_not_sp(self):
        from repro.experiments.e11_dag_shaping_gap import known_counterexample

        dag, _ = known_counterexample()
        assert not is_series_parallel(dag)

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            sp_decomposition(DAG(0))


class TestDecompositionStructure:
    def test_leaves_partition_nodes(self):
        dag = random_series_parallel(30, seed=1)
        tree = sp_decomposition(dag)
        assert sorted(tree.leaves()) == list(range(dag.n))

    def test_series_children_ordered(self):
        dag = chain(2).series(chain(2))
        tree = sp_decomposition(dag)
        assert tree.kind == "series"
        # First series child's leaves strictly precede the last child's.
        first = set(tree.children[0].leaves())
        last = set(tree.children[-1].leaves())
        reach_sets = {u: set(dag.descendants(u).tolist()) for u in range(dag.n)}
        assert all(v in reach_sets[u] for u in first for v in last)

    def test_size_matches(self):
        dag = random_series_parallel(20, seed=2)
        assert sp_decomposition(dag).size() == dag.n
