"""Unit tests for the DAG representation and derived quantities."""

import numpy as np
import pytest

from repro.core import (
    DAG,
    CycleError,
    GraphError,
    NotAForestError,
    antichain,
    caterpillar,
    chain,
    complete_kary_tree,
    spider,
    star,
)


class TestConstruction:
    def test_empty_dag(self):
        d = DAG(0)
        assert d.n == 0 and d.span == 0 and d.work == 0

    def test_single_node(self):
        d = DAG(1)
        assert d.span == 1
        assert d.roots.tolist() == [0]
        assert d.leaves.tolist() == [0]

    def test_edges_recorded_both_directions(self, small_tree):
        assert small_tree.children(0).tolist() == [1, 2]
        assert small_tree.parents(4).tolist() == [2]
        assert small_tree.parents(0).size == 0

    def test_edge_list_roundtrip(self, small_tree):
        rebuilt = DAG(small_tree.n, small_tree.edge_list())
        assert rebuilt == small_tree

    def test_self_loop_rejected(self):
        with pytest.raises(CycleError):
            DAG(2, [(0, 0)])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            DAG(3, [(0, 1), (1, 2), (2, 0)])

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            DAG(2, [(0, 1), (1, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            DAG(2, [(0, 1), (0, 1)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphError):
            DAG(3, [(0, 1, 2)])

    def test_edge_out_of_range(self):
        with pytest.raises(ValueError):
            DAG(2, [(0, 5)])

    def test_negative_n(self):
        with pytest.raises(ValueError):
            DAG(-1)


class TestFromParents:
    def test_tree(self):
        d = DAG.from_parents([-1, 0, 0, 1])
        assert d.is_out_tree
        assert d.children(0).tolist() == [1, 2]
        assert d.children(1).tolist() == [3]

    def test_forest(self):
        d = DAG.from_parents([-1, -1, 0, 1])
        assert d.is_out_forest and not d.is_out_tree
        assert d.roots.tolist() == [0, 1]

    def test_roundtrip_parent_array(self):
        parents = [-1, 0, 0, 2, 2, -1]
        d = DAG.from_parents(parents)
        assert d.parent_array().tolist() == parents

    def test_out_of_range_parent(self):
        with pytest.raises(GraphError):
            DAG.from_parents([-1, 7])

    def test_parent_cycle_detected(self):
        with pytest.raises(CycleError):
            DAG.from_parents([1, 0])


class TestNetworkx:
    def test_roundtrip(self, small_tree):
        g = small_tree.to_networkx()
        assert g.number_of_nodes() == small_tree.n
        assert DAG.from_networkx(g) == small_tree

    def test_bad_node_labels(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("a", "b")
        with pytest.raises(GraphError):
            DAG.from_networkx(g)


class TestDepthHeight:
    def test_small_tree_depths(self, small_tree):
        # 0 root; 1,2 at depth 2; 3,4 at depth 3; 5 at depth 4
        assert small_tree.depth.tolist() == [1, 2, 2, 3, 3, 4]

    def test_small_tree_heights(self, small_tree):
        # leaves 1,3,5 -> 1; 4 -> 2; 2 -> 3; 0 -> 4
        assert small_tree.height.tolist() == [4, 1, 3, 1, 2, 1]

    def test_diamond_depths(self, diamond):
        assert diamond.depth.tolist() == [1, 2, 2, 3]

    def test_diamond_heights(self, diamond):
        assert diamond.height.tolist() == [3, 2, 2, 1]

    def test_span_equals_longest_path(self, small_tree, diamond):
        assert small_tree.span == 4
        assert diamond.span == 3

    def test_depth_immutable(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.depth[0] = 9

    def test_chain_depth_height_mirror(self):
        d = chain(6)
        assert d.depth.tolist() == [1, 2, 3, 4, 5, 6]
        assert d.height.tolist() == [6, 5, 4, 3, 2, 1]

    def test_antichain(self):
        d = antichain(4)
        assert d.depth.tolist() == [1, 1, 1, 1]
        assert d.height.tolist() == [1, 1, 1, 1]
        assert d.span == 1

    def test_deep_unbalanced_height(self):
        # 0 -> 1, 0 -> 2, 2 -> 3: child of root at much deeper level.
        d = DAG(5, [(0, 1), (0, 2), (2, 3), (3, 4)])
        assert d.height[0] == 4
        assert d.height[1] == 1


class TestProfiles:
    def test_deeper_than(self, small_tree):
        # depths [1,2,2,3,3,4]
        assert small_tree.deeper_than(0) == 6
        assert small_tree.deeper_than(1) == 5
        assert small_tree.deeper_than(2) == 3
        assert small_tree.deeper_than(3) == 1
        assert small_tree.deeper_than(4) == 0
        assert small_tree.deeper_than(99) == 0

    def test_profile_vector(self, small_tree):
        assert small_tree.deeper_than_profile.tolist() == [6, 5, 3, 1, 0]

    def test_profile_matches_pointwise(self, kary):
        profile = kary.deeper_than_profile
        for d in range(kary.span + 1):
            assert profile[d] == kary.deeper_than(d)

    def test_depth_counts(self, kary):
        assert kary.depth_counts.tolist() == [0, 1, 2, 4, 8]

    def test_negative_d_rejected(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.deeper_than(-1)


class TestTopologicalOrder:
    def test_valid_order(self, diamond):
        order = diamond.topological_order
        pos = {int(v): i for i, v in enumerate(order)}
        for u, v in diamond.edge_list():
            assert pos[u] < pos[v]

    def test_is_permutation(self, kary):
        assert sorted(kary.topological_order.tolist()) == list(range(kary.n))


class TestPredicates:
    def test_out_tree(self, small_tree):
        assert small_tree.is_out_tree and small_tree.is_out_forest

    def test_diamond_not_forest(self, diamond):
        assert not diamond.is_out_forest and not diamond.is_out_tree

    def test_forest_not_tree(self):
        d = DAG.from_parents([-1, -1])
        assert d.is_out_forest and not d.is_out_tree

    def test_chain_is_chain(self):
        assert chain(4).is_chain
        assert chain(1).is_chain

    def test_tree_not_chain(self, small_tree):
        assert not small_tree.is_chain

    def test_require_out_forest(self, diamond):
        with pytest.raises(NotAForestError):
            diamond.require_out_forest()

    def test_parent_array_requires_forest(self, diamond):
        with pytest.raises(NotAForestError):
            diamond.parent_array()


class TestCombinators:
    def test_disjoint_union_offsets(self, small_tree, chain5):
        union, offsets = DAG.disjoint_union([small_tree, chain5])
        assert union.n == 11
        assert offsets.tolist() == [0, 6, 11]
        assert union.children(6).tolist() == [7]  # chain shifted by 6

    def test_union_preserves_spans(self, small_tree, chain5):
        union, _ = DAG.disjoint_union([small_tree, chain5])
        assert union.span == max(small_tree.span, chain5.span)

    def test_union_empty_list(self):
        union, offsets = DAG.disjoint_union([])
        assert union.n == 0 and offsets.tolist() == [0]

    def test_series_composition(self):
        d = chain(2).series(antichain(2))
        # leaves of chain(2) = {1}; roots of antichain = both
        assert d.n == 4
        assert d.children(1).tolist() == [2, 3]
        assert d.span == 3

    def test_parallel_composition(self):
        d = chain(2).parallel(chain(3))
        assert d.n == 5 and d.span == 3
        assert d.roots.size == 2

    def test_series_parallel_nesting(self):
        d = (chain(1).parallel(chain(1))).series(chain(1))
        assert d.span == 2
        assert d.parents(2).tolist() == [0, 1]


class TestInducedSubgraph:
    def test_remainder_after_prefix_execution(self, small_tree):
        # Execute {0, 1}: remainder {2,3,4,5} is an out-tree rooted at 2.
        sub, ids = small_tree.induced_subgraph([2, 3, 4, 5])
        assert ids.tolist() == [2, 3, 4, 5]
        assert sub.is_out_tree
        assert sub.span == 3

    def test_id_mapping(self, small_tree):
        sub, ids = small_tree.induced_subgraph([0, 2, 4])
        # edges kept: 0->2, 2->4 under new ids 0->1->2
        assert sub.edge_list() == [(0, 1), (1, 2)]
        assert ids.tolist() == [0, 2, 4]

    def test_duplicate_ids_deduplicated(self, small_tree):
        sub, ids = small_tree.induced_subgraph([3, 3, 3])
        assert sub.n == 1 and ids.tolist() == [3]

    def test_out_of_range(self, small_tree):
        with pytest.raises(GraphError):
            small_tree.induced_subgraph([99])


class TestReachability:
    def test_descendants(self, small_tree):
        assert small_tree.descendants(2).tolist() == [3, 4, 5]
        assert small_tree.descendants(5).size == 0

    def test_ancestors(self, small_tree):
        assert small_tree.ancestors(5).tolist() == [0, 2, 4]
        assert small_tree.ancestors(0).size == 0

    def test_diamond_reachability(self, diamond):
        assert diamond.ancestors(3).tolist() == [0, 1, 2]
        assert diamond.descendants(0).tolist() == [1, 2, 3]


class TestEqualityHash:
    def test_equal_same_edges(self, small_tree):
        other = DAG(6, [(0, 1), (0, 2), (2, 3), (2, 4), (4, 5)])
        assert small_tree == other
        assert hash(small_tree) == hash(other)

    def test_unequal_different_edges(self, small_tree):
        assert small_tree != DAG(6, [(0, 1)])

    def test_not_equal_other_type(self, small_tree):
        assert small_tree != 42


class TestBuilders:
    def test_chain(self):
        d = chain(4)
        assert d.is_chain and d.span == 4 and d.n == 4

    def test_chain_zero(self):
        assert chain(0).n == 0

    def test_star(self):
        d = star(5)
        assert d.n == 6 and d.span == 2
        assert d.outdegree[0] == 5

    def test_star_zero_leaves(self):
        assert star(0).n == 1

    def test_complete_kary(self):
        d = complete_kary_tree(3, 3)
        assert d.n == 1 + 3 + 9
        assert d.span == 3
        assert d.is_out_tree
        assert bool(np.all(d.outdegree[: 1 + 3] == 3))

    def test_kary_one_level(self):
        assert complete_kary_tree(5, 1).n == 1

    def test_kary_zero_levels(self):
        assert complete_kary_tree(2, 0).n == 0

    def test_kary_branching_validation(self):
        with pytest.raises(ValueError):
            complete_kary_tree(0, 3)

    def test_spider(self):
        d = spider(3, 4)
        assert d.n == 13 and d.span == 5 and d.is_out_tree
        assert d.outdegree[0] == 3

    def test_spider_no_legs(self):
        assert spider(0, 5).n == 1

    def test_caterpillar(self):
        d = caterpillar(4, 2)
        assert d.n == 12 and d.is_out_tree
        assert d.span == 5  # spine 4 + one leg

    def test_caterpillar_no_legs_is_chain(self):
        assert caterpillar(5, 0).is_chain

    def test_repr_mentions_kind(self, small_tree, diamond):
        assert "out-tree" in repr(small_tree)
        assert "dag" in repr(diamond)
