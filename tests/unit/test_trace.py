"""Unit tests for the metrics collector."""

import pytest

from repro.core import Instance, Job, MetricsCollector, antichain, chain, simulate, star
from repro.schedulers import FIFOScheduler


def _collect(instance, m):
    collector = MetricsCollector()
    schedule = simulate(instance, m, FIFOScheduler(), observer=collector)
    return collector, schedule


class TestCollection:
    def test_observes_every_executing_step(self):
        collector, schedule = _collect(Instance([Job(chain(4), 0)]), 2)
        assert collector.times == [0, 1, 2, 3]
        assert collector.scheduled == [1, 1, 1, 1]

    def test_backlog_decreases_to_zero(self):
        collector, _ = _collect(Instance([Job(star(5), 0)]), 3)
        assert collector.backlog[-1] == 0
        assert all(b >= a for a, b in zip(collector.backlog[::-1], collector.backlog[::-1][1:]))

    def test_alive_jobs_tracks_arrivals(self):
        inst = Instance([Job(chain(3), 0), Job(chain(3), 2)])
        collector, _ = _collect(inst, 1)
        assert max(collector.alive_jobs) == 2

    def test_utilization_profile_bounded(self):
        collector, _ = _collect(Instance([Job(star(9), 0)]), 4)
        profile = collector.utilization_profile()
        assert (profile >= 0).all() and (profile <= 1).all()


class TestSummary:
    def test_full_rectangle_is_fully_utilized(self):
        collector, _ = _collect(Instance([Job(antichain(8), 0)]), 4)
        summary = collector.summary()
        assert summary.utilization == 1.0
        assert summary.n_steps == 2
        assert summary.max_ready == 8

    def test_chain_on_many_processors_underutilized(self):
        collector, _ = _collect(Instance([Job(chain(6), 0)]), 3)
        summary = collector.summary()
        assert summary.utilization == pytest.approx(1 / 3)
        assert summary.max_alive_jobs == 1

    def test_max_backlog_counts_before_step(self):
        collector, _ = _collect(Instance([Job(antichain(10), 0)]), 5)
        assert collector.summary().max_backlog == 10

    def test_empty_collector_raises(self):
        with pytest.raises(ValueError):
            MetricsCollector().summary()

    def test_first_last_steps(self):
        inst = Instance([Job(chain(2), 5)])
        collector, _ = _collect(inst, 1)
        summary = collector.summary()
        assert summary.first_step == 5
        assert summary.last_step == 6
