"""Unit tests for offline optima and lower bounds."""

import pytest

from repro.core import (
    ConfigurationError,
    DAG,
    Instance,
    Job,
    NotAForestError,
    SolverError,
    antichain,
    chain,
    star,
)
from repro.schedulers import (
    depth_profile_lower_bound,
    exact_opt,
    max_flow_lower_bound,
    single_forest_opt,
)


class TestDepthProfileBound:
    def test_chain(self):
        assert depth_profile_lower_bound(chain(7), 3) == 7

    def test_antichain(self):
        assert depth_profile_lower_bound(antichain(10), 3) == 4

    def test_star(self):
        # star(6): root then 6 leaves; on 3 procs: 1 + ceil(6/3) = 3
        assert depth_profile_lower_bound(star(6), 3) == 3

    def test_kary(self, kary):
        # 15 nodes span 4 on m=3: d=0 -> 5; d=1 -> 1+ceil(14/3)=6 ...
        assert depth_profile_lower_bound(kary, 3) == 6

    def test_single_processor_equals_work(self, kary):
        assert depth_profile_lower_bound(kary, 1) == kary.work

    def test_many_processors_equals_span(self, kary):
        assert depth_profile_lower_bound(kary, 1000) == kary.span

    def test_dominates_trivial_bounds(self, small_tree):
        for m in (1, 2, 3):
            b = depth_profile_lower_bound(small_tree, m)
            assert b >= small_tree.span
            assert b >= -(-small_tree.work // m)

    def test_works_on_general_dags(self, diamond):
        assert depth_profile_lower_bound(diamond, 2) == 3

    def test_empty_dag(self):
        assert depth_profile_lower_bound(DAG(0), 2) == 0

    def test_bad_m(self, kary):
        with pytest.raises(ConfigurationError):
            depth_profile_lower_bound(kary, 0)


class TestSingleForestOpt:
    def test_requires_forest(self, diamond):
        with pytest.raises(NotAForestError):
            single_forest_opt(diamond, 2)

    def test_equals_bound_on_forest(self, small_tree):
        assert single_forest_opt(small_tree, 2) == depth_profile_lower_bound(
            small_tree, 2
        )


class TestMaxFlowLowerBound:
    def test_single_job(self, kary):
        inst = Instance([Job(kary, 0)])
        assert max_flow_lower_bound(inst, 3) == 6

    def test_interval_load_bound(self):
        # Two big antichains released together overload the machine.
        inst = Instance([Job(antichain(10), 0), Job(antichain(10), 0)])
        assert max_flow_lower_bound(inst, 2) == 10

    def test_staggered_releases(self):
        # jobs at 0 and 2, each work 6, m=2: window [0,2]: 12 work ->
        # 0 + ceil(12/2) - 2 = 4; single job bound = 3.
        inst = Instance([Job(antichain(6), 0), Job(antichain(6), 2)])
        assert max_flow_lower_bound(inst, 2) == 4

    def test_at_least_one(self):
        inst = Instance([Job(chain(1), 100)])
        assert max_flow_lower_bound(inst, 50) == 1

    def test_bad_m(self, two_job_instance):
        with pytest.raises(ConfigurationError):
            max_flow_lower_bound(two_job_instance, -1)


class TestExactOpt:
    def test_single_forest_matches_closed_form(self, small_tree):
        inst = Instance([Job(small_tree, 0)])
        opt, witness = exact_opt(inst, 2)
        assert opt == single_forest_opt(small_tree, 2)
        witness.validate()
        assert witness.max_flow == opt

    def test_two_jobs(self):
        inst = Instance([Job(chain(3), 0), Job(star(3), 1)])
        opt, witness = exact_opt(inst, 2)
        assert witness.max_flow == opt
        assert opt >= max_flow_lower_bound(inst, 2)

    def test_overload_forces_queueing(self):
        inst = Instance([Job(antichain(4), 0), Job(antichain(4), 0)])
        opt, witness = exact_opt(inst, 2)
        assert opt == 4

    def test_witness_is_feasible(self):
        inst = Instance(
            [Job(chain(2), 0), Job(star(2), 0), Job(antichain(2), 3)]
        )
        opt, witness = exact_opt(inst, 2)
        witness.validate()

    def test_size_guard(self):
        inst = Instance([Job(antichain(30), 0)])
        with pytest.raises(SolverError, match="limited"):
            exact_opt(inst, 2, max_nodes=24)

    def test_respects_release_times(self):
        inst = Instance([Job(chain(2), 5)])
        opt, witness = exact_opt(inst, 1)
        assert opt == 2
        assert witness.completion[0].min() >= 6

    def test_exact_at_least_every_lower_bound(self):
        inst = Instance([Job(star(4), 0), Job(chain(4), 2)])
        opt, _ = exact_opt(inst, 2)
        assert opt >= max_flow_lower_bound(inst, 2)
