"""Unit tests for the lemma checkers — positive AND negative cases."""

import numpy as np
import pytest

from repro.analysis import (
    check_lemma_6_4,
    check_lemma_6_5,
    check_lpf_ancestor_structure,
    check_mc_busy,
    check_work_conserving,
    head_tail_shape,
)
from repro.core import (
    ConfigurationError,
    Instance,
    Job,
    Schedule,
    chain,
    simulate,
    star,
)
from repro.schedulers import ArbitraryTieBreak, FIFOScheduler, lpf_schedule
from repro.workloads import batched_instance, build_fifo_adversary


class TestLpfAncestorStructure:
    def test_holds_on_lpf(self, kary):
        s = lpf_schedule(kary, 3)
        assert check_lpf_ancestor_structure(s, 3).ok

    def test_holds_on_chain(self):
        s = lpf_schedule(chain(5), 2)
        assert check_lpf_ancestor_structure(s, 2).ok

    def test_full_rectangle_trivially_ok(self):
        s = lpf_schedule(star(3), 1)  # width 1: never "idle"
        assert check_lpf_ancestor_structure(s, 1).ok

    def test_detects_violation(self):
        # Hand-build a NON-LPF schedule of a spider that parks a non-leaf
        # at an idle step without its ancestor chain aligned.
        from repro.core import spider

        dag = spider(2, 3)  # root 0 + chains 1-2-3 and 4-5-6
        inst = Instance([Job(dag, 0)])
        # t1 {0}; t2 {1,4}; t3 {2}; t4 {5}; t5 {3,6}. The last idle step
        # before completion is t=4 running non-leaf 5, whose 1-hop ancestor
        # (4) is not in S(3) — violating the Lemma 5.2 structure.
        comp = np.array([1, 2, 3, 5, 2, 4, 5])
        s = Schedule(inst, 2, [comp])
        s.validate()
        assert not check_lpf_ancestor_structure(s, 2).ok

    def test_rejects_non_forest(self, diamond):
        inst = Instance([Job(diamond, 0)])
        s = simulate(inst, 2, FIFOScheduler())
        with pytest.raises(ConfigurationError):
            check_lpf_ancestor_structure(s, 2)


class TestHeadTailShape:
    def test_rectangle_tail(self, kary):
        s = lpf_schedule(kary, 2)
        shape = head_tail_shape(s, 2)
        assert shape.tail_fully_packed
        assert shape.head_length + shape.tail_length == shape.makespan

    def test_pure_rectangle_has_no_head(self):
        from repro.workloads import layered_tree

        dag = layered_tree([2, 2, 2], seed=0)
        s = lpf_schedule(dag, 2)
        shape = head_tail_shape(s, 2)
        assert shape.head_length == 0
        assert shape.tail_fully_packed

    def test_detects_ragged_tail(self):
        # A hand-built schedule with an interior idle step right before the
        # end still reports packed=True only for the portion after it.
        inst = Instance([Job(star(4), 0)])
        comp = np.array([1, 2, 2, 3, 4])
        s = Schedule(inst, 2, [comp])
        shape = head_tail_shape(s, 2)
        assert shape.last_idle_step == 3
        assert shape.tail_fully_packed  # nothing between 3 and makespan 4


class TestMcBusyChecker:
    def test_passes_on_packed_input(self, kary):
        s = lpf_schedule(kary, 3)
        shape = head_tail_shape(s, 3)
        steps = [nodes for _, nodes in s.job_steps(0)][shape.head_length :]
        assert check_mc_busy(steps, kary, [3] * 40).ok

    def test_fails_when_allocations_run_out(self, kary):
        s = lpf_schedule(kary, 3)
        steps = [nodes for _, nodes in s.job_steps(0)]
        res = check_mc_busy(steps, kary, [1])
        assert not res.ok
        assert "exhausted" in res.detail

    def test_fails_on_unpacked_input_strict(self):
        """Feed MC an input violating its precondition (interior idle step
        narrower than the grant): the strict Lemma 5.5 property breaks
        (work conservation, of course, still holds — only one subjob is
        ever ready on a chain)."""
        dag = chain(3)
        steps = [np.array([0]), np.array([1]), np.array([2])]
        assert not check_mc_busy(steps, dag, [2, 2, 2, 2], strict=True).ok
        assert check_mc_busy(steps, dag, [2, 2, 2, 2]).ok

    def test_zero_allocations_tolerated(self, kary):
        s = lpf_schedule(kary, 3)
        shape = head_tail_shape(s, 3)
        steps = [nodes for _, nodes in s.job_steps(0)][shape.head_length :]
        alloc = [0, 3] * 40
        assert check_mc_busy(steps, kary, alloc).ok


class TestWorkConserving:
    def test_fifo_passes(self, two_job_instance):
        s = simulate(two_job_instance, 2, FIFOScheduler())
        assert check_work_conserving(s).ok

    def test_detects_idling(self):
        inst = Instance([Job(star(2), 0)])
        # root at 1, leaves at 3 and 4: idles at t=2 although ready.
        s = Schedule(inst, 2, [np.array([1, 3, 4])])
        s.validate()
        res = check_work_conserving(s)
        assert not res.ok
        assert "idle" in res.detail


class TestLemma64:
    def test_holds_on_fifo_batched(self):
        adv = build_fifo_adversary(8, n_jobs=16)
        assert check_lemma_6_4(adv.fifo_schedule, adv.opt_upper_bound).ok

    def test_fails_with_understated_opt(self):
        """Passing an OPT far below the truth must break the inequality."""
        adv = build_fifo_adversary(8, n_jobs=16)
        assert not check_lemma_6_4(adv.fifo_schedule, 1).ok


class TestLemma65:
    def test_holds_on_adversarial_family(self):
        adv = build_fifo_adversary(8, n_jobs=16)
        assert check_lemma_6_5(adv.fifo_schedule, adv.opt_upper_bound).ok

    def test_requires_batched_instance(self):
        inst = Instance([Job(chain(2), 0), Job(chain(2), 3)])
        s = simulate(inst, 2, FIFOScheduler(ArbitraryTieBreak()))
        with pytest.raises(ConfigurationError, match="batched"):
            check_lemma_6_5(s, 2)

    def test_holds_on_random_batched(self, rng):
        from repro.workloads import random_out_forest

        dags = [random_out_forest(24, rng) for _ in range(5)]
        period = max(
            __import__("repro.schedulers", fromlist=["single_forest_opt"])
            .single_forest_opt(d, 4)
            for d in dags
        )
        inst = batched_instance(dags, period)
        s = simulate(inst, 4, FIFOScheduler())
        assert check_lemma_6_5(s, period).ok


class TestHeadTailShapeFields:
    def test_usage_field_matches_profile(self, kary):
        s = lpf_schedule(kary, 3)
        shape = head_tail_shape(s, 3)
        assert list(shape.usage) == s.usage_profile([0]).tolist()

    def test_lengths_partition_makespan(self, kary):
        s = lpf_schedule(kary, 3)
        shape = head_tail_shape(s, 3)
        assert shape.head_length >= 0
        assert shape.head_length + shape.tail_length == shape.makespan
