"""Unit tests for the streaming arena: ranker order, dispatch
accounting, compaction bounds, and the service-level ``arena`` switch.

The property suite (``tests/properties/test_streaming_arena.py``) pins
the arena path's *semantics* against the per-job reference; this module
pins the pieces those properties cannot see from the outside — that the
incremental SRPT ranker pops in exactly the sort-based reference order
under arbitrary insert/remove/rebuild sequences, that
``EngineStats.kernel_dispatches`` counts exactly the kernel calls the
engine actually made (the per-job accounting used to pay two dict
probes per call on the hot loop; the accumulate-locals-flush-once
rewrite must not change the numbers), and that compaction keeps the
arena's node buffers keyed to the live high-water mark instead of the
stream length.
"""

import dataclasses

import numpy as np
import pytest

from repro.streaming import StreamingEngine
from repro.streaming.arena import SrptRanker
from repro.streaming.service import serve
from repro.workloads.arrivals import PoissonSource

_INT = np.int64


class TestSrptRanker:
    """Pop-order identity against the sort-based reference."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_ops_match_sort_reference(self, seed):
        rng = np.random.default_rng(seed)
        ranker = SrptRanker()
        live: dict[int, tuple[int, int]] = {}  # slot -> (remaining, index)
        next_index = 0

        def reference_order() -> list[int]:
            return [
                slot
                for slot, _ in sorted(live.items(), key=lambda kv: kv[1])
            ]

        for _ in range(120):
            op = rng.choice(("insert", "remove", "update", "rebuild"))
            if op == "insert" or not live:
                count = int(rng.integers(1, 5))
                slots, keys = [], []
                for _ in range(count):
                    slot = next_index  # unique is all that matters
                    remaining = int(rng.integers(1, 50))
                    live[slot] = (remaining, next_index)
                    keys.append(SrptRanker.compose(remaining, next_index))
                    slots.append(slot)
                    next_index += 1
                ranker.insert(
                    np.array(keys, dtype=_INT), np.array(slots, dtype=_INT)
                )
            elif op == "remove":
                count = int(rng.integers(1, min(len(live), 4) + 1))
                chosen = rng.choice(list(live), size=count, replace=False)
                ranker.remove(
                    np.array(
                        [SrptRanker.compose(*live[s]) for s in chosen],
                        dtype=_INT,
                    )
                )
                for slot in chosen:
                    del live[slot]
            elif op == "update":
                # A commit: remaining decreases — re-key via remove+insert,
                # exactly as the engine's dirty-set pass does.
                count = int(rng.integers(1, min(len(live), 4) + 1))
                chosen = rng.choice(list(live), size=count, replace=False)
                ranker.remove(
                    np.array(
                        [SrptRanker.compose(*live[s]) for s in chosen],
                        dtype=_INT,
                    )
                )
                keys = []
                for slot in chosen:
                    remaining, index = live[slot]
                    remaining = max(1, remaining - int(rng.integers(1, 5)))
                    live[slot] = (remaining, index)
                    keys.append(SrptRanker.compose(remaining, index))
                ranker.insert(
                    np.array(keys, dtype=_INT),
                    np.asarray(chosen, dtype=_INT),
                )
            else:
                ranker.rebuild(
                    np.array(
                        [SrptRanker.compose(*live[s]) for s in live],
                        dtype=_INT,
                    ),
                    np.array(list(live), dtype=_INT),
                )
            assert ranker.order().tolist() == reference_order()
            assert len(ranker) == len(live)

    def test_compose_is_lexicographic(self):
        # (remaining, index) order survives the int64 packing.
        pairs = [(2, 9), (2, 10), (3, 0), (1, 2**31)]
        keys = [SrptRanker.compose(_INT(r), _INT(i)) for r, i in pairs]
        assert sorted(range(4), key=keys.__getitem__) == sorted(
            range(4), key=pairs.__getitem__
        )


def _counting_backend(engine: StreamingEngine) -> dict[str, int]:
    """Swap the engine's backend for a call-counting shim; returns the
    live counter dict."""
    counts: dict[str, int] = {}
    backend = engine._backend

    def wrap(name):
        kernel = getattr(backend, name)

        def counted(*args, **kwargs):
            counts[name] = counts.get(name, 0) + 1
            return kernel(*args, **kwargs)

        return counted

    engine._backend = dataclasses.replace(
        backend,
        **{
            name: wrap(name)
            for name in (
                "csr_children",
                "merge_sorted",
                "arena_gather",
                "arena_commit",
                "chain_min_dt",
                "macro_fill",
            )
        },
    )
    return counts


class TestDispatchAccounting:
    """``kernel_dispatches`` equals the calls the engine actually made."""

    def _run(self, *, arena: bool, policy: str = "srpt"):
        source = PoissonSource(rate=0.6, seed=17, dag_nodes=15, n_jobs=50)
        engine = StreamingEngine(source, 4, policy=policy, arena=arena)
        counts = _counting_backend(engine)
        engine.run()
        return engine, counts

    @pytest.mark.parametrize("policy", ("fifo", "srpt"))
    def test_per_job_counts_are_exact(self, policy):
        engine, counts = self._run(arena=False, policy=policy)
        assert counts["csr_children"] > 0
        assert counts["merge_sorted"] > 0
        recorded = {
            name: count
            for name, count in engine.stats.kernel_dispatches.items()
            if count
        }
        assert recorded == counts

    def test_arena_counts_are_exact(self):
        engine, counts = self._run(arena=True)
        assert counts["arena_gather"] > 0
        assert counts["arena_commit"] > 0
        recorded = {
            name: count
            for name, count in engine.stats.kernel_dispatches.items()
            if count
        }
        assert recorded == counts


class TestCompaction:
    def test_node_capacity_tracks_live_hwm_not_stream_length(self):
        # ~7000 total subjobs stream through a live window the retire
        # flow keeps small; without compaction the node buffers would
        # grow with the stream.
        source = PoissonSource(rate=0.25, seed=3, dag_nodes=12, n_jobs=600)
        engine = StreamingEngine(source, 8, policy="fifo", arena=True)
        engine.run()
        arena = engine._arena
        assert arena is not None
        assert arena.compactions > 0
        total_nodes = 12 * 600
        hwm = engine.metrics.live_subjob_hwm
        assert arena.node_capacity < total_nodes
        # Geometric growth + compact-at-half-dead keeps capacity within a
        # small constant of the high-water mark (1024 is the floor).
        assert arena.node_capacity <= max(4 * hwm, 2048)

    def test_arena_empties_when_stream_drains(self):
        source = PoissonSource(rate=0.5, seed=8, dag_nodes=10, n_jobs=40)
        engine = StreamingEngine(source, 4, policy="lpf", arena=True)
        engine.run()
        arena = engine._arena
        assert arena is not None
        assert arena.live_jobs == 0
        assert arena.live_nodes == 0
        assert engine.live_subjobs == 0
        assert arena.order_arrival().size == 0


class TestServeArenaSwitch:
    def _serve(self, tmp_path, arena):
        out = tmp_path / f"metrics-{arena}.json"
        status = serve(
            PoissonSource(rate=0.5, seed=21, dag_nodes=10, n_jobs=120),
            4,
            policy="srpt",
            availability=[3, 1, 2, 3, 3],
            tick_every=0,
            quiet=True,
            install_signals=False,
            metrics_out=out,
            arena=arena,
        )
        assert status == 0
        return out.read_text()

    def test_on_off_metrics_identical(self, tmp_path):
        assert self._serve(tmp_path, "on") == self._serve(tmp_path, "off")

    def test_auto_takes_arena(self):
        engine = StreamingEngine(
            PoissonSource(rate=0.5, seed=1, dag_nodes=8, n_jobs=5), 2
        )
        assert engine.arena  # constructor default
        off = StreamingEngine(
            PoissonSource(rate=0.5, seed=1, dag_nodes=8, n_jobs=5),
            2,
            arena=False,
        )
        assert not off.arena

    def test_bad_value_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="arena"):
            serve(
                PoissonSource(rate=0.5, seed=1, dag_nodes=8, n_jobs=5),
                2,
                arena="maybe",
                quiet=True,
                install_signals=False,
            )
