"""SARIF 2.1.0 emitter: golden-file stability and schema validity.

The golden file pins the exact bytes GitHub code scanning receives for a
fixed fixture (regenerate it deliberately when the format changes — the
diff is the review artifact). The schema test validates a full-rule-set
run against a vendored subset of the official SARIF 2.1.0 schema, so CI
needs no network access.
"""

import json
from pathlib import Path

import jsonschema
import pytest

from repro.lint import LintReport, lint_source
from repro.lint.registry import RULES, all_rules
from repro.lint.sarif import SARIF_VERSION, render_sarif, to_sarif

DATA = Path(__file__).resolve().parents[1] / "data"
GOLDEN = DATA / "lint_report.sarif"
SCHEMA = DATA / "sarif-2.1.0-subset.schema.json"


def _golden_report() -> tuple[LintReport, list]:
    rules = [RULES["RPR202"], RULES["RPR203"]]
    report = LintReport()
    report.merge(
        lint_source(
            "try:\n    x = 1\nexcept:\n    pass\n",
            path="pkg/sloppy.py",
            rules=rules,
        )
    )
    report.merge(
        lint_source(
            "def collect(x, acc=[]):\n    acc.append(x)\n    return acc\n",
            path="pkg/defaults.py",
            rules=rules,
        )
    )
    report.sort()
    return report, rules


def test_golden_file_matches_exactly():
    report, rules = _golden_report()
    rendered = render_sarif(report, rules, "fixedfingerprint") + "\n"
    assert rendered == GOLDEN.read_text(encoding="utf-8"), (
        "SARIF output drifted from the golden file; if the change is "
        "intentional, regenerate tests/data/lint_report.sarif and review "
        "the diff"
    )


def test_rendering_is_deterministic():
    report, rules = _golden_report()
    first = render_sarif(report, rules, "fp")
    second = render_sarif(report, rules, "fp")
    assert first == second


@pytest.fixture(scope="module")
def schema() -> dict:
    return json.loads(SCHEMA.read_text(encoding="utf-8"))


def test_golden_validates_against_schema(schema):
    jsonschema.validate(json.loads(GOLDEN.read_text(encoding="utf-8")), schema)


def test_full_ruleset_log_validates_against_schema(schema):
    """Every registered rule's bad_example, one log, engine-reserved rules
    (RPR000/RPR999) included via a reason-less pragma and a syntax error."""
    report = LintReport()
    for rule in all_rules():
        report.merge(
            lint_source(rule.bad_example, path=f"bad_{rule.rule_id.lower()}.py")
        )
    report.merge(lint_source("def broken(:\n", path="broken.py"))
    report.merge(
        lint_source(
            "try:\n    x = 1\nexcept:  # repro-lint: disable=RPR202\n    pass\n",
            path="unreasoned.py",
        )
    )
    report.sort()
    log = to_sarif(report, all_rules(), "fp")
    jsonschema.validate(log, schema)

    assert log["version"] == SARIF_VERSION
    results = log["runs"][0]["results"]
    fired = {r["ruleId"] for r in results}
    assert {"RPR000", "RPR999", "RPR202"} <= fired
    # Every result's ruleIndex points at the descriptor for its ruleId.
    descriptors = log["runs"][0]["tool"]["driver"]["rules"]
    for result in results:
        assert descriptors[result["ruleIndex"]]["id"] == result["ruleId"]


def test_syntax_errors_are_error_level():
    report = lint_source("def broken(:\n", path="broken.py")
    log = to_sarif(report, all_rules(), "fp")
    (result,) = log["runs"][0]["results"]
    assert result["level"] == "error"
    assert result["ruleId"] == "RPR999"
