"""Unit tests for tie-break policies and the ready heap."""

import pytest

from repro.core import Job
from repro.schedulers import (
    ArbitraryTieBreak,
    DepthTieBreak,
    LongestPathTieBreak,
    MostChildrenTieBreak,
    RandomTieBreak,
    ReadyHeap,
    ReverseTieBreak,
)


@pytest.fixture
def job(small_tree):
    return Job(small_tree)


class TestKeys:
    def test_arbitrary_orders_by_id(self, job):
        tb = ArbitraryTieBreak()
        assert tb.key(job, 1) < tb.key(job, 4)
        assert not tb.clairvoyant

    def test_reverse_orders_descending(self, job):
        tb = ReverseTieBreak()
        assert tb.key(job, 4) < tb.key(job, 1)

    def test_lpf_prefers_height(self, job):
        tb = LongestPathTieBreak()
        # heights: node 0 -> 4, node 2 -> 3, node 1 -> 1
        assert tb.key(job, 0) < tb.key(job, 2) < tb.key(job, 1)
        assert tb.clairvoyant

    def test_depth_prefers_deeper(self, job):
        tb = DepthTieBreak()
        assert tb.key(job, 5) < tb.key(job, 0)  # depth 4 beats depth 1
        assert not tb.clairvoyant

    def test_most_children(self, job):
        tb = MostChildrenTieBreak()
        # node 0 and 2 have 2 children; node 1 none; tie broken by id
        assert tb.key(job, 0) < tb.key(job, 1)
        assert tb.key(job, 0) < tb.key(job, 2)

    def test_random_deterministic_with_seed(self, job):
        a = RandomTieBreak(7)
        b = RandomTieBreak(7)
        a.reset()
        b.reset()
        assert [a.key(job, i) for i in range(4)] == [b.key(job, i) for i in range(4)]

    def test_random_reset_reproduces(self, job):
        tb = RandomTieBreak(3)
        first = [tb.key(job, i) for i in range(5)]
        tb.reset()
        assert [tb.key(job, i) for i in range(5)] == first

    def test_names(self):
        assert ArbitraryTieBreak().name == "arbitrary"
        assert LongestPathTieBreak().name == "longestpath"


class TestReadyHeap:
    def test_pop_order_follows_policy(self, job):
        heap = ReadyHeap(job, LongestPathTieBreak())
        heap.push_all([1, 3, 0, 2])
        assert heap.pop() == 0  # height 4
        assert heap.pop() == 2  # height 3

    def test_pop_up_to(self, job):
        heap = ReadyHeap(job, ArbitraryTieBreak())
        heap.push_all([4, 1, 3])
        assert heap.pop_up_to(2) == [1, 3]
        assert heap.pop_up_to(5) == [4]
        assert heap.pop_up_to(1) == []

    def test_len_bool_peek(self, job):
        heap = ReadyHeap(job, ArbitraryTieBreak())
        assert not heap and len(heap) == 0
        heap.push_all([2])
        assert heap and len(heap) == 1
        assert heap.peek() == 2
        assert len(heap) == 1  # peek does not pop
