"""Unit tests for the Section 6 per-schedule quantities (w_i, z_i, tau)."""

import numpy as np
import pytest

from repro.analysis import (
    idle_count_curve,
    remaining_work,
    remaining_work_curve,
    restricted_idle_steps,
    tau,
)
from repro.core import ConfigurationError, Instance, Job, Schedule, chain, star


@pytest.fixture
def sched():
    # m=2; chain(3) at r=0 runs 1,2,3; star(2) (3 nodes) at r=2 runs 3,4,5.
    inst = Instance([Job(chain(3), 0), Job(star(2), 2)])
    return Schedule(inst, 2, [np.array([1, 2, 3]), np.array([3, 4, 5])])


class TestRemainingWork:
    def test_at_release(self, sched):
        assert remaining_work(sched, 0, 0) == 3
        assert remaining_work(sched, 1, 2) == 3

    def test_midway(self, sched):
        assert remaining_work(sched, 0, 2) == 1

    def test_at_completion(self, sched):
        assert remaining_work(sched, 0, 3) == 0
        assert remaining_work(sched, 1, 5) == 0

    def test_curve_matches_pointwise(self, sched):
        curve = remaining_work_curve(sched, 0, 6)
        assert curve.tolist() == [
            remaining_work(sched, 0, t) for t in range(7)
        ]

    def test_curve_for_late_job(self, sched):
        curve = remaining_work_curve(sched, 1, 6)
        assert curve.tolist() == [3, 3, 3, 2, 1, 0, 0]


class TestIdleCounts:
    def test_restricted_idle_steps_excludes_younger(self, sched):
        # S_0 = schedule restricted to job 0 only: usage 1,1,1 then 0 —
        # every step of [1, makespan] is idle for m=2.
        idles = restricted_idle_steps(sched, 0)
        assert idles.tolist() == [1, 2, 3, 4, 5]

    def test_restricted_includes_same_release(self):
        inst = Instance([Job(chain(2), 0), Job(chain(2), 0)])
        s = Schedule(inst, 2, [np.array([1, 2]), np.array([1, 2])])
        assert restricted_idle_steps(s, 0).size == 0  # both full

    def test_idle_count_curve_starts_after_release(self, sched):
        z1 = idle_count_curve(sched, 1, 6)
        # job 1 released at 2; S_1 = whole schedule; usage: [.,1,1,2,1,1]
        # idle steps > r_1: t=4 (usage1 <2)? t=3 usage 2 full; t=4:1 idle; t=5:1 idle
        assert z1.tolist() == [0, 0, 0, 0, 1, 2, 2]

    def test_idle_curve_monotone(self, sched):
        z = idle_count_curve(sched, 0, 6)
        assert bool(np.all(np.diff(z) >= 0))


class TestTau:
    def test_power_of_two(self):
        t = tau(4, 3)
        assert t >= 2 * 4 * 3
        assert t & (t - 1) == 0  # power of two

    def test_tight_when_exact_power(self):
        assert tau(4, 4) == 32  # 2*4*4 = 32 already a power of two

    def test_less_than_4_m_opt(self):
        for m in (2, 3, 7, 16):
            for opt in (1, 5, 9):
                assert 2 * m * opt <= tau(m, opt) < 4 * m * opt

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tau(0, 1)
        with pytest.raises(ConfigurationError):
            tau(1, 0)
