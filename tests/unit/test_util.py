"""Unit tests for the low-level array helpers."""

import numpy as np
import pytest

from repro.core.util import (
    as_int_array,
    build_csr,
    check_nonnegative_int,
    csr_counts,
    csr_gather,
    repeat_by_counts,
    segment_max,
    stable_unique,
)


class TestAsIntArray:
    def test_list_input(self):
        arr = as_int_array([3, 1, 2])
        assert arr.dtype == np.int64
        assert arr.tolist() == [3, 1, 2]

    def test_no_copy_for_int64(self):
        src = np.array([1, 2], dtype=np.int64)
        assert as_int_array(src) is src

    def test_flattens_2d(self):
        assert as_int_array(np.array([[1, 2], [3, 4]])).tolist() == [1, 2, 3, 4]

    def test_empty(self):
        assert as_int_array([]).size == 0


class TestCheckNonnegativeInt:
    def test_accepts_int(self):
        assert check_nonnegative_int(5, "x") == 5

    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_accepts_numpy_integer(self):
        assert check_nonnegative_int(np.int64(7), "x") == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_nonnegative_int(-1, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_nonnegative_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_nonnegative_int(True, "x")


class TestBuildCsr:
    def test_simple(self):
        indptr, indices = build_csr(3, np.array([0, 0, 1]), np.array([2, 1, 2]))
        assert indptr.tolist() == [0, 2, 3, 3]
        assert indices.tolist() == [1, 2, 2]  # row 0 sorted

    def test_empty(self):
        indptr, indices = build_csr(4, np.array([]), np.array([]))
        assert indptr.tolist() == [0, 0, 0, 0, 0]
        assert indices.size == 0

    def test_rows_sorted_within_source(self):
        indptr, indices = build_csr(2, np.array([0, 0, 0]), np.array([9 % 2, 0, 1]))
        assert indices.tolist() == sorted(indices.tolist())

    def test_out_of_range_source(self):
        with pytest.raises(ValueError, match="source out of range"):
            build_csr(2, np.array([2]), np.array([0]))

    def test_out_of_range_target(self):
        with pytest.raises(ValueError, match="target out of range"):
            build_csr(2, np.array([0]), np.array([5]))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            build_csr(2, np.array([0]), np.array([0, 1]))


class TestCsrGather:
    @pytest.fixture
    def csr(self):
        # node 0 -> [1, 2], node 1 -> [3], node 2 -> [], node 3 -> [0, 1, 2]
        return build_csr(
            4, np.array([0, 0, 1, 3, 3, 3]), np.array([1, 2, 3, 0, 1, 2])
        )

    def test_counts(self, csr):
        indptr, _ = csr
        assert csr_counts(indptr, np.array([0, 1, 2, 3])).tolist() == [2, 1, 0, 3]

    def test_gather_all(self, csr):
        indptr, indices = csr
        values, counts = csr_gather(indptr, indices, np.array([0, 2, 3]))
        assert values.tolist() == [1, 2, 0, 1, 2]
        assert counts.tolist() == [2, 0, 3]

    def test_gather_repeated_node(self, csr):
        indptr, indices = csr
        values, counts = csr_gather(indptr, indices, np.array([1, 1]))
        assert values.tolist() == [3, 3]
        assert counts.tolist() == [1, 1]

    def test_gather_empty_nodes(self, csr):
        indptr, indices = csr
        values, counts = csr_gather(indptr, indices, np.array([], dtype=np.int64))
        assert values.size == 0 and counts.size == 0

    def test_gather_all_empty_rows(self, csr):
        indptr, indices = csr
        values, counts = csr_gather(indptr, indices, np.array([2, 2]))
        assert values.size == 0
        assert counts.tolist() == [0, 0]


class TestSegmentMax:
    def test_basic(self):
        values = np.array([1, 5, 2, 7, 3], dtype=np.int64)
        counts = np.array([2, 3], dtype=np.int64)
        assert segment_max(values, counts).tolist() == [5, 7]

    def test_empty_segment_uses_default(self):
        values = np.array([4, 9], dtype=np.int64)
        counts = np.array([0, 2, 0], dtype=np.int64)
        assert segment_max(values, counts, empty=-1).tolist() == [-1, 9, -1]

    def test_all_empty(self):
        out = segment_max(np.array([], dtype=np.int64), np.array([0, 0]), empty=3)
        assert out.tolist() == [3, 3]

    def test_single_element_segments(self):
        values = np.array([5, 1, 8], dtype=np.int64)
        counts = np.array([1, 1, 1], dtype=np.int64)
        assert segment_max(values, counts).tolist() == [5, 1, 8]


class TestRepeatByCounts:
    def test_basic(self):
        out = repeat_by_counts(np.array([7, 8]), np.array([2, 3]))
        assert out.tolist() == [7, 7, 8, 8, 8]


class TestStableUnique:
    def test_preserves_first_occurrence_order(self):
        assert stable_unique([3, 1, 3, 2, 1]).tolist() == [3, 1, 2]

    def test_empty(self):
        assert stable_unique([]).size == 0
