"""Unit tests for the streaming engine, metrics, and checkpoint format."""

import json

import pytest

from repro.core.exceptions import ConfigurationError
from repro.streaming import (
    CheckpointError,
    StreamingEngine,
    StreamMetrics,
    StreamStallError,
    load_checkpoint,
    save_checkpoint,
    serve,
)
from repro.workloads.arrivals import AdversarialDripSource, PoissonSource


def _summary(engine):
    return json.dumps(engine.metrics.summary(), sort_keys=True)


# ----------------------------------------------------------------------
# Bounded memory: the high-water mark tracks the live window, not the
# stream length
# ----------------------------------------------------------------------


class TestBoundedState:
    def test_hwm_is_independent_of_stream_length(self):
        """10x the jobs must not move the live-subjob high-water mark:
        resident state is bounded by the live window (the 10⁷-subjob
        acceptance criterion, scaled down for CI)."""
        hwms = []
        for n_jobs in (40, 400):
            source = AdversarialDripSource(4, period=16, depth=4, seed=0, n_jobs=n_jobs)
            engine = StreamingEngine(source, 4, policy="fifo")
            engine.run()
            assert engine.complete
            hwms.append(engine.metrics.live_subjob_hwm)
        assert hwms[0] == hwms[1]

    def test_retirement_empties_the_live_window(self):
        source = PoissonSource(rate=0.5, seed=2, dag_nodes=10, n_jobs=30)
        engine = StreamingEngine(source, 4)
        engine.run()
        assert engine.live_jobs == 0
        assert engine.live_subjobs == 0
        assert engine.stats.stream_retired == 30

    def test_admission_bound_sheds_deterministically(self):
        source = PoissonSource(rate=5.0, seed=4, dag_nodes=20, n_jobs=60)
        runs = []
        for _ in range(2):
            engine = StreamingEngine(source, 2, max_live_subjobs=100)
            engine.run()
            assert engine.metrics.live_subjob_hwm <= 100
            assert engine.metrics.jobs_shed > 0
            assert (
                engine.metrics.jobs_admitted + engine.metrics.jobs_shed == 60
            )
            runs.append(_summary(engine))
        assert runs[0] == runs[1]

    def test_max_live_jobs_bound(self):
        source = PoissonSource(rate=5.0, seed=4, dag_nodes=8, n_jobs=40)
        engine = StreamingEngine(source, 2, max_live_jobs=3)
        engine.run()
        assert engine.metrics.live_job_hwm <= 3
        assert engine.metrics.jobs_shed > 0


# ----------------------------------------------------------------------
# Liveness guards
# ----------------------------------------------------------------------


class TestStallGuard:
    def test_zero_capacity_beyond_limit_raises(self):
        source = PoissonSource(rate=1.0, seed=0, dag_nodes=6, n_jobs=5)
        engine = StreamingEngine(
            source,
            4,
            availability=[0] * 50,
            max_zero_commit_steps=3,
        )
        with pytest.raises(StreamStallError):
            engine.run()

    def test_trace_horizon_default_allows_blackouts(self):
        """The default stall limit clears any finite-trace blackout: tail
        capacity >= 1 guarantees eventual progress."""
        source = PoissonSource(rate=1.0, seed=0, dag_nodes=6, n_jobs=5)
        engine = StreamingEngine(source, 4, availability=[0] * 30)
        engine.run()
        assert engine.complete

    def test_idle_gaps_are_skipped_not_stepped(self):
        source = PoissonSource(rate=0.01, seed=1, dag_nodes=4, n_jobs=3)
        engine = StreamingEngine(source, 4)
        engine.run()
        assert engine.metrics.idle_skipped_steps > 0
        # Skipped steps never enter the utilization denominator.
        assert engine.metrics.utilization() > 0.0


# ----------------------------------------------------------------------
# Engine configuration validation
# ----------------------------------------------------------------------


class TestValidation:
    def test_rejects_unknown_policy(self):
        source = PoissonSource(rate=0.5, seed=0, dag_nodes=4, n_jobs=2)
        with pytest.raises(ConfigurationError):
            StreamingEngine(source, 2, policy="lifo")

    def test_rejects_nonpositive_m(self):
        source = PoissonSource(rate=0.5, seed=0, dag_nodes=4, n_jobs=2)
        with pytest.raises(ConfigurationError):
            StreamingEngine(source, 0)

    def test_drain_stops_admission(self):
        source = PoissonSource(rate=0.5, seed=3, dag_nodes=8, n_jobs=50)
        engine = StreamingEngine(source, 4)
        for _ in range(5):
            engine.step()
        admitted_at_drain = engine.metrics.jobs_admitted
        engine.begin_drain()
        engine.run()
        assert engine.metrics.jobs_admitted == admitted_at_drain
        assert engine.live_jobs == 0


# ----------------------------------------------------------------------
# Checkpoint file format
# ----------------------------------------------------------------------


class TestCheckpointFormat:
    def _snapshot(self):
        source = PoissonSource(rate=0.5, seed=1, dag_nodes=8, n_jobs=10)
        engine = StreamingEngine(source, 3)
        for _ in range(4):
            engine.step()
        return engine.snapshot()

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "s.ckpt"
        snapshot = self._snapshot()
        save_checkpoint(path, snapshot)
        assert load_checkpoint(path) == snapshot

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "s.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        save_checkpoint(path, self._snapshot())
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_corruption_detected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        save_checkpoint(path, self._snapshot())
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "s.ckpt"
        first = self._snapshot()
        save_checkpoint(path, first)
        second = dict(first, t=first["t"] + 1)
        save_checkpoint(path, second)
        assert load_checkpoint(path)["t"] == first["t"] + 1
        assert list(tmp_path.iterdir()) == [path]  # no leftover temp files


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestStreamMetrics:
    def test_state_roundtrip(self):
        metrics = StreamMetrics()
        metrics.note_admission(10, 1, 10)
        metrics.note_step(4, 4)
        metrics.record_completion(17)
        metrics.note_retirement(10)
        restored = StreamMetrics.from_state(metrics.state())
        assert restored.summary() == metrics.summary()
        assert restored.state() == metrics.state()

    def test_state_version_checked(self):
        state = StreamMetrics().state()
        state["version"] = 999
        with pytest.raises(ValueError):
            StreamMetrics.from_state(state)

    def test_flow_deciles_monotone(self):
        metrics = StreamMetrics()
        for flow in (1, 2, 3, 5, 9, 17, 33, 100, 1000):
            metrics.record_completion(flow)
        deciles = metrics.flow_deciles()
        assert deciles == sorted(deciles)
        assert deciles[-1] >= 511  # 1000 lands in the 2^10 bucket

    def test_tick_resets_window(self):
        metrics = StreamMetrics()
        metrics.note_step(3, 4)
        metrics.record_completion(5)
        tick = metrics.tick(10, live_jobs=1, live_subjobs=3)
        assert tick["window_utilization"] == 0.75
        second = metrics.tick(20, live_jobs=1, live_subjobs=3)
        assert second["window_utilization"] == 0.0
        assert second["window_throughput"] == 0.0


# ----------------------------------------------------------------------
# serve() in-process (no signals)
# ----------------------------------------------------------------------


class TestServeLoop:
    def test_interrupt_and_resume_reproduce_clean_run(self, tmp_path, capsys):
        import io

        source_kwargs = dict(rate=0.7, seed=6, dag_nodes=10, n_jobs=40)
        clean_out = tmp_path / "clean.json"
        status = serve(
            PoissonSource(**source_kwargs),
            3,
            tick_every=0,
            metrics_out=clean_out,
            quiet=True,
            install_signals=False,
            stall_timeout=None,
            out=io.StringIO(),
            err=io.StringIO(),
        )
        assert status == 0

        ckpt = tmp_path / "serve.ckpt"
        resumed_out = tmp_path / "resumed.json"
        status = serve(
            PoissonSource(**source_kwargs),
            3,
            tick_every=0,
            checkpoint_path=ckpt,
            checkpoint_every=10,
            max_steps=25,
            quiet=True,
            install_signals=False,
            stall_timeout=None,
            out=io.StringIO(),
            err=io.StringIO(),
        )
        assert status == 130
        status = serve(
            PoissonSource(**source_kwargs),
            3,
            tick_every=0,
            checkpoint_path=ckpt,
            checkpoint_every=10,
            resume=True,
            metrics_out=resumed_out,
            quiet=True,
            install_signals=False,
            stall_timeout=None,
            out=io.StringIO(),
            err=io.StringIO(),
        )
        assert status == 0

        clean = json.loads(clean_out.read_text())
        resumed = json.loads(resumed_out.read_text())
        clean.pop("resumed")
        resumed.pop("resumed")
        assert clean == resumed

    def test_stall_exit_status_and_checkpoint(self, tmp_path):
        import io

        source = PoissonSource(rate=1.0, seed=0, dag_nodes=6, n_jobs=5)
        ckpt = tmp_path / "stalled.ckpt"
        status = serve(
            source,
            4,
            availability=[0] * 50,
            max_zero_commit_steps=3,
            checkpoint_path=ckpt,
            tick_every=0,
            quiet=True,
            install_signals=False,
            stall_timeout=None,
            out=io.StringIO(),
            err=io.StringIO(),
        )
        assert status == 3
        # The stalled state was checkpointed for post-mortem/resume.
        assert load_checkpoint(ckpt)["t"] > 0
