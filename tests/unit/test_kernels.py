"""Unit tests for the kernel backend registry (``repro.core.kernels``).

Covers name resolution from ``REPRO_BACKEND``, per-process caching, the
graceful numba-missing fallback (silent numpy dispatch plus exactly one
``RuntimeWarning``), unknown-name rejection, per-kernel dispatch counts in
``EngineStats``, and the warmup / compile-latency smoke (numba only).
"""

import warnings

import numpy as np
import pytest

from repro.core import kernels
from repro.core.exceptions import ConfigurationError
from repro.core.kernels import (
    BACKEND_ENV_VAR,
    KERNEL_NAMES,
    BackendUnavailable,
    available_backends,
    get_backend,
    resolve_backend_name,
    warmup,
)

_HAS_NUMBA = "numba" in available_backends()


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    """Each test starts with no cached backends and no env override."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    kernels._reset_for_testing()
    yield
    kernels._reset_for_testing()


class TestResolution:
    def test_default_is_numpy(self):
        assert resolve_backend_name() == "numpy"
        backend = get_backend()
        assert backend.name == "numpy"
        assert backend.requested == "numpy"
        assert backend.supported == frozenset(KERNEL_NAMES)

    def test_env_var_resolved_per_call(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend().requested == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "NumPy ")
        assert resolve_backend_name() == "numpy"

    def test_unknown_backend_is_loud(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ConfigurationError, match="cuda"):
            get_backend()

    def test_backend_cached_per_name(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_available_backends_always_has_numpy(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert set(names) <= {"numpy", "numba"}


class TestFallback:
    @pytest.fixture
    def without_numba(self, monkeypatch):
        """Force the numba backend to be unavailable (even if installed)."""
        from repro.core.kernels import numba_backend

        def unavailable():
            raise BackendUnavailable("numba is not installed (forced by test)")

        monkeypatch.setattr(numba_backend, "load", unavailable)

    def test_numba_request_falls_back_to_numpy(self, monkeypatch, without_numba):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = get_backend()
        assert backend.name == "numpy"  # what actually serves calls
        assert backend.requested == "numba"  # what the caller asked for
        fallback_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback_warnings) == 1
        assert "falling back" in str(fallback_warnings[0].message)
        numpy_backend = get_backend("numpy")
        for kname in KERNEL_NAMES:
            assert getattr(backend, kname) is getattr(numpy_backend, kname)

    def test_fallback_warns_only_once(self, monkeypatch, without_numba):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            get_backend()
            kernels._CACHE.clear()  # drop the cache, keep the warned set
            get_backend()
        fallback_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback_warnings) == 1

    def test_simulation_dispatches_silently_on_fallback(
        self, monkeypatch, without_numba
    ):
        """REPRO_BACKEND=numba without numba must still run — on numpy."""
        from repro.core import DAG, Instance, Job, simulate
        from repro.schedulers import FIFOScheduler

        monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
        dag = DAG.from_parents(np.array([-1, 0, 0, 1, 1], dtype=np.int64))
        inst = Instance([Job(dag, 0)])
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            schedule = simulate(inst, 2, FIFOScheduler())
        schedule.validate()
        assert schedule.engine_stats.backend == "numpy"


class TestDispatchCounts:
    def test_kernel_dispatches_recorded(self):
        from repro.core import DAG, Instance, Job, simulate
        from repro.core.simulator import engine_stats_snapshot
        from repro.schedulers import FIFOScheduler

        rng = np.random.default_rng(3)
        parents = np.array(
            [-1] + [int(rng.integers(0, i)) for i in range(1, 60)],
            dtype=np.int64,
        )
        inst = Instance([Job(DAG.from_parents(parents), 0)])
        before = engine_stats_snapshot()
        simulate(inst, 3, FIFOScheduler())
        delta = engine_stats_snapshot().delta(before)
        assert delta.backend == "numpy"
        assert set(delta.kernel_dispatches) <= set(KERNEL_NAMES)
        assert sum(delta.kernel_dispatches.values()) > 0
        assert "backend=numpy" in delta.summary()
        assert "kernels[" in delta.summary()

    def test_old_snapshot_merge_is_defensive(self):
        """add() must accept stats objects predating the backend fields."""
        import dataclasses

        from repro.core.simulator import EngineStats

        class OldStats:
            """A snapshot in the pre-backend format: every counter except
            the two new fields."""

        old = OldStats()
        for f in dataclasses.fields(EngineStats):
            if f.name not in ("backend", "kernel_dispatches"):
                default = (
                    f.default_factory()
                    if f.default is dataclasses.MISSING
                    else f.default
                )
                setattr(old, f.name, default)
        old.steps = 5

        fresh = EngineStats()
        fresh.kernel_dispatches["commit_frontier"] = 2
        fresh.backend = "numpy"
        fresh.add(old)  # must not raise
        assert fresh.steps == 5
        assert fresh.backend == "numpy"
        assert fresh.kernel_dispatches == {"commit_frontier": 2}

    def test_conflicting_backends_merge_to_mixed(self):
        from repro.core.simulator import EngineStats

        a = EngineStats()
        a.backend = "numpy"
        b = EngineStats()
        b.backend = "numba"
        a.add(b)
        assert a.backend == "mixed"


class TestWarmup:
    def test_warmup_exercises_every_kernel(self):
        warmup(get_backend("numpy"))  # must not raise

    @pytest.mark.skipif(not _HAS_NUMBA, reason="numba not installed")
    def test_cold_vs_warm_compile_latency(self):
        """After warmup, every numba kernel call is compile-free: a warm
        call must run orders of magnitude under any plausible compile
        time. Generous bound — this is a smoke test, not a benchmark."""
        import time

        backend = get_backend("numba")
        warmup(backend)  # cold: triggers (or disk-loads) every compile
        steps = np.array([5, 4, 3], dtype=np.int64)
        gids = np.array([0, 2], dtype=np.int64)
        t0 = time.perf_counter()
        for _ in range(10):
            backend.chain_min_dt(steps, gids, 9)
        warm = (time.perf_counter() - t0) / 10
        assert warm < 0.05, f"warm kernel call took {warm:.3f}s — recompiling?"
