"""Unit tests for availability traces and engine fault injection
(`repro.core.availability`, `repro.faults`, and `simulate`'s
``availability``/``fault_injector`` parameters)."""

import numpy as np
import pytest

from repro.core import (
    AvailabilityTrace,
    ConfigurationError,
    Instance,
    Job,
    as_trace,
    chain,
    complete_kary_tree,
    simulate,
    star,
)
from repro.core.simulator import _simulate_reference
from repro.faults import (
    FaultInjector,
    adversarial_traces,
    availability_suite,
    random_trace,
)
from repro.schedulers import FIFOScheduler, LPFScheduler


class TestAvailabilityTrace:
    def test_basic_semantics(self):
        trace = AvailabilityTrace((3, 0, 1), tail=4)
        assert trace.horizon == 3
        assert trace.max_value == 3
        assert [trace.capacity_at(t) for t in range(5)] == [3, 0, 1, 4, 4]

    def test_prefix_pads_with_tail(self):
        trace = AvailabilityTrace((2, 1), tail=3)
        assert trace.prefix(4) == [2, 1, 3, 3]
        assert trace.prefix(1) == [2]

    def test_clamped(self):
        trace = AvailabilityTrace((5, 0, 3), tail=5)
        clamped = trace.clamped(2)
        assert clamped.values == (2, 0, 2)
        assert clamped.tail == 2

    def test_rejects_nonpositive_tail(self):
        with pytest.raises(ConfigurationError):
            AvailabilityTrace((1, 2), tail=0)

    def test_rejects_negative_values(self):
        with pytest.raises(ConfigurationError):
            AvailabilityTrace((1, -1), tail=2)

    def test_empty_values_allowed(self):
        trace = AvailabilityTrace((), tail=2)
        assert trace.horizon == 0
        assert trace.capacity_at(0) == 2


class TestAsTrace:
    def test_plain_sequence_gets_tail_m(self):
        trace = as_trace([2, 0, 1], 4)
        assert isinstance(trace, AvailabilityTrace)
        assert trace.values == (2, 0, 1)
        assert trace.tail == 4

    def test_trace_passthrough(self):
        trace = AvailabilityTrace((1, 2), tail=2)
        assert as_trace(trace, 3) is trace

    def test_rejects_value_above_m(self):
        with pytest.raises(ConfigurationError):
            as_trace([1, 5], 4)
        with pytest.raises(ConfigurationError):
            as_trace(AvailabilityTrace((5,), tail=2), 4)

    def test_rejects_tail_above_m(self):
        with pytest.raises(ConfigurationError):
            as_trace(AvailabilityTrace((1,), tail=8), 4)


class TestSimulateWithAvailability:
    def _instance(self):
        return Instance([Job(complete_kary_tree(2, 3), 0), Job(star(4), 2)])

    def test_constant_trace_matches_untraced_run(self):
        inst = self._instance()
        m = 3
        plain = simulate(inst, m, FIFOScheduler())
        traced = simulate(
            inst, m, FIFOScheduler(),
            availability=AvailabilityTrace((m,) * 10, tail=m),
        )
        assert all(
            np.array_equal(a, b)
            for a, b in zip(plain.completion, traced.completion)
        )

    def test_zero_capacity_prefix_delays_everything(self):
        inst = Instance([Job(chain(3), 0)])
        sched = simulate(
            inst, 2, FIFOScheduler(), availability=[0, 0, 0, 0]
        )
        sched.validate()
        # Nothing can run during the 4-step blackout; the chain needs 3
        # more steps once capacity returns.
        assert sched.makespan == 7

    def test_trickle_serializes_execution(self):
        inst = Instance([Job(star(5), 0)])  # work 6, span 2
        sched = simulate(
            inst, 4, FIFOScheduler(),
            availability=AvailabilityTrace((1,) * 50, tail=4),
        )
        sched.validate()
        assert sched.makespan == 6  # one node per step under the trickle

    def test_per_step_capacity_respected(self):
        inst = self._instance()
        trace = AvailabilityTrace((2, 0, 1, 3, 1, 2, 0, 3), tail=3)
        sched = simulate(inst, 3, FIFOScheduler(), availability=trace)
        sched.validate()
        counts = np.zeros(sched.makespan + 1, dtype=int)
        for comp in sched.completion:
            for t in comp:
                counts[int(t)] += 1
        # Nodes completing at time tau were dispatched at step tau - 1,
        # whose grant was capacity_at(tau - 1).
        for t in range(1, sched.makespan + 1):
            assert counts[t] <= trace.capacity_at(t - 1)

    def test_engine_and_reference_agree_under_trace(self):
        inst = self._instance()
        trace = AvailabilityTrace((3, 0, 1, 2, 0, 2) * 8, tail=3)
        for scheduler_cls in (FIFOScheduler, LPFScheduler):
            fast = simulate(inst, 3, scheduler_cls(), availability=trace)
            ref = _simulate_reference(
                inst, 3, scheduler_cls(), availability=trace
            )
            assert all(
                np.array_equal(a, b)
                for a, b in zip(fast.completion, ref.completion)
            )


class TestTraceGenerators:
    def test_random_trace_bounds_and_determinism(self):
        a = random_trace(5, 30, seed=9)
        b = random_trace(5, 30, seed=9)
        assert a == b
        assert a.tail == 5
        assert all(0 <= v <= 5 for v in a.values)

    def test_adversarial_patterns_cover_named_shapes(self):
        patterns = adversarial_traces(4, 12)
        assert set(patterns) >= {
            "constant", "trickle", "bursty", "sawtooth", "alternating",
            "blackout", "half-then-cut",
        }
        for trace in patterns.values():
            assert trace.horizon == 12
            assert trace.tail == 4
            assert trace.max_value <= 4

    def test_availability_suite_counts(self):
        names = [name for name, _ in availability_suite(3, 10, n_random=5)]
        assert len(names) == len(adversarial_traces(3, 10)) + 5
        assert len(set(names)) == len(names)


class TestFaultInjector:
    def test_rejects_bad_crash_rate(self):
        with pytest.raises(ValueError):
            FaultInjector(crash_rate=1.5)

    def test_exact_crash_times_fire_once_each(self):
        inst = Instance([Job(complete_kary_tree(2, 4), 0)])
        injector = FaultInjector(crash_times=(1, 3))
        sched = simulate(inst, 2, FIFOScheduler(), fault_injector=injector)
        sched.validate()
        assert injector.crashes == [1, 3]

    def test_begin_run_resets_state(self):
        injector = FaultInjector(crash_times=(0,), perturb_delivery=True, seed=4)
        inst = Instance([Job(star(4), 0), Job(chain(3), 0)])
        first = simulate(inst, 2, FIFOScheduler(), fault_injector=injector)
        crashes, perturbed = list(injector.crashes), injector.perturbed_steps
        second = simulate(inst, 2, FIFOScheduler(), fault_injector=injector)
        assert injector.crashes == crashes
        assert injector.perturbed_steps == perturbed
        assert all(
            np.array_equal(a, b)
            for a, b in zip(first.completion, second.completion)
        )

    def test_delivery_order_is_permutation(self):
        injector = FaultInjector(perturb_delivery=True, seed=1)
        injector.begin_run()
        order = injector.delivery_order(0, 5)
        assert sorted(int(i) for i in order) == [0, 1, 2, 3, 4]

    def test_no_perturbation_returns_none(self):
        injector = FaultInjector()
        injector.begin_run()
        assert injector.delivery_order(0, 3) is None

    def test_crash_recovery_produces_valid_identical_schedules(self):
        inst = Instance(
            [Job(complete_kary_tree(2, 4), 0), Job(star(6), 3)]
        )
        trace = AvailabilityTrace((3, 1, 0, 2) * 10, tail=3)
        for scheduler_cls in (FIFOScheduler, LPFScheduler):
            injector = FaultInjector(
                crash_times=(2, 5, 9), perturb_delivery=True, seed=11
            )
            fast = simulate(
                inst, 3, scheduler_cls(),
                availability=trace, fault_injector=injector,
            )
            fast.validate()
            assert injector.crashes  # faults actually fired
            ref = _simulate_reference(
                inst, 3, scheduler_cls(),
                availability=trace, fault_injector=injector,
            )
            assert all(
                np.array_equal(a, b)
                for a, b in zip(fast.completion, ref.completion)
            )

    def test_crash_rate_draws_align_across_engines(self):
        inst = Instance([Job(complete_kary_tree(2, 4), 0)])
        injector = FaultInjector(crash_rate=0.3, seed=7)
        fast = simulate(inst, 2, FIFOScheduler(), fault_injector=injector)
        fast_crashes = list(injector.crashes)
        ref = _simulate_reference(
            inst, 2, FIFOScheduler(), fault_injector=injector
        )
        assert injector.crashes == fast_crashes
        assert all(
            np.array_equal(a, b)
            for a, b in zip(fast.completion, ref.completion)
        )
