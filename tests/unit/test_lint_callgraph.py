"""Unit tests for the cross-module symbol table and call graph
(:mod:`repro.lint.callgraph`)."""

import ast

import pytest

from repro.lint.callgraph import (
    ModuleInfo,
    ProjectIndex,
    build_index,
    describe_call,
    module_name_for,
)


def _module(name: str, source: str) -> ModuleInfo:
    return ModuleInfo(name, f"{name.replace('.', '/')}.py", ast.parse(source))


def _index(**modules: str) -> ProjectIndex:
    index = ProjectIndex()
    for name, source in modules.items():
        index.add(_module(name.replace("__", "."), source))
    return index


class TestModuleNameFor:
    def test_walks_up_through_packages(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_name_for(pkg / "mod.py") == "pkg.sub.mod"

    def test_init_file_names_the_package(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        assert module_name_for(pkg / "__init__.py") == "pkg"

    def test_bare_file_is_its_stem(self, tmp_path):
        target = tmp_path / "loose.py"
        target.write_text("")
        assert module_name_for(target) == "loose"


class TestDescribeCall:
    def _call(self, expr: str) -> ast.Call:
        node = ast.parse(expr).body[0].value
        assert isinstance(node, ast.Call)
        return node

    def test_shapes(self):
        assert describe_call(self._call("f(1)")) == ("name", "f")
        assert describe_call(self._call("self.helper(x)")) == ("self", "helper")
        assert describe_call(self._call("cls.make()")) == ("cls", "make")
        assert describe_call(self._call("mod.sub.f()")) == ("attr", "mod.sub.f")
        # A computed callee has no stable descriptor.
        assert describe_call(self._call("fns[0]()")) is None


class TestImports:
    def test_absolute_and_aliased(self):
        mod = _module(
            "pkg.a",
            "import numpy as np\nfrom os import urandom\nimport json\n",
        )
        assert mod.aliases["np"] == "numpy"
        assert mod.aliases["urandom"] == "os.urandom"
        assert mod.aliases["json"] == "json"

    def test_relative_import_resolves_against_package(self):
        mod = _module("pkg.rules.impl", "from ..model import Violation\n")
        assert mod.aliases["Violation"] == "pkg.model.Violation"

    def test_single_dot_relative(self):
        mod = _module("pkg.rules.impl", "from .common import helper\n")
        assert mod.aliases["helper"] == "pkg.rules.common.helper"

    def test_over_deep_relative_is_ignored(self):
        mod = _module("pkg.a", "from ....nowhere import thing\n")
        assert "thing" not in mod.aliases


class TestResolveCall:
    SOURCES = dict(
        pkg__helpers="def jitter(x):\n    return x\n",
        pkg__sched=(
            "from pkg.helpers import jitter\n"
            "from pkg import helpers\n"
            "def local(y):\n    return y\n"
            "class Base:\n"
            "    def shared(self):\n        pass\n"
            "class Sched(Base):\n"
            "    def __init__(self):\n        pass\n"
            "    def select(self):\n        pass\n"
        ),
    )

    @pytest.fixture()
    def index(self) -> ProjectIndex:
        return _index(**self.SOURCES)

    def test_local_function(self, index):
        info = index.resolve_call("pkg.sched", ("name", "local"))
        assert info is not None and info.qualname == "pkg.sched.local"

    def test_imported_name(self, index):
        info = index.resolve_call("pkg.sched", ("name", "jitter"))
        assert info is not None and info.qualname == "pkg.helpers.jitter"

    def test_attr_through_module_alias(self, index):
        info = index.resolve_call("pkg.sched", ("attr", "helpers.jitter"))
        assert info is not None and info.qualname == "pkg.helpers.jitter"

    def test_self_method(self, index):
        info = index.resolve_call("pkg.sched", ("self", "select"), "Sched")
        assert info is not None and info.qualname == "pkg.sched.Sched.select"

    def test_self_method_through_base_class(self, index):
        info = index.resolve_call("pkg.sched", ("self", "shared"), "Sched")
        assert info is not None and info.qualname == "pkg.sched.Base.shared"

    def test_constructor_resolves_to_init(self, index):
        info = index.resolve_call("pkg.sched", ("name", "Sched"))
        assert info is not None and info.qualname == "pkg.sched.Sched.__init__"

    def test_external_call_is_none(self, index):
        assert index.resolve_call("pkg.sched", ("attr", "np.zeros")) is None
        assert index.resolve_call("pkg.sched", ("name", "print")) is None

    def test_unknown_module_is_none(self, index):
        assert index.resolve_call("nowhere", ("name", "local")) is None

    def test_base_class_cycle_is_safe(self):
        index = _index(
            pkg__cyc=(
                "class A(B):\n    pass\n"
                "class B(A):\n    def hit(self):\n        pass\n"
            )
        )
        info = index.resolve_call("pkg.cyc", ("self", "hit"), "A")
        assert info is not None and info.qualname == "pkg.cyc.B.hit"
        assert index.resolve_call("pkg.cyc", ("self", "missing"), "A") is None


def test_index_round_trips_through_plain_data():
    index = _index(**TestResolveCall.SOURCES)
    clone = ProjectIndex.from_data(index.to_data())
    assert sorted(clone.modules) == sorted(index.modules)
    info = clone.resolve_call("pkg.sched", ("self", "shared"), "Sched")
    assert info is not None and info.qualname == "pkg.sched.Base.shared"
    original = index.function("pkg.helpers.jitter")
    restored = clone.function("pkg.helpers.jitter")
    assert restored is not None and restored.params == original.params


def test_build_index_from_paths(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("def f(a, b):\n    return a\n")
    entries = [
        (str(p), ast.parse(p.read_text()))
        for p in sorted(pkg.rglob("*.py"))
    ]
    index = build_index(entries)
    info = index.function("pkg.mod.f")
    assert info is not None
    assert info.params == ("a", "b")
    assert info.param_index("b") == 1
    assert info.param_index("zz") is None
