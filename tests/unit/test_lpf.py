"""Unit tests for Longest-Path-First (Section 5.1)."""

import numpy as np
import pytest

from repro.core import (
    ConfigurationError,
    DAG,
    Instance,
    Job,
    chain,
    complete_kary_tree,
    simulate,
    spider,
    star,
)
from repro.schedulers import LPFScheduler, lpf_flow, lpf_schedule, single_forest_opt


class TestSingleJobLPF:
    def test_chain_serializes(self):
        s = lpf_schedule(chain(5), 3)
        assert s.max_flow == 5

    def test_star_saturates(self):
        s = lpf_schedule(star(6), 3)
        # root at 1, then 6 leaves over 2 steps
        assert s.max_flow == 3

    def test_accepts_job_and_ignores_release(self):
        job = Job(chain(3), release=50)
        s = lpf_schedule(job, 2)
        assert s.max_flow == 3
        assert s.completion[0].tolist() == [1, 2, 3]

    def test_matches_closed_form_on_fixtures(self, small_tree, kary):
        for dag in (small_tree, kary, spider(4, 3)):
            for m in (1, 2, 3, 7):
                assert lpf_flow(dag, m) == single_forest_opt(dag, m)

    def test_heights_scheduled_in_nonincreasing_order_per_step(self, kary):
        s = lpf_schedule(kary, 3)
        heights = kary.height
        for t in range(1, s.makespan):
            now = [heights[v] for _, v in s.at(t)]
            later_ready = []
            # any node ready at t-1 but run later must have height <= all run now
            c = s.completion[0]
            for v in range(kary.n):
                if c[v] > t and all(0 < c[p] <= t - 1 for p in kary.parents(v)):
                    later_ready.append(heights[v])
            if later_ready and now:
                assert max(later_ready) <= min(now)

    def test_bad_m(self):
        with pytest.raises(ConfigurationError):
            lpf_schedule(chain(2), 0)

    def test_label_forwarded(self):
        s = lpf_schedule(chain(2), 1, label="mine")
        assert s.instance[0].label == "mine"


class TestLPFAlphaCompetitive:
    @pytest.mark.parametrize("alpha", [2, 4])
    @pytest.mark.parametrize("m", [8, 16])
    def test_lemma_5_3(self, alpha, m, kary):
        opt = single_forest_opt(kary, m)
        assert lpf_flow(kary, m // alpha) <= alpha * opt


class TestMultiJobLPFScheduler:
    def test_name(self):
        assert LPFScheduler().name == "LPF"

    def test_is_clairvoyant(self):
        assert LPFScheduler().clairvoyant

    def test_multi_job_feasible(self, two_job_instance):
        s = simulate(two_job_instance, 2, LPFScheduler())
        s.validate()

    def test_single_job_equals_lpf_schedule(self, kary):
        via_scheduler = simulate(Instance([Job(kary, 0)]), 4, LPFScheduler())
        via_helper = lpf_schedule(kary, 4)
        assert np.array_equal(via_scheduler.completion[0], via_helper.completion[0])


class TestLPFOptimalOnForests:
    def test_forest_with_two_trees(self):
        forest, _ = DAG.disjoint_union([chain(4), complete_kary_tree(2, 3)])
        for m in (1, 2, 3):
            assert lpf_flow(forest, m) == single_forest_opt(forest, m)

    def test_pathological_wide_then_deep(self):
        # Wide star plus a long chain: LPF must prioritize the chain.
        forest, _ = DAG.disjoint_union([chain(10), star(30)])
        m = 4
        assert lpf_flow(forest, m) == single_forest_opt(forest, m)
