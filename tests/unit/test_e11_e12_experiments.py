"""Unit tests for the E11/E12 extension experiments' building blocks."""

import numpy as np
import pytest

from repro.core import Instance, Job, chain
from repro.experiments.e11_dag_shaping_gap import (
    known_counterexample,
    lpf_optimality_gap,
)
from repro.experiments.e12_fifo_beyond_batched import semi_batched_known_opt
from repro.schedulers import exact_opt, lpf_flow, single_forest_opt
from repro.workloads import build_fifo_adversary


class TestKnownCounterexample:
    def test_gap_is_positive(self):
        dag, m = known_counterexample()
        assert lpf_optimality_gap(dag, m) > 0

    def test_not_a_forest(self):
        dag, _ = known_counterexample()
        assert not dag.is_out_forest

    def test_exact_values(self):
        dag, m = known_counterexample()
        opt, witness = exact_opt(Instance([Job(dag, 0)]), m)
        assert lpf_flow(dag, m) == 5
        assert opt == 4
        witness.validate()


class TestLpfGap:
    def test_zero_on_trees(self, small_tree):
        for m in (1, 2, 3):
            assert lpf_optimality_gap(small_tree, m) == 0

    def test_zero_on_chain(self):
        assert lpf_optimality_gap(chain(6), 2) == 0


class TestSemiBatchedKnownOpt:
    def test_opt_is_exact(self):
        rng = np.random.default_rng(0)
        inst, opt, witness = semi_batched_known_opt(8, 5, depth=16, rng=rng)
        witness.validate()
        assert witness.max_flow == opt
        # Lower bound matches: the rectangle batch alone needs `opt`.
        assert single_forest_opt(inst[0].dag, 8) == opt

    def test_arrivals_every_half(self):
        rng = np.random.default_rng(1)
        inst, opt, _ = semi_batched_known_opt(4, 4, depth=8, rng=rng)
        assert inst.releases.tolist() == [0, 4, 8, 12]

    def test_needs_two_processors(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            semi_batched_known_opt(1, 3, depth=4, rng=rng)


class TestFastAdversary:
    def test_custom_period_releases(self):
        adv = build_fifo_adversary(8, n_jobs=6, period=4)
        assert adv.instance.releases.tolist() == [0, 4, 8, 12, 16, 20]
        assert adv.period == 4

    def test_no_witness_below_m_plus_1(self):
        from repro.core import ConfigurationError

        adv = build_fifo_adversary(8, n_jobs=6, period=4)
        assert adv.opt_witness is None
        with pytest.raises(ConfigurationError):
            _ = adv.opt_upper_bound
        assert adv.opt_lower_bound >= 1

    def test_witness_for_slow_periods(self):
        adv = build_fifo_adversary(6, n_jobs=5, period=10)
        assert adv.opt_witness is not None
        adv.opt_witness.validate()

    def test_fast_schedule_still_feasible(self):
        adv = build_fifo_adversary(8, n_jobs=10, period=4)
        adv.fifo_schedule.validate()

    def test_period_validation(self):
        from repro.core import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_fifo_adversary(4, 2, period=0)
