"""Unit tests for Job and merge_jobs."""

import pytest

from repro.core import ConfigurationError, DAG, Job, chain, merge_jobs, star


class TestJobBasics:
    def test_defaults(self, small_tree):
        job = Job(small_tree)
        assert job.release == 0 and job.label is None

    def test_passthroughs(self, small_tree):
        job = Job(small_tree, 3, "x")
        assert job.work == 6
        assert job.span == 4
        assert job.is_out_tree and job.is_out_forest
        assert job.deeper_than(2) == 3

    def test_negative_release_rejected(self, small_tree):
        with pytest.raises(ValueError):
            Job(small_tree, -1)

    def test_empty_dag_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(DAG(0))

    def test_frozen(self, small_tree):
        job = Job(small_tree)
        with pytest.raises(AttributeError):
            job.release = 5

    def test_repr_contains_label(self, small_tree):
        assert "myjob" in repr(Job(small_tree, 0, "myjob"))


class TestTrivialLowerBound:
    def test_span_dominates(self):
        job = Job(chain(10))
        assert job.trivial_flow_lower_bound(4) == 10

    def test_work_dominates(self):
        job = Job(star(15))  # work 16, span 2
        assert job.trivial_flow_lower_bound(4) == 4

    def test_rounding_up(self):
        job = Job(star(4))  # work 5
        assert job.trivial_flow_lower_bound(2) == 3

    def test_bad_m(self, small_tree):
        with pytest.raises(ConfigurationError):
            Job(small_tree).trivial_flow_lower_bound(0)


class TestDelayRename:
    def test_delayed(self, small_tree):
        job = Job(small_tree, 2, "a")
        later = job.delayed(7)
        assert later.release == 7 and later.label == "a"
        assert later.dag is job.dag

    def test_delay_backwards_rejected(self, small_tree):
        with pytest.raises(ConfigurationError):
            Job(small_tree, 5).delayed(3)

    def test_renamed(self, small_tree):
        assert Job(small_tree, 1, "a").renamed("b").label == "b"


class TestMergeJobs:
    def test_merge_two(self, small_tree, chain5):
        merged, offsets = merge_jobs([Job(small_tree, 3), Job(chain5, 1)])
        assert merged.work == 11
        assert merged.release == 3  # latest release
        assert offsets.tolist() == [0, 6, 11]

    def test_merge_single(self, small_tree):
        merged, offsets = merge_jobs([Job(small_tree, 2)])
        assert merged.work == 6 and merged.release == 2

    def test_merge_explicit_release(self, small_tree):
        merged, _ = merge_jobs([Job(small_tree, 0)], release=10, label="batch")
        assert merged.release == 10 and merged.label == "batch"

    def test_merge_preserves_forest(self, small_tree, chain5):
        merged, _ = merge_jobs([Job(small_tree, 0), Job(chain5, 0)])
        assert merged.is_out_forest and not merged.is_out_tree

    def test_merge_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_jobs([])

    def test_merged_span_is_max(self, small_tree, chain5):
        merged, _ = merge_jobs([Job(small_tree, 0), Job(chain5, 0)])
        assert merged.span == max(small_tree.span, chain5.span)
