"""The bench-baseline tool: save / compare round trip on a stub bench."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "save_baseline.py"


@pytest.fixture
def tool(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("save_baseline", _SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    def tiny():
        from repro.core import Instance, Job
        from repro.schedulers import ArbitraryTieBreak, FIFOScheduler
        from repro.workloads import layered_tree

        inst = Instance([Job(layered_tree([4] * 10, seed=0), 0, "t")])
        return inst, (lambda: FIFOScheduler(ArbitraryTieBreak())), 4

    def tiny_sweep():
        def run():
            return 40

        return run

    def tiny_lint(rounds):
        # Fixed row: exercises the lint-bench loop and the generic compare
        # path without timing a real lint run inside a unit test.
        return {
            "subjobs": 5,
            "best_seconds": 0.001,
            "subjobs_per_sec": 5000.0,
            "cold_seconds": 0.01,
            "warm_speedup": 10.0,
        }

    monkeypatch.setattr(mod, "MICROBENCHES", {"tiny": tiny})
    monkeypatch.setattr(mod, "SWEEP_BENCHES", {"tiny_sweep": (tiny_sweep, 1)})
    # Same (factory, rounds) shape as SWEEP_BENCHES; tiny_sweep already
    # exercises that loop, so keep the real serve soaks out of a unit test.
    monkeypatch.setattr(mod, "STREAM_BENCHES", {})
    monkeypatch.setattr(mod, "LINT_BENCHES", {"tiny_lint": tiny_lint})
    monkeypatch.setattr(mod, "BASELINE_PATH", tmp_path / "BENCH_engine.json")
    return mod


class TestSaveBaseline:
    def test_compare_without_baseline_errors(self, tool, capsys):
        assert tool.main(["--compare"]) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_save_then_compare_passes(self, tool, capsys):
        assert tool.main(["--rounds", "1"]) == 0
        saved = json.loads(tool.BASELINE_PATH.read_text())
        assert saved["tiny"]["subjobs"] == 40
        assert saved["tiny"]["subjobs_per_sec"] > 0
        # Shrink the recorded throughputs so timing noise at this toy scale
        # cannot trip the 20% tolerance: we test the verdict, not the timer.
        for row in saved.values():
            row["subjobs_per_sec"] /= 10
        tool.BASELINE_PATH.write_text(json.dumps(saved))
        assert tool.main(["--compare", "--rounds", "1"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_large_regression_fails(self, tool, capsys):
        assert tool.main(["--rounds", "1"]) == 0
        saved = json.loads(tool.BASELINE_PATH.read_text())
        saved["tiny"]["subjobs_per_sec"] *= 1e6  # impossible baseline
        tool.BASELINE_PATH.write_text(json.dumps(saved))
        assert tool.main(["--compare", "--rounds", "1"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_new_bench_without_baseline_entry_is_tolerated(self, tool, capsys):
        assert tool.main(["--rounds", "1"]) == 0
        saved = json.loads(tool.BASELINE_PATH.read_text())
        tool.BASELINE_PATH.write_text(json.dumps({"other": saved["tiny"]}))
        assert tool.main(["--compare", "--rounds", "1"]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_only_unknown_name_errors(self, tool, capsys):
        assert tool.main(["--only", "nope"]) == 2
        assert "unknown bench name" in capsys.readouterr().err

    def test_only_selects_and_save_merges(self, tool, capsys):
        assert tool.main(["--rounds", "1"]) == 0
        full = json.loads(tool.BASELINE_PATH.read_text())
        assert set(full) == {"tiny", "tiny_sweep", "tiny_lint"}
        # Partial re-record keeps the un-timed benches' entries intact.
        assert tool.main(["--rounds", "1", "--only", "tiny_sweep"]) == 0
        merged = json.loads(tool.BASELINE_PATH.read_text())
        assert set(merged) == {"tiny", "tiny_sweep", "tiny_lint"}
        assert merged["tiny"] == full["tiny"]
        # Partial compare only times (and reports) the selected bench.
        capsys.readouterr()
        assert tool.main(["--compare", "--rounds", "1", "--only", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "tiny_sweep" not in out and "tiny_lint" not in out
