"""Unit tests for the random tree generators."""

import numpy as np
import pytest

from repro.core import ConfigurationError
from repro.workloads import (
    galton_watson_tree,
    layered_tree,
    random_attachment_tree,
    random_binary_tree,
    random_out_forest,
)


class TestRandomAttachment:
    def test_exact_size_and_shape(self):
        d = random_attachment_tree(50, seed=0)
        assert d.n == 50 and d.is_out_tree

    def test_deterministic_given_seed(self):
        assert random_attachment_tree(30, 7) == random_attachment_tree(30, 7)

    def test_different_seeds_differ(self):
        assert random_attachment_tree(30, 1) != random_attachment_tree(30, 2)

    def test_bias_controls_depth(self):
        deep = random_attachment_tree(200, 0, bias=5.0)
        shallow = random_attachment_tree(200, 0, bias=-5.0)
        assert deep.span > shallow.span

    def test_single_node(self):
        assert random_attachment_tree(1, 0).n == 1

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            random_attachment_tree(0)

    def test_accepts_generator(self):
        rng = np.random.default_rng(0)
        d1 = random_attachment_tree(10, rng)
        d2 = random_attachment_tree(10, rng)  # advances state
        assert d1.n == d2.n == 10


class TestRandomBinary:
    def test_shape(self):
        d = random_binary_tree(80, seed=3)
        assert d.n == 80 and d.is_out_tree
        assert int(d.outdegree.max()) <= 2

    def test_deterministic(self):
        assert random_binary_tree(40, 5) == random_binary_tree(40, 5)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            random_binary_tree(0)


class TestGaltonWatson:
    def test_truncation(self):
        d = galton_watson_tree(100, seed=0, offspring_mean=3.0)
        assert 1 <= d.n <= 100
        assert d.is_out_tree

    def test_always_at_least_root(self):
        for seed in range(10):
            assert galton_watson_tree(50, seed).n >= 1

    def test_max_children_respected(self):
        d = galton_watson_tree(300, seed=1, offspring_mean=10.0, max_children=3)
        assert int(d.outdegree.max()) <= 3

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            galton_watson_tree(0)


class TestLayeredTree:
    def test_widths_realized(self):
        widths = [3, 5, 2, 7]
        d = layered_tree(widths, seed=0)
        assert d.n == sum(widths)
        assert d.depth_counts.tolist() == [0] + widths
        assert d.is_out_forest

    def test_level_ids_sequential(self):
        d = layered_tree([2, 3], seed=0)
        assert d.depth.tolist() == [1, 1, 2, 2, 2]

    def test_parents_in_previous_level(self):
        d = layered_tree([2, 4, 4], seed=1)
        for v in range(d.n):
            for p in d.parents(v):
                assert d.depth[p] == d.depth[v] - 1

    def test_rejects_empty_or_zero_width(self):
        with pytest.raises(ConfigurationError):
            layered_tree([])
        with pytest.raises(ConfigurationError):
            layered_tree([2, 0, 1])


class TestRandomOutForest:
    def test_total_size(self):
        d = random_out_forest(60, seed=0)
        assert d.n == 60 and d.is_out_forest

    def test_requested_tree_count(self):
        d = random_out_forest(40, seed=0, n_trees=5)
        assert d.roots.size == 5

    def test_more_trees_than_nodes_clamped(self):
        d = random_out_forest(3, seed=0, n_trees=10)
        assert d.roots.size <= 3

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            random_out_forest(0)
