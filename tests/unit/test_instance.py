"""Unit tests for Instance: ordering, batching transforms, predicates."""

import pytest

from repro.core import ConfigurationError, Instance, Job, chain, star


def _inst(*release_times):
    return Instance([Job(chain(3), r, f"j{i}") for i, r in enumerate(release_times)])


class TestOrdering:
    def test_sorted_by_release(self):
        inst = _inst(5, 0, 3)
        assert inst.releases.tolist() == [0, 3, 5]

    def test_stable_for_ties(self):
        inst = Instance([Job(chain(2), 4, "a"), Job(chain(2), 4, "b")])
        assert [j.label for j in inst] == ["a", "b"]

    def test_len_iter_getitem(self):
        inst = _inst(0, 1)
        assert len(inst) == 2
        assert [j.release for j in inst] == [0, 1]
        assert inst[1].release == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Instance([])


class TestAggregates:
    def test_total_work(self):
        assert _inst(0, 0, 0).total_work == 9

    def test_max_span(self):
        inst = Instance([Job(chain(7), 0), Job(star(3), 0)])
        assert inst.max_span == 7

    def test_horizon_hint(self):
        inst = _inst(0, 10)
        assert inst.horizon_hint == 10 + 6

    def test_is_out_forest(self, diamond):
        assert _inst(0, 1).is_out_forest
        assert not Instance([Job(diamond, 0)]).is_out_forest

    def test_arrivals_at(self):
        inst = _inst(0, 2, 2, 5)
        assert inst.arrivals_at(2) == [1, 2]
        assert inst.arrivals_at(1) == []

    def test_distinct_releases(self):
        assert _inst(0, 2, 2, 5).distinct_releases().tolist() == [0, 2, 5]

    def test_describe(self):
        d = _inst(0, 4).describe()
        assert d["n_jobs"] == 2
        assert d["total_work"] == 6
        assert d["last_release"] == 4
        assert d["all_out_forests"] is True


class TestBatchPredicates:
    def test_batched_true(self):
        assert _inst(0, 3, 6).is_batched(3)

    def test_batched_false_offgrid(self):
        assert not _inst(0, 4).is_batched(3)

    def test_batched_false_duplicate_slot(self):
        assert not _inst(0, 3, 3).is_batched(3)

    def test_semi_batched(self):
        assert _inst(0, 3, 3, 9).is_semi_batched(3)
        assert not _inst(0, 2).is_semi_batched(3)

    def test_zero_period_rejected(self):
        with pytest.raises(ConfigurationError):
            _inst(0).is_batched(0)
        with pytest.raises(ConfigurationError):
            _inst(0).is_semi_batched(0)


class TestBatchedTo:
    def test_merges_same_slot(self):
        inst = _inst(1, 2, 3).batched_to(4)
        assert len(inst) == 1
        assert inst[0].release == 4
        assert inst[0].work == 9

    def test_exact_multiples_stay(self):
        inst = _inst(0, 4, 8).batched_to(4)
        assert len(inst) == 3
        assert inst.releases.tolist() == [0, 4, 8]

    def test_rounding_up(self):
        inst = _inst(5).batched_to(4)
        assert inst[0].release == 8

    def test_result_is_batched(self):
        inst = _inst(0, 1, 5, 6, 9).batched_to(4)
        assert inst.is_batched(4)

    def test_work_preserved(self):
        src = _inst(0, 1, 2, 3, 9)
        assert src.batched_to(5).total_work == src.total_work

    def test_zero_period_rejected(self):
        with pytest.raises(ConfigurationError):
            _inst(0).batched_to(0)


class TestTransforms:
    def test_delayed_by(self):
        inst = _inst(0, 3).delayed_by(2)
        assert inst.releases.tolist() == [2, 5]

    def test_delayed_by_zero(self):
        assert _inst(1).delayed_by(0).releases.tolist() == [1]

    def test_restricted_to(self):
        inst = _inst(0, 1, 2)
        sub = inst.restricted_to([0, 2])
        assert len(sub) == 2
        assert sub.releases.tolist() == [0, 2]

    def test_restricted_bad_id(self):
        with pytest.raises(ConfigurationError):
            _inst(0).restricted_to([5])

    def test_restricted_empty(self):
        with pytest.raises(ConfigurationError):
            _inst(0).restricted_to([])
