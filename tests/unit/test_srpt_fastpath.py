"""SRPT dynamic-job-order fast path: contract and bit-identity tests.

SRPT joined the engine's forced-frontier fast path via the
``dynamic_job_order`` contract: its (remaining work, job id) walk is a
pure function of the engine's own unfinished counts, so the engine
recomputes it per step and never dispatches ``select`` on the kernel
path. The heap path (``use_priority_kernel=False``) is the retained
per-node reference; everything here is checked bit-identical against it.
"""

import numpy as np
import pytest

from repro.core import DAG, Instance, Job, simulate
from repro.core.simulator import EngineState
from repro.schedulers.base import (
    ArbitraryTieBreak,
    DepthTieBreak,
    LongestPathTieBreak,
    RandomTieBreak,
)
from repro.schedulers.srpt import SRPTScheduler
from repro.workloads import poisson_instance, quicksort_tree


def _stream(seed=0, n_jobs=8, n=120):
    rng = np.random.default_rng(seed)
    dags = [quicksort_tree(int(rng.integers(30, n)), seed=seed * 31 + i)
            for i in range(n_jobs)]
    return poisson_instance(dags, rate=0.3, seed=seed)


def _chains(seed=0):
    rng = np.random.default_rng(seed + 9)
    jobs = [
        Job(
            DAG.from_parents(
                np.arange(-1, int(rng.integers(20, 60)) - 1, dtype=np.int64)
            ),
            int(rng.integers(0, 5)),
        )
        for _ in range(4)
    ]
    return Instance(jobs)


def _assert_identical(a, b):
    for x, y in zip(a.completion, b.completion):
        np.testing.assert_array_equal(np.asarray(x), np.asarray(y))


@pytest.mark.parametrize(
    "tie_break", [ArbitraryTieBreak, DepthTieBreak, LongestPathTieBreak]
)
@pytest.mark.parametrize("m", [1, 3, 16])
def test_fast_path_matches_heap_reference(tie_break, m):
    inst = _stream()
    fast = simulate(inst, m, SRPTScheduler(tie_break()))
    heap = simulate(inst, m, SRPTScheduler(tie_break(), use_priority_kernel=False))
    _assert_identical(fast, heap)
    stats = fast.engine_stats
    assert stats.select_calls == 0, "kernel path dispatched select()"
    assert stats.fast_forwarded_steps == stats.steps


def test_contract_declared_only_on_kernel_path():
    inst = _stream(3)
    s = SRPTScheduler()
    assert not s.supports_fast_forward  # before reset: unknown instance
    s.reset(inst, 4)
    assert s.supports_fast_forward
    assert s.frontier_priorities(inst) is not None

    heap = SRPTScheduler(use_priority_kernel=False)
    heap.reset(inst, 4)
    assert not heap.supports_fast_forward
    assert heap.frontier_priorities(inst) is None

    random_tb = SRPTScheduler(RandomTieBreak(7), seed=7)
    random_tb.reset(inst, 4)
    assert not random_tb.supports_fast_forward  # impure tie-break


def test_random_tie_break_still_dispatches():
    inst = _stream(5)
    a = simulate(inst, 4, SRPTScheduler(RandomTieBreak(11), seed=11))
    b = simulate(inst, 4, SRPTScheduler(RandomTieBreak(11), seed=11))
    _assert_identical(a, b)  # seeded: reproducible
    assert a.engine_stats.select_calls > 0  # heap path, per-step dispatch


@pytest.mark.parametrize("m", [2, 7])
def test_parity_under_fluctuating_availability(m):
    """Capacity changes re-rank nothing but change the walk's cutoff —
    including zero-capacity steps the fast path must idle through."""
    inst = _stream(2)
    rng = np.random.default_rng(42)
    trace = rng.integers(0, m + 1, size=200).tolist()
    fast = simulate(inst, m, SRPTScheduler(), availability=trace)
    heap = simulate(
        inst, m, SRPTScheduler(use_priority_kernel=False), availability=trace
    )
    _assert_identical(fast, heap)


def test_macro_stepping_engages_on_chains():
    inst = _chains()
    fast = simulate(inst, 2, SRPTScheduler(DepthTieBreak()))
    heap = simulate(
        inst, 2, SRPTScheduler(DepthTieBreak(), use_priority_kernel=False)
    )
    _assert_identical(fast, heap)
    assert fast.engine_stats.macro_steps > 0, (
        "chain-heavy SRPT run never macro-stepped — the dynamic-order "
        "macro contract is not engaging"
    )


def test_fast_path_job_order_is_srpt_order():
    s = SRPTScheduler()
    unfinished = np.array([5, 3, 3, 9], dtype=np.int64)
    assert s.fast_path_job_order([0, 1, 2, 3], unfinished) == [1, 2, 0, 3]


def test_resync_rebuilds_selection_state():
    """After resync from authoritative engine state, select() must serve
    the (remaining, job id) walk from the rebuilt frontiers."""
    dag = DAG.from_parents(np.array([-1, 0, 0, 1, 1], dtype=np.int64))
    inst = Instance([Job(dag, 0), Job(dag, 0)])
    s = SRPTScheduler()
    s.reset(inst, 4)
    state = EngineState(inst, 4)
    state.released[:] = True
    # Job 0 untouched (5 left, roots ready); job 1 has node 0 done and
    # nodes 1, 2 ready (4 left) — so job 1 leads the SRPT order.
    state.ready_mask[state.offsets[0] + 0] = True
    state.completion_flat[state.offsets[1] + 0] = 1
    state.unfinished_counts[1] -= 1
    state.ready_mask[state.offsets[1] + 1] = True
    state.ready_mask[state.offsets[1] + 2] = True
    s.resync(1, state)
    sel = np.asarray(s.select(1, 4))
    expected = np.array(
        [state.offsets[1] + 1, state.offsets[1] + 2, state.offsets[0] + 0],
        dtype=np.int64,
    )
    np.testing.assert_array_equal(np.sort(sel[:2]), expected[:2])
    assert sel[2] == expected[2]
