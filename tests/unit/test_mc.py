"""Unit tests for the Most-Children replayer (Section 5.2)."""

import numpy as np
import pytest

from repro.core import ConfigurationError, DAG, chain, complete_kary_tree, star
from repro.schedulers import MostChildrenReplayer, lpf_schedule


def _steps_of(dag, width):
    sched = lpf_schedule(dag, width)
    return [nodes for _, nodes in sched.job_steps(0)]


class TestConstruction:
    def test_level_counts(self, kary):
        steps = _steps_of(kary, 4)
        r = MostChildrenReplayer(steps, kary)
        assert r.remaining == kary.n
        assert r.n_levels == len(steps)
        assert not r.finished

    def test_empty_step_rejected(self, kary):
        with pytest.raises(ConfigurationError, match="empty"):
            MostChildrenReplayer([np.array([0]), np.array([], dtype=np.int64)], kary)

    def test_duplicate_node_rejected(self, kary):
        with pytest.raises(ConfigurationError, match="twice"):
            MostChildrenReplayer([np.array([0]), np.array([0])], kary)


class TestPriorities:
    def test_most_children_first(self):
        # Level 0: node 0 (two children in level 1) and node 3 (no children).
        dag = DAG(4, [(0, 1), (0, 2)])
        r = MostChildrenReplayer([np.array([0, 3]), np.array([1, 2])], dag)
        assert r.select(1) == [0]

    def test_tie_broken_by_id(self):
        dag = DAG(4, [(0, 2), (1, 3)])
        r = MostChildrenReplayer([np.array([0, 1]), np.array([2, 3])], dag)
        assert r.select(1) == [0]

    def test_children_counted_only_in_next_level(self):
        # node 0 has children in level 2 but NOT in level 1 -> count 0.
        dag = DAG(4, [(0, 3), (1, 2)])
        steps = [np.array([0, 1]), np.array([2]), np.array([3])]
        r = MostChildrenReplayer(steps, dag)
        assert r.select(1) == [1]  # node 1 has a child in the next level


class TestLevelAdvance:
    def test_rolls_into_next_level_same_step(self):
        dag = star(3)  # 0 -> 1,2,3
        steps = [np.array([0]), np.array([1, 2, 3])]
        r = MostChildrenReplayer(steps, dag)
        done = {0}
        # After 0 completes, a grant of 3 takes the whole next level.
        assert r.select(1) == [0]
        picks = r.select(3, lambda v: all(p in done for p in dag.parents(v)))
        assert sorted(picks) == [1, 2, 3]
        assert r.finished

    def test_blocked_children_not_picked_same_step(self):
        dag = chain(3)
        steps = [np.array([0]), np.array([1]), np.array([2])]
        r = MostChildrenReplayer(steps, dag)
        done = set()

        def ready(v):
            return all(p in done for p in dag.parents(v))

        picks = r.select(3, ready)  # only node 0 is ready
        assert picks == [0]
        done.update(picks)
        picks = r.select(3, ready)
        assert picks == [1]

    def test_blocked_nodes_restored(self):
        dag = chain(2)
        r = MostChildrenReplayer([np.array([0]), np.array([1])], dag)
        assert r.select(2, lambda v: v == 0) == [0]
        assert r.remaining == 1
        # Node 1 was stashed (unready) and must come back once ready.
        assert r.select(1) == [1]
        assert r.finished

    def test_zero_grant(self, kary):
        r = MostChildrenReplayer(_steps_of(kary, 4), kary)
        assert r.select(0) == []
        assert r.remaining == kary.n

    def test_negative_grant_rejected(self, kary):
        r = MostChildrenReplayer(_steps_of(kary, 4), kary)
        with pytest.raises(ConfigurationError):
            r.select(-1)


class TestFullReplay:
    @pytest.mark.parametrize("grant", [1, 2, 5])
    def test_replays_everything(self, grant, kary):
        steps = _steps_of(kary, 4)
        r = MostChildrenReplayer(steps, kary)
        done = set()
        for _ in range(10 * kary.n):
            if r.finished:
                break
            picks = r.select(
                grant, lambda v: all(int(p) in done for p in kary.parents(v))
            )
            done.update(picks)
        assert r.finished
        assert len(done) == kary.n

    def test_respects_precedence_throughout(self):
        dag = complete_kary_tree(3, 3)
        steps = _steps_of(dag, 5)
        r = MostChildrenReplayer(steps, dag)
        done: set[int] = set()
        while not r.finished:
            picks = r.select(
                4, lambda v: all(int(p) in done for p in dag.parents(v))
            )
            assert picks, "replayer stalled"
            for v in picks:
                assert all(int(p) in done for p in dag.parents(v))
            done.update(picks)
