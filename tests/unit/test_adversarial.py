"""Unit tests for the Section 4 adversarial family."""

import math

import numpy as np
import pytest

from repro.core import ConfigurationError, simulate
from repro.schedulers import ArbitraryTieBreak, FIFOScheduler
from repro.workloads import build_fifo_adversary


@pytest.fixture(scope="module")
def adv8():
    return build_fifo_adversary(8, n_jobs=16)


class TestStructure:
    def test_releases_on_period(self, adv8):
        assert adv8.instance.releases.tolist() == [i * 9 for i in range(16)]

    def test_jobs_are_out_forests(self, adv8):
        """Layer-1 subjobs are all roots, so each job is an out-forest: the
        main tree hanging off layer 1's key plus single-node trees (the
        layer-1 leaves). Every component is an out-tree, matching the class
        Theorem 4.2 speaks about."""
        for job in adv8.instance:
            assert job.is_out_forest
            dag = job.dag
            # The non-root portion below the layer-1 key is a single tree.
            assert (dag.outdegree[dag.roots] > 0).sum() == 1

    def test_layer_count_is_m(self, adv8):
        for job in adv8.instance:
            assert job.span == 8  # m layers -> depth m

    def test_layer_sizes_within_bounds(self, adv8):
        for job in adv8.instance:
            counts = job.dag.depth_counts[1:]
            assert counts.min() >= 1
            assert counts.max() <= 9  # at most m+1 per layer

    def test_keys_have_largest_ids_in_layer(self, adv8):
        """The key of layer d (the unique internal node, except at the last
        layer) carries the largest node id of its layer."""
        for job in adv8.instance:
            dag = job.dag
            for d in range(1, dag.span):  # last layer has no key children
                level = np.nonzero(dag.depth == d)[0]
                internal = level[dag.outdegree[level] > 0]
                assert internal.size == 1
                assert int(internal[0]) == int(level.max())

    def test_non_keys_are_leaves(self, adv8):
        for job in adv8.instance:
            dag = job.dag
            for d in range(1, dag.span + 1):
                level = np.nonzero(dag.depth == d)[0]
                assert (dag.outdegree[level] > 0).sum() <= 1


class TestSchedules:
    def test_fifo_schedule_feasible(self, adv8):
        adv8.fifo_schedule.validate()

    def test_witness_feasible_and_bounded(self, adv8):
        adv8.opt_witness.validate()
        assert adv8.opt_witness.max_flow <= 9  # m + 1

    def test_ratio_exceeds_one(self, adv8):
        assert adv8.ratio_lower_bound > 1.5

    def test_replay_identity(self, adv8):
        replay = simulate(adv8.instance, 8, FIFOScheduler(ArbitraryTieBreak()))
        assert all(
            np.array_equal(a, b)
            for a, b in zip(replay.completion, adv8.fifo_schedule.completion)
        )

    def test_ratio_grows_with_m(self):
        r4 = build_fifo_adversary(4, 12).ratio_lower_bound
        r16 = build_fifo_adversary(16, 48).ratio_lower_bound
        assert r16 > r4 + 0.5

    def test_tracks_lg_bound(self):
        adv = build_fifo_adversary(32, n_jobs=128)
        target = math.log2(32) - math.log2(math.log2(32))
        assert adv.ratio_lower_bound >= target


class TestParameters:
    def test_custom_layer_count(self):
        adv = build_fifo_adversary(6, n_jobs=4, n_layers=3)
        assert all(j.span == 3 for j in adv.instance)

    def test_single_job(self):
        adv = build_fifo_adversary(5, n_jobs=1)
        assert len(adv.instance) == 1
        adv.fifo_schedule.validate()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_fifo_adversary(1, 4)
        with pytest.raises(ConfigurationError):
            build_fifo_adversary(4, 0)
        with pytest.raises(ConfigurationError):
            build_fifo_adversary(4, 2, n_layers=0)

    def test_max_steps_guard(self):
        with pytest.raises(ConfigurationError, match="exceeded"):
            build_fifo_adversary(8, n_jobs=32, max_steps=10)
