"""Unit tests for fairness metrics and the SRPT baseline."""

import numpy as np
import pytest

from repro.analysis import fairness_report, flow_percentile
from repro.core import Instance, Job, Schedule, antichain, chain, simulate, star
from repro.schedulers import FIFOScheduler, SRPTScheduler


@pytest.fixture
def uneven_schedule():
    # Two jobs with flows 2 and 6 on m=1.
    inst = Instance([Job(chain(2), 0), Job(chain(4), 0)])
    return Schedule(inst, 1, [np.array([1, 2]), np.array([3, 4, 5, 6])])


class TestFairnessReport:
    def test_norms(self, uneven_schedule):
        report = fairness_report(uneven_schedule)
        assert report.max_flow == 6
        assert report.total_flow == 8
        assert report.mean_flow == 4.0

    def test_stretch(self, uneven_schedule):
        report = fairness_report(uneven_schedule)
        # chain(2) bound 2, flow 2 -> 1.0; chain(4) bound 4, flow 6 -> 1.5
        assert report.max_stretch == pytest.approx(1.5)
        assert report.mean_stretch == pytest.approx(1.25)

    def test_jain_index_range(self, uneven_schedule):
        report = fairness_report(uneven_schedule)
        assert 0 < report.jain_index <= 1
        # Perfectly even flows -> 1.
        inst = Instance([Job(chain(2), 0), Job(chain(2), 2)])
        even = Schedule(inst, 1, [np.array([1, 2]), np.array([3, 4])])
        assert fairness_report(even).jain_index == pytest.approx(1.0)

    def test_percentile(self, uneven_schedule):
        assert flow_percentile(uneven_schedule, 100) == 6.0
        assert flow_percentile(uneven_schedule, 0) == 2.0

    def test_as_row_keys(self, uneven_schedule):
        row = fairness_report(uneven_schedule).as_row()
        assert {"max_flow", "mean_flow", "p95_flow", "max_stretch", "jain"} <= set(row)


class TestSRPT:
    def test_feasible(self, two_job_instance):
        s = simulate(two_job_instance, 2, SRPTScheduler())
        s.validate()

    def test_prefers_nearly_done_job(self):
        # big job (8 nodes) at 0, tiny job (2 nodes) at 1, m=1:
        # SRPT switches to the tiny job immediately at its arrival.
        inst = Instance([Job(antichain(8), 0), Job(antichain(2), 1)])
        s = simulate(inst, 1, SRPTScheduler())
        assert s.job_completion(1) == 3  # runs at steps 2 and 3
        fifo = simulate(inst, 1, FIFOScheduler())
        assert fifo.job_completion(1) == 10  # FIFO drains the big job first

    def test_max_flow_vs_fifo_on_starvation_stream(self):
        jobs = [Job(antichain(12), 0, "big")] + [
            Job(antichain(2), 1 + 2 * i, f"s{i}") for i in range(10)
        ]
        inst = Instance(jobs)
        srpt = simulate(inst, 1, SRPTScheduler())
        fifo = simulate(inst, 1, FIFOScheduler())
        assert srpt.job_flow(0) > fifo.job_flow(0)
        assert srpt.max_flow >= fifo.max_flow

    def test_mean_flow_advantage(self):
        jobs = [Job(antichain(12), 0, "big")] + [
            Job(antichain(2), 1 + 2 * i, f"s{i}") for i in range(10)
        ]
        inst = Instance(jobs)
        srpt = simulate(inst, 1, SRPTScheduler())
        fifo = simulate(inst, 1, FIFOScheduler())
        assert srpt.flows.mean() <= fifo.flows.mean()

    def test_name_and_clairvoyance(self):
        s = SRPTScheduler()
        assert s.name == "SRPT[arbitrary]"
        assert s.clairvoyant

    def test_work_conserving(self):
        from repro.analysis import check_work_conserving

        inst = Instance([Job(star(6), 0), Job(chain(4), 1)])
        s = simulate(inst, 2, SRPTScheduler())
        assert check_work_conserving(s).ok
