"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_param, main


class TestParseParam:
    def test_int(self):
        assert _parse_param("m=8") == ("m", 8)

    def test_float(self):
        assert _parse_param("rate=0.5") == ("rate", 0.5)

    def test_string(self):
        assert _parse_param("mode=fast") == ("mode", "fast")

    def test_tuple(self):
        assert _parse_param("ms=8,16,32") == ("ms", (8, 16, 32))

    def test_missing_equals(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_param("nonsense")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_run_e1(self, capsys):
        assert main(["run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "[PASS]" in out

    def test_run_with_params(self, capsys):
        assert main(["run", "E5", "--param", "width=4", "--param", "trials=1"]) == 0
        assert "Lemma 5.5" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.2" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["report", "--only", "E1", "--output", str(out)]) == 0
        text = out.read_text()
        assert "## E1" in text and "[PASS]" in text
        assert "all claims hold" in capsys.readouterr().out

    def test_report_filters_unknown_ids(self, tmp_path):
        out = tmp_path / "r.md"
        assert main(["report", "--only", "E999", "--output", str(out)]) == 0
        assert "## " not in out.read_text()


class TestScale:
    def test_run_with_smoke_scale(self, capsys):
        assert main(["run", "E5", "--scale", "smoke"]) == 0
        assert "Lemma 5.5" in capsys.readouterr().out

    def test_scale_param_override_wins(self, capsys):
        # smoke preset sets trials=2; the explicit param overrides it.
        assert main(["run", "E5", "--scale", "smoke", "--param", "trials=1"]) == 0

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E5", "--scale", "enormous"])


class TestInspect:
    def _save(self, tmp_path):
        from repro.core import Instance, Job, chain, save_schedule_npz, simulate, star
        from repro.schedulers import FIFOScheduler

        inst = Instance([Job(star(5), 0, "a"), Job(chain(4), 2, "b")])
        schedule = simulate(inst, 3, FIFOScheduler())
        path = tmp_path / "s.npz"
        save_schedule_npz(schedule, path)
        return str(path), schedule

    def test_inspect_prints_metrics(self, tmp_path, capsys):
        path, schedule = self._save(tmp_path)
        assert main(["inspect", path]) == 0
        out = capsys.readouterr().out
        assert "max_flow" in out
        assert str(schedule.max_flow) in out

    def test_inspect_gantt_window(self, tmp_path, capsys):
        path, _ = self._save(tmp_path)
        assert main(["inspect", path, "--gantt", "--window", "1:3"]) == 0
        out = capsys.readouterr().out
        assert "p1" in out

    def test_inspect_missing_file(self, tmp_path):
        with pytest.raises(Exception):
            main(["inspect", str(tmp_path / "nope.npz")])
