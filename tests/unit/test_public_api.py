"""Export hygiene: every name in every ``__all__`` resolves, and the
documented public surface imports cleanly."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.schedulers",
    "repro.workloads",
    "repro.analysis",
    "repro.viz",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert module.__all__, f"{name} exports nothing"
    for entry in module.__all__:
        assert getattr(module, entry, None) is not None, f"{name}.{entry}"


@pytest.mark.parametrize("name", PACKAGES)
def test_no_duplicate_exports(name):
    module = importlib.import_module(name)
    assert len(module.__all__) == len(set(module.__all__))


def test_version_is_pep440_ish():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) >= 2 and all(p.isdigit() for p in parts[:2])


def test_star_import_core():
    namespace = {}
    exec("from repro.core import *", namespace)
    assert "DAG" in namespace and "simulate" in namespace


def test_cli_module_entrypoint_exists():
    import repro.__main__  # noqa: F401
    from repro.cli import main

    assert callable(main)


def test_docstrings_on_public_callables():
    """Every public function/class in the top packages carries a docstring
    (the documentation deliverable, enforced)."""
    import inspect

    missing = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        for entry in module.__all__:
            obj = getattr(module, entry)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{name}.{entry}")
    assert not missing, missing
