"""Unit tests for per-function effect summaries and their interprocedural
closure (:mod:`repro.lint.summaries`)."""

import ast
import textwrap

from repro.lint.summaries import (
    FunctionSummary,
    project_from_sources,
    summary_fingerprint,
)


def _table(**modules: str):
    entries = [
        (f"{name}.py", textwrap.dedent(source), ast.parse(textwrap.dedent(source)))
        for name, source in modules.items()
    ]
    return project_from_sources(entries)


def _summary(table, qualname: str) -> FunctionSummary:
    summary = table.get(qualname)
    assert summary is not None, f"no summary for {qualname}"
    return summary


# ----------------------------------------------------------------------
# Local extraction
# ----------------------------------------------------------------------


class TestLocalEffects:
    def test_rng_stream_draw(self):
        table = _table(m="def f(rng):\n    return rng.random()\n")
        (effect,) = _summary(table, "m.f").effects
        assert effect.kind == "rng"
        assert effect.path == ()

    def test_numpy_global_rng_vs_seeded_api(self):
        table = _table(
            m=(
                "import numpy as np\n"
                "def bad():\n    return np.random.rand()\n"
                "def good(seed):\n    return np.random.default_rng(seed)\n"
            )
        )
        assert _summary(table, "m.bad").effects_of_kind("rng")
        assert not _summary(table, "m.good").effects

    def test_clock_and_env_reads(self):
        table = _table(
            m=(
                "import time, os\n"
                "def t():\n    return time.time()\n"
                "def p():\n    return time.perf_counter()\n"
                "def e():\n    return os.getenv('HOME')\n"
            )
        )
        assert _summary(table, "m.t").effects_of_kind("clock")
        assert _summary(table, "m.p").effects_of_kind("clock")
        assert _summary(table, "m.e").effects_of_kind("env")

    def test_global_statement_and_unordered_iter(self):
        table = _table(
            m=(
                "def g():\n    global _n\n    _n += 1\n"
                "def u(d):\n    return [k for k in d.keys()]\n"
            )
        )
        assert _summary(table, "m.g").effects_of_kind("global-state")
        assert _summary(table, "m.u").effects_of_kind("unordered-iter")

    def test_pure_function_is_empty(self):
        table = _table(m="def f(xs):\n    return sorted(xs)[0]\n")
        summary = _summary(table, "m.f")
        assert summary.effects == () and summary.mutations == ()


class TestLocalMutations:
    def test_subscript_store(self):
        table = _table(m="def f(a, b):\n    b[0] = 1\n")
        (mut,) = _summary(table, "m.f").mutations
        assert (mut.param, mut.param_name) == (1, "b")

    def test_mutating_method_and_setflags(self):
        table = _table(
            m=(
                "def f(a):\n    a.fill(0)\n"
                "def g(a):\n    a.setflags(write=True)\n"
                "def h(a):\n    a.setflags(write=False)\n"
            )
        )
        assert _summary(table, "m.f").mutates_param(0)
        assert _summary(table, "m.g").mutates_param(0)
        assert _summary(table, "m.h").mutates_param(0) is None

    def test_ufunc_out_and_at(self):
        table = _table(
            m=(
                "import numpy as np\n"
                "def f(a, b):\n    np.add(a, 1, out=b)\n"
                "def g(a):\n    np.add.at(a, [0], 1)\n"
            )
        )
        assert _summary(table, "m.f").mutates_param(1)
        assert _summary(table, "m.f").mutates_param(0) is None
        assert _summary(table, "m.g").mutates_param(0)

    def test_read_only_use_is_not_mutation(self):
        table = _table(m="def f(a):\n    return a[0] + len(a)\n")
        assert _summary(table, "m.f").mutations == ()


# ----------------------------------------------------------------------
# Interprocedural closure
# ----------------------------------------------------------------------


class TestPropagation:
    def test_effect_crosses_modules_with_witness_path(self):
        table = _table(
            helpers=(
                "def _draw(rng):\n    return rng.random()\n"
                "def _jitter(rng):\n    return _draw(rng)\n"
            ),
            sched=(
                "from helpers import _jitter\n"
                "class S:\n"
                "    def select(self, m):\n"
                "        return _jitter(self._rng)\n"
            ),
        )
        summary = _summary(table, "sched.S.select")
        (effect,) = summary.effects_of_kind("rng")
        assert effect.origin == "helpers._draw"
        assert effect.path == ("helpers._jitter", "helpers._draw")
        assert effect.route("S.select") == (
            "S.select -> helpers._jitter -> helpers._draw"
        )

    def test_mutation_propagates_through_argument_map(self):
        table = _table(
            m=(
                "def deep(z):\n    z[0] = 1\n"
                "def mid(y):\n    deep(y)\n"
                "def outer(a, x):\n    mid(x)\n"
            )
        )
        outer = _summary(table, "m.outer")
        hit = outer.mutates_param(1)
        assert hit is not None
        assert hit.param_name == "x"
        assert hit.path == ("m.mid", "m.deep")
        assert outer.mutates_param(0) is None

    def test_recursive_cycle_converges(self):
        table = _table(
            m=(
                "def a(rng):\n    return b(rng)\n"
                "def b(rng):\n    return a(rng) + rng.random()\n"
            )
        )
        assert _summary(table, "m.a").effects_of_kind("rng")
        assert _summary(table, "m.b").effects_of_kind("rng")

    def test_unresolved_external_calls_add_nothing(self):
        table = _table(m="import numpy as np\ndef f(x):\n    return np.sort(x)\n")
        assert _summary(table, "m.f").effects == ()

    def test_reachable_from(self):
        table = _table(
            m=(
                "def leaf():\n    pass\n"
                "def mid():\n    leaf()\n"
                "def top():\n    mid()\n"
                "def island():\n    pass\n"
            )
        )
        reached = table.reachable_from(["m.top"])
        assert reached == {"m.top", "m.mid", "m.leaf"}


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_stable_for_identical_summaries(self):
        t1 = _table(m="def f(rng):\n    return rng.random()\n")
        t2 = _table(m="def f(rng):\n    return rng.random()\n")
        assert summary_fingerprint(_summary(t1, "m.f")) == summary_fingerprint(
            _summary(t2, "m.f")
        )

    def test_ignores_call_routing_but_not_effects(self):
        # Same observable effects through different internal routing: the
        # fingerprint must agree (cache survives pure refactors) ...
        direct = _table(h="def f(rng):\n    return rng.random()\n")
        pure = _table(h="def f(xs):\n    return sorted(xs)\n")
        changed = _table(h="import time\ndef f(rng):\n    return time.time()\n")
        fp_direct = summary_fingerprint(_summary(direct, "h.f"))
        fp_pure = summary_fingerprint(_summary(pure, "h.f"))
        fp_changed = summary_fingerprint(_summary(changed, "h.f"))
        # ... while different effects must disagree.
        assert len({fp_direct, fp_pure, fp_changed}) == 3

    def test_round_trip_preserves_fingerprint(self):
        table = _table(
            m="def f(rng, out):\n    out[0] = rng.random()\n"
        )
        summary = _summary(table, "m.f")
        clone = FunctionSummary.from_json(summary.to_json())
        assert summary_fingerprint(clone) == summary_fingerprint(summary)
        assert clone.effects == summary.effects
        assert clone.mutations == summary.mutations
        assert clone.calls == summary.calls
