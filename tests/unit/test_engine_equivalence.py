"""Differential equivalence: the vectorized frontier engine must produce
bit-identical schedules to the reference per-node loop.

``simulate`` (batched kernels + steady-state fast path) and
``_simulate_reference`` (the original per-node Python loop, kept verbatim)
are run on the same instance with freshly constructed schedulers, and the
resulting completion arrays compared exactly — across FIFO (several
tie-breaks, including the impure random one), LPF, most-children FIFO and
randomized work stealing, on packed, quicksort, random-forest and
adversarial workloads.
"""

import numpy as np
import pytest

from repro.core import Instance, Job, simulate
from repro.core.simulator import _simulate_reference
from repro.schedulers import (
    DepthTieBreak,
    FIFOScheduler,
    LPFScheduler,
    MostChildrenTieBreak,
    RandomTieBreak,
    ReverseTieBreak,
    WorkStealingScheduler,
)
from repro.workloads import (
    build_fifo_adversary,
    layered_tree,
    quicksort_tree,
    random_out_forest,
)

# ---------------------------------------------------------------------------
# Workload zoo: (name, seed) -> Instance. Small enough to run the reference
# loop quickly, varied enough to hit every engine path (scalar, batched,
# fast-forward, idle gaps, same-time arrivals).
# ---------------------------------------------------------------------------


def _packed(seed: int) -> Instance:
    rng = np.random.default_rng(seed)
    jobs = [
        Job(layered_tree([4] * int(rng.integers(4, 9)), seed=seed + i), 3 * i)
        for i in range(4)
    ]
    return Instance(jobs)


def _quicksort(seed: int) -> Instance:
    rng = np.random.default_rng(seed + 1000)
    jobs = [
        Job(quicksort_tree(int(rng.integers(20, 60)), seed=seed + i), 7 * i)
        for i in range(3)
    ]
    return Instance(jobs)


def _forest(seed: int) -> Instance:
    rng = np.random.default_rng(seed + 2000)
    jobs = [
        Job(random_out_forest(int(rng.integers(15, 40)), seed=seed + i), int(r))
        for i, r in enumerate(rng.integers(0, 12, size=4))
    ]
    return Instance(jobs)


def _adversarial(seed: int) -> Instance:
    return build_fifo_adversary(4, 3, seed=seed).instance


def _bursty_gap(seed: int) -> Instance:
    # Same-time arrival ties plus a long idle gap (exercises the idle jump
    # and the insort branch of FIFO's arrival handling).
    jobs = [
        Job(layered_tree([3] * 5, seed=seed), 0),
        Job(quicksort_tree(25, seed=seed), 0),
        Job(layered_tree([2] * 4, seed=seed + 1), 50),
    ]
    return Instance(jobs)


WORKLOADS = [
    (builder, seed)
    for builder in (_packed, _quicksort, _forest, _adversarial, _bursty_gap)
    for seed in range(4)
]  # 20 seeded workloads

SCHEDULERS = {
    "fifo-arbitrary": lambda: FIFOScheduler(),
    "fifo-reverse": lambda: FIFOScheduler(ReverseTieBreak()),
    "fifo-depth": lambda: FIFOScheduler(DepthTieBreak()),
    "fifo-random": lambda: FIFOScheduler(RandomTieBreak(seed=7)),
    "fifo-most-children": lambda: FIFOScheduler(MostChildrenTieBreak()),
    "lpf": lambda: LPFScheduler(),
    "worksteal": lambda: WorkStealingScheduler(seed=11),
    "worksteal-wc": lambda: WorkStealingScheduler(
        seed=13, deterministic_fallback=True
    ),
}


def _assert_identical(instance: Instance, make_scheduler, m: int) -> object:
    fast = simulate(instance, m, make_scheduler())
    ref = _simulate_reference(instance, m, make_scheduler())
    for i, (a, b) in enumerate(zip(fast.completion, ref.completion)):
        assert np.array_equal(a, b), f"job {i} diverged on m={m}"
    return fast


@pytest.mark.parametrize(
    "builder,seed", WORKLOADS, ids=[f"{b.__name__[1:]}-{s}" for b, s in WORKLOADS]
)
@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
def test_engines_agree(builder, seed, policy):
    instance = builder(seed)
    for m in (2, 8):
        _assert_identical(instance, SCHEDULERS[policy], m)


def test_fast_path_actually_engages_and_agrees():
    """The packed-rectangle regime must hit the fast path (otherwise the
    equivalence above would not be exercising it at all) and still match
    the reference loop exactly."""
    inst = Instance([Job(layered_tree([8] * 30, seed=0), 10 * i) for i in range(3)])
    fast = _assert_identical(inst, FIFOScheduler, 8)
    assert fast.engine_stats.fast_forwarded_steps > 0
    assert fast.engine_stats.resyncs >= 0
    fast.validate()


def test_impure_tiebreak_never_fast_forwards():
    inst = Instance([Job(layered_tree([8] * 30, seed=0), 0)])
    s = simulate(inst, 8, FIFOScheduler(RandomTieBreak(seed=3)))
    assert s.engine_stats.fast_forwarded_steps == 0


def test_observer_disables_fast_path():
    from repro.core import SimulationObserver

    class Counter(SimulationObserver):
        def __init__(self):
            self.n = 0

        def on_step(self, t, selection, state):
            self.n += 1

    inst = Instance([Job(layered_tree([8] * 10, seed=0), 0)])
    obs = Counter()
    s = simulate(inst, 8, FIFOScheduler(), observer=obs)
    assert s.engine_stats.fast_forwarded_steps == 0
    assert obs.n == s.makespan
