"""Unit tests for the competitive harness and growth-law fitting."""

import math

import pytest

from repro.analysis import (
    OptReference,
    classify_growth,
    compare_schedulers,
    fit_constant,
    fit_log_growth,
    run_case,
    summarize,
)
from repro.core import ConfigurationError, Instance, Job, chain, star
from repro.schedulers import FIFOScheduler, LPFScheduler, lpf_schedule


@pytest.fixture
def inst():
    return Instance([Job(star(5), 0), Job(chain(4), 2)])


class TestOptReference:
    def test_exact(self):
        ref = OptReference.exact(7)
        assert ref.value == 7 and ref.kind == "exact"

    def test_witness_reads_max_flow(self):
        s = lpf_schedule(chain(3), 2)
        ref = OptReference.witness(s)
        assert ref.value == 3 and ref.kind == "witness"

    def test_lower(self, inst):
        ref = OptReference.lower(inst, 2)
        assert ref.kind == "lower" and ref.value >= 1

    def test_bad_kind(self):
        with pytest.raises(ConfigurationError):
            OptReference(3, "guess")

    def test_bad_value(self):
        with pytest.raises(ConfigurationError):
            OptReference(0, "exact")


class TestRunCase:
    def test_fields(self, inst):
        case = run_case(inst, 2, FIFOScheduler(), OptReference.exact(4))
        assert case.scheduler == "FIFO[arbitrary]"
        assert case.m == 2
        assert case.n_jobs == 2
        assert case.total_work == 10
        assert case.max_flow >= 1
        assert case.ratio == case.max_flow / 4

    def test_defaults_to_lower_bound(self, inst):
        case = run_case(inst, 2, FIFOScheduler())
        assert case.opt_reference.kind == "lower"

    def test_compare_shares_reference(self, inst):
        cases = compare_schedulers(inst, 2, [FIFOScheduler(), LPFScheduler()])
        assert cases[0].opt_reference == cases[1].opt_reference
        assert {c.scheduler for c in cases} == {"FIFO[arbitrary]", "LPF"}


class TestFits:
    def test_log_fit_recovers_coefficients(self):
        xs = [2, 4, 8, 16, 32]
        ys = [1.0 + 0.5 * math.log2(x) for x in xs]
        fit = fit_log_growth(xs, ys)
        assert fit.intercept == pytest.approx(1.0, abs=1e-9)
        assert fit.slope == pytest.approx(0.5, abs=1e-9)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_predict(self):
        fit = fit_log_growth([2, 4], [1.0, 2.0])
        assert fit.predict(8) == pytest.approx(3.0)

    def test_needs_two_distinct_x(self):
        with pytest.raises(ConfigurationError):
            fit_log_growth([4, 4], [1, 2])

    def test_constant_fit(self):
        fit = fit_constant([2.0, 2.0, 2.0])
        assert fit.intercept == 2.0 and fit.slope == 0.0 and fit.residual == 0.0

    def test_classify_logarithmic(self):
        xs = [4, 8, 16, 32, 64]
        ys = [math.log2(x) for x in xs]
        assert classify_growth(xs, ys) == "logarithmic"

    def test_classify_constant(self):
        xs = [4, 8, 16, 32, 64]
        ys = [3.0, 3.1, 2.9, 3.05, 3.0]
        assert classify_growth(xs, ys) == "constant"

    def test_classify_noise_below_threshold(self):
        xs = [4, 8, 16, 32]
        ys = [1.0, 1.05, 1.1, 1.12]  # slope ~0.04 per doubling
        assert classify_growth(xs, ys) == "constant"


class TestSummarize:
    def test_values(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3
        assert s["mean"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])
