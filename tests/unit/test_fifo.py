"""Unit tests for FIFO: the paper's two defining constraints and
tie-break behaviour."""

import numpy as np
import pytest

from repro.core import Instance, Job, antichain, chain, simulate, star
from repro.schedulers import (
    ArbitraryTieBreak,
    FIFOScheduler,
    LongestPathTieBreak,
    RandomTieBreak,
)


def _ready_at(schedule, t):
    """Reconstruct the set of (job, node, arrival) ready at time t."""
    out = []
    for i, job in enumerate(schedule.instance):
        if job.release > t:
            continue
        c = schedule.completion[i]
        for v in range(job.dag.n):
            if 0 < c[v] <= t:
                continue
            if all(0 < c[p] <= t for p in job.dag.parents(v)):
                out.append((i, v, job.release))
    return out


class TestFIFOConstraints:
    @pytest.fixture
    def schedule(self):
        jobs = [
            Job(star(5), 0, "a"),
            Job(star(5), 1, "b"),
            Job(chain(4), 3, "c"),
        ]
        return simulate(Instance(jobs), 3, FIFOScheduler())

    def test_constraint_1_all_scheduled_when_underloaded(self, schedule):
        """If fewer than m subjobs are ready, FIFO runs them all."""
        for t in range(schedule.makespan):
            ready = _ready_at(schedule, t)
            ran = {(i, v) for i, v in schedule.at(t + 1)}
            if len(ready) < schedule.m:
                assert {(i, v) for i, v, _ in ready} == ran

    def test_constraint_2_skipped_jobs_are_younger(self, schedule):
        """A skipped ready subjob arrived no earlier than every scheduled
        one."""
        for t in range(schedule.makespan):
            ready = _ready_at(schedule, t)
            ran = {(i, v) for i, v in schedule.at(t + 1)}
            skipped = [(i, v, r) for i, v, r in ready if (i, v) not in ran]
            if not skipped:
                continue
            min_skipped_arrival = min(r for _, _, r in skipped)
            ran_arrivals = [r for i, v, r in ready if (i, v) in ran]
            assert all(r <= min_skipped_arrival for r in ran_arrivals)

    def test_feasible(self, schedule):
        schedule.validate()


class TestFIFOBehaviour:
    def test_oldest_job_never_starved(self):
        jobs = [Job(antichain(20), 0), Job(antichain(20), 0)]
        s = simulate(Instance(jobs), 4, FIFOScheduler())
        # job 0 (older by index) finishes no later than job 1
        assert s.job_completion(0) <= s.job_completion(1)

    def test_tie_break_changes_intra_job_order(self, small_tree):
        inst = Instance([Job(small_tree, 0)])
        arb = simulate(inst, 1, FIFOScheduler(ArbitraryTieBreak()))
        lpf = simulate(inst, 1, FIFOScheduler(LongestPathTieBreak()))
        # Both feasible, same single-processor makespan (all work serial).
        assert arb.makespan == lpf.makespan == small_tree.n

    def test_random_tiebreak_reproducible(self):
        inst = Instance([Job(star(10), 0), Job(star(10), 0)])
        a = simulate(inst, 3, FIFOScheduler(RandomTieBreak(5)))
        b = simulate(inst, 3, FIFOScheduler(RandomTieBreak(5)))
        assert all(
            np.array_equal(x, y) for x, y in zip(a.completion, b.completion)
        )

    def test_name_includes_tiebreak(self):
        assert FIFOScheduler().name == "FIFO[arbitrary]"
        assert FIFOScheduler(LongestPathTieBreak()).name == "FIFO[longestpath]"

    def test_clairvoyance_flag_follows_policy(self):
        assert not FIFOScheduler(ArbitraryTieBreak()).clairvoyant
        assert FIFOScheduler(LongestPathTieBreak()).clairvoyant

    def test_work_conserving(self):
        from repro.analysis import check_work_conserving

        jobs = [Job(star(6), 0), Job(chain(5), 2), Job(antichain(4), 4)]
        s = simulate(Instance(jobs), 3, FIFOScheduler())
        assert check_work_conserving(s).ok

    def test_simultaneous_arrivals_processed_in_id_order(self):
        jobs = [Job(antichain(3), 5, "x"), Job(antichain(3), 5, "y")]
        s = simulate(Instance(jobs), 3, FIFOScheduler())
        assert s.job_completion(0) <= s.job_completion(1)

    def test_reuse_after_reset(self, two_job_instance):
        fifo = FIFOScheduler()
        s1 = simulate(two_job_instance, 2, fifo)
        s2 = simulate(two_job_instance, 2, fifo)
        assert all(
            np.array_equal(a, b) for a, b in zip(s1.completion, s2.completion)
        )
