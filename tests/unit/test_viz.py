"""Unit tests for the ASCII renderers."""

import numpy as np
import pytest

from repro.core import Instance, Job, Schedule, chain, star
from repro.schedulers import lpf_schedule
from repro.viz import job_letter, render_gantt, render_head_tail, render_profile


@pytest.fixture
def sched():
    inst = Instance([Job(chain(3), 0, "a"), Job(star(2), 0, "b")])
    return Schedule(inst, 2, [np.array([1, 2, 3]), np.array([1, 2, 3])])


class TestJobLetter:
    def test_first_letters(self):
        assert job_letter(0) == "A"
        assert job_letter(1) == "B"

    def test_cycles(self):
        assert job_letter(62) == job_letter(0)


class TestGantt:
    def test_grid_dimensions(self, sched):
        out = render_gantt(sched, show_axis=False)
        lines = out.splitlines()
        assert len(lines) == 2  # one per processor
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_cells_show_job_letters(self, sched):
        out = render_gantt(sched, show_axis=False)
        assert "A" in out and "B" in out

    def test_custom_cell_function(self, sched):
        out = render_gantt(sched, cell=lambda j, v: "x", show_axis=False)
        assert "x" in out and "A" not in out

    def test_window(self, sched):
        out = render_gantt(sched, t_start=2, t_end=2, show_axis=False)
        assert all(l.count("|") == 2 for l in out.splitlines())

    def test_empty_window(self, sched):
        assert "empty" in render_gantt(sched, t_start=9, t_end=3)

    def test_axis_row(self, sched):
        lines = render_gantt(sched).splitlines()
        assert lines[-1].startswith("t")

    def test_idle_char(self):
        inst = Instance([Job(chain(2), 0)])
        s = Schedule(inst, 3, [np.array([1, 2])])
        out = render_gantt(s, idle_char="~", show_axis=False)
        assert "~" in out


class TestProfile:
    def test_one_line_per_step_uncollapsed(self, sched):
        out = render_profile(sched, collapse=False)
        assert len(out.splitlines()) == sched.makespan

    def test_collapse_folds_runs(self):
        s = lpf_schedule(star(20), 4)
        out = render_profile(s, width=4, collapse=True)
        assert ".." in out  # collapsed range label

    def test_usage_counts_shown(self, sched):
        out = render_profile(sched)
        assert out.splitlines()[0].strip().endswith("2")

    def test_restricted_to_job(self, sched):
        out = render_profile(sched, job_ids=[0])
        assert out.splitlines()[0].strip().endswith("1")


class TestHeadTail:
    def test_contains_boundary_info(self):
        s = lpf_schedule(star(20), 4)
        out = render_head_tail(s, 4, opt=6)
        assert "head:" in out and "tail:" in out
        assert "paper bounds" in out

    def test_without_opt(self):
        s = lpf_schedule(star(20), 4)
        out = render_head_tail(s, 4)
        assert "paper bounds" not in out


class TestComparison:
    def test_side_by_side(self):
        from repro.core import Instance, Job, simulate
        from repro.schedulers import FIFOScheduler, LPFScheduler
        from repro.viz import render_comparison

        inst = Instance([Job(star(4), 0, "wide"), Job(chain(3), 1, "deep")])
        a = simulate(inst, 2, FIFOScheduler())
        b = simulate(inst, 2, LPFScheduler())
        out = render_comparison(a, b, labels=("FIFO", "LPF"))
        assert "FIFO" in out and "LPF" in out
        assert "per-job flows:" in out
        assert "delta=" in out

    def test_rejects_mismatched_instances(self):
        from repro.core import Instance, Job, ScheduleError, simulate
        from repro.schedulers import FIFOScheduler
        from repro.viz import render_comparison

        a = simulate(Instance([Job(chain(2), 0)]), 1, FIFOScheduler())
        b = simulate(
            Instance([Job(chain(2), 0), Job(chain(2), 1)]), 1, FIFOScheduler()
        )
        import pytest as _pytest

        with _pytest.raises(ScheduleError):
            render_comparison(a, b)
