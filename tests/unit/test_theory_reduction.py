"""Unit tests for the theorem-bounds module and transitive reduction."""


import numpy as np
import pytest

from repro.analysis.theory import (
    PAPER_ALPHA,
    PAPER_BETA,
    lemma_5_1_bound,
    lemma_6_5_rhs_2,
    lemma_6_5_rhs_3,
    theorem_4_2_lower_bound,
    theorem_5_6_bound,
    theorem_5_7_ratio,
    theorem_6_1_bound,
)
from repro.core import ConfigurationError, DAG


class TestTheoremBounds:
    def test_paper_constants(self):
        assert PAPER_ALPHA == 4 and PAPER_BETA == 258

    def test_theorem_4_2_values(self):
        assert theorem_4_2_lower_bound(16) == pytest.approx(4 - 2)
        assert theorem_4_2_lower_bound(256) == pytest.approx(8 - 3)

    def test_theorem_4_2_monotone(self):
        vals = [theorem_4_2_lower_bound(m) for m in (4, 8, 16, 32, 64)]
        assert vals == sorted(vals)

    def test_theorem_4_2_needs_m_2(self):
        with pytest.raises(ConfigurationError):
            theorem_4_2_lower_bound(1)

    def test_lemma_5_1(self):
        assert lemma_5_1_bound(3, 10, 4) == 3 + 3
        assert lemma_5_1_bound(0, 0, 2) == 0

    def test_lemma_5_1_matches_depth_profile_bound(self, kary):
        from repro.analysis import depth_profile_lower_bound

        m = 3
        best = max(
            lemma_5_1_bound(d, kary.deeper_than(d), m)
            for d in range(kary.span + 1)
        )
        assert best == depth_profile_lower_bound(kary, m)

    def test_theorem_5_6(self):
        assert theorem_5_6_bound(10) == 1290
        assert theorem_5_6_bound(1) == 129
        assert theorem_5_6_bound(4, beta=8) == 16

    def test_theorem_5_7(self):
        assert theorem_5_7_ratio() == 1548

    def test_theorem_6_1(self):
        # tau(4, 4) = 32, log2 = 5 -> (5+1)*4 = 24
        assert theorem_6_1_bound(4, 4) == 24

    def test_lemma_6_5_rhs(self):
        assert lemma_6_5_rhs_2(2, 10, 3.0) == 23.0
        # (3) at ell=0: (1 - 1/2)*OPT
        assert lemma_6_5_rhs_3(0, 10) == pytest.approx(5.0)
        # (3) at ell=1: (1/2 + 3/4)*OPT
        assert lemma_6_5_rhs_3(1, 8) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lemma_5_1_bound(-1, 0, 2)
        with pytest.raises(ConfigurationError):
            theorem_5_6_bound(0)
        with pytest.raises(ConfigurationError):
            lemma_6_5_rhs_3(-1, 4)


class TestTransitiveReduction:
    def test_removes_shortcut_edge(self):
        dag = DAG(3, [(0, 1), (1, 2), (0, 2)])
        reduced = dag.transitive_reduction()
        assert reduced.edge_list() == [(0, 1), (1, 2)]

    def test_forest_unchanged(self, small_tree):
        assert small_tree.transitive_reduction() is small_tree

    def test_diamond_unchanged(self, diamond):
        reduced = diamond.transitive_reduction()
        assert reduced == diamond  # no redundant edges

    def test_preserves_reachability(self):
        dag = DAG(
            6,
            [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (1, 4), (4, 5), (0, 5)],
        )
        reduced = dag.transitive_reduction()
        for u in range(dag.n):
            assert np.array_equal(dag.descendants(u), reduced.descendants(u))

    def test_only_removes_edges(self):
        dag = DAG(5, [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2), (0, 4), (2, 4)])
        reduced = dag.transitive_reduction()
        assert set(reduced.edge_list()) <= set(dag.edge_list())
        assert reduced.n_edges < dag.n_edges

    def test_depth_and_span_preserved(self):
        dag = DAG(4, [(0, 1), (1, 2), (0, 2), (2, 3), (0, 3)])
        reduced = dag.transitive_reduction()
        assert reduced.span == dag.span
        assert np.array_equal(reduced.depth, dag.depth)
