"""``pack_instances`` / ``InstanceBatch`` layout invariants, the pickling
contract behind pool shipping, and ``run_trials`` routing."""

import pickle
import warnings

import numpy as np
import pytest

from repro.core import (
    DAG,
    ConfigurationError,
    Instance,
    InstanceBatch,
    Job,
    pack_instances,
    simulate,
    simulate_batch,
)
from repro.experiments import run_trials
from repro.schedulers import FIFOScheduler, LongestPathTieBreak
from repro.workloads import map_reduce_dag, random_out_forest


def _chain(n: int) -> DAG:
    return DAG.from_parents(np.arange(-1, n - 1, dtype=np.int64))


def _forest_instance(seed: int, n_jobs: int = 2) -> Instance:
    rng = np.random.default_rng(seed)
    return Instance(
        [
            Job(
                random_out_forest(int(rng.integers(4, 20)),
                                  seed=int(rng.integers(1 << 30))),
                release=int(rng.integers(0, 5)),
            )
            for _ in range(n_jobs)
        ]
    )


class TestPackInstances:
    def test_offsets_partition_the_batch(self):
        insts = [_forest_instance(s) for s in range(4)]
        batch = pack_instances(insts)
        assert batch.n_instances == 4
        assert batch.node_off[0] == 0 and batch.job_off[0] == 0
        sizes = np.diff(batch.node_off)
        assert [int(x) for x in sizes] == [
            inst.flat_graph.n_nodes for inst in insts
        ]
        assert [int(x) for x in np.diff(batch.job_off)] == [
            len(inst) for inst in insts
        ]
        assert batch.n_nodes == sum(inst.flat_graph.n_nodes for inst in insts)

    def test_job_of_node_is_instance_major_and_monotone(self):
        insts = [_forest_instance(s) for s in range(3)]
        batch = pack_instances(insts)
        assert np.all(np.diff(batch.job_of_node) >= 0)
        for b in range(3):
            rows = batch.job_of_node[batch.node_off[b]: batch.node_off[b + 1]]
            assert rows.min() >= batch.job_off[b]
            assert rows.max() < batch.job_off[b + 1]

    def test_edges_stay_within_their_instance(self):
        insts = [_forest_instance(s) for s in range(3)]
        batch = pack_instances(insts)
        for b in range(3):
            lo, hi = int(batch.node_off[b]), int(batch.node_off[b + 1])
            lo_e = int(batch.child_indptr[lo])
            hi_e = int(batch.child_indptr[hi])
            kids = batch.child_indices[lo_e:hi_e]
            assert kids.size == 0 or (kids.min() >= lo and kids.max() < hi)

    def test_roots_are_zero_indegree_and_release_aligned(self):
        insts = [_forest_instance(s) for s in range(3)]
        batch = pack_instances(insts)
        assert np.array_equal(
            batch.root_gids, np.nonzero(batch.indegree == 0)[0]
        )
        assert np.array_equal(
            batch.root_release, batch.releases[batch.job_of_node[batch.root_gids]]
        )

    def test_arrays_are_frozen(self):
        batch = pack_instances([_forest_instance(0)])
        for name in (
            "node_off", "job_off", "job_of_node", "releases", "root_gids",
            "root_release", "child_indptr", "child_indices", "indegree",
        ):
            assert not getattr(batch, name).flags.writeable, name

    def test_chain_layout_matches_run_semantics(self):
        """run_nodes/node_index form an inverse permutation pair and a
        node's successor-in-run (its sole child) sits at index+1."""
        insts = [Instance([Job(_chain(30), 0)]), _forest_instance(1)]
        batch = pack_instances(insts)
        assert batch.all_out_forests
        n = batch.n_nodes
        assert np.array_equal(
            batch.run_nodes[batch.node_index], np.arange(n)
        )
        outdeg = np.diff(batch.child_indptr)
        for v in np.nonzero(outdeg == 1)[0]:
            child = int(batch.child_indices[batch.child_indptr[v]])
            assert batch.node_index[child] == batch.node_index[v] + 1
            assert batch.steps_to_end[v] == batch.steps_to_end[child] + 1

    def test_non_forest_batch_has_no_chain_layout(self):
        batch = pack_instances(
            [Instance([Job(map_reduce_dag(4), 0)]), _forest_instance(0)]
        )
        assert not batch.all_out_forests
        assert batch.run_nodes is None
        assert batch.node_index is None
        assert batch.steps_to_end is None

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_instances([])

    def test_mismatched_prepacked_batch_rejected(self):
        insts = [_forest_instance(s) for s in range(2)]
        other = pack_instances([_forest_instance(5)])
        with pytest.raises(ConfigurationError):
            simulate_batch(insts, 2, FIFOScheduler(), batch=other)


class TestInstancePickling:
    def test_pickle_drops_cached_layouts_and_rebuilds_frozen(self):
        """numpy does not serialize writeable flags, so a pickled cached
        flat_graph would arrive thawed in pool workers (tripping the
        RPR201 freeze assert); ``__getstate__`` strips the caches and the
        receiver rebuilds them frozen."""
        inst = _forest_instance(3)
        flat = inst.flat_graph  # materialize the cache
        assert not flat.offsets.flags.writeable
        clone = pickle.loads(pickle.dumps(inst))
        assert "flat_graph" not in clone.__dict__
        assert not clone.flat_graph.offsets.flags.writeable
        assert np.array_equal(clone.flat_graph.offsets, flat.offsets)
        assert np.array_equal(
            clone.flat_graph.child_indices, flat.child_indices
        )

    def test_pickled_instance_simulates_identically(self):
        inst = _forest_instance(4)
        inst.flat_graph
        clone = pickle.loads(pickle.dumps(inst))
        a = simulate(inst, 3, FIFOScheduler())
        b = simulate(clone, 3, FIFOScheduler())
        for x, y in zip(a.completion, b.completion):
            assert np.array_equal(x, y)


def _fifo_factory():
    return FIFOScheduler()


class TestRunTrials:
    def _trials(self, n):
        return [_forest_instance(100 + s) for s in range(n)]

    def test_matches_per_instance_simulate(self):
        trials = self._trials(12)
        schedules = run_trials(trials, 3, _fifo_factory)
        assert len(schedules) == len(trials)
        for inst, sched in zip(trials, schedules):
            ref = simulate(inst, 3, FIFOScheduler())
            for x, y in zip(sched.completion, ref.completion):
                assert np.array_equal(x, y)

    def test_chunked_serial_matches_single_batch(self):
        trials = self._trials(10)
        one = run_trials(trials, 2, _fifo_factory)
        # A tiny node budget forces many chunks; results must not change.
        many = run_trials(trials, 2, _fifo_factory, batch_node_budget=30)
        for a, b in zip(one, many):
            for x, y in zip(a.completion, b.completion):
                assert np.array_equal(x, y)

    def test_parallel_matches_serial(self):
        trials = self._trials(10)
        serial = run_trials(trials, 2, _fifo_factory)
        parallel = run_trials(
            trials, 2, _fifo_factory, n_workers=2, batch_node_budget=60
        )
        for a, b in zip(serial, parallel):
            for x, y in zip(a.completion, b.completion):
                assert np.array_equal(x, y)

    def test_unpicklable_factory_warns_and_runs_serial(self):
        trials = self._trials(6)
        tb = LongestPathTieBreak()
        with pytest.warns(RuntimeWarning, match="cannot be pickled"):
            schedules = run_trials(
                trials,
                2,
                lambda: FIFOScheduler(tb),  # closure: not picklable
                n_workers=2,
                batch_node_budget=30,
            )
        for inst, sched in zip(trials, schedules):
            ref = simulate(inst, 2, FIFOScheduler(LongestPathTieBreak()))
            for x, y in zip(sched.completion, ref.completion):
                assert np.array_equal(x, y)

    def test_empty_input(self):
        assert run_trials([], 2, _fifo_factory) == []

    def test_per_instance_availability_list(self):
        trials = self._trials(5)
        avail = [None, [0, 1, 2], None, [2, 0, 2, 1], [1]]
        schedules = run_trials(trials, 2, _fifo_factory, availability=avail)
        for inst, av, sched in zip(trials, avail, schedules):
            ref = simulate(inst, 2, FIFOScheduler(), availability=av)
            for x, y in zip(sched.completion, ref.completion):
                assert np.array_equal(x, y)
