"""Tests for the supervised executor (`repro.experiments.supervisor`) and
the fault-recovery behavior of the shared process pool."""

import os
import pickle
import time

import pytest

from repro.experiments import (
    SupervisorConfig,
    TaskTimeoutError,
    run_supervised,
    shared_pool,
    shutdown_shared_pool,
)
from repro.experiments.supervisor import _journal_path

#: Retry policy with near-zero backoff so failure tests stay fast.
FAST = SupervisorConfig(max_retries=3, backoff_base=0.001, backoff_cap=0.002)


# ----------------------------------------------------------------------
# Module-level worker functions (the fork start method ships these to
# pool workers by reference). Fault tasks are gated on a sentinel file so
# they misbehave exactly once and succeed on retry.
# ----------------------------------------------------------------------


def _double(x):
    return 2 * x


def _fail_unconditionally(x):
    raise RuntimeError(f"task {x} always fails")


def _crash_once(task):
    sentinel, x = task
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)  # hard worker death -> BrokenProcessPool in the parent
    return 2 * x


def _crash_always(task):
    os._exit(1)


def _crash_always_local(task):
    _sentinel, x = task
    return 2 * x


def _hang_once(task):
    sentinel, x = task
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        time.sleep(60)  # far beyond the test's task_timeout
    return 2 * x


def _hang_always(task):
    time.sleep(60)


def _raise_interrupt(task):
    sentinel, x = task
    if x == "boom" and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        raise KeyboardInterrupt
    return x


@pytest.fixture(autouse=True)
def _fresh_pool():
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


class TestConfigValidation:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            SupervisorConfig(task_timeout=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            SupervisorConfig(max_retries=-1)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError):
            SupervisorConfig(jitter=2.0)


class TestSerialPath:
    def test_results_align_with_tasks(self):
        out = run_supervised(_double, [3, 1, 4], n_workers=1)
        assert out.results == [6, 2, 8]
        assert not out.interrupted and out.retries == 0

    def test_retries_then_succeeds(self, tmp_path):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            return x

        out = run_supervised(flaky, [9], n_workers=1, config=FAST)
        assert out.results == [9]
        assert out.retries == 2

    def test_exhausted_retries_reraise_task_exception(self):
        with pytest.raises(RuntimeError, match="always fails"):
            run_supervised(
                _fail_unconditionally, [1], n_workers=1, config=FAST
            )


class TestCheckpointJournal:
    def test_resume_serves_journaled_results(self, tmp_path):
        keys = ["k0", "k1"]
        out = run_supervised(
            _double, [1, 2], n_workers=1, keys=keys, checkpoint_dir=tmp_path
        )
        assert out.results == [2, 4] and out.resumed == 0

        # A worker that would fail proves resumed entries skip execution.
        out2 = run_supervised(
            _fail_unconditionally, [1, 2], n_workers=1,
            keys=keys, checkpoint_dir=tmp_path,
        )
        assert out2.results == [2, 4]
        assert out2.resumed == 2 and out2.resumed_indices == [0, 1]

    def test_resume_false_ignores_journal(self, tmp_path):
        keys = ["a"]
        run_supervised(
            _double, [5], n_workers=1, keys=keys, checkpoint_dir=tmp_path
        )
        out = run_supervised(
            lambda x: -x, [5], n_workers=1,
            keys=keys, checkpoint_dir=tmp_path, resume=False,
        )
        assert out.results == [-5] and out.resumed == 0
        # ... and the journal entry was overwritten with the new value.
        out2 = run_supervised(
            _fail_unconditionally, [5], n_workers=1,
            keys=keys, checkpoint_dir=tmp_path,
        )
        assert out2.results == [-5]

    def test_corrupt_journal_entry_is_recomputed(self, tmp_path):
        keys = ["c"]
        run_supervised(
            _double, [7], n_workers=1, keys=keys, checkpoint_dir=tmp_path
        )
        _journal_path(tmp_path, "c").write_bytes(b"not a pickle")
        out = run_supervised(
            _double, [7], n_workers=1, keys=keys, checkpoint_dir=tmp_path
        )
        assert out.results == [14] and out.resumed == 0

    def test_truncated_journal_entry_is_recomputed(self, tmp_path):
        keys = ["t"]
        run_supervised(
            _double, [8], n_workers=1, keys=keys, checkpoint_dir=tmp_path
        )
        path = _journal_path(tmp_path, "t")
        path.write_bytes(path.read_bytes()[:2])
        out = run_supervised(
            _double, [8], n_workers=1, keys=keys, checkpoint_dir=tmp_path
        )
        assert out.results == [16] and out.resumed == 0

    def test_journal_writes_are_atomic(self, tmp_path):
        run_supervised(
            _double, [1], n_workers=1, keys=["k"], checkpoint_dir=tmp_path
        )
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []
        (entry,) = tmp_path.glob("*.ckpt")
        with open(entry, "rb") as fh:
            assert pickle.load(fh) == 2

    def test_checkpoint_requires_keys(self, tmp_path):
        with pytest.raises(ValueError, match="keys"):
            run_supervised(
                _double, [1], n_workers=1, checkpoint_dir=tmp_path
            )

    def test_key_count_must_match_tasks(self):
        with pytest.raises(ValueError, match="keys for"):
            run_supervised(_double, [1, 2], n_workers=1, keys=["only-one"])


class TestParallelFaults:
    def test_parallel_happy_path(self):
        out = run_supervised(_double, list(range(5)), n_workers=2)
        assert out.results == [0, 2, 4, 6, 8]
        assert out.pool_rebuilds == 0

    def test_worker_crash_rebuilds_pool_and_retries(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        tasks = [(sentinel, x) for x in range(4)]
        out = run_supervised(_crash_once, tasks, n_workers=2, config=FAST)
        assert out.results == [0, 2, 4, 6]
        assert out.pool_rebuilds >= 1
        assert out.retries >= 1

    def test_hung_task_times_out_and_recovers(self, tmp_path):
        sentinel = str(tmp_path / "hung")
        config = SupervisorConfig(
            task_timeout=1.0, max_retries=2,
            backoff_base=0.001, backoff_cap=0.002,
        )
        tasks = [(sentinel, x) for x in range(3)]
        start = time.monotonic()
        out = run_supervised(_hang_once, tasks, n_workers=2, config=config)
        elapsed = time.monotonic() - start
        assert out.results == [0, 2, 4]
        assert out.pool_rebuilds >= 1
        assert elapsed < 30  # recovered by killing the worker, not waiting

    def test_timeout_exhaustion_raises_task_timeout_error(self, tmp_path):
        config = SupervisorConfig(
            task_timeout=0.5, max_retries=0,
            backoff_base=0.001, backoff_cap=0.002,
        )
        with pytest.raises(TaskTimeoutError):
            run_supervised(_hang_always, [1], n_workers=2, config=config)

    def test_degrades_to_serial_after_rebuild_budget(self, tmp_path):
        config = SupervisorConfig(
            max_retries=5, max_pool_rebuilds=1,
            backoff_base=0.001, backoff_cap=0.002,
        )
        tasks = [(str(tmp_path / "s"), x) for x in range(3)]
        out = run_supervised(
            _crash_always, tasks, n_workers=2, config=config,
            local_fn=_crash_always_local,
        )
        assert out.degraded_to_serial
        assert out.results == [0, 2, 4]
        assert out.pool_rebuilds == config.max_pool_rebuilds + 1

    def test_keyboard_interrupt_returns_partial_results(self, tmp_path):
        sentinel = str(tmp_path / "interrupted")
        tasks = [(sentinel, "ok-1"), (sentinel, "boom"), (sentinel, "ok-2")]
        out = run_supervised(_raise_interrupt, tasks, n_workers=2)
        assert out.interrupted
        assert out.results[0] == "ok-1"
        assert out.results[1] is None

    def test_interrupt_preserves_journal_for_resume(self, tmp_path):
        sentinel = str(tmp_path / "resume")
        ckpt = tmp_path / "journal"
        keys = ["r0", "r1", "r2"]
        tasks = [(sentinel, "ok-1"), (sentinel, "boom"), (sentinel, "ok-2")]
        out = run_supervised(
            _raise_interrupt, tasks, n_workers=2,
            keys=keys, checkpoint_dir=ckpt,
        )
        assert out.interrupted
        # The sentinel now exists, so "boom" succeeds on the resumed run;
        # journaled tasks are served from disk.
        out2 = run_supervised(
            _raise_interrupt, tasks, n_workers=2,
            keys=keys, checkpoint_dir=ckpt,
        )
        assert not out2.interrupted
        assert out2.results == ["ok-1", "boom", "ok-2"]
        assert out2.resumed >= 1


class TestSharedPoolRecovery:
    def test_broken_pool_is_replaced_on_next_request(self):
        pool = shared_pool(2)
        with pytest.raises(BaseException):
            pool.submit(_crash_always, (None, 0)).result()
        fresh = shared_pool(2)
        assert fresh is not pool
        assert fresh.submit(_double, 21).result() == 42

    def test_externally_shutdown_pool_is_replaced(self):
        pool = shared_pool(2)
        pool.shutdown(wait=True)
        fresh = shared_pool(2)
        assert fresh is not pool
        assert fresh.submit(_double, 1).result() == 2

    def test_force_shutdown_reclaims_hung_worker(self, tmp_path):
        pool = shared_pool(1)
        pool.submit(_hang_always, 0)
        time.sleep(0.3)  # let the worker enter its sleep
        start = time.monotonic()
        shutdown_shared_pool(force=True)
        assert time.monotonic() - start < 30
        # The shared-pool entry point hands out a fresh, working pool.
        assert shared_pool(1).submit(_double, 2).result() == 4

    def test_atexit_hook_registered_once(self):
        import atexit

        from repro.experiments import pool as pool_mod

        shared_pool(1)
        assert pool_mod._atexit_registered
        # Re-registration is idempotent across pool rebuilds.
        shutdown_shared_pool()
        shared_pool(1)
        assert pool_mod._atexit_registered
        atexit.unregister(shutdown_shared_pool)  # avoid double unregister noise
        atexit.register(shutdown_shared_pool)
