"""Fixture-driven tests for ``repro.lint``.

Every rule ships its own ``bad_example`` / ``good_example`` snippet pair;
the parametrized tests below are the contract that each rule fires on the
former and stays silent on the latter. The remaining tests cover the
engine: suppression pragmas (with the mandatory-reason policy), import
alias resolution, report aggregation, and the JSON payload shape.
"""

import textwrap

import pytest

from repro.lint import LintReport, Violation, lint_paths, lint_source
from repro.lint.engine import SUPPRESSION_RULE_ID, SYNTAX_RULE_ID, FileContext
from repro.lint.model import parse_suppressions
from repro.lint.registry import RULES, Rule, all_rules, get_rule, register_rule

ALL_RULES = all_rules()


# ----------------------------------------------------------------------
# The fixture contract: bad fires, good is silent
# ----------------------------------------------------------------------


@pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.rule_id)
def test_rule_fires_on_bad_example(rule):
    assert rule.bad_example.strip(), f"{rule.rule_id} ships no bad_example"
    report = lint_source(rule.bad_example, path="bad.py", rules=[rule])
    fired = {v.rule_id for v in report.violations}
    assert rule.rule_id in fired, f"{rule.rule_id} silent on its own bad_example"


@pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.rule_id)
def test_rule_silent_on_good_example(rule):
    assert rule.good_example.strip(), f"{rule.rule_id} ships no good_example"
    report = lint_source(rule.good_example, path="good.py", rules=[rule])
    assert report.violations == [], (
        f"{rule.rule_id} false positive on its good_example: "
        f"{[v.format() for v in report.violations]}"
    )


@pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.rule_id)
def test_rule_metadata_complete(rule):
    assert rule.rule_id.startswith("RPR") and len(rule.rule_id) == 6
    assert rule.title
    assert rule.rationale


def test_rule_catalog_is_stable():
    # Adding a rule is fine; renumbering or dropping one is an API break.
    expected = {
        "RPR001", "RPR002", "RPR003", "RPR004",  # determinism
        "RPR005",  # failure paths
        "RPR006",  # macro-step contract
        "RPR007",  # batch-capable contract
        "RPR008",  # kernel-backend style discipline
        "RPR009",  # streaming unbounded-accumulation discipline
        "RPR101", "RPR102", "RPR103",  # scheduler contracts
        "RPR201", "RPR202", "RPR203",  # engine safety
        "RPR301",  # picklability
        "RPR310", "RPR311", "RPR312",  # whole-program contract verification
    }
    assert expected <= set(RULES)


# ----------------------------------------------------------------------
# RPR009 — unbounded accumulation on long-lived streaming state
# ----------------------------------------------------------------------


class TestUnboundedAccumulationScope:
    GROWING = textwrap.dedent(
        """\
        class Tracker:
            def __init__(self):
                self.history = []

            def on_event(self, item):
                self.history.append(item)
        """
    )

    def _violations(self, source, path):
        rule = get_rule("RPR009")
        report = lint_source(source, path=path, rules=[rule])
        return [v for v in report.violations if v.rule_id == "RPR009"]

    def test_fires_in_streaming_package(self):
        assert self._violations(self.GROWING, "src/repro/streaming/engine.py")

    def test_exempt_in_batch_mode_layers(self):
        for path in (
            "src/repro/core/simulator.py",
            "src/repro/experiments/runner.py",
            "src/repro/analysis/fairness.py",
            "tests/unit/test_x.py",
        ):
            assert not self._violations(self.GROWING, path), path

    def test_retire_path_bounds_the_attr(self):
        src = textwrap.dedent(
            """\
            class Window:
                def __init__(self):
                    self.live = {}

                def admit(self, index, job):
                    self.live[index] = job

                def retire(self, index):
                    del self.live[index]
            """
        )
        assert not self._violations(src, "src/repro/streaming/engine.py")

    def test_dict_grow_without_retire_fires(self):
        src = textwrap.dedent(
            """\
            class Window:
                def __init__(self):
                    self.live = {}

                def admit(self, index, job):
                    self.live[index] = job
            """
        )
        assert self._violations(src, "src/repro/streaming/engine.py")

    def test_rebinding_counts_as_compaction(self):
        src = textwrap.dedent(
            """\
            class Window:
                def __init__(self):
                    self.recent = []

                def note(self, item):
                    self.recent.append(item)

                def compact(self):
                    self.recent = self.recent[-64:]
            """
        )
        assert not self._violations(src, "src/repro/streaming/engine.py")

    def test_suppression_with_reason_is_honored(self):
        src = textwrap.dedent(
            """\
            class Hist:
                def __init__(self):
                    self.counts = {}

                def note(self, bucket):
                    self.counts[bucket] = self.counts.get(bucket, 0) + 1  # repro-lint: disable=RPR009 (bounded: 64 log2 buckets)
            """
        )
        assert not self._violations(src, "src/repro/streaming/metrics.py")

    def test_free_list_recycling_pop_is_not_retirement(self):
        # `slot = free.pop()` recycles an element (arena free-list idiom);
        # it says nothing about the list's bound, so the grow site fires.
        src = textwrap.dedent(
            """\
            class Arena:
                def __init__(self):
                    self.free = []

                def new_slot(self):
                    if self.free:
                        return self.free.pop()
                    return 0

                def retire(self, slot):
                    self.free.append(slot)
            """
        )
        violations = self._violations(src, "src/repro/streaming/arena.py")
        assert len(violations) == 1
        assert "free" in violations[0].message

    def test_discarding_pops_still_count_as_retirement(self):
        # A pop whose value is discarded (bare statement / positional arg)
        # genuinely trims the container and remains shrink evidence.
        for trim in ("self.recent.pop(0)", "self.recent.pop()"):
            src = textwrap.dedent(
                f"""\
                class Window:
                    def __init__(self):
                        self.recent = []

                    def note(self, item):
                        self.recent.append(item)

                    def trim(self):
                        {trim}
                """
            )
            assert not self._violations(
                src, "src/repro/streaming/engine.py"
            ), trim

    def test_arena_free_list_needs_its_reasoned_suppression(self):
        # The shipped StreamArena free list is clean only because of its
        # reasoned suppression at the grow site — strip the pragma and the
        # free-list grow site must fire (coverage pin for the rule).
        import inspect

        from repro.streaming import arena as arena_mod

        src = inspect.getsource(arena_mod)
        path = "src/repro/streaming/arena.py"
        rule = get_rule("RPR009")
        report = lint_source(src, path=path, rules=[rule])
        assert [v for v in report.violations if v.rule_id == "RPR009"] == []
        assert report.suppressed_count >= 1
        stripped = src.replace("# repro-lint: disable=RPR009", "# pragma-off")
        report = lint_source(stripped, path=path, rules=[rule])
        fired = [v for v in report.violations if v.rule_id == "RPR009"]
        assert any("_free_slots" in v.message for v in fired)


# ----------------------------------------------------------------------
# RPR005 — silently swallowed exceptions (engine/scheduler scope)
# ----------------------------------------------------------------------


class TestSilentSwallowScope:
    SNIPPET = textwrap.dedent(
        """\
        def load(path):
            try:
                return open(path).read()
            except OSError:
                pass
        """
    )

    def _violations(self, path):
        rule = get_rule("RPR005")
        report = lint_source(self.SNIPPET, path=path, rules=[rule])
        return [v for v in report.violations if v.rule_id == "RPR005"]

    def test_fires_in_core_and_schedulers(self):
        assert self._violations("src/repro/core/simulator.py")
        assert self._violations("src/repro/schedulers/fifo.py")

    def test_exempt_in_harness_layers(self):
        for layer in ("experiments", "workloads", "viz", "analysis", "lint"):
            assert not self._violations(f"src/repro/{layer}/x.py"), layer

    def test_ellipsis_body_counts_as_swallow(self):
        rule = get_rule("RPR005")
        src = "try:\n    f()\nexcept ValueError:\n    ...\n"
        report = lint_source(src, path="core.py", rules=[rule])
        assert any(v.rule_id == "RPR005" for v in report.violations)

    def test_handler_that_records_is_allowed(self):
        rule = get_rule("RPR005")
        src = (
            "try:\n    f()\nexcept ValueError:\n"
            "    log.warning('recovering')\n"
        )
        report = lint_source(src, path="core.py", rules=[rule])
        assert not report.violations

    def test_suppression_with_reason_is_honored(self):
        rule = get_rule("RPR005")
        src = (
            "try:\n    f()\n"
            "except ValueError:  "
            "# repro-lint: disable=RPR005 (benign probe failure)\n"
            "    pass\n"
        )
        report = lint_source(src, path="core.py", rules=[rule])
        assert report.violations == []
        assert report.suppressed_count == 1


# ----------------------------------------------------------------------
# RPR004 — impure TieBreak.key()
# ----------------------------------------------------------------------


class TestImpureTieBreakKey:
    def _fired(self, source):
        report = lint_source(
            textwrap.dedent(source), rules=[get_rule("RPR004")]
        )
        return report.violations

    def test_flags_instance_rng_stream(self):
        (v,) = self._fired(
            """
            class NoisyTieBreak(TieBreak):
                def key(self, job, node):
                    return self._rng.integers(0, 10)
            """
        )
        assert "self._rng.integers" in v.message
        assert "pure = False" in v.message

    def test_flags_clock_read(self):
        (v,) = self._fired(
            """
            import time

            class ClockTieBreak(TieBreak):
                def key(self, job, node):
                    return time.perf_counter()
            """
        )
        assert "time.perf_counter" in v.message

    def test_flags_global_statement(self):
        (v,) = self._fired(
            """
            class CountingTieBreak(TieBreak):
                def key(self, job, node):
                    global _calls
                    _calls += 1
                    return node
            """
        )
        assert "global _calls" in v.message

    def test_pure_false_opts_out(self):
        assert not self._fired(
            """
            class NoisyTieBreak(TieBreak):
                pure = False

                def key(self, job, node):
                    return self._rng.integers(0, 10)
            """
        )

    def test_non_tie_break_classes_ignored(self):
        assert not self._fired(
            """
            class Sampler:
                def key(self, job, node):
                    return self._rng.integers(0, 10)
            """
        )

    def test_pure_key_is_silent(self):
        assert not self._fired(
            """
            class DeepTieBreak(TieBreak):
                def key(self, job, node):
                    return -int(job.dag.depth[node])
            """
        )


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

BARE_EXCEPT = textwrap.dedent(
    """
    try:
        x = 1
    except:
        pass
    """
)


def _violation_line(source: str, rule_id: str) -> int:
    report = lint_source(source, rules=[get_rule(rule_id)])
    assert report.violations, "expected the seed snippet to fire"
    return report.violations[0].line


def test_suppression_with_reason_filters_violation():
    line = _violation_line(BARE_EXCEPT, "RPR202")
    lines = BARE_EXCEPT.splitlines()
    lines[line - 1] += "  # repro-lint: disable=RPR202 (narrow enough here)"
    report = lint_source("\n".join(lines), rules=[get_rule("RPR202")])
    assert report.violations == []
    assert report.suppressed_count == 1


def test_suppression_without_reason_is_itself_a_violation():
    line = _violation_line(BARE_EXCEPT, "RPR202")
    lines = BARE_EXCEPT.splitlines()
    lines[line - 1] += "  # repro-lint: disable=RPR202"
    report = lint_source("\n".join(lines), rules=[get_rule("RPR202")])
    fired = {v.rule_id for v in report.violations}
    # The original violation survives AND the reason-less pragma is flagged.
    assert fired == {"RPR202", SUPPRESSION_RULE_ID}
    assert report.suppressed_count == 0


def test_suppression_for_other_rule_does_not_cover():
    line = _violation_line(BARE_EXCEPT, "RPR202")
    lines = BARE_EXCEPT.splitlines()
    lines[line - 1] += "  # repro-lint: disable=RPR001 (wrong id on purpose)"
    report = lint_source("\n".join(lines), rules=[get_rule("RPR202")])
    assert {v.rule_id for v in report.violations} == {"RPR202"}


def test_suppression_multiple_ids_one_reason():
    pragma = "# repro-lint: disable=RPR001, RPR202 (fixture)"
    sup, = parse_suppressions([pragma])
    assert sup.rule_ids == ("RPR001", "RPR202")
    assert sup.has_reason
    assert sup.covers(
        Violation(path="x", line=1, col=0, rule_id="RPR202", message="m")
    )
    assert not sup.covers(
        Violation(path="x", line=2, col=0, rule_id="RPR202", message="m")
    )


def test_suppression_reason_of_whitespace_does_not_count():
    sup, = parse_suppressions(["pass  # repro-lint: disable=RPR202 (   )"])
    assert not sup.has_reason


class TestMultiLineStatementSuppression:
    """A pragma on the *first physical line* of a multi-line statement
    covers violations reported on any of its continuation lines; a pragma
    on the violating line itself keeps working. Both placements are legal.
    """

    def test_pragma_on_first_line_covers_continuation_line(self):
        src = (
            "import numpy as np\n"
            "x = (  # repro-lint: disable=RPR001 (fixture: seeded upstream)\n"
            "    np.random.rand(3),\n"
            ")\n"
        )
        report = lint_source(src, rules=[get_rule("RPR001")])
        assert report.violations == []
        assert report.suppressed_count == 1

    def test_pragma_on_continuation_line_still_works(self):
        src = (
            "import numpy as np\n"
            "x = (\n"
            "    np.random.rand(3),"
            "  # repro-lint: disable=RPR001 (fixture: seeded upstream)\n"
            ")\n"
        )
        report = lint_source(src, rules=[get_rule("RPR001")])
        assert report.violations == []
        assert report.suppressed_count == 1

    def test_unrelated_first_line_pragma_does_not_cover(self):
        # Pragma sits on a *different* statement's line: must not cover.
        src = (
            "import numpy as np"
            "  # repro-lint: disable=RPR001 (wrong statement on purpose)\n"
            "x = (\n"
            "    np.random.rand(3),\n"
            ")\n"
        )
        report = lint_source(src, rules=[get_rule("RPR001")])
        assert {v.rule_id for v in report.violations} == {"RPR001"}

    def test_compound_header_pragma_does_not_blanket_the_body(self):
        src = (
            "import numpy as np\n"
            "if True:  # repro-lint: disable=RPR001 (header only on purpose)\n"
            "    x = np.random.rand(3)\n"
        )
        report = lint_source(src, rules=[get_rule("RPR001")])
        assert {v.rule_id for v in report.violations} == {"RPR001"}

    def test_multiline_compound_header_is_covered(self):
        # The header of a compound statement spans two physical lines; a
        # pragma on the `if` line covers a violation inside the condition.
        src = (
            "import numpy as np\n"
            "if (  # repro-lint: disable=RPR001 (fixture: probe only)\n"
            "    np.random.rand() > 0.5\n"
            "):\n"
            "    x = 1\n"
        )
        report = lint_source(src, rules=[get_rule("RPR001")])
        assert report.violations == []
        assert report.suppressed_count == 1


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------


def test_syntax_error_reports_rpr999():
    report = lint_source("def broken(:\n    pass\n", path="oops.py")
    assert [v.rule_id for v in report.violations] == [SYNTAX_RULE_ID]
    assert report.files_checked == 1


def test_import_alias_resolution_sees_through_renames():
    # `import numpy.random as nr` must still resolve to numpy.random.*.
    snippet = "import numpy.random as nr\nx = nr.rand(3)\n"
    report = lint_source(snippet, rules=[get_rule("RPR001")])
    assert {v.rule_id for v in report.violations} == {"RPR001"}


def test_dotted_name_resolution():
    import ast

    source = "import numpy as np\nv = np.random.default_rng(0)\n"
    ctx = FileContext("x.py", source, ast.parse(source))
    call = ctx.tree.body[1].value
    assert ctx.dotted_name(call.func) == "numpy.random.default_rng"
    assert ctx.dotted_name(ast.parse("f()(x)").body[0].value.func) is None


def test_lint_paths_walks_and_skips_caches(tmp_path):
    pkg = tmp_path / "pkg"
    (pkg / "__pycache__").mkdir(parents=True)
    (pkg / "ok.py").write_text("x = 1\n")
    (pkg / "bad.py").write_text(BARE_EXCEPT)
    (pkg / "__pycache__" / "junk.py").write_text("try:\n    x = 1\nexcept:\n    pass\n")
    report = lint_paths([pkg])
    assert report.files_checked == 2
    # `except: pass` trips both the bare-except and silent-swallow rules.
    assert {v.rule_id for v in report.violations} == {"RPR202", "RPR005"}
    assert all("__pycache__" not in v.path for v in report.violations)


def test_lint_paths_rejects_non_python(tmp_path):
    target = tmp_path / "notes.txt"
    target.write_text("hello")
    with pytest.raises(FileNotFoundError):
        lint_paths([target])


def test_report_json_shape():
    report = lint_source(BARE_EXCEPT, path="bad.py")
    payload = report.to_json()
    assert payload["version"] == 2
    assert payload["files_checked"] == 1
    assert payload["baselined"] == 0
    assert payload["violation_count"] == len(payload["violations"])
    entry = payload["violations"][0]
    assert set(entry) == {"path", "line", "col", "rule_id", "message"}
    assert entry["path"] == "bad.py"


def test_report_merge_and_render():
    merged = LintReport()
    merged.merge(lint_source("x = 1\n", path="a.py"))
    merged.merge(lint_source(BARE_EXCEPT, path="b.py"))
    merged.sort()
    text = merged.render_text()
    assert "b.py" in text
    assert text.endswith("in 2 files")


def test_register_rule_rejects_duplicates_and_blank_ids():
    class Blank(Rule):
        rule_id = ""

        def check(self, ctx):  # pragma: no cover - never called
            return iter(())

    with pytest.raises(ValueError, match="rule_id"):
        register_rule(Blank)

    class Duplicate(Rule):
        rule_id = "RPR202"

        def check(self, ctx):  # pragma: no cover - never called
            return iter(())

    with pytest.raises(ValueError, match="duplicate"):
        register_rule(Duplicate)


def test_get_rule_unknown_id():
    with pytest.raises(KeyError, match="RPR777"):
        get_rule("RPR777")


# ----------------------------------------------------------------------
# RPR008 — kernel-backend KERNEL_STYLE discipline
# ----------------------------------------------------------------------


class TestKernelStyleScope:
    RULE = get_rule("RPR008")

    def _lint(self, source):
        report = lint_source(textwrap.dedent(source), path="x.py",
                             rules=[self.RULE])
        return [v for v in report.violations if v.rule_id == "RPR008"]

    def test_silent_without_kernel_style(self):
        # The same loop outside a declared backend module is fine.
        assert self._lint(
            """\
            def walk(nodes):
                total = 0
                for u in nodes:
                    total += u
                return total
            """
        ) == []

    def test_nopython_allows_loops_but_not_dicts(self):
        violations = self._lint(
            """\
            KERNEL_STYLE = "nopython"

            def k_scan(steps, gids, bound):
                best = bound
                for i in range(gids.shape[0]):
                    best = min(best, steps[gids[i]])
                return best

            def k_bad(gids):
                seen = {}
                for g in gids:
                    seen[g] = True
                return seen
            """
        )
        assert len(violations) == 1
        assert "dict" in violations[0].message
        assert "k_bad" in violations[0].message

    def test_nopython_ignores_module_level_tables(self):
        # The kernel-name dispatch dict lives outside the k_ bodies.
        assert self._lint(
            """\
            KERNEL_STYLE = "nopython"

            def k_ok(x):
                return x + 1

            TABLE = {"ok": k_ok}
            """
        ) == []

    def test_vectorized_flags_object_dtype(self):
        violations = self._lint(
            """\
            import numpy as np

            KERNEL_STYLE = "vectorized"

            def pack(values):
                return np.asarray(values, dtype=np.object_)
            """
        )
        assert len(violations) == 1
        assert "object-dtype" in violations[0].message

    def test_vectorized_flags_comprehension(self):
        violations = self._lint(
            """\
            KERNEL_STYLE = "vectorized"

            def keys(nodes, prio):
                return [prio[n] for n in nodes]
            """
        )
        assert len(violations) == 1
        assert "comprehension" in violations[0].message

    def test_reasoned_suppression_accepted(self):
        report = lint_source(
            textwrap.dedent(
                """\
                KERNEL_STYLE = "vectorized"

                def take(seg, k):
                    out = []
                    for b in range(len(k)):  # repro-lint: disable=RPR008 (<= 8 segments, measured faster than np.repeat)
                        out.append(seg[b])
                    return out
                """
            ),
            path="x.py",
            rules=[self.RULE],
        )
        assert [v for v in report.violations if v.rule_id == "RPR008"] == []
        assert report.suppressed_count == 1

    def test_nopython_flags_returned_list_literal(self):
        violations = self._lint(
            """\
            KERNEL_STYLE = "nopython"

            def k_arena_gather(fbuf, starts, k):
                out = 0
                for i in range(starts.shape[0]):
                    out += k[i]
                return [out]

            def k_arena_commit(fbuf, seg):
                return seg, [s for s in seg]
            """
        )
        assert len(violations) == 2
        assert all("Python list" in v.message for v in violations)
        assert {"k_arena_gather", "k_arena_commit"} == {
            v.message.split("`")[1] for v in violations
        }

    def test_shipped_backends_cover_arena_kernels(self):
        # Both shipped backends declare KERNEL_STYLE, so the new
        # arena_gather/arena_commit kernels sit under RPR008. Pin the
        # coverage: the sources are clean as shipped, and stripping the
        # numpy backend's one reasoned escape hatch (the int64-overflow
        # per-slot fallback inside arena_commit) makes the rule fire
        # exactly there.
        import inspect

        from repro.core.kernels import numba_backend, numpy_backend

        for mod in (numpy_backend, numba_backend):
            src = inspect.getsource(mod)
            report = lint_source(src, path="backend.py", rules=[self.RULE])
            assert [
                v for v in report.violations if v.rule_id == "RPR008"
            ] == [], mod.__name__
        stripped = inspect.getsource(numpy_backend).replace(
            "# repro-lint: disable=RPR008", "# pragma-off"
        )
        report = lint_source(stripped, path="backend.py", rules=[self.RULE])
        fired = [v for v in report.violations if v.rule_id == "RPR008"]
        assert len(fired) == 1
        assert "arena_commit" in fired[0].message
