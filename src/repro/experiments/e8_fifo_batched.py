"""E8 — Theorem 6.1 / Lemma 6.5: FIFO on batched instances.

For batched instances (one merged job per multiple of OPT), FIFO is
``O(log max{OPT, m})``-competitive, proved through the Lemma 6.4 / 6.5
invariants. This experiment:

* builds batched instances whose OPT is known by construction (each batch
  job's solo optimum equals the period, so scheduling each batch in its own
  window is optimal — OPT equals the period exactly when some batch attains
  it);
* also re-uses the adversarial family (already batched with period
  ``m+1``, OPT <= m+1);
* measures FIFO's ratio across ``m`` and checks the Lemma 6.4 and
  Lemma 6.5 invariants at every batch time.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.invariants import check_lemma_6_4, check_lemma_6_5
from ..core.simulator import simulate
from ..schedulers.base import ArbitraryTieBreak
from ..schedulers.fifo import FIFOScheduler
from ..schedulers.offline import single_forest_opt
from ..workloads.adversarial import build_fifo_adversary
from ..workloads.arrivals import batched_instance
from ..workloads.random_trees import layered_tree
from .runner import ExperimentResult

__all__ = ["run", "batched_known_opt"]


def batched_known_opt(m: int, n_batches: int, depth: int, rng) -> tuple:
    """Batched instance whose OPT is known *exactly*.

    Each batch is a random layered out-forest of the given depth with
    per-level widths in ``[1, m]``; one batch is a full ``m × depth``
    rectangle. The instance's OPT equals ``period := max_j
    single_forest_opt(batch_j, m)``:

    * ``OPT <= period`` — schedule each batch optimally inside its own
      ``period``-long window (windows are disjoint);
    * ``OPT >= period`` — some single batch already needs ``period`` alone
      (Corollary 5.4).

    Releasing the batches every ``period`` steps then satisfies the
    Section 6 batched-arrival assumption verbatim.
    """
    dags = [layered_tree([m] * depth, rng)]
    for _ in range(n_batches - 1):
        widths = [int(w) for w in rng.integers(1, m + 1, size=depth)]
        dags.append(layered_tree(widths, rng))
    period = max(single_forest_opt(d, m) for d in dags)
    inst = batched_instance(dags, period)
    return inst, period


def run(
    ms: tuple[int, ...] = (4, 8, 16, 32),
    n_batches: int = 12,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E8",
        title="FIFO on batched instances: logarithmic upper bound",
        paper_artifact="Theorem 6.1, Lemma 6.4, Lemma 6.5",
    )
    rng = np.random.default_rng(seed)
    ratios = []
    for m in ms:
        inst, opt = batched_known_opt(m, n_batches, depth=2 * m, rng=rng)
        fifo = FIFOScheduler(ArbitraryTieBreak())
        sched = simulate(inst, m, fifo)
        sched.validate()
        ratio = sched.max_flow / opt
        ratios.append(ratio)
        l64 = check_lemma_6_4(sched, opt)
        l65 = check_lemma_6_5(sched, opt)
        bound = math.log2(max(opt, m))
        result.rows.append(
            {
                "family": "packed-batch",
                "m": m,
                "OPT": opt,
                "fifo_flow": sched.max_flow,
                "ratio": ratio,
                "log2max(OPT,m)": bound,
                "lemma6.4": bool(l64),
                "lemma6.5": bool(l65),
            }
        )
        # Adversarial family: batched with period m+1, OPT <= m+1.
        adv = build_fifo_adversary(m, n_jobs=3 * m)
        opt_a = adv.opt_upper_bound
        l64a = check_lemma_6_4(adv.fifo_schedule, opt_a)
        l65a = check_lemma_6_5(adv.fifo_schedule, opt_a)
        result.rows.append(
            {
                "family": "adversarial",
                "m": m,
                "OPT": opt_a,
                "fifo_flow": adv.fifo_max_flow,
                "ratio": adv.ratio_lower_bound,
                "log2max(OPT,m)": math.log2(max(opt_a, m)),
                "lemma6.4": bool(l64a),
                "lemma6.5": bool(l65a),
            }
        )
    result.add_claim(
        "Lemma 6.4 holds on every batched FIFO schedule",
        all(r["lemma6.4"] for r in result.rows),
    )
    result.add_claim(
        "Lemma 6.5 (1)-(3) hold at every batch time",
        all(r["lemma6.5"] for r in result.rows),
    )
    result.add_claim(
        "FIFO's flow is within (log2 tau + 1)*OPT (the Theorem 6.1 bound)",
        all(
            r["fifo_flow"]
            <= (math.ceil(math.log2(2 * r["m"] * r["OPT"])) + 1) * r["OPT"]
            for r in result.rows
        ),
    )
    result.add_claim(
        "FIFO's ratio grows sub-logarithmically on packed batches "
        "(ratio / log2 max(OPT, m) does not increase)",
        all(
            b / math.log2(max(2 * mb, mb)) <= a / math.log2(max(2 * ma, ma)) + 0.5
            for (a, ma), (b, mb) in zip(
                zip(ratios, ms), list(zip(ratios, ms))[1:]
            )
        ),
    )
    return result
