"""E7 — Theorem 5.7: the full clairvoyant algorithm on general arrivals.

Run :class:`~repro.schedulers.outtree.GeneralOutTreeScheduler` (batching +
guess-and-double, no a-priori OPT) on Poisson and bursty arrival streams of
mixed out-trees, against FIFO baselines. The claim reproduced is the
*shape* of Theorem 5.7: the ratio stays bounded by a constant independent
of ``m`` (the theorem's worst-case constant is 1548; measured values are
far smaller), while the number of guess-doublings stays logarithmic in the
realized OPT.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.competitive import OptReference, run_case
from ..schedulers.base import ArbitraryTieBreak, LongestPathTieBreak
from ..schedulers.fifo import FIFOScheduler
from ..schedulers.outtree import GeneralOutTreeScheduler
from ..workloads.arrivals import bursty_instance, poisson_instance
from ..workloads.random_trees import galton_watson_tree, random_attachment_tree
from ..workloads.recursive import quicksort_tree
from .runner import ExperimentResult

__all__ = ["run"]


def _mixed_dags(n_jobs: int, size: int, rng) -> list:
    gens = [random_attachment_tree, galton_watson_tree, quicksort_tree]
    return [gens[i % len(gens)](size, rng) for i in range(n_jobs)]


def run(
    ms: tuple[int, ...] = (8, 16, 32, 64),
    n_jobs: int = 20,
    beta: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E7",
        title="Guess-and-double Algorithm A on general arrivals",
        paper_artifact="Theorem 5.7 (A is 1548-competitive)",
    )
    rng = np.random.default_rng(seed)
    ratios_a: list[float] = []
    for m in ms:
        size = 4 * m
        dags = _mixed_dags(n_jobs, size, rng)
        arrivals = {
            "poisson": poisson_instance(dags, rate=m / (2.0 * size), seed=rng),
            "bursty": bursty_instance(
                dags, burst_size=4, quiet_gap=2 * size // m + 4
            ),
        }
        for arr_name, inst in arrivals.items():
            ref = OptReference.lower(inst, m)
            max_steps = inst.horizon_hint * 8 + 64 * beta * 16 * ref.value + 10_000
            alg = GeneralOutTreeScheduler(alpha=4, beta=beta)
            case = run_case(inst, m, alg, ref, max_steps=max_steps)
            result.rows.append(
                {
                    "arrivals": arr_name,
                    "m": m,
                    "scheduler": case.scheduler,
                    "opt_ref": f"{ref.value} ({ref.kind})",
                    "flow": case.max_flow,
                    "ratio<=": case.ratio,
                    "restarts": alg.n_restarts,
                    "final_AOPT": alg.aopt,
                }
            )
            ratios_a.append(case.ratio)
            for fifo in (
                FIFOScheduler(ArbitraryTieBreak()),
                FIFOScheduler(LongestPathTieBreak()),
            ):
                case = run_case(inst, m, fifo, ref, max_steps=max_steps)
                result.rows.append(
                    {
                        "arrivals": arr_name,
                        "m": m,
                        "scheduler": case.scheduler,
                        "opt_ref": f"{ref.value} ({ref.kind})",
                        "flow": case.max_flow,
                        "ratio<=": case.ratio,
                        "restarts": "",
                        "final_AOPT": "",
                    }
                )
    result.add_claim(
        "A's measured ratio stays below the Theorem 5.7 constant (1548)",
        all(r <= 1548 for r in ratios_a),
        f"max {max(ratios_a):.1f}",
    )
    # Constant-shape check, robust to small sweeps: within each arrival
    # pattern, the ratio at the largest m stays within 2x of the smallest m
    # (a Theta(log m) policy would drift upward steadily instead).
    a_by_pattern: dict[str, list[float]] = {}
    for row in result.rows:
        if row["restarts"] != "":
            a_by_pattern.setdefault(row["arrivals"], []).append(row["ratio<="])
    result.add_claim(
        "A's ratio does not grow with m (largest-m ratio <= 2x smallest-m)",
        all(rs[-1] <= 2 * rs[0] + 1e-9 for rs in a_by_pattern.values()),
    )
    result.add_claim(
        "guess-doubling count stays logarithmic in the OPT reference",
        all(
            row["restarts"] == "" or
            row["restarts"] <= math.log2(max(2, 4 * row_ref(row)))
            for row in result.rows
        ),
    )
    result.notes.append(
        "ratios divide by a lower bound on OPT, so every ratio column is an "
        "over-estimate (conservative for the upper-bound claims). "
        f"beta={beta} (the paper's worst-case beta=258 is ablated in E10)."
    )
    return result


def row_ref(row: dict) -> int:
    """Parse the numeric OPT reference back out of a table row."""
    return int(str(row["opt_ref"]).split()[0])
