"""E6 — Theorem 5.6: Algorithm 𝒜 is O(1)-competitive on semi-batched
out-forest instances.

Two workload families, both semi-batched:

* **packed** instances (OPT known by construction) — the "hardest"
  fully-loaded inputs the paper's Section 1 discussion identifies;
* the **adversarial** family re-released semi-batched — the inputs that
  defeat FIFO.

On each, compare Algorithm 𝒜 (knowing OPT) against FIFO variants. The
claim is about *shape*: 𝒜's ratio stays bounded by a small constant across
``m`` while arbitrary FIFO's grows on the adversarial family.
"""

from __future__ import annotations

import numpy as np

from ..analysis.competitive import OptReference, compare_schedulers
from ..analysis.stats import classify_growth
from ..core.instance import Instance
from ..schedulers.base import ArbitraryTieBreak, LongestPathTieBreak
from ..schedulers.fifo import FIFOScheduler
from ..schedulers.outtree import SemiBatchedOutTreeScheduler
from ..workloads.adversarial import build_fifo_adversary
from ..workloads.packed import packed_instance
from .runner import ExperimentResult

__all__ = ["run"]


def _semibatch_adversarial(
    m: int, n_jobs: int
) -> tuple[Instance, OptReference, int]:
    """The Section 4 family *is* semi-batched for 𝒜 run with
    ``opt_param = 2·(m+1)``: its half-period ``m+1`` exactly divides the
    releases ``i·(m+1)``. Passing an upper bound (2·OPT) instead of OPT
    merely doubles 𝒜's constants — Section 5.4 makes the same move."""
    adv = build_fifo_adversary(m, n_jobs)
    return adv.instance, OptReference.witness(adv.opt_witness), 2 * (m + 1)


def run(
    ms: tuple[int, ...] = (8, 16, 32, 64),
    n_jobs: int = 24,
    seed: int = 0,
    alpha: int = 4,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E6",
        title="Algorithm A vs FIFO on semi-batched instances",
        paper_artifact="Theorem 5.6 (A is 129-competitive, alpha=4, beta=258)",
    )
    rng = np.random.default_rng(seed)
    ratios_a: list[float] = []
    ratios_fifo: list[float] = []
    for m in ms:
        # --- packed family ------------------------------------------------
        flow = 2 * m
        pk = packed_instance(m, n_jobs=n_jobs // 2, flow=flow, period=flow // 2, seed=rng)
        ref = OptReference.witness(pk.witness)
        schedulers = [
            SemiBatchedOutTreeScheduler(opt=flow, alpha=alpha),
            FIFOScheduler(ArbitraryTieBreak()),
            FIFOScheduler(LongestPathTieBreak()),
        ]
        horizon = pk.instance.horizon_hint * 4 + 600 * flow
        for case in compare_schedulers(pk.instance, m, schedulers, ref, max_steps=horizon):
            result.rows.append(
                {
                    "family": "packed",
                    "m": m,
                    "scheduler": case.scheduler,
                    "opt_ref": f"{ref.value} ({ref.kind})",
                    "flow": case.max_flow,
                    "ratio": case.ratio,
                }
            )
        # --- adversarial family --------------------------------------------
        inst, ref, opt_param = _semibatch_adversarial(m, n_jobs=min(n_jobs, 4 * m))
        schedulers = [
            SemiBatchedOutTreeScheduler(opt=opt_param, alpha=alpha),
            FIFOScheduler(ArbitraryTieBreak()),
            FIFOScheduler(LongestPathTieBreak()),
        ]
        horizon = inst.horizon_hint * 4 + 600 * opt_param
        for case in compare_schedulers(inst, m, schedulers, ref, max_steps=horizon):
            result.rows.append(
                {
                    "family": "adversarial",
                    "m": m,
                    "scheduler": case.scheduler,
                    "opt_ref": f"{ref.value} ({ref.kind})",
                    "flow": case.max_flow,
                    "ratio": case.ratio,
                }
            )
            if case.scheduler.startswith("AlgA"):
                ratios_a.append(case.ratio)
            elif "arbitrary" in case.scheduler:
                ratios_fifo.append(case.ratio)

    # Theorem 5.6 guarantees 129·OPT when 𝒜 knows OPT exactly (packed
    # family); the adversarial family hands 𝒜 the upper bound 2·(m+1),
    # doubling the bound to 258.
    a_rows = [r for r in result.rows if r["scheduler"].startswith("AlgA")]
    result.add_claim(
        "A's ratio stays below the Theorem 5.6 guarantee "
        "(129, or 258 where OPT was over-supplied 2x)",
        all(
            r["ratio"] <= (129 if r["family"] == "packed" else 258)
            for r in a_rows
        ),
        f"max measured {max(r['ratio'] for r in a_rows):.2f}",
    )
    result.add_claim(
        "A's ratio is constant in m on the adversarial family",
        classify_growth(list(ms), ratios_a) == "constant",
    )
    result.add_claim(
        "arbitrary FIFO's ratio grows with m on the adversarial family",
        all(b > a for a, b in zip(ratios_fifo, ratios_fifo[1:])),
    )
    result.notes.append(
        "ratios divide by witness objectives (upper bounds on OPT), so "
        "FIFO's column certifies its lower bound while A's column may "
        "overstate A's true ratio — the conservative direction for both "
        "claims."
    )
    return result
