"""Experiment plumbing: result containers and plain-text table formatting.

Every ``eN_*.run()`` returns an :class:`ExperimentResult`; the benchmark
harness prints ``result.render()`` (so ``pytest benchmarks/ | tee`` captures
the regenerated tables) and asserts ``result.claims_hold()``.
"""

from __future__ import annotations

import os
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .supervisor import SupervisorConfig, run_supervised

__all__ = [
    "Claim",
    "ExperimentResult",
    "format_table",
    "repeat_experiment",
    "run_trials",
]


@dataclass(frozen=True)
class Claim:
    """One checked assertion about an experiment's outcome."""

    description: str
    holds: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"  [{mark}] {self.description}{suffix}"


@dataclass
class ExperimentResult:
    """A regenerated table/figure plus its checked claims."""

    experiment_id: str
    title: str
    paper_artifact: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    columns: Sequence[str] | None = None
    claims: list[Claim] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    figures: list[str] = field(default_factory=list)  # preformatted ASCII blocks

    def add_claim(self, description: str, holds: bool, detail: str = "") -> None:
        self.claims.append(Claim(description, bool(holds), detail))

    def claims_hold(self) -> bool:
        return all(c.holds for c in self.claims)

    def failed_claims(self) -> list[Claim]:
        return [c for c in self.claims if not c.holds]

    def render(self) -> str:
        lines = [
            "=" * 72,
            f"{self.experiment_id}: {self.title}",
            f"paper artifact: {self.paper_artifact}",
            "=" * 72,
        ]
        for fig in self.figures:
            lines.append(fig)
            lines.append("-" * 72)
        if self.rows:
            lines.append(format_table(self.rows, self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.claims:
            lines.append("claims:")
            lines.extend(c.render() for c in self.claims)
        return "\n".join(lines)


def _run_one_seed(task: tuple) -> "ExperimentResult":
    """Top-level worker for :func:`repeat_experiment` (must be picklable)."""
    run_fn, params, seed = task
    return run_fn(seed=seed, **params)


def _run_one_seed_with_stats(task: tuple) -> tuple["ExperimentResult", Any]:
    """Worker wrapper that also captures the engine effort this task cost
    in its worker process, as an :class:`~repro.core.EngineStats` delta the
    parent folds back into its own accumulator."""
    from ..core import engine_stats_snapshot

    before = engine_stats_snapshot()
    result = _run_one_seed(task)
    return result, engine_stats_snapshot().delta(before)


def _run_one_seed_local(task: tuple) -> tuple["ExperimentResult", Any]:
    """In-process twin of :func:`_run_one_seed_with_stats` for the
    supervisor's serial-degradation path. The delta is deliberately zero:
    an in-process ``simulate`` already lands in this process's accumulator,
    so folding a nonzero delta back would double-count the effort."""
    from ..core import EngineStats

    return _run_one_seed(task), EngineStats()


def _active_backend_name() -> str:
    """The *resolved* kernel backend name for this process.

    Resolved, not requested: asking for ``numba`` on a box without numba
    falls back to numpy-served results, which are keyed (and therefore
    reusable) as numpy results — the two backends are bit-identical by
    the parity suite, so the journal entry is valid either way.
    """
    from ..core.kernels import get_backend

    return get_backend().name


def _task_key(prefix: str, run_fn: Any, params: dict, seed: int) -> str:
    """Stable checkpoint-journal key for one ``(run_fn, params, seed)``
    task (same logical task across invocations → same key).

    The active kernel backend is part of the key: a sweep journaled under
    one backend and resumed under another re-runs its tasks instead of
    serving results whose provenance no longer matches the run's
    configuration (engine-stats counters, perf attribution)."""
    name = f"{getattr(run_fn, '__module__', '?')}.{getattr(run_fn, '__qualname__', repr(run_fn))}"
    return (
        f"{prefix}|{name}|backend={_active_backend_name()}"
        f"|seed={seed}|{sorted(params.items())!r}"
    )


def _unpicklable_part(task: tuple) -> Optional[str]:
    """Name what makes ``task`` unshippable to workers (None if picklable)."""
    try:
        pickle.dumps(task)
        return None
    except Exception:
        pass
    run_fn, params, _seed = task
    try:
        pickle.dumps(run_fn)
    except Exception:
        name = getattr(run_fn, "__qualname__", None) or repr(run_fn)
        return f"run_fn {name!r}"
    for key, value in params.items():
        try:
            pickle.dumps(value)
        except Exception:
            return f"parameter {key}={value!r}"
    return "the task tuple"


def repeat_experiment(
    run_fn,
    seeds: Sequence[int],
    *,
    n_workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
    checkpoint_dir: Optional[str | os.PathLike] = None,
    resume: bool = True,
    **params,
) -> tuple[list[ExperimentResult], dict[str, float]]:
    """Run an experiment across several seeds and aggregate its claims.

    Guards against seed luck: a claim that holds at the default seed but
    fails elsewhere is fragile. Returns ``(results, pass_rates)`` where
    ``pass_rates`` maps each claim description to the fraction of seeds on
    which it held. A claim is counted for every seed once it appears in
    *any* seed's result (a claim the experiment only emits on some seeds
    counts as not holding on the seeds that lack it). Only meaningful for
    experiments taking a ``seed`` parameter.

    Parameters
    ----------
    n_workers:
        When > 1, fan the seeds out over the persistent shared process
        pool (:func:`repro.experiments.pool.shared_pool` — reused across
        calls, workers inherit the parent's ``REPRO_CACHE_DIR``) under
        :func:`repro.experiments.supervisor.run_supervised`. Results
        come back in seed order regardless of completion order, so output
        is deterministic, and each worker's :class:`~repro.core.
        EngineStats` delta is folded into this process's accumulator.
        Falls back to serial execution — with a :class:`RuntimeWarning`
        naming the offending object — when the experiment closure cannot
        be pickled (e.g. a local lambda).
    supervisor:
        Fault-tolerance policy (per-task timeout, retries, pool-rebuild
        budget) for the parallel path; default
        :class:`~repro.experiments.supervisor.SupervisorConfig`.
    checkpoint_dir / resume:
        Journal completed seeds to ``checkpoint_dir`` (atomic writes) so
        an interrupted sweep can resume; with ``resume=True`` journaled
        seeds are served from disk instead of re-running. Keys include
        the experiment function, seed and parameters, so a changed sweep
        never reuses a stale entry.

    ``KeyboardInterrupt`` mid-sweep is re-raised after a clean pool
    shutdown; journaled seeds survive for the next (resumed) invocation.
    """
    tasks = [(run_fn, dict(params), seed) for seed in seeds]
    results: Optional[list[ExperimentResult]] = None
    if n_workers is not None and n_workers > 1 and len(tasks) > 1:
        offender = _unpicklable_part(tasks[0])
        if offender is not None:
            warnings.warn(
                f"repeat_experiment: {offender} cannot be pickled for "
                "worker processes; running the seed sweep serially",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            from ..core import accumulate_engine_stats

            keys = [
                _task_key("repeat", run_fn, task_params, seed)
                for _, task_params, seed in tasks
            ]
            outcome = run_supervised(
                _run_one_seed_with_stats,
                tasks,
                n_workers=n_workers,
                config=supervisor,
                keys=keys,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                local_fn=_run_one_seed_local,
            )
            resumed = set(outcome.resumed_indices)
            for idx, pair in enumerate(outcome.results):
                if pair is not None and idx not in resumed:
                    accumulate_engine_stats(pair[1])
            if outcome.interrupted:
                raise KeyboardInterrupt
            results = [result for result, _ in outcome.results]
    if results is None:
        if checkpoint_dir is not None:
            keys = [
                _task_key("repeat", run_fn, task_params, seed)
                for _, task_params, seed in tasks
            ]
            outcome = run_supervised(
                _run_one_seed_local,
                tasks,
                n_workers=1,
                config=supervisor,
                keys=keys,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
            )
            if outcome.interrupted:
                raise KeyboardInterrupt
            results = [result for result, _ in outcome.results]
        else:
            results = [_run_one_seed(task) for task in tasks]

    # Key claims by description across ALL results, in first-seen order.
    descriptions: list[str] = []
    seen = set()
    for r in results:
        for c in r.claims:
            if c.description not in seen:
                seen.add(c.description)
                descriptions.append(c.description)
    rates: dict[str, float] = {}
    for desc in descriptions:
        holds = [
            any(c.description == desc and c.holds for c in r.claims)
            for r in results
        ]
        rates[desc] = sum(holds) / len(results)
    return results, rates


def _run_trials_chunk(task: tuple) -> tuple[list, Any]:
    """Top-level pool worker for :func:`run_trials` (must be picklable).

    Returns flat per-instance completion arrays (cheap to ship — the
    parent already holds the instances and rebuilds the schedules) plus
    the chunk's :class:`~repro.core.EngineStats` delta.
    """
    import numpy as np

    from ..core import engine_stats_snapshot, simulate_batch

    instances, m, scheduler_factory, availability, use_macro_steps = task
    before = engine_stats_snapshot()
    schedules = simulate_batch(
        instances,
        m,
        scheduler_factory(),
        availability=availability,
        use_macro_steps=use_macro_steps,
    )
    completions = [np.concatenate(s.completion) for s in schedules]
    return completions, engine_stats_snapshot().delta(before)


def _chunk_by_nodes(instances: Sequence, budget: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunks whose node totals stay within
    ``budget`` (each chunk holds at least one instance)."""
    spans: list[tuple[int, int]] = []
    start = 0
    nodes = 0
    for i, inst in enumerate(instances):
        size = inst.flat_graph.n_nodes
        if i > start and nodes + size > budget:
            spans.append((start, i))
            start, nodes = i, 0
        nodes += size
    spans.append((start, len(instances)))
    return spans


def _split_availability(availability: Any, instances: Sequence) -> list[Any]:
    """Per-instance availability entries aligned to ``instances`` — or the
    shared spec repeated — so contiguous chunks can slice it."""
    n = len(instances)
    if availability is None:
        return [None] * n
    if isinstance(availability, Sequence) and not isinstance(
        availability, (str, bytes)
    ):
        entries = list(availability)
        if len(entries) == n and not all(
            isinstance(v, int) for v in entries
        ):
            return entries
    return [availability] * n


def run_trials(
    instances: Sequence,
    m: int,
    scheduler_factory,
    *,
    availability: Any = None,
    use_macro_steps: Optional[bool] = None,
    n_workers: Optional[int] = None,
    batch_node_budget: int = 1_000_000,
) -> list:
    """Run one scheduler over many independent trial instances, batched.

    The homogeneous-sweep fast path of the experiment harness: all trials
    share ``m`` and a scheduler configuration (``scheduler_factory`` builds
    a fresh instance per batch chunk), so eligible trials advance in
    lockstep through :func:`~repro.core.simulate_batch` instead of paying
    one Python engine loop — or one process-pool dispatch — per trial.
    Ineligible trials (no priority kernel, scheduler not
    ``batch_capable``) fall back to per-instance runs inside
    ``simulate_batch`` itself.

    Chunking: the sweep is split into contiguous chunks of at most
    ``batch_node_budget`` total subjobs (bounding each batch's working
    set). With ``n_workers > 1`` *and* more than one chunk, chunks fan out
    over the persistent shared pool (:func:`~repro.experiments.pool.
    shared_pool`); workers ship back flat completion arrays and an
    :class:`~repro.core.EngineStats` delta that is folded into this
    process's accumulator. A single-chunk sweep always runs in-process —
    forking would only add dispatch cost. Falls back to serial (with a
    :class:`RuntimeWarning`) when ``scheduler_factory`` cannot be pickled.

    Returns one :class:`~repro.core.Schedule` per instance, in order.
    Worker-run chunks rebuild schedules in the parent, so those carry
    ``engine_stats None``; in-process chunks keep their batch stats.
    """
    from ..core import Schedule, accumulate_engine_stats, simulate_batch

    insts = list(instances)
    if not insts:
        return []
    per_avail = _split_availability(availability, insts)
    spans = _chunk_by_nodes(insts, batch_node_budget)

    def chunk_avail(start: int, stop: int) -> Any:
        part = per_avail[start:stop]
        return None if all(v is None for v in part) else part

    parallel = n_workers is not None and n_workers > 1 and len(spans) > 1
    if parallel:
        try:
            pickle.dumps(scheduler_factory)
        except Exception:
            warnings.warn(
                "run_trials: scheduler_factory cannot be pickled for "
                "worker processes; running the sweep in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            parallel = False
    if parallel:
        from .pool import shared_pool

        pool = shared_pool(n_workers)
        futures = [
            pool.submit(
                _run_trials_chunk,
                (
                    insts[start:stop],
                    m,
                    scheduler_factory,
                    chunk_avail(start, stop),
                    use_macro_steps,
                ),
            )
            for start, stop in spans
        ]
        schedules: list = []
        for (start, stop), future in zip(spans, futures):
            completions, delta = future.result()
            accumulate_engine_stats(delta)
            schedules.extend(
                Schedule.from_flat(inst, m, flat)
                for inst, flat in zip(insts[start:stop], completions)
            )
        return schedules

    schedules = []
    for start, stop in spans:
        schedules.extend(
            simulate_batch(
                insts[start:stop],
                m,
                scheduler_factory(),
                availability=chunk_avail(start, stop),
                use_macro_steps=use_macro_steps,
            )
        )
    return schedules


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: list[dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render ``rows`` (list of dicts) as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(c[i]) for c in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([header, sep, *body])
