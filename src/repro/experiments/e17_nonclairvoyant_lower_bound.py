"""E17 — the lower bound extends to every non-clairvoyant FIFO tie-break.

Conclusion, open question 2: *"Is FIFO asymptotically optimally competitive
among nonclairvoyant algorithms? ... It does not seem that one can extend
the Ω(log m) lower bound for FIFO in a straight-forward manner to a lower
bound for a general nonclairvoyant algorithm."*

What *does* extend — and this experiment demonstrates it — is the bound
against every non-clairvoyant **FIFO tie-break**, randomized included. The
key observation: when the adversary materializes a layer, its subjobs are
*indistinguishable* to a non-clairvoyant scheduler (none has executed, so
none has revealed children). Whichever ``f`` of the ``f+1`` the scheduler
runs, the adversary designates the leftover as the key — so the co-simulated
trace is **identical for every within-layer choice**:

* measured: the adaptive trace's flow is exactly equal for key placements
  ``last`` / ``first`` / ``random`` at every ``m``;
* each *deterministic* tie-break is defeated by its matched placement
  (ascending ids by ``last``, descending by ``first``) with exactly the
  adaptive flow, while the *mismatched* frozen instance lets it escape —
  hindsight is what E9's "random dodges it" exploited, and hindsight is
  precisely what an online algorithm does not have;
* the clairvoyant LPF tie-break escapes **every** placement, because a
  clairvoyant scheduler sees the keys at release — against clairvoyant
  algorithms the adversary cannot adapt (the DAG must be fixed at release),
  which is exactly why the paper's Algorithm 𝒜 is possible.
"""

from __future__ import annotations

from ..analysis.stats import classify_growth, fit_log_growth
from ..core.simulator import simulate
from ..schedulers.base import ArbitraryTieBreak, LongestPathTieBreak, ReverseTieBreak
from ..schedulers.fifo import FIFOScheduler
from ..workloads.adversarial import build_fifo_adversary
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    ms: tuple[int, ...] = (8, 16, 32, 64),
    jobs_per_m: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E17",
        title="The adaptive bound defeats every non-clairvoyant FIFO tie-break",
        paper_artifact="Conclusion open question 2 (nonclairvoyant lower bounds)",
    )
    trace_invariant = True
    adaptive_ratios = []
    lpf_escapes = True
    matched_equal = True
    for m in ms:
        n_jobs = jobs_per_m * m
        adv_last = build_fifo_adversary(m, n_jobs, key_placement="last")
        adv_first = build_fifo_adversary(m, n_jobs, key_placement="first")
        adv_rand = build_fifo_adversary(
            m, n_jobs, key_placement="random", seed=seed
        )
        flows = {
            "last": adv_last.fifo_max_flow,
            "first": adv_first.fifo_max_flow,
            "random": adv_rand.fifo_max_flow,
        }
        trace_invariant &= len(set(flows.values())) == 1
        opt = adv_last.opt_upper_bound
        adaptive_ratio = flows["last"] / opt
        adaptive_ratios.append(adaptive_ratio)
        # Matched deterministic replays realize the adaptive flow...
        asc_on_last = simulate(
            adv_last.instance, m, FIFOScheduler(ArbitraryTieBreak())
        ).max_flow
        desc_on_first = simulate(
            adv_first.instance, m, FIFOScheduler(ReverseTieBreak())
        ).max_flow
        matched_equal &= asc_on_last == flows["last"] == desc_on_first
        # ...while the mismatched frozen instance lets each escape.
        asc_on_first = simulate(
            adv_first.instance, m, FIFOScheduler(ArbitraryTieBreak())
        ).max_flow
        # The clairvoyant LPF rule escapes every placement.
        lpf_flows = [
            simulate(adv.instance, m, FIFOScheduler(LongestPathTieBreak())).max_flow
            for adv in (adv_last, adv_first, adv_rand)
        ]
        lpf_escapes &= max(lpf_flows) <= opt
        result.rows.append(
            {
                "m": m,
                "OPT<=": opt,
                "adaptive_flow": flows["last"],
                "adaptive_ratio": adaptive_ratio,
                "asc|last": asc_on_last,
                "desc|first": desc_on_first,
                "asc|first(hindsight)": asc_on_first,
                "LPF_worst": max(lpf_flows),
            }
        )
    fit = fit_log_growth(list(ms), adaptive_ratios)
    result.add_claim(
        "the adaptive trace is identical for every key placement "
        "(non-clairvoyant schedulers cannot distinguish layer subjobs)",
        trace_invariant,
    )
    result.add_claim(
        "each deterministic tie-break matched to its placement realizes "
        "exactly the adaptive flow",
        matched_equal,
    )
    result.add_claim(
        "the adaptive ratio grows logarithmically — so the Ω(log m) bound "
        "covers every non-clairvoyant FIFO tie-break, randomized included",
        classify_growth(list(ms), adaptive_ratios) == "logarithmic",
        f"slope {fit.slope:.2f} per doubling",
    )
    result.add_claim(
        "the clairvoyant LPF tie-break escapes every placement "
        "(the adversary cannot adapt against clairvoyance)",
        lpf_escapes,
    )
    result.notes.append(
        "This does NOT resolve open question 2: non-FIFO nonclairvoyant "
        "algorithms may behave differently (they can deliberately idle or "
        "rearrange job priorities). The experiment pins down how far the "
        "paper's construction reaches."
    )
    return result
