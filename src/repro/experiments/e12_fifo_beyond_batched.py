"""E12 — beyond the batched assumption: probing the paper's conjecture.

Section 6's remark: *"The batched arrival assumption is used crucially in
the proof... Even relaxing this assumption slightly (e.g., new jobs can
arrive only every OPT/2 time steps...) causes the current proof to break
down"* — yet the authors conjecture FIFO is Θ(log m)-competitive on
general instances.

This experiment probes the conjecture where the proof fails: instances
with exactly known OPT whose arrivals come every ``⌈OPT/2⌉`` steps (the
remark's own example). Construction: each batch is a layered out-forest of
depth ``P`` with per-level widths ≤ ``m/2``, so

* solo OPT of each batch is exactly ``P`` (span ``P``; suffix work fits:
  ``d + ⌈W(d)/m⌉ ≤ P`` since widths ≤ m/2);
* overlapping consecutive batches fit side by side (≤ m/2 + m/2 = m wide),
  so the staggered witness gives OPT = P exactly.

We measure FIFO's ratio across ``m`` and report whether the Theorem 6.1
envelope — whose *proof* does not cover this regime — still contains the
measurements, and whether the Lemma 6.4/6.5-style invariants survive.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.invariants import check_lemma_6_4
from ..core.instance import Instance
from ..core.job import Job
from ..core.schedule import Schedule
from ..schedulers.fifo import FIFOScheduler
from ..schedulers.offline import single_forest_opt
from ..workloads.random_trees import layered_tree
from .runner import ExperimentResult, run_trials

__all__ = ["run", "semi_batched_known_opt"]


def semi_batched_known_opt(m: int, n_batches: int, depth: int, rng):
    """Instance with arrivals every ``⌈depth/2⌉`` and OPT exactly ``depth``.

    Returns ``(instance, opt, witness)``; the witness schedules batch ``i``'s
    level ``k`` at time ``r_i + k + 1`` (feasible because consecutive
    batches are each ≤ m/2 wide).
    """
    if m < 2:
        raise ValueError("needs m >= 2")
    half = -(-depth // 2)
    jobs = []
    completions = []
    level_widths = []
    for i in range(n_batches):
        widths = [int(w) for w in rng.integers(1, max(2, m // 2) + 1, size=depth)]
        # Pin one batch (the first) to the full m/2-wide rectangle so some
        # batch's solo optimum attains depth exactly.
        if i == 0:
            widths = [max(1, m // 2)] * depth
        dag = layered_tree(widths, rng)
        assert single_forest_opt(dag, m) == depth
        jobs.append(Job(dag, i * half, label=f"semibatch{i}"))
        level_widths.append(widths)
    instance = Instance(jobs)
    for i, job in enumerate(instance):
        widths = level_widths[i]
        comp = np.zeros(job.dag.n, dtype=np.int64)
        start = 0
        for k, w in enumerate(widths):
            comp[start : start + w] = job.release + k + 1
            start += w
        completions.append(comp)
    witness = Schedule(instance, m, completions)
    witness.validate()
    return instance, depth, witness


def run(
    ms: tuple[int, ...] = (4, 8, 16, 32),
    n_batches: int = 12,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E12",
        title="FIFO beyond the batched assumption (conjecture probe)",
        paper_artifact="Section 6 closing remark + Conclusion open question 1",
    )
    rng = np.random.default_rng(seed)
    # Build every semi-batched instance up front, then run them through the
    # harness's batched sweep path (run_trials) — one per m, but routed via
    # simulate_batch so the Monte-Carlo engine counters/backends apply
    # uniformly across experiments.
    built = []
    for m in ms:
        depth = 2 * m
        inst, opt, witness = semi_batched_known_opt(m, n_batches, depth, rng)
        built.append((m, depth, inst, opt, witness))
    scheds_by_m = {
        m: run_trials([inst], m, FIFOScheduler)[0]
        for m, _depth, inst, _opt, _witness in built
    }
    for m, depth, inst, opt, witness in built:
        sched = scheds_by_m[m]
        sched.validate()
        envelope = (math.ceil(math.log2(2 * m * opt)) + 1) * opt
        result.rows.append(
            {
                "family": "packed-semibatch",
                "m": m,
                "OPT_ref": f"{opt} (exact)",
                "arrivals_every": -(-opt // 2),
                "fifo_flow": sched.max_flow,
                "ratio": sched.max_flow / opt,
                "thm6.1_envelope": envelope,
                "within_envelope": sched.max_flow <= envelope,
                "lemma6.4_style": bool(check_lemma_6_4(sched, opt)),
            }
        )
        # The stressed regime: the Section 4 adversary releasing twice as
        # fast as the paper analyses (period ~ (m+1)/2). The adversary
        # adapts its layer sizes to FIFO's congestion; ratios divide by a
        # lower bound on OPT.
        from ..workloads.adversarial import build_fifo_adversary

        adv = build_fifo_adversary(
            m, n_jobs=3 * m, period=-(-(m + 1) // 2)
        )
        lb = adv.opt_lower_bound
        envelope_a = (math.ceil(math.log2(2 * m * lb)) + 1) * lb
        result.rows.append(
            {
                "family": "fast-adversary",
                "m": m,
                "OPT_ref": f"{lb} (lower)",
                "arrivals_every": adv.period,
                "fifo_flow": adv.fifo_max_flow,
                "ratio": adv.fifo_max_flow / lb,
                "thm6.1_envelope": envelope_a,
                "within_envelope": adv.fifo_max_flow <= envelope_a,
                "lemma6.4_style": bool(check_lemma_6_4(adv.fifo_schedule, lb)),
            }
        )
    exact_rows = [r for r in result.rows if r["family"] == "packed-semibatch"]
    fast_rows = [r for r in result.rows if r["family"] == "fast-adversary"]
    result.add_claim(
        "FIFO stays within the Theorem 6.1 envelope even though the proof "
        "does not cover OPT/2 arrivals (conjecture supported)",
        all(r["within_envelope"] for r in exact_rows),
    )
    result.add_claim(
        "the Lemma 6.4 work/idle invariant survives the relaxed arrivals "
        "(exact-OPT family)",
        all(r["lemma6.4_style"] for r in exact_rows),
    )
    result.add_claim(
        "even the doubly-fast adversary keeps FIFO within its envelope "
        "(measured against a lower bound — the conservative direction "
        "would be to fail, so passing is strong evidence)",
        all(r["within_envelope"] for r in fast_rows),
    )
    result.notes.append(
        "OPT is exact by construction (witness schedule validated); this "
        "is evidence, not proof — the point of the probe is that the "
        "behaviour the conjecture predicts is what the simulator shows."
    )
    return result
