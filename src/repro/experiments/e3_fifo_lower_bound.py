"""E3 — Theorem 4.2: FIFO is Ω(log m)-competitive on out-trees.

Build the Section 4 adversarial family for a sweep of machine sizes,
measure arbitrary FIFO's maximum flow against the OPT witness (flow
``<= m + 1``), and fit the growth of the certified ratio in ``log m``.
"""

from __future__ import annotations

import math

from ..analysis.stats import classify_growth, fit_log_growth
from ..workloads.adversarial import build_fifo_adversary
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    ms: tuple[int, ...] = (8, 16, 32, 64, 128),
    jobs_per_m: int = 4,
) -> ExperimentResult:
    """Sweep ``m``; release ``jobs_per_m * m`` adversarial jobs each time.

    (The paper's argument formally uses ``2·m·lg m`` jobs; the unfinished-
    sublayer potential saturates far sooner, and the table reports the
    certified ratio achieved with the configured budget.)
    """
    result = ExperimentResult(
        experiment_id="E3",
        title="FIFO lower bound on the adversarial out-tree family",
        paper_artifact="Theorem 4.2 (FIFO is >= lg m - lg lg m competitive)",
    )
    ratios = []
    for m in ms:
        adv = build_fifo_adversary(m, n_jobs=jobs_per_m * m)
        target = math.log2(m) - math.log2(max(math.log2(m), 1.0001))
        ratio = adv.ratio_lower_bound
        ratios.append(ratio)
        result.rows.append(
            {
                "m": m,
                "jobs": len(adv.instance),
                "nodes": adv.instance.total_work,
                "fifo_flow": adv.fifo_max_flow,
                "opt<=": adv.opt_upper_bound,
                "ratio>=": ratio,
                "lgm-lglgm": target,
            }
        )
    fit = fit_log_growth(list(ms), ratios)
    growth = classify_growth(list(ms), ratios)
    result.notes.append(
        f"ratio ≈ {fit.intercept:.2f} + {fit.slope:.2f}·log2(m) "
        f"(rms residual {fit.residual:.3f}) — classified {growth}"
    )
    result.add_claim(
        "certified ratio grows strictly with m",
        all(b > a for a, b in zip(ratios, ratios[1:])),
    )
    result.add_claim(
        "growth is logarithmic (fitted log2 slope > 0.3)",
        growth == "logarithmic" and fit.slope > 0.3,
        f"slope {fit.slope:.2f}",
    )
    result.add_claim(
        "every m exceeds the paper's lg m - lg lg m bound",
        all(
            row["ratio>="] >= row["lgm-lglgm"] - 1e-9 for row in result.rows
        ),
    )
    return result
