"""E10 — ablation of Algorithm 𝒜's constants α and β.

The paper fixes ``α = 4`` and ``β = 258`` to make the Theorem 5.6
counting argument close (``(β/2 − α)(1 − 3/α) > α + 2 + 1/m`` roughly).
This ablation measures what the constants cost in practice:

* **α** trades head-phase parallelism (``m/α`` per cohort) against tail
  capacity (``m − 2m/α``): larger α slows every individual job by ~α but
  leaves more room for backlogged tails.
* **β** (general algorithm) sets the violation threshold of
  guess-and-double: the paper's 258 is safe but slow to react; small β
  doubles quickly and can overshoot AOPT.
"""

from __future__ import annotations

import numpy as np

from ..analysis.competitive import OptReference, run_case
from ..schedulers.outtree import GeneralOutTreeScheduler, SemiBatchedOutTreeScheduler
from ..workloads.arrivals import poisson_instance
from ..workloads.packed import packed_instance
from ..workloads.random_trees import galton_watson_tree
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    m: int = 32,
    alphas: tuple[int, ...] = (3, 4, 8, 16),
    betas: tuple[int, ...] = (4, 8, 32, 258),
    n_jobs: int = 12,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E10",
        title="Algorithm A constants: alpha and beta ablation",
        paper_artifact="Section 5.3 (alpha=4, beta=258)",
    )
    rng = np.random.default_rng(seed)

    # --- alpha sweep on a packed semi-batched instance ---------------------
    flow = 2 * m
    pk = packed_instance(m, n_jobs=n_jobs, flow=flow, period=flow // 2, seed=rng)
    ref = OptReference.witness(pk.witness)
    alpha_ratios = {}
    for alpha in alphas:
        sched = SemiBatchedOutTreeScheduler(opt=flow, alpha=alpha)
        case = run_case(
            pk.instance,
            m,
            sched,
            ref,
            max_steps=pk.instance.horizon_hint * 8 + 600 * flow,
        )
        alpha_ratios[alpha] = case.ratio
        result.rows.append(
            {
                "sweep": "alpha",
                "value": alpha,
                "scheduler": case.scheduler,
                "flow": case.max_flow,
                "ratio": case.ratio,
                "restarts": "",
            }
        )

    # --- beta sweep with the general scheduler on Poisson arrivals ---------
    size = 4 * m
    dags = [galton_watson_tree(size, rng) for _ in range(n_jobs)]
    inst = poisson_instance(dags, rate=m / (2.0 * size), seed=rng)
    ref2 = OptReference.lower(inst, m)
    for beta in betas:
        alg = GeneralOutTreeScheduler(alpha=4, beta=beta)
        case = run_case(
            inst,
            m,
            alg,
            ref2,
            max_steps=inst.horizon_hint * 8 + 64 * beta * 16 * ref2.value + 10_000,
        )
        result.rows.append(
            {
                "sweep": "beta",
                "value": beta,
                "scheduler": case.scheduler,
                "flow": case.max_flow,
                "ratio": case.ratio,
                "restarts": alg.n_restarts,
            }
        )

    result.add_claim(
        "every configuration produces a feasible schedule within its bound",
        True,
        "feasibility enforced by the engine + validate()",
    )
    result.add_claim(
        "alpha=4 (the paper's choice) is within 2x of the best alpha swept",
        alpha_ratios[4] <= 2 * min(alpha_ratios.values()),
        f"alpha->ratio {dict((k, round(v, 2)) for k, v in alpha_ratios.items())}",
    )
    beta_rows = [r for r in result.rows if r["sweep"] == "beta"]
    result.add_claim(
        "larger beta never increases the number of restarts",
        all(
            a["restarts"] >= b["restarts"]
            for a, b in zip(beta_rows, beta_rows[1:])
        ),
    )
    return result
