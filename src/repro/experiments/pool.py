"""Persistent shared process pool for the experiment harness.

``repeat_experiment`` and ``run_all`` used to build (and tear down) a fresh
``ProcessPoolExecutor`` per call; for the common pattern of many small
parallel calls — seed sweeps inside a benchmark session, repeated
``run_all`` invocations — worker spawn and interpreter warm-up dominated.
This module keeps ONE process-wide executor alive across calls:

* the pool is created lazily on first use and reused by every later call;
* it is recreated (the old one drained and shut down) when a caller asks
  for *more* workers than the live pool has, **or** when the live pool is
  unusable — broken (a worker died and poisoned the executor), or shut
  down behind our back — so one crash never wedges every later sweep;
* each worker runs an initializer that inherits the parent's
  ``REPRO_CACHE_DIR`` so all processes share one on-disk workload cache
  (generated DAGs are built once, not once per worker);
* an ``atexit`` hook shuts the pool down with the interpreter.

For hang recovery the supervised harness
(:mod:`repro.experiments.supervisor`) needs to reclaim workers stuck in a
task; ``shutdown_shared_pool(force=True)`` terminates worker processes
(escalating to SIGKILL for survivors) instead of waiting for them.

Worker processes re-import ``repro``; anything monkeypatched in the parent
(registries, experiment functions) is invisible to them — the same caveat
as any process pool, documented on :func:`repro.experiments.run_all`.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

__all__ = ["shared_pool", "shutdown_shared_pool"]

_CACHE_ENV_VAR = "REPRO_CACHE_DIR"
_BACKEND_ENV_VAR = "REPRO_BACKEND"

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_atexit_registered = False


def _worker_init(cache_dir: Optional[str], backend: Optional[str]) -> None:
    """Run in every worker at spawn: inherit the parent's workload cache
    directory and kernel-backend choice (env vars may not propagate under
    spawn start methods). Workers resolve ``REPRO_BACKEND`` themselves on
    their first ``get_backend()`` call, so a parent running ``--backend
    numba`` gets numba (or its graceful numpy fallback) in every worker."""
    if cache_dir is not None:
        os.environ[_CACHE_ENV_VAR] = cache_dir
    if backend is not None:
        os.environ[_BACKEND_ENV_VAR] = backend


def _pool_unusable(pool: ProcessPoolExecutor) -> bool:
    """True when ``pool`` can no longer accept work.

    ``_broken`` is set (to a message) once a worker dies abruptly — every
    later ``submit`` would raise ``BrokenProcessPool`` forever;
    ``_shutdown_thread`` flips once ``shutdown()`` ran. Both are CPython
    implementation details, so read defensively: an attribute going away
    in a future version degrades to "looks healthy" and the submit-time
    exception still gets handled by the supervisor's rebuild path.
    """
    return bool(getattr(pool, "_broken", False)) or bool(
        getattr(pool, "_shutdown_thread", False)
    )


def shared_pool(n_workers: int) -> ProcessPoolExecutor:
    """Return the process-wide executor, sized for at least ``n_workers``.

    The live pool is reused whenever it already has enough workers *and*
    is still usable; a broken or externally shut down pool is replaced, as
    is one that is too small (after letting queued work finish). The pool
    is shared state: callers must not shut it down — use
    :func:`shutdown_shared_pool` (tests and the supervisor do) or let
    ``atexit`` handle it.
    """
    global _pool, _pool_workers, _atexit_registered
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if _pool is None or _pool_workers < n_workers or _pool_unusable(_pool):
        if _pool is not None:
            # A broken pool cannot drain; don't wait on its corpse.
            _pool.shutdown(wait=not _pool_unusable(_pool))
        _pool = ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_worker_init,
            initargs=(
                os.environ.get(_CACHE_ENV_VAR),
                os.environ.get(_BACKEND_ENV_VAR),
            ),
        )
        _pool_workers = n_workers
        if not _atexit_registered:
            atexit.register(shutdown_shared_pool)
            _atexit_registered = True
    return _pool


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Forcefully stop a pool's worker processes (hang recovery).

    SIGTERM first, a bounded join, then SIGKILL for anything still alive.
    Reads the private ``_processes`` map defensively — if the attribute
    disappears in a future CPython, force-shutdown degrades to the plain
    (waiting) shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.terminate()
    for proc in list(processes.values()):
        proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - needs a SIGTERM-immune task
            proc.kill()
            proc.join(timeout=5)


def shutdown_shared_pool(force: bool = False) -> None:
    """Shut down the shared executor (no-op when none is live).

    With ``force=True`` worker processes are terminated instead of joined
    — the only way to reclaim a worker wedged inside a hung task; queued
    futures are cancelled. The next :func:`shared_pool` call starts a
    fresh pool either way — callers that mutate ``REPRO_CACHE_DIR`` or
    ``REPRO_BACKEND`` mid-process (tests) call this so new workers pick
    the change up.
    """
    global _pool, _pool_workers
    if _pool is not None:
        if force:
            _terminate_workers(_pool)
            _pool.shutdown(wait=True, cancel_futures=True)
        else:
            _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0
