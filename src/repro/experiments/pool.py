"""Persistent shared process pool for the experiment harness.

``repeat_experiment`` and ``run_all`` used to build (and tear down) a fresh
``ProcessPoolExecutor`` per call; for the common pattern of many small
parallel calls — seed sweeps inside a benchmark session, repeated
``run_all`` invocations — worker spawn and interpreter warm-up dominated.
This module keeps ONE process-wide executor alive across calls:

* the pool is created lazily on first use and reused by every later call;
* it is recreated (the old one drained and shut down) only when a caller
  asks for *more* workers than the live pool has;
* each worker runs an initializer that inherits the parent's
  ``REPRO_CACHE_DIR`` so all processes share one on-disk workload cache
  (generated DAGs are built once, not once per worker);
* an ``atexit`` hook shuts the pool down with the interpreter.

Worker processes re-import ``repro``; anything monkeypatched in the parent
(registries, experiment functions) is invisible to them — the same caveat
as any process pool, documented on :func:`repro.experiments.run_all`.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

__all__ = ["shared_pool", "shutdown_shared_pool"]

_CACHE_ENV_VAR = "REPRO_CACHE_DIR"

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_atexit_registered = False


def _worker_init(cache_dir: Optional[str]) -> None:
    """Run in every worker at spawn: inherit the parent's workload cache
    directory (the env var may not propagate under spawn start methods)."""
    if cache_dir is not None:
        os.environ[_CACHE_ENV_VAR] = cache_dir


def shared_pool(n_workers: int) -> ProcessPoolExecutor:
    """Return the process-wide executor, sized for at least ``n_workers``.

    The live pool is reused whenever it already has enough workers; asking
    for more replaces it (after letting queued work finish). The pool is
    shared state: callers must not shut it down — use
    :func:`shutdown_shared_pool` (tests do) or let ``atexit`` handle it.
    """
    global _pool, _pool_workers, _atexit_registered
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if _pool is None or _pool_workers < n_workers:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_worker_init,
            initargs=(os.environ.get(_CACHE_ENV_VAR),),
        )
        _pool_workers = n_workers
        if not _atexit_registered:
            atexit.register(shutdown_shared_pool)
            _atexit_registered = True
    return _pool


def shutdown_shared_pool() -> None:
    """Shut down the shared executor (no-op when none is live).

    The next :func:`shared_pool` call starts a fresh one — callers that
    mutate ``REPRO_CACHE_DIR`` mid-process (tests) call this so new workers
    pick the change up.
    """
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0
