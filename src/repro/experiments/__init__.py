"""Experiments: one module per reproduced table/figure (see DESIGN.md's
per-experiment index), plus the registry and table plumbing."""

from .pool import shared_pool, shutdown_shared_pool
from .runner import (
    Claim,
    ExperimentResult,
    format_table,
    repeat_experiment,
    run_trials,
)
from .supervisor import (
    SupervisedOutcome,
    SupervisorConfig,
    TaskTimeoutError,
    run_supervised,
)

__all__ = [
    "Claim",
    "ExperimentResult",
    "format_table",
    "repeat_experiment",
    "run_trials",
    "shared_pool",
    "shutdown_shared_pool",
    "SupervisedOutcome",
    "SupervisorConfig",
    "TaskTimeoutError",
    "run_supervised",
    "EXPERIMENTS",
    "SCALE_PRESETS",
    "run_experiment",
    "run_all",
]


def __getattr__(name):
    # The registry imports every experiment module; defer that cost (and any
    # import cycles) until someone actually asks for it.
    if name in ("EXPERIMENTS", "SCALE_PRESETS", "run_experiment", "run_all"):
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
