"""E11 — beyond trees: no optimal intra-job heuristic for DAGs.

Section 1: *"while longest path first is an optimal heuristic for trees for
intra-job scheduling, there is no such optimal heuristic for DAGs.
Therefore, shaping a DAG is significantly more challenging."*

This experiment makes that claim concrete and measurable:

* on random **out-forests**, LPF's flow equals the exact optimum in every
  sampled case (Corollary 5.4 — the E4 result, re-verified here against
  the brute-force solver rather than the closed form);
* on random **series-parallel** and general DAGs of the same size, LPF is
  strictly suboptimal on a non-trivial fraction of cases — and the table
  prints the smallest counterexample found, a concrete witness that
  height-based shaping fails beyond trees.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..core.job import Job
from ..schedulers.lpf import lpf_flow
from ..schedulers.offline import exact_opt
from ..workloads.random_trees import random_out_forest
from ..workloads.seriesparallel import random_series_parallel
from .runner import ExperimentResult

__all__ = ["run", "lpf_optimality_gap", "known_counterexample"]


def lpf_optimality_gap(dag, m: int) -> int:
    """``LPF flow − exact OPT`` for a single job on ``m`` processors
    (0 means LPF is optimal here; requires a small DAG)."""
    opt, _ = exact_opt(Instance([Job(dag, 0)]), m)
    return lpf_flow(dag, m) - opt


def known_counterexample() -> tuple["object", int]:
    """A verified 8-node DAG on which LPF is strictly suboptimal for
    ``m = 2`` (found by exhaustive-ish random search, pinned here so the
    experiment's headline claim is deterministic): LPF takes 5 steps, the
    optimum takes 4."""
    from ..core.dag import DAG

    edges = [
        (1, 2), (1, 4), (3, 4), (1, 5), (4, 5), (0, 5),
        (4, 6), (1, 6), (3, 6), (4, 7), (0, 7), (2, 7),
    ]
    return DAG(8, edges), 2


def _random_general_dag(n: int, rng) -> "object":
    """Random small DAG: each node gets up to 2 random earlier parents."""
    from ..core.dag import DAG

    edges = []
    for v in range(1, n):
        k = int(rng.integers(0, min(2, v) + 1))
        parents = rng.choice(v, size=k, replace=False)
        edges.extend((int(p), v) for p in parents)
    return DAG(n, edges)


def run(
    n_nodes: int = 10,
    m: int = 2,
    trials: int = 60,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E11",
        title="LPF optimality gap: trees vs series-parallel vs general DAGs",
        paper_artifact="Section 1 discussion (shaping DAGs is harder)",
    )
    rng = np.random.default_rng(seed)
    families = {
        "out-forest": lambda: random_out_forest(n_nodes, rng),
        "series-parallel": lambda: random_series_parallel(n_nodes, rng),
        "general-dag": lambda: _random_general_dag(n_nodes, rng),
    }
    gaps_by_family: dict[str, list[int]] = {}
    for family, gen in families.items():
        gaps = []
        for _ in range(trials):
            dag = gen()
            if dag.n > 12:
                continue
            gaps.append(lpf_optimality_gap(dag, m))
        gaps_by_family[family] = gaps
        arr = np.asarray(gaps)
        result.rows.append(
            {
                "family": family,
                "cases": arr.size,
                "LPF_optimal": int((arr == 0).sum()),
                "suboptimal": int((arr > 0).sum()),
                "max_gap": int(arr.max()) if arr.size else 0,
            }
        )
    # The deterministic witness: counterexamples are rare under random
    # sampling (see the table), so the headline claim rests on a pinned,
    # re-verified instance rather than sampling luck.
    witness_dag, witness_m = known_counterexample()
    witness_gap = lpf_optimality_gap(witness_dag, witness_m)
    result.rows.append(
        {
            "family": "pinned-witness",
            "cases": 1,
            "LPF_optimal": int(witness_gap == 0),
            "suboptimal": int(witness_gap > 0),
            "max_gap": witness_gap,
        }
    )
    result.figures.append(
        f"pinned counterexample (m={witness_m}, gap {witness_gap}):\n"
        f"  n = {witness_dag.n}, edges = {witness_dag.edge_list()}\n"
        f"  LPF flow = {lpf_flow(witness_dag, witness_m)}, "
        f"OPT = {lpf_flow(witness_dag, witness_m) - witness_gap}"
    )
    result.add_claim(
        "LPF is exactly optimal on every sampled out-forest",
        all(g == 0 for g in gaps_by_family["out-forest"]),
    )
    result.add_claim(
        "LPF is strictly suboptimal on a verified non-tree DAG "
        "(no optimal height heuristic beyond trees)",
        witness_gap > 0,
        f"gap {witness_gap} at m={witness_m}",
    )
    result.add_claim(
        "LPF never beats the exact optimum (sanity)",
        all(g >= 0 for gaps in gaps_by_family.values() for g in gaps)
        and witness_gap >= 0,
    )
    result.notes.append(
        "Exact optima via the branch-and-bound solver; DAGs capped at 12 "
        "nodes to keep the search exact. Counterexamples are rare under "
        "random sampling — the suboptimal column measures that rarity."
    )
    return result
