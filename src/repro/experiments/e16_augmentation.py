"""E16 — why augmented analyses miss the problem (Section 2 context).

Section 2: prior work analyzed FIFO under *speed augmentation*, where it is
scalable ((1+ε)-speed O(1)-competitive, [4]); "intuitively speed
augmentation analysis assumes away the existence of the hard instances
where the optimal schedule is tightly packed." This paper's whole point is
what happens *without* that crutch.

This experiment demonstrates the intuition with the closely related
*machine* augmentation: run FIFO with ``f·m`` processors on the adversarial
family built for ``m`` and compare against OPT on ``m`` processors. At
``f = 1`` the Theorem 4.2 Ω(log m) blow-up appears; at ``f = 2`` the
instance is no longer tight and FIFO's flow collapses to roughly the
per-job span — the hard family simply evaporates under augmentation,
which is exactly why un-augmented analysis (this paper) was needed to see
FIFO's flaw.
"""

from __future__ import annotations

from ..schedulers.fifo import FIFOScheduler
from ..workloads.adversarial import build_fifo_adversary
from .runner import ExperimentResult, run_trials

__all__ = ["run"]


def run(
    ms: tuple[int, ...] = (8, 16, 32),
    factors: tuple[int, ...] = (1, 2, 4),
    jobs_per_m: int = 3,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E16",
        title="Machine augmentation evaporates the adversarial family",
        paper_artifact="Section 2 (resource augmentation discussion)",
    )
    ratios: dict[tuple[int, int], float] = {}
    for m in ms:
        adv = build_fifo_adversary(m, n_jobs=jobs_per_m * m)
        for f in factors:
            # Each (m, f) pair has its own processor count, so each is its
            # own (single-instance) run_trials sweep — still the batched
            # engine path, shared with the Monte-Carlo experiments.
            schedule = run_trials([adv.instance], f * m, FIFOScheduler)[0]
            schedule.validate()
            ratio = schedule.max_flow / adv.opt_upper_bound
            ratios[(m, f)] = ratio
            result.rows.append(
                {
                    "m": m,
                    "augmentation": f"{f}x",
                    "processors": f * m,
                    "fifo_flow": schedule.max_flow,
                    "ratio_vs_OPT[m]": ratio,
                }
            )
    result.add_claim(
        "un-augmented FIFO pays the Theorem 4.2 blow-up (ratio > 2 at f=1)",
        all(ratios[(m, 1)] > 2.0 for m in ms),
    )
    result.add_claim(
        "2x augmentation collapses every instance (ratio <= 1 at f=2)",
        all(ratios[(m, 2)] <= 1.0 + 1e-9 for m in ms),
        f"f=2 ratios: {[round(ratios[(m, 2)], 2) for m in ms]}",
    )
    result.add_claim(
        "the augmented ratio does not grow with m (the hard family is gone)",
        all(
            ratios[(b, 2)] <= ratios[(a, 2)] + 0.2
            for a, b in zip(ms, ms[1:])
        ),
    )
    result.notes.append(
        "Machine augmentation (f x processors) is the discrete cousin of the "
        "speed augmentation in [4]; the point demonstrated is the same — "
        "tightly packed instances cease to exist under any augmentation, so "
        "augmented analyses cannot see FIFO's intra-job flaw."
    )
    return result
