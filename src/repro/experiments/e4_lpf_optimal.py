"""E4 — Lemma 5.3 / Corollary 5.4: LPF is optimal for a single out-forest.

Across tree generators, sizes and machine counts, check that (a) LPF's flow
on ``m`` processors equals the Corollary 5.4 closed form *exactly*, and
(b) LPF on ``m/α`` processors never exceeds ``α·OPT``.
"""

from __future__ import annotations

import numpy as np

from ..schedulers.lpf import lpf_flow
from ..schedulers.offline import single_forest_opt
from ..workloads.random_trees import (
    galton_watson_tree,
    random_attachment_tree,
    random_binary_tree,
    random_out_forest,
)
from ..workloads.recursive import (
    divide_and_conquer_tree,
    parallel_for_tree,
    quicksort_tree,
)
from ..core.dag import chain, complete_kary_tree, spider, star
from .runner import ExperimentResult

__all__ = ["run"]

_GENERATORS = {
    "attachment": lambda n, rng: random_attachment_tree(n, rng),
    "binary": lambda n, rng: random_binary_tree(n, rng),
    "galton-watson": lambda n, rng: galton_watson_tree(n, rng),
    "quicksort": lambda n, rng: quicksort_tree(n, rng),
    "pfor": lambda n, rng: parallel_for_tree(max(1, n // 4), body_span=3),
    "d&c": lambda n, rng: divide_and_conquer_tree(max(1, n // 2)),
    "forest": lambda n, rng: random_out_forest(n, rng),
    "chain": lambda n, rng: chain(n),
    "star": lambda n, rng: star(n - 1) if n >= 2 else chain(1),
    "kary": lambda n, rng: complete_kary_tree(3, max(1, int(np.log(n) / np.log(3)))),
    "spider": lambda n, rng: spider(max(1, n // 10), 10),
}


def run(
    ms: tuple[int, ...] = (2, 4, 8, 16),
    sizes: tuple[int, ...] = (20, 100, 400),
    alpha: int = 4,
    trials: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E4",
        title="LPF optimality for single out-forests",
        paper_artifact="Lemma 5.3, Corollary 5.4",
    )
    rng = np.random.default_rng(seed)
    for gen_name, gen in _GENERATORS.items():
        cases = optimal = alpha_ok = 0
        worst_alpha_ratio = 0.0
        for m in ms:
            for n in sizes:
                for _ in range(trials):
                    dag = gen(n, rng)
                    opt = single_forest_opt(dag, m)
                    flow_m = lpf_flow(dag, m)
                    cases += 1
                    optimal += flow_m == opt
                    width = max(1, m // alpha)
                    flow_frac = lpf_flow(dag, width)
                    # With width = max(1, m // alpha), the effective factor
                    # is ceil(m / width) >= alpha.
                    factor = -(-m // width)
                    alpha_ok += flow_frac <= factor * opt
                    worst_alpha_ratio = max(worst_alpha_ratio, flow_frac / opt)
        result.rows.append(
            {
                "workload": gen_name,
                "cases": cases,
                "LPF==OPT": optimal,
                "LPF[m/a]<=aOPT": alpha_ok,
                "worst_frac_ratio": worst_alpha_ratio,
            }
        )
    result.add_claim(
        "LPF equals the Corollary 5.4 closed form in every case",
        all(r["LPF==OPT"] == r["cases"] for r in result.rows),
        f"{sum(r['cases'] for r in result.rows)} cases",
    )
    result.add_claim(
        "LPF on m/alpha processors is alpha-competitive in every case",
        all(r["LPF[m/a]<=aOPT"] == r["cases"] for r in result.rows),
    )
    return result
