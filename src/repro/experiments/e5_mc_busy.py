"""E5 — Lemma 5.5: the Most-Children algorithm never idles granted
processors.

Take LPF tails (fully packed rectangles, the exact precondition of the
lemma) of random out-trees, replay them through MC under adversarially
fluctuating allocations ``m_t``, and verify the busy property at two
strengths:

* **work-conserving** — MC schedules ``min(m_t, ready subjobs)`` at every
  step, the strongest property any scheduler can have. This holds in
  100% of replays.
* **strict (the literal Lemma 5.5 claim)** — MC schedules exactly ``m_t``
  unless it finishes. A reproduction finding (see
  :mod:`repro.schedulers.mc`): same-step enabling can force MC off pure
  max-children order, after which rare inputs reach a state where *no*
  scheduler could fill the grant; the strict claim fails there. The table
  counts how often (typically 0 in these trials; a fraction of a percent
  in wider sweeps over random out-forests).
"""

from __future__ import annotations

import numpy as np

from ..analysis.invariants import check_mc_busy, head_tail_shape
from ..core.instance import Instance
from ..core.job import Job
from ..schedulers.lpf import LPFScheduler
from ..workloads.random_trees import galton_watson_tree, random_attachment_tree
from ..workloads.recursive import quicksort_tree
from .runner import ExperimentResult, run_trials

__all__ = ["run"]

_GENERATORS = {
    "attachment": random_attachment_tree,
    "galton-watson": galton_watson_tree,
    "quicksort": quicksort_tree,
}


def _allocation_patterns(width: int, horizon: int, rng) -> dict[str, list[int]]:
    """Allocation sequences m_t <= width (the MC contract)."""
    return {
        "constant": [width] * horizon,
        "uniform": rng.integers(0, width + 1, size=horizon).tolist(),
        "bursty": [
            (width if (k // 3) % 2 == 0 else max(0, width // 4))
            for k in range(horizon)
        ],
        "trickle": [1] * horizon,
    }


def run(
    width: int = 8,
    n_nodes: int = 300,
    trials: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E5",
        title="MC keeps every granted processor busy",
        paper_artifact="Lemma 5.5",
    )
    rng = np.random.default_rng(seed)
    for gen_name, gen in _GENERATORS.items():
        pattern_pass: dict[str, int] = {}
        pattern_strict: dict[str, int] = {}
        pattern_cases: dict[str, int] = {}
        # All LPF replays of one generator share (m, scheduler config), so
        # they run as one homogeneous batched sweep through run_trials
        # instead of one engine dispatch per trial.
        dags = [gen(n_nodes, rng) for _ in range(trials)]
        sweeps = run_trials(
            [Instance([Job(dag, 0)]) for dag in dags], width, LPFScheduler
        )
        for dag, sched in zip(dags, sweeps):
            shape = head_tail_shape(sched, width)
            steps = [nodes for _, nodes in sched.job_steps(0)]
            # The MC contract: input has no idle step except possibly the
            # last. Use the packed tail (plus generous allocations).
            tail = steps[shape.head_length :]
            if not tail:
                continue
            tail_nodes = sum(len(s) for s in tail)
            horizon = 4 * tail_nodes + 8
            for pat_name, alloc in _allocation_patterns(width, horizon, rng).items():
                wc = check_mc_busy(tail, dag, alloc)
                strict = check_mc_busy(tail, dag, alloc, strict=True)
                pattern_cases[pat_name] = pattern_cases.get(pat_name, 0) + 1
                pattern_pass[pat_name] = pattern_pass.get(pat_name, 0) + bool(wc)
                pattern_strict[pat_name] = pattern_strict.get(pat_name, 0) + bool(
                    strict
                )
        for pat_name in sorted(pattern_cases):
            result.rows.append(
                {
                    "workload": gen_name,
                    "allocation": pat_name,
                    "cases": pattern_cases[pat_name],
                    "work_conserving": pattern_pass[pat_name],
                    "strict_lemma": pattern_strict[pat_name],
                }
            )
    total = sum(r["cases"] for r in result.rows)
    strict_ok = sum(r["strict_lemma"] for r in result.rows)
    result.add_claim(
        "work-conserving busyness holds in every (workload, allocation) case",
        all(r["work_conserving"] == r["cases"] for r in result.rows),
        f"{total} replays",
    )
    result.add_claim(
        "the literal Lemma 5.5 claim holds in >= 99% of replays "
        "(rare forced-idle states are a documented reproduction finding)",
        strict_ok >= 0.99 * total,
        f"{strict_ok}/{total}",
    )
    result.notes.append(
        "See repro.schedulers.mc: same-step enabling can force MC off pure "
        "max-children order; in rare resulting states no scheduler can fill "
        "the grant, so the strict claim fails while work conservation — the "
        "achievable optimum — holds. Theorem 5.6's constants absorb such "
        "one-slot losses."
    )
    return result
