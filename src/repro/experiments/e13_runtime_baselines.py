"""E13 — runtime baselines: work stealing vs FIFO vs Algorithm 𝒜.

The paper's introduction grounds the model in real fork-join runtimes
(Cilk, TBB, OpenMP), whose scheduler is randomized work stealing — provably
great for *one* job's makespan, but with no fairness story across jobs.
This experiment places a faithful work-stealing simulation next to the
paper's algorithms on the multi-job maximum-flow objective:

* on a benign stream of recursion-tree jobs, work stealing's utilization is
  high but its **max flow** trails FIFO (it has no notion of job age, so an
  unlucky old job can starve behind younger work);
* on the adversarial family, work stealing — like every policy that
  doesn't deliberately shape jobs — sits between arbitrary FIFO and the
  clairvoyant shapers.

This is context the paper asserts informally; the table makes it
quantitative.
"""

from __future__ import annotations

import numpy as np

from ..analysis.competitive import OptReference
from ..schedulers.base import ArbitraryTieBreak, LongestPathTieBreak
from ..schedulers.fifo import FIFOScheduler
from ..schedulers.worksteal import WorkStealingScheduler
from ..workloads.adversarial import build_fifo_adversary
from ..workloads.arrivals import poisson_instance
from ..workloads.recursive import quicksort_tree
from .runner import ExperimentResult, run_trials

__all__ = ["run"]


def _measure(instance, m, scheduler_factory, ref):
    """One baseline run, routed through the run_trials harness.

    Utilization is derived from the completion histogram instead of a
    per-step observer (which would force the slow path): subjobs finishing
    at ``t + 1`` were scheduled during step ``t``, and every scheduler here
    is work-conserving enough to schedule at least one ready subjob per
    active step, so the active window is exactly the steps with a
    completion.
    """
    made: list = []

    def factory():
        made.append(scheduler_factory())
        return made[-1]

    schedule = run_trials([instance], m, factory)[0]
    schedule.validate()
    scheduler = made[-1]
    counts = np.bincount(np.concatenate(schedule.completion))
    busy = int(counts.sum())
    active_steps = int(np.count_nonzero(counts))
    row = {
        "scheduler": scheduler.name,
        "max_flow": schedule.max_flow,
        "ratio": schedule.max_flow / ref.value,
        "utilization": busy / max(1, m * active_steps),
        "makespan": schedule.makespan,
    }
    if isinstance(scheduler, WorkStealingScheduler):
        row["steals"] = scheduler.steal_count
    else:
        row["steals"] = ""
    return row


def run(
    m: int = 16,
    n_jobs: int = 16,
    elements: int = 150,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E13",
        title="Runtime baselines: work stealing vs FIFO vs shaping",
        paper_artifact="Section 1 motivation / Section 2 related work",
    )
    rng = np.random.default_rng(seed)

    factories = [
        lambda: WorkStealingScheduler(seed=seed, steal_attempts=2),
        lambda: WorkStealingScheduler(seed=seed, deterministic_fallback=True),
        lambda: FIFOScheduler(ArbitraryTieBreak()),
        lambda: FIFOScheduler(LongestPathTieBreak()),
    ]

    # --- benign stream ----------------------------------------------------
    dags = [quicksort_tree(elements, rng) for _ in range(n_jobs)]
    stream = poisson_instance(dags, rate=m / (2.0 * elements), seed=rng)
    ref = OptReference.lower(stream, m)
    for make in factories:
        row = _measure(stream, m, make, ref)
        row["workload"] = "quicksort-stream"
        result.rows.append(row)

    # --- adversarial family -------------------------------------------------
    adv = build_fifo_adversary(m, n_jobs=3 * m)
    ref_a = OptReference.witness(adv.opt_witness)
    for make in factories:
        row = _measure(adv.instance, m, make, ref_a)
        row["workload"] = "adversarial"
        result.rows.append(row)

    result.columns = [
        "workload",
        "scheduler",
        "max_flow",
        "ratio",
        "utilization",
        "steals",
        "makespan",
    ]
    stream_rows = [r for r in result.rows if r["workload"] == "quicksort-stream"]
    by_name = {r["scheduler"]: r for r in stream_rows}
    result.add_claim(
        "age-aware FIFO beats pure work stealing on max flow "
        "(fairness costs nothing to FIFO, and work stealing ignores age)",
        by_name["FIFO[arbitrary]"]["max_flow"]
        <= by_name["WorkSteal[p2]"]["max_flow"],
    )
    adv_rows = {r["scheduler"]: r for r in result.rows if r["workload"] == "adversarial"}
    result.add_claim(
        "on the adversarial family the clairvoyant LPF tie-break beats "
        "every non-shaping policy",
        adv_rows["FIFO[longestpath]"]["max_flow"]
        <= min(
            adv_rows["WorkSteal[p2]"]["max_flow"],
            adv_rows["WorkSteal[wc]"]["max_flow"],
            adv_rows["FIFO[arbitrary]"]["max_flow"],
        ),
    )
    result.add_claim(
        "every schedule is feasible and fully validated",
        True,
        "enforced by engine + validate() in _measure",
    )
    return result
