"""Experiment registry: id → runner, with the DESIGN.md per-experiment index
mirrored in code. ``run_all`` regenerates every table/figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from .supervisor import SupervisorConfig

from . import (
    e1_packing,
    e2_lpf_shape,
    e3_fifo_lower_bound,
    e4_lpf_optimal,
    e5_mc_busy,
    e6_algA_semibatched,
    e7_algA_general,
    e8_fifo_batched,
    e9_tiebreak_ablation,
    e10_alpha_beta,
    e11_dag_shaping_gap,
    e12_fifo_beyond_batched,
    e13_runtime_baselines,
    e14_norm_tradeoff,
    e15_phased_generalization,
    e16_augmentation,
    e17_nonclairvoyant_lower_bound,
)
from .runner import ExperimentResult

__all__ = ["Experiment", "EXPERIMENTS", "SCALE_PRESETS", "run_experiment", "run_all"]


@dataclass(frozen=True)
class Experiment:
    """Registry entry for one reproducible experiment."""

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[..., ExperimentResult]


EXPERIMENTS: dict[str, Experiment] = {
    e.experiment_id: e
    for e in [
        Experiment(
            "E1",
            "Figure 1",
            "Two feasible packings of one job on three processors",
            e1_packing.run,
        ),
        Experiment(
            "E2",
            "Figure 2, Lemmas 5.2/5.3",
            "Head/tail shape of LPF[m/alpha]",
            e2_lpf_shape.run,
        ),
        Experiment(
            "E3",
            "Theorem 4.2",
            "FIFO Omega(log m) lower bound on adversarial out-trees",
            e3_fifo_lower_bound.run,
        ),
        Experiment(
            "E4",
            "Lemma 5.3, Corollary 5.4",
            "LPF optimality for single out-forests",
            e4_lpf_optimal.run,
        ),
        Experiment(
            "E5",
            "Lemma 5.5",
            "MC busy property under fluctuating allocations",
            e5_mc_busy.run,
        ),
        Experiment(
            "E6",
            "Theorem 5.6",
            "Algorithm A on semi-batched instances vs FIFO",
            e6_algA_semibatched.run,
        ),
        Experiment(
            "E7",
            "Theorem 5.7",
            "Guess-and-double Algorithm A on general arrivals",
            e7_algA_general.run,
        ),
        Experiment(
            "E8",
            "Theorem 6.1, Lemmas 6.4/6.5",
            "FIFO on batched instances: logarithmic upper bound",
            e8_fifo_batched.run,
        ),
        Experiment(
            "E9",
            "Sections 1/4 discussion",
            "FIFO tie-break ablation on frozen adversarial instances",
            e9_tiebreak_ablation.run,
        ),
        Experiment(
            "E10",
            "Section 5.3 constants",
            "Algorithm A alpha/beta ablation",
            e10_alpha_beta.run,
        ),
        Experiment(
            "E11",
            "Section 1 discussion",
            "LPF optimality gap: trees vs series-parallel vs general DAGs",
            e11_dag_shaping_gap.run,
        ),
        Experiment(
            "E12",
            "Section 6 remark, open question 1",
            "FIFO beyond the batched assumption (conjecture probe)",
            e12_fifo_beyond_batched.run,
        ),
        Experiment(
            "E13",
            "Sections 1/2 context",
            "Runtime baselines: work stealing vs FIFO vs shaping",
            e13_runtime_baselines.run,
        ),
        Experiment(
            "E14",
            "Section 1 norm choice",
            "SRPT vs FIFO: mean flow against maximum flow",
            e14_norm_tradeoff.run,
        ),
        Experiment(
            "E15",
            "Section 1 generalization hint",
            "Phased Algorithm A on series-of-out-tree jobs",
            e15_phased_generalization.run,
        ),
        Experiment(
            "E16",
            "Section 2 augmentation discussion",
            "Machine augmentation evaporates the adversarial family",
            e16_augmentation.run,
        ),
        Experiment(
            "E17",
            "Conclusion open question 2",
            "The adaptive bound defeats every non-clairvoyant FIFO tie-break",
            e17_nonclairvoyant_lower_bound.run,
        ),
    ]
}


#: Parameter presets per experiment. ``"smoke"`` keeps every experiment
#: under a few seconds (used by the integration tests and ``--scale smoke``);
#: ``"default"`` is each experiment's own defaults (the benchmark scale);
#: ``"full"`` pushes the sweeps to the scales quoted in EXPERIMENTS.md's
#: headline tables (minutes of runtime, e.g. the m = 128 adversary).
SCALE_PRESETS: dict[str, dict[str, dict]] = {
    "smoke": {
        "E1": {},
        "E2": {"ms": (16,), "n_nodes": 120, "trials": 2},
        "E3": {"ms": (8, 16, 32), "jobs_per_m": 3},
        "E4": {"ms": (2, 4), "sizes": (20, 60), "trials": 2},
        "E5": {"width": 4, "n_nodes": 80, "trials": 2},
        "E6": {"ms": (8, 16, 32), "n_jobs": 12},
        "E7": {"ms": (8, 16), "n_jobs": 10},
        "E8": {"ms": (4, 8), "n_batches": 6},
        "E9": {"ms": (16, 32), "jobs_per_m": 3},
        "E10": {"m": 16, "alphas": (4, 8), "betas": (8, 258), "n_jobs": 6},
        "E11": {"trials": 15},
        "E12": {"ms": (4, 8), "n_batches": 6},
        "E13": {"m": 8, "n_jobs": 8, "elements": 60},
        "E14": {"m": 8, "small": 16, "disparities": (4, 16)},
        "E15": {"ms": (8, 16), "n_jobs": 6},
        "E16": {"ms": (8, 16), "factors": (1, 2)},
        "E17": {"ms": (8, 16), "jobs_per_m": 3},
    },
    "default": {},
    "full": {
        "E2": {"ms": (16, 64, 256), "n_nodes": 1200, "trials": 10},
        "E3": {"ms": (8, 16, 32, 64, 128), "jobs_per_m": 4},
        "E4": {"ms": (2, 4, 8, 16, 32), "sizes": (20, 100, 400, 1000), "trials": 4},
        "E5": {"width": 16, "n_nodes": 1200, "trials": 12},
        "E6": {"ms": (8, 16, 32, 64, 128), "n_jobs": 32},
        "E7": {"ms": (8, 16, 32, 64, 128), "n_jobs": 30},
        "E8": {"ms": (4, 8, 16, 32, 64), "n_batches": 16},
        "E9": {"ms": (16, 32, 64, 128), "jobs_per_m": 4},
        "E10": {"m": 64, "alphas": (3, 4, 8, 16, 32), "betas": (4, 8, 32, 128, 258)},
        "E11": {"trials": 200, "n_nodes": 12},
        "E12": {"ms": (4, 8, 16, 32, 64), "n_batches": 20},
        "E13": {"m": 32, "n_jobs": 24, "elements": 300},
        "E14": {"m": 32, "small": 48, "disparities": (4, 16, 48, 96)},
        "E15": {"ms": (8, 16, 32, 64), "n_jobs": 14},
        "E16": {"ms": (8, 16, 32, 64), "factors": (1, 2, 4, 8)},
        "E17": {"ms": (8, 16, 32, 64, 128), "jobs_per_m": 4},
    },
}


def run_experiment(
    experiment_id: str,
    scale: str = "default",
    *,
    engine_stats: bool = False,
    **params,
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"E3"``).

    ``scale`` selects a :data:`SCALE_PRESETS` preset; explicit ``params``
    override preset entries. With ``engine_stats=True`` the engine effort
    spent by this run (steps, fast-forwarded steps, selections, ns/subjob)
    is appended to ``result.notes`` — opt-in so golden rendered outputs
    stay byte-stable.
    """
    if scale not in SCALE_PRESETS:
        raise KeyError(f"unknown scale {scale!r}; options: {sorted(SCALE_PRESETS)}")
    kwargs = dict(SCALE_PRESETS[scale].get(experiment_id, {}))
    kwargs.update(params)
    if not engine_stats:
        return EXPERIMENTS[experiment_id].run(**kwargs)
    from ..core import engine_stats_snapshot

    before = engine_stats_snapshot()
    result = EXPERIMENTS[experiment_id].run(**kwargs)
    result.notes.append(
        f"engine: {engine_stats_snapshot().delta(before).summary()}"
    )
    return result


def _run_registered(task: tuple) -> ExperimentResult:
    """Top-level worker for parallel :func:`run_all` (must be picklable)."""
    experiment_id, scale, engine_stats, kwargs = task
    return run_experiment(
        experiment_id, scale=scale, engine_stats=engine_stats, **kwargs
    )


def _run_registered_with_stats(task: tuple) -> tuple[ExperimentResult, object]:
    """Worker wrapper returning the result plus the engine-stats delta this
    task cost in its worker (the parent folds it into its accumulator)."""
    from ..core import engine_stats_snapshot

    before = engine_stats_snapshot()
    result = _run_registered(task)
    return result, engine_stats_snapshot().delta(before)


def _run_registered_local(task: tuple) -> tuple[ExperimentResult, object]:
    """In-process twin of :func:`_run_registered_with_stats` for the
    supervisor's serial paths; the zero delta avoids double-counting
    effort that already landed in this process's accumulator."""
    from ..core import EngineStats

    return _run_registered(task), EngineStats()


def _registered_key(task: tuple) -> str:
    """Stable checkpoint-journal key for one ``run_all`` task.

    Includes the resolved kernel backend (see
    :func:`.runner._active_backend_name`): resuming a journaled sweep
    under a different ``REPRO_BACKEND`` re-runs the experiments instead
    of replaying results recorded under the other backend."""
    from .runner import _active_backend_name

    exp_id, scale, engine_stats, kwargs = task
    return (
        f"run_all|{exp_id}|scale={scale}|stats={engine_stats}"
        f"|backend={_active_backend_name()}"
        f"|{sorted(kwargs.items())!r}"
    )


def run_all(
    scale: str = "default",
    *,
    n_workers: Optional[int] = None,
    engine_stats: bool = False,
    only: Optional[list[str]] = None,
    supervisor: Optional["SupervisorConfig"] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = True,
    **params_by_id,
) -> list[ExperimentResult]:
    """Run every experiment; ``params_by_id`` maps id -> kwargs dict.

    ``only`` restricts the run to the given experiment ids (registry order
    is kept regardless of the order given). With ``n_workers > 1`` the runs
    fan out over the persistent shared process pool
    (:func:`repro.experiments.pool.shared_pool`, reused across calls) under
    :func:`repro.experiments.supervisor.run_supervised` — worker crashes
    rebuild the pool, hung tasks hit the ``supervisor`` timeout, and after
    repeated pool failures the sweep degrades to serial execution.
    Results are returned in registry order regardless of completion order,
    and each worker's :class:`~repro.core.EngineStats` delta is folded into
    this process's accumulator. Worker processes re-import this module, so
    a monkeypatched registry is only visible to the serial path — tests
    that stub experiments must use the default (serial) mode.

    With ``checkpoint_dir`` every completed experiment is journaled
    atomically, so a killed sweep re-invoked with the same arguments and
    ``resume=True`` skips straight past the finished ids (works for both
    the serial and the parallel path). ``KeyboardInterrupt`` is re-raised
    after a clean pool shutdown; journaled results survive for the resume.
    """
    if only is not None:
        unknown = set(only) - set(EXPERIMENTS)
        if unknown:
            raise KeyError(f"unknown experiment ids: {sorted(unknown)}")
    tasks = [
        (exp_id, scale, engine_stats, params_by_id.get(exp_id, {}))
        for exp_id in EXPERIMENTS
        if only is None or exp_id in only
    ]
    keys = [_registered_key(task) for task in tasks]
    if n_workers is not None and n_workers > 1:
        from ..core import accumulate_engine_stats

        from .supervisor import run_supervised

        outcome = run_supervised(
            _run_registered_with_stats,
            tasks,
            n_workers=n_workers,
            config=supervisor,
            keys=keys,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            local_fn=_run_registered_local,
        )
        resumed = set(outcome.resumed_indices)
        for idx, pair in enumerate(outcome.results):
            if pair is not None and idx not in resumed:
                accumulate_engine_stats(pair[1])
        if outcome.interrupted:
            raise KeyboardInterrupt
        return [result for result, _ in outcome.results]
    if checkpoint_dir is not None:
        from .supervisor import run_supervised

        outcome = run_supervised(
            _run_registered_local,
            tasks,
            n_workers=1,
            config=supervisor,
            keys=keys,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        if outcome.interrupted:
            raise KeyboardInterrupt
        return [result for result, _ in outcome.results]
    return [_run_registered(task) for task in tasks]
