"""E2 — Figure 2 / Lemma 5.2: the head/tail shape of LPF[m/α].

For random out-trees, run LPF on ``m/α`` processors and measure the
schedule's shape: the paper predicts everything after the last idle step is
a full ``m/α``-wide rectangle, the last idle step falls within the first
OPT time units, the tail is at most ``(α-1)·OPT + 1`` steps, and the whole
schedule finishes within ``α·OPT`` (Lemma 5.3).
"""

from __future__ import annotations

import numpy as np

from ..analysis.invariants import check_lpf_ancestor_structure, head_tail_shape
from ..schedulers.lpf import lpf_schedule
from ..schedulers.offline import single_forest_opt
from ..viz.shape import render_head_tail
from ..workloads.random_trees import (
    galton_watson_tree,
    random_attachment_tree,
    random_out_forest,
)
from ..workloads.recursive import divide_and_conquer_tree, quicksort_tree
from .runner import ExperimentResult

__all__ = ["run"]

_GENERATORS = {
    "attachment": lambda n, s: random_attachment_tree(n, s),
    "deep-attach": lambda n, s: random_attachment_tree(n, s, bias=2.0),
    "galton-watson": lambda n, s: galton_watson_tree(n, s),
    "quicksort": lambda n, s: quicksort_tree(n, s),
    "d&c": lambda n, s: divide_and_conquer_tree(max(1, n // 2), prologue=1),
    "forest": lambda n, s: random_out_forest(n, s),
}


def run(
    ms: tuple[int, ...] = (16, 64),
    alpha: int = 4,
    n_nodes: int = 400,
    trials: int = 5,
    seed: int = 0,
    render_one: bool = True,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E2",
        title="Head/tail shape of LPF on m/alpha processors",
        paper_artifact="Figure 2, Lemma 5.2, Lemma 5.3",
    )
    rng = np.random.default_rng(seed)
    rendered = False
    for m in ms:
        width = m // alpha
        for gen_name, gen in _GENERATORS.items():
            heads_ok = tails_packed = flows_ok = structure_ok = 0
            n_cases = 0
            max_tail = 0
            for _ in range(trials):
                dag = gen(n_nodes, rng)
                opt = single_forest_opt(dag, m)
                sched = lpf_schedule(dag, width)
                shape = head_tail_shape(sched, width)
                n_cases += 1
                heads_ok += shape.head_length <= opt
                tails_packed += shape.tail_fully_packed
                flows_ok += sched.max_flow <= alpha * opt
                structure_ok += bool(check_lpf_ancestor_structure(sched, width))
                max_tail = max(max_tail, shape.tail_length)
                if render_one and not rendered and shape.tail_length > 3:
                    result.figures.append(
                        f"{gen_name} tree, m={m}, width=m/{alpha}={width}:\n"
                        + render_head_tail(sched, width, opt=opt)
                    )
                    rendered = True
            result.rows.append(
                {
                    "m": m,
                    "width": width,
                    "workload": gen_name,
                    "trials": n_cases,
                    "head<=OPT": heads_ok,
                    "tail_packed": tails_packed,
                    "flow<=aOPT": flows_ok,
                    "lemma5.2": structure_ok,
                    "max_tail": max_tail,
                }
            )
    total = sum(r["trials"] for r in result.rows)
    result.add_claim(
        "every tail is a full rectangle (Lemma 5.2 consequence)",
        all(r["tail_packed"] == r["trials"] for r in result.rows),
    )
    result.add_claim(
        "every head ends within OPT steps",
        all(r["head<=OPT"] == r["trials"] for r in result.rows),
    )
    result.add_claim(
        "LPF[m/alpha] is alpha-competitive vs OPT[m] (Lemma 5.3)",
        all(r["flow<=aOPT"] == r["trials"] for r in result.rows),
    )
    result.add_claim(
        "Lemma 5.2 ancestor-chain structure holds at the last idle step",
        all(r["lemma5.2"] == r["trials"] for r in result.rows),
        f"{total} schedules checked",
    )
    return result
