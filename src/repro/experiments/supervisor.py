"""Supervised fault-tolerant execution for the experiment harness.

The persistent shared pool (:mod:`repro.experiments.pool`) makes sweeps
fast; this module makes them survive the failures a long sweep hits first:

* a **crashed worker** (``os._exit``, segfault, OOM-kill) poisons a
  ``ProcessPoolExecutor`` forever — every later submit raises
  ``BrokenProcessPool``. The supervisor force-rebuilds the shared pool and
  resubmits the unfinished tasks;
* a **hung worker** stalls an in-order ``pool.map`` indefinitely. Each
  task gets a per-task wall-clock timeout; on expiry the pool's workers
  are terminated (the only way to reclaim one wedged in a task), the pool
  is rebuilt, and the task retried;
* **transient task failures** are retried with exponential backoff plus
  seeded jitter, up to a bounded attempt budget; the terminal failure
  re-raises the task's own exception;
* after repeated pool-level failures the sweep **degrades to serial**
  in-process execution — slower, but it completes;
* with a **checkpoint directory**, every completed task's result is
  journaled atomically (tmp file + ``os.replace``, the workload-cache
  pattern), so an interrupted sweep resumes where it stopped instead of
  restarting; a corrupt or truncated journal entry is treated as missing
  and recomputed;
* ``KeyboardInterrupt`` mid-sweep shuts the pool down cleanly and returns
  the partial results gathered so far (journaled ones included).

:func:`run_supervised` is the engine room; ``repeat_experiment`` and
``run_all`` route their parallel paths through it.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import pickle
import tempfile
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

import numpy as np

from .pool import shared_pool, shutdown_shared_pool

__all__ = [
    "SupervisorConfig",
    "SupervisedOutcome",
    "TaskTimeoutError",
    "run_supervised",
]


class TaskTimeoutError(RuntimeError):
    """A task exceeded its per-attempt wall-clock timeout on every try."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/backoff/timeout policy for :func:`run_supervised`.

    Attributes
    ----------
    task_timeout:
        Per-attempt wall-clock budget in seconds (None: unbounded). A
        timeout marks the whole pool suspect: its workers are terminated
        and the pool rebuilt, because a ``ProcessPoolExecutor`` cannot
        cancel a running task any other way.
    max_retries:
        Re-attempts allowed per task after its first failure (so a task
        runs at most ``max_retries + 1`` times).
    backoff_base / backoff_cap:
        Exponential backoff between attempts of a failed task:
        ``min(cap, base * 2**(attempt-1))`` seconds.
    jitter:
        Symmetric multiplicative jitter applied to each backoff delay
        (``delay *= 1 + jitter * U[-1, 1]``), seeded — sweeps stay
        reproducible modulo wall-clock.
    max_pool_rebuilds:
        Pool rebuilds (after ``BrokenProcessPool`` or a timeout) tolerated
        before the sweep degrades to serial in-process execution.
    seed:
        Seed for the jitter stream.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 2.0
    jitter: float = 0.25
    max_pool_rebuilds: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")


@dataclass
class SupervisedOutcome:
    """What :func:`run_supervised` did, beyond the results themselves.

    ``results`` is aligned with the input tasks; entries are ``None`` only
    when the sweep was interrupted before the task completed (check
    ``interrupted``).
    """

    results: list[Any]
    interrupted: bool = False
    retries: int = 0
    pool_rebuilds: int = 0
    degraded_to_serial: bool = False
    #: Indices whose results came from the checkpoint journal rather than a
    #: fresh run this invocation (callers that fold per-task side data — the
    #: runner's EngineStats deltas — skip these to avoid double counting).
    resumed_indices: list[int] = field(default_factory=list)

    @property
    def resumed(self) -> int:
        return len(self.resumed_indices)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r is not None)


# ----------------------------------------------------------------------
# Checkpoint journal: one atomically-written pickle per completed task
# ----------------------------------------------------------------------


def _journal_path(checkpoint_dir: Path, key: str) -> Path:
    digest = hashlib.sha256(key.encode()).hexdigest()[:32]
    return checkpoint_dir / f"{digest}.ckpt"


def _journal_load(checkpoint_dir: Path, key: str) -> tuple[bool, Any]:
    """``(hit, value)`` for ``key``; corrupt/truncated entries are misses."""
    path = _journal_path(checkpoint_dir, key)
    if not path.is_file():
        return False, None
    try:
        with open(path, "rb") as fh:
            return True, pickle.load(fh)
    except Exception:
        # Same contract as the workload cache: a journal must never turn
        # garbage bytes into a crash — recompute and overwrite.
        return False, None


def _journal_store(checkpoint_dir: Path, key: str, value: Any) -> None:
    """Write ``value`` atomically (a torn write must not corrupt resume)."""
    path = _journal_path(checkpoint_dir, key)
    try:
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=checkpoint_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except (OSError, pickle.PicklingError):
        warnings.warn(
            f"checkpoint journal write failed for {path}; the sweep "
            "continues but this task will re-run on resume",
            RuntimeWarning,
            stacklevel=2,
        )


# ----------------------------------------------------------------------
# The supervised loop
# ----------------------------------------------------------------------


def _backoff_sleep(
    config: SupervisorConfig, attempt: int, rng: np.random.Generator
) -> None:
    delay = min(config.backoff_cap, config.backoff_base * 2 ** max(0, attempt - 1))
    delay *= 1.0 + config.jitter * float(rng.uniform(-1.0, 1.0))
    if delay > 0:
        time.sleep(delay)


def run_supervised(
    worker_fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    n_workers: int,
    config: Optional[SupervisorConfig] = None,
    keys: Optional[Sequence[str]] = None,
    checkpoint_dir: Optional[str | os.PathLike[str]] = None,
    resume: bool = True,
    local_fn: Optional[Callable[[Any], Any]] = None,
) -> SupervisedOutcome:
    """Run ``worker_fn`` over ``tasks`` with supervision (module docstring).

    Parameters
    ----------
    worker_fn:
        Module-level callable shipped to pool workers (must be picklable).
    n_workers:
        Fan-out width; ``<= 1`` executes serially in-process (still with
        retries and checkpointing).
    keys:
        Stable per-task identifiers, required with ``checkpoint_dir``
        (journal entries are addressed by key, so a re-invocation must
        derive the same key for the same logical task).
    checkpoint_dir / resume:
        Journal directory; with ``resume=True`` existing entries are
        served from disk, with ``resume=False`` they are ignored (and
        overwritten as tasks complete).
    local_fn:
        In-process twin of ``worker_fn`` used for serial execution and
        serial degradation (defaults to ``worker_fn``). The experiment
        runner passes a variant that skips worker-side EngineStats deltas
        — in-process engine effort already lands in this process's
        accumulator, and folding a nonzero delta would double-count it.

    Returns
    -------
    SupervisedOutcome
        Results aligned with ``tasks`` plus fault-handling telemetry.
        Permanent task failure re-raises the task's own exception
        (:class:`TaskTimeoutError` for timeouts); ``KeyboardInterrupt``
        returns the partial outcome with ``interrupted=True``.
    """
    config = config or SupervisorConfig()
    if local_fn is None:
        local_fn = worker_fn
    ckpt: Optional[Path] = None
    if checkpoint_dir is not None:
        ckpt = Path(checkpoint_dir)
        if keys is None:
            raise ValueError("checkpoint_dir requires per-task keys")
    if keys is not None and len(keys) != len(tasks):
        raise ValueError(f"{len(keys)} keys for {len(tasks)} tasks")

    outcome = SupervisedOutcome(results=[None] * len(tasks))
    rng = np.random.default_rng(config.seed)
    attempts = [0] * len(tasks)

    def record(idx: int, value: Any) -> None:
        outcome.results[idx] = value
        if ckpt is not None and keys is not None:
            _journal_store(ckpt, keys[idx], value)

    pending: list[int] = []
    for idx in range(len(tasks)):
        if ckpt is not None and keys is not None and resume:
            hit, value = _journal_load(ckpt, keys[idx])
            if hit:
                outcome.results[idx] = value
                outcome.resumed_indices.append(idx)
                continue
        pending.append(idx)

    def run_serial(indices: Sequence[int]) -> None:
        assert local_fn is not None
        for idx in indices:
            while True:
                attempts[idx] += 1
                try:
                    record(idx, local_fn(tasks[idx]))
                    break
                except KeyboardInterrupt:
                    outcome.interrupted = True
                    return
                except Exception:
                    if attempts[idx] > config.max_retries:
                        raise
                    outcome.retries += 1
                    _backoff_sleep(config, attempts[idx], rng)

    if n_workers <= 1:
        run_serial(pending)
        return outcome

    while pending:
        try:
            pool: ProcessPoolExecutor = shared_pool(n_workers)
            futures: dict[int, Future[Any]] = {
                idx: pool.submit(worker_fn, tasks[idx]) for idx in pending
            }
        except BrokenProcessPool:
            # The pool broke between the health check and the submits.
            outcome.pool_rebuilds += 1
            shutdown_shared_pool(force=True)
            if outcome.pool_rebuilds > config.max_pool_rebuilds:
                outcome.degraded_to_serial = True
                run_serial(pending)
                return outcome
            continue

        retry_round: list[int] = []
        rebuild = False
        try:
            for pos, idx in enumerate(pending):
                try:
                    record(idx, futures[idx].result(timeout=config.task_timeout))
                except concurrent.futures.TimeoutError:
                    # A wedged worker can only be reclaimed by killing it;
                    # everything not yet done goes back in the queue.
                    attempts[idx] += 1
                    if attempts[idx] > config.max_retries:
                        shutdown_shared_pool(force=True)
                        raise TaskTimeoutError(
                            f"task {keys[idx] if keys is not None else idx} "
                            f"exceeded {config.task_timeout}s on "
                            f"{attempts[idx]} attempts"
                        ) from None
                    rebuild = True
                    retry_round.append(idx)
                    retry_round.extend(
                        j
                        for j in pending[pos + 1 :]
                        if outcome.results[j] is None
                    )
                    break
                except BrokenProcessPool:
                    # Some worker died; the executor is poisoned for good.
                    # Charge an attempt to the task we were waiting on (the
                    # likeliest culprit) and resubmit everything unfinished.
                    attempts[idx] += 1
                    if attempts[idx] > config.max_retries:
                        shutdown_shared_pool(force=True)
                        raise
                    rebuild = True
                    retry_round.append(idx)
                    retry_round.extend(
                        j
                        for j in pending[pos + 1 :]
                        if outcome.results[j] is None
                    )
                    break
                except Exception:
                    attempts[idx] += 1
                    if attempts[idx] > config.max_retries:
                        raise
                    retry_round.append(idx)
        except KeyboardInterrupt:
            # Clean stop: drop queued work, reclaim workers, hand back what
            # finished (journaled results survive for a later resume).
            for fut in futures.values():
                fut.cancel()
            shutdown_shared_pool(force=True)
            outcome.interrupted = True
            return outcome

        if retry_round:
            outcome.retries += len(retry_round)
            if rebuild:
                outcome.pool_rebuilds += 1
                shutdown_shared_pool(force=True)
                if outcome.pool_rebuilds > config.max_pool_rebuilds:
                    outcome.degraded_to_serial = True
                    run_serial(retry_round)
                    return outcome
            _backoff_sleep(config, max(attempts[i] for i in retry_round), rng)
        pending = retry_round

    return outcome
