"""E14 — the ℓ1 / ℓ∞ trade-off (Section 1, "quality-of-service norms").

The paper motivates maximum flow as the fairness norm: *"minimizing the
maximum flow ... is the most commonly considered objective when the
overriding concern is fairness."* This experiment quantifies the norm
trade-off the introduction alludes to, on a stream mixing many small jobs
with a few large ones:

* **SRPT** (serve the job closest to done) compresses mean flow — and
  starves the large jobs, blowing up max flow and max stretch;
* **FIFO** pays a little mean flow for a dramatically better worst case;
* the gap widens with the size disparity between jobs.
"""

from __future__ import annotations

import numpy as np

from ..analysis.fairness import fairness_report
from ..core.simulator import simulate
from ..schedulers.base import LongestPathTieBreak
from ..schedulers.fifo import FIFOScheduler
from ..schedulers.srpt import SRPTScheduler
from ..workloads.random_trees import random_attachment_tree
from .runner import ExperimentResult

__all__ = ["run"]


def _starvation_stream(m: int, small: int, disparity: int, load: float, rng):
    """One big job at t=0, then a sustained stream of small jobs at the
    given machine load — the canonical SRPT-starvation scenario."""
    from ..core.instance import Instance
    from ..core.job import Job

    big = small * disparity
    jobs = [Job(random_attachment_tree(big, rng), 0, "big")]
    # Enough small jobs to outlast the big job even if it ran alone.
    gap = max(1, round(small / (load * m)))
    n_small = 2 * (big // m) // gap + 8
    for i in range(n_small):
        jobs.append(
            Job(random_attachment_tree(small, rng), 1 + i * gap, f"small{i}")
        )
    return Instance(jobs)


def run(
    m: int = 16,
    small: int = 32,
    disparities: tuple[int, ...] = (4, 16, 48),
    load: float = 0.8,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E14",
        title="SRPT vs FIFO: mean flow against maximum flow",
        paper_artifact="Section 1 (norm choice / fairness motivation)",
    )
    rng = np.random.default_rng(seed)
    gaps = []
    for disparity in disparities:
        stream = _starvation_stream(m, small, disparity, load, rng)
        for scheduler in (
            FIFOScheduler(LongestPathTieBreak()),
            SRPTScheduler(LongestPathTieBreak()),
        ):
            schedule = simulate(stream, m, scheduler)
            schedule.validate()
            report = fairness_report(schedule)
            row = {
                "disparity": disparity,
                "scheduler": scheduler.name,
                "big_job_flow": schedule.job_flow(0),
            }
            row.update(report.as_row())
            result.rows.append(row)
        fifo_row, srpt_row = result.rows[-2], result.rows[-1]
        gaps.append(
            (
                srpt_row["max_flow"] / fifo_row["max_flow"],
                fifo_row["mean_flow"] / max(1e-9, srpt_row["mean_flow"]),
            )
        )
    result.add_claim(
        "FIFO's maximum flow beats SRPT's at every size disparity",
        all(srpt_over_fifo > 1.0 for srpt_over_fifo, _ in gaps),
        f"SRPT/FIFO max-flow ratios: {[round(g, 2) for g, _ in gaps]}",
    )
    result.add_claim(
        "SRPT's mean flow is at least as good as FIFO's (the other side of "
        "the trade-off)",
        all(fifo_over_srpt >= 1.0 - 1e-9 for _, fifo_over_srpt in gaps),
    )
    result.add_claim(
        "under SRPT the starved job is the big one",
        all(
            r["big_job_flow"] == r["max_flow"]
            for r in result.rows
            if r["scheduler"].startswith("SRPT")
        ),
    )
    result.notes.append(
        "Jain index near 1 means evenly distributed flows; SRPT trades the "
        "big jobs' flows for everyone else's — exactly the unfairness the "
        "ℓ∞ objective exists to prevent."
    )
    return result
