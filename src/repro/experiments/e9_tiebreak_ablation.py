"""E9 — intra-job tie-breaking is the decisive knob (Section 1 discussion).

The Section 4 lower bound is constructed against *one specific* arbitrary
choice. Replaying the *frozen* adversarial instances under different
intra-job tie-breaks shows where the damage comes from: the matching
arbitrary order realizes the Ω(log m) blow-up, random tie-breaking mostly
dodges it, and the clairvoyant LPF tie-break (which always picks the key
subjob — the one of maximum height) collapses the ratio to a small
constant. This supports the paper's takeaway that *shaping* (intra-job
policy) rather than job ordering is FIFO's fatal flaw.
"""

from __future__ import annotations

from ..analysis.competitive import OptReference
from ..schedulers.base import (
    ArbitraryTieBreak,
    DepthTieBreak,
    LongestPathTieBreak,
    MostChildrenTieBreak,
    RandomTieBreak,
    ReverseTieBreak,
)
from ..schedulers.fifo import FIFOScheduler
from ..workloads.adversarial import build_fifo_adversary
from .runner import ExperimentResult, run_trials

__all__ = ["run"]


def run(
    ms: tuple[int, ...] = (16, 32, 64),
    jobs_per_m: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E9",
        title="FIFO tie-break ablation on the frozen adversarial family",
        paper_artifact="Section 1 / Section 4 discussion (intra-job scheduling)",
    )
    policies = [
        ("arbitrary(asc)", lambda: ArbitraryTieBreak()),
        ("arbitrary(desc)", lambda: ReverseTieBreak()),
        ("random", lambda: RandomTieBreak(seed)),
        ("depth", lambda: DepthTieBreak()),
        ("most-children", lambda: MostChildrenTieBreak()),
        ("LPF", lambda: LongestPathTieBreak()),
    ]
    per_policy: dict[str, list[float]] = {name: [] for name, _ in policies}
    for m in ms:
        adv = build_fifo_adversary(m, n_jobs=jobs_per_m * m)
        ref = OptReference.witness(adv.opt_witness)
        for name, make in policies:
            # One frozen instance per (m, policy): routed through
            # run_trials so eligible tie-breaks replay on the batched
            # engine (random tie-breaks fall back per instance inside it).
            schedule = run_trials(
                [adv.instance], m, lambda mk=make: FIFOScheduler(mk())
            )[0]
            schedule.validate()
            ratio = schedule.max_flow / ref.value
            per_policy[name].append(ratio)
            result.rows.append(
                {
                    "m": m,
                    "tie_break": name,
                    "clairvoyant": FIFOScheduler(make()).clairvoyant,
                    "flow": schedule.max_flow,
                    "ratio": ratio,
                }
            )
    result.add_claim(
        "the matching arbitrary order is the worst policy at every m",
        all(
            per_policy["arbitrary(asc)"][k]
            >= max(v[k] for v in per_policy.values()) - 1e-9
            for k in range(len(ms))
        ),
    )
    result.add_claim(
        "the clairvoyant LPF tie-break stays within a small constant (<= 4)",
        all(r <= 4.0 for r in per_policy["LPF"]),
        f"max {max(per_policy['LPF']):.2f}",
    )
    result.add_claim(
        "LPF tie-break beats the matching arbitrary order at every m",
        all(
            lpf < arb
            for lpf, arb in zip(per_policy["LPF"], per_policy["arbitrary(asc)"])
        ),
    )
    result.notes.append(
        "Reversed/random/depth orders can still stumble (keys are not "
        "identifiable non-clairvoyantly); only the height-aware LPF rule "
        "reliably collapses the family."
    )
    return result
