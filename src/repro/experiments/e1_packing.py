"""E1 — Figure 1: two feasible packings of one DAG on three processors.

The figure illustrates that one job admits many packings respecting its
DAG, with different completion times. The full text does not spell out the
example's exact 9-node edge set, so we use a representative 9-node out-tree
and show (a) the LPF packing (optimal, Lemma 5.3) and (b) a deliberately
bad height-ignoring packing, on m = 3 processors.
"""

from __future__ import annotations

import string

from ..core.dag import DAG
from ..core.instance import Instance
from ..core.job import Job
from ..core.simulator import simulate
from ..schedulers.base import ReverseTieBreak
from ..schedulers.fifo import FIFOScheduler
from ..schedulers.lpf import LPFScheduler
from ..schedulers.offline import single_forest_opt
from ..viz.gantt import render_gantt
from .runner import ExperimentResult

__all__ = ["figure1_dag", "run"]


def figure1_dag() -> DAG:
    """A 9-node out-tree with both a long sequential path and parallel
    slack — the kind of piece Figure 1 packs two ways.

    Shape: A→B→C→D is the critical path; A also forks leaves E, F, G
    (four ready children against three processors — the intra-job choice
    matters); C forks leaves H and I.
    """
    edges = [
        (0, 1),  # A -> B
        (1, 2),  # B -> C
        (2, 3),  # C -> D
        (0, 4),  # A -> E
        (0, 5),  # A -> F
        (0, 6),  # A -> G
        (2, 7),  # C -> H
        (2, 8),  # C -> I
    ]
    return DAG(9, edges)


def run(m: int = 3) -> ExperimentResult:
    """Regenerate Figure 1: render two packings of the same job."""
    dag = figure1_dag()
    instance = Instance([Job(dag, 0, label="fig1")])
    names = string.ascii_uppercase

    good = simulate(instance, m, LPFScheduler())
    good.validate()
    bad = simulate(instance, m, FIFOScheduler(ReverseTieBreak()))
    bad.validate()
    opt = single_forest_opt(dag, m)

    cell = lambda job_id, node_id: names[node_id]
    result = ExperimentResult(
        experiment_id="E1",
        title="Two packings of one job on three processors",
        paper_artifact="Figure 1",
    )
    result.figures.append(
        "LPF packing (optimal):\n" + render_gantt(good, cell=cell)
    )
    result.figures.append(
        "Height-ignoring packing:\n" + render_gantt(bad, cell=cell)
    )
    result.rows = [
        {"packing": "LPF", "flow": good.max_flow, "optimal": good.max_flow == opt},
        {"packing": "reverse", "flow": bad.max_flow, "optimal": bad.max_flow == opt},
    ]
    result.notes.append(
        "The figure's exact 9-node example is not specified in the text; "
        "this is a representative out-tree with the same moral."
    )
    result.add_claim(
        "both packings are feasible for the same DAG",
        good.is_feasible() and bad.is_feasible(),
    )
    result.add_claim(
        f"LPF attains the Corollary 5.4 optimum ({opt})", good.max_flow == opt
    )
    result.add_claim(
        "the packings differ in completion time",
        bad.max_flow > good.max_flow,
        f"{bad.max_flow} vs {good.max_flow}",
    )
    return result
