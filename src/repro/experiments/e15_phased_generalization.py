"""E15 — the suggested generalization: Algorithm 𝒜 on series-of-out-trees.

Section 1: *"many algorithms, such as those that contain a sequence of
parallel for-loops, can be thought of as a series of out-trees. One may be
able to potentially generalize the out-tree algorithm to such programs as
well."* — the paper leaves this as future work.

We implement the natural generalization (segments enroll as virtual
arrivals in the Algorithm 𝒜 machinery; see
:mod:`repro.schedulers.phased`) and measure it on streams of phased jobs:

* the base algorithm **rejects** these jobs (they are not out-forests) —
  the generalization genuinely extends coverage;
* the phased algorithm is always feasible and its measured ratio stays
  bounded across ``m`` on both parallel-for pipelines and random phased
  jobs (no guarantee is *claimed* — that is the open problem — but the
  heuristic behaves like the out-tree original on these inputs).
"""

from __future__ import annotations

import numpy as np

from ..analysis.competitive import OptReference, run_case
from ..core.exceptions import ConfigurationError
from ..core.instance import Instance
from ..core.job import Job
from ..core.simulator import simulate
from ..schedulers.base import ArbitraryTieBreak, LongestPathTieBreak
from ..schedulers.fifo import FIFOScheduler
from ..schedulers.outtree import GeneralOutTreeScheduler
from ..schedulers.phased import PhasedOutForestScheduler
from ..workloads.phased import phased_parallel_for, series_of_trees
from .runner import ExperimentResult

__all__ = ["run"]


def _phased_stream(kind: str, m: int, n_jobs: int, rng) -> Instance:
    jobs = []
    t = 0
    for i in range(n_jobs):
        if kind == "pfor-pipeline":
            dag = phased_parallel_for(n_loops=4, iterations=2 * m)
        else:
            dag = series_of_trees(3, 3 * m, rng)
        jobs.append(Job(dag, t, f"{kind}{i}"))
        t += int(rng.integers(1, max(2, dag.work // m)))
    return Instance(jobs)


def run(
    ms: tuple[int, ...] = (8, 16, 32),
    n_jobs: int = 10,
    beta: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E15",
        title="Phased Algorithm A on series-of-out-tree jobs",
        paper_artifact="Section 1 ('series of out-trees' generalization hint)",
    )
    rng = np.random.default_rng(seed)
    rejection_confirmed = True
    ratios_by_kind: dict[str, list[float]] = {}
    for m in ms:
        for kind in ("pfor-pipeline", "random-phased"):
            inst = _phased_stream(kind, m, n_jobs, rng)
            ref = OptReference.lower(inst, m)
            max_steps = inst.horizon_hint * 16 + 100_000
            # The base algorithm must reject phased jobs.
            try:
                simulate(inst, m, GeneralOutTreeScheduler(beta=beta), max_steps=64)
                rejection_confirmed = False
            except ConfigurationError:
                pass
            for scheduler in (
                PhasedOutForestScheduler(alpha=4, beta=beta),
                FIFOScheduler(ArbitraryTieBreak()),
                FIFOScheduler(LongestPathTieBreak()),
            ):
                case = run_case(inst, m, scheduler, ref, max_steps=max_steps)
                result.rows.append(
                    {
                        "workload": kind,
                        "m": m,
                        "scheduler": case.scheduler,
                        "opt_ref": f"{ref.value} ({ref.kind})",
                        "flow": case.max_flow,
                        "ratio<=": case.ratio,
                    }
                )
                if case.scheduler.startswith("PhasedA"):
                    ratios_by_kind.setdefault(kind, []).append(case.ratio)
    result.add_claim(
        "the base out-tree algorithm rejects phased jobs "
        "(the generalization extends real coverage)",
        rejection_confirmed,
    )
    result.add_claim(
        "the phased algorithm is feasible on every stream "
        "(validated schedules)",
        True,
        "enforced by run_case(validate=True)",
    )
    result.add_claim(
        "the phased algorithm's ratio stays bounded across m "
        "(largest-m ratio <= 2x smallest-m, per workload)",
        all(rs[-1] <= 2 * rs[0] + 1e-9 for rs in ratios_by_kind.values()),
        {k: [round(r, 2) for r in v] for k, v in ratios_by_kind.items()}.__repr__(),
    )
    result.notes.append(
        "No competitive guarantee is claimed — that is the paper's open "
        "problem; this measures the natural heuristic's behaviour."
    )
    return result
