"""ASCII Gantt rendering of schedules (the packings of Figure 1).

The paper visualizes a schedule as a two-dimensional packing — processors ×
time — of the jobs' "tetris pieces". :func:`render_gantt` draws exactly
that: one row per processor lane, one column per time step.

Processor identity is irrelevant in the model (Section 3), so lanes are an
artifact of rendering; we assign them per step, keeping each job in a
contiguous block ordered by job id so the piece shapes read clearly.
"""

from __future__ import annotations

import string
from typing import Callable, Optional

from ..core.schedule import Schedule

__all__ = ["render_gantt", "job_letter"]


def job_letter(job_id: int) -> str:
    """Default cell glyph: A, B, ..., Z, a, ..., z, then 0-9 cycling."""
    alphabet = string.ascii_uppercase + string.ascii_lowercase + string.digits
    return alphabet[job_id % len(alphabet)]


def render_gantt(
    schedule: Schedule,
    *,
    cell: Optional[Callable[[int, int], str]] = None,
    t_start: int = 1,
    t_end: Optional[int] = None,
    idle_char: str = ".",
    show_axis: bool = True,
) -> str:
    """Render ``schedule`` as an ASCII grid.

    Parameters
    ----------
    cell:
        ``cell(job_id, node_id) -> str`` giving a single-character glyph
        per subjob; defaults to one letter per job.
    t_start, t_end:
        Time-step window to draw (inclusive); defaults to the full
        schedule.
    idle_char:
        Glyph for idle processor-steps.
    show_axis:
        Append a time-axis ruler line.
    """
    if cell is None:
        cell = lambda job_id, node_id: job_letter(job_id)
    makespan = schedule.makespan
    t_end = makespan if t_end is None else min(t_end, makespan)
    if t_end < t_start:
        return "(empty window)"
    m = schedule.m
    width = t_end - t_start + 1
    grid = [[idle_char] * width for _ in range(m)]
    for t in range(t_start, t_end + 1):
        entries = sorted(schedule.at(t))
        for lane, (job_id, node_id) in enumerate(entries):
            glyph = cell(job_id, node_id)
            grid[lane][t - t_start] = (glyph or idle_char)[0]
    lines = [
        f"p{lane + 1:<2d} |" + "".join(row) + "|" for lane, row in enumerate(grid)
    ]
    if show_axis:
        ruler = [" "] * width
        for t in range(t_start, t_end + 1):
            if t % 5 == 0 or t == t_start:
                mark = str(t)
                pos = t - t_start
                for k, ch in enumerate(mark):
                    if pos + k < width:
                        ruler[pos + k] = ch
        lines.append("t   |" + "".join(ruler) + "|")
    return "\n".join(lines)
