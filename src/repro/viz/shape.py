"""Utilization-profile rendering: the head/tail shape of Figure 2.

Figure 2 depicts a generic LPF schedule on ``m/α`` processors: an
uncontrolled *head* during the first OPT time units, then a fully packed
rectangular *tail* of width ``m/α`` and length at most ``(α-1)·OPT``.
:func:`render_profile` draws the per-step processor usage as a horizontal
bar chart and marks the measured head/tail boundary.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.invariants import HeadTailShape, head_tail_shape
from ..core.schedule import Schedule

__all__ = ["render_profile", "render_head_tail"]


def render_profile(
    schedule: Schedule,
    *,
    width: Optional[int] = None,
    bar_char: str = "#",
    job_ids: Optional[list[int]] = None,
    collapse: bool = True,
) -> str:
    """Per-step usage bars: one line per time step, ``usage[t]`` bars.

    ``width`` draws a ``|`` capacity marker at that many processors
    (defaults to the schedule's ``m``). With ``collapse``, runs of steps
    with identical usage are folded into one ``t=a..b`` line (the packed
    tail of an LPF schedule would otherwise print hundreds of equal rows).
    """
    usage = schedule.usage_profile(job_ids)
    cap = schedule.m if width is None else width
    lines = []
    t = 1
    while t < usage.size:
        u = int(usage[t])
        end = t
        if collapse:
            while end + 1 < usage.size and int(usage[end + 1]) == u:
                end += 1
        bar = bar_char * u + " " * max(0, cap - u)
        label = f"t={t}" if end == t else f"t={t}..{end}"
        lines.append(f"{label:<12s} |{bar}| {u}")
        t = end + 1
    return "\n".join(lines)


def render_head_tail(
    schedule: Schedule, width: int, *, job_id: int = 0, opt: Optional[int] = None
) -> str:
    """Render a single-job LPF schedule's measured Figure-2 decomposition.

    Includes the usage bars, the head/tail boundary, and — when ``opt`` is
    supplied — the paper's predicted bounds (head ≤ OPT steps; with
    ``width = m/α``, tail ≤ (α−1)·OPT steps).
    """
    shape: HeadTailShape = head_tail_shape(schedule, width, job_id)
    lines = [render_profile(schedule, width=width, job_ids=[job_id])]
    lines.append("-" * (width + 12))
    lines.append(
        f"head: steps 1..{shape.head_length}   "
        f"tail: steps {shape.head_length + 1}..{shape.makespan} "
        f"(fully packed: {shape.tail_fully_packed})"
    )
    if opt is not None:
        lines.append(
            f"paper bounds: head <= OPT = {opt} "
            f"(measured {shape.head_length}); tail rectangle width {width}"
        )
    return "\n".join(lines)
