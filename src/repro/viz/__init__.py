"""ASCII renderers for schedules (Figure 1 packings, Figure 2 shapes)."""

from .compare import render_comparison
from .gantt import job_letter, render_gantt
from .shape import render_head_tail, render_profile

__all__ = [
    "render_gantt",
    "job_letter",
    "render_profile",
    "render_head_tail",
    "render_comparison",
]
