"""Side-by-side schedule comparison rendering.

Experiments constantly contrast two policies on the same instance (FIFO vs
𝒜, arbitrary vs LPF tie-break...). :func:`render_comparison` stacks their
Gantt charts over a shared time axis and appends the per-job flow deltas,
which is how the E1/E9-style "same tetris pieces, different packing"
pictures are produced.
"""

from __future__ import annotations

from typing import Optional

from ..core.exceptions import ScheduleError
from ..core.schedule import Schedule
from .gantt import render_gantt

__all__ = ["render_comparison"]


def render_comparison(
    left: Schedule,
    right: Schedule,
    *,
    labels: tuple[str, str] = ("A", "B"),
    t_end: Optional[int] = None,
) -> str:
    """Render two schedules of the *same instance* one above the other.

    Raises :class:`ScheduleError` when the schedules disagree about the
    instance (comparing packings of different inputs is meaningless).
    """
    if left.instance is not right.instance and len(left.instance) != len(
        right.instance
    ):
        raise ScheduleError("comparison requires schedules of the same instance")
    horizon = max(left.makespan, right.makespan)
    t_end = horizon if t_end is None else min(t_end, horizon)
    blocks = []
    for label, schedule in ((labels[0], left), (labels[1], right)):
        blocks.append(
            f"{label}  (max flow {schedule.max_flow}, makespan "
            f"{schedule.makespan}):"
        )
        blocks.append(render_gantt(schedule, t_end=t_end))
        blocks.append("")
    rows = [
        f"  job {i:<3d} {job.label or '':<12s} "
        f"{labels[0]}={left.job_flow(i):<5d} {labels[1]}={right.job_flow(i):<5d} "
        f"delta={right.job_flow(i) - left.job_flow(i):+d}"
        for i, job in enumerate(left.instance)
    ]
    blocks.append("per-job flows:")
    blocks.extend(rows)
    return "\n".join(blocks)
