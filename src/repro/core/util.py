"""Low-level array utilities shared across the core data structures.

These helpers implement the handful of vectorized primitives that the
schedulers and DAG algorithms are built on, following the scientific-Python
optimization guidance: keep construction code simple, and vectorize the bulk
operations (multi-range gathers, segmented reductions) that sit on hot paths.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any, TypeAlias

import numpy as np
import numpy.typing as npt

__all__ = [
    "Array",
    "as_int_array",
    "build_csr",
    "csr_gather",
    "csr_counts",
    "segment_max",
    "repeat_by_counts",
    "check_nonnegative_int",
]

_INT = np.int64

#: The repo-wide ndarray annotation. The element type is deliberately left
#: open: every hot-path helper normalizes to int64 via :func:`as_int_array`,
#: and pinning dtypes in the type system buys churn, not safety.
Array: TypeAlias = npt.NDArray[Any]


def as_int_array(values: Iterable[int] | Array) -> Array:
    """Return ``values`` as a contiguous ``int64`` ndarray (no copy if
    already one)."""
    arr = np.ascontiguousarray(values, dtype=_INT)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


def check_nonnegative_int(value: int | np.integer[Any], name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def build_csr(
    n: int, sources: Array, targets: Array
) -> tuple[Array, Array]:
    """Build a CSR adjacency (indptr, indices) for ``n`` nodes from parallel
    ``sources``/``targets`` edge arrays.

    The returned ``indices`` rows are sorted by target id within each source,
    which makes the representation canonical (two DAGs with the same edge set
    produce identical arrays).
    """
    sources = as_int_array(sources)
    targets = as_int_array(targets)
    if sources.shape != targets.shape:
        raise ValueError("sources and targets must have the same length")
    if sources.size:
        if sources.min() < 0 or sources.max() >= n:
            raise ValueError("edge source out of range")
        if targets.min() < 0 or targets.max() >= n:
            raise ValueError("edge target out of range")
    counts = np.bincount(sources, minlength=n).astype(_INT)
    indptr = np.zeros(n + 1, dtype=_INT)
    np.cumsum(counts, out=indptr[1:])
    # Sort edges by (source, target) so each CSR row is sorted.
    order = np.lexsort((targets, sources))
    indices = targets[order]
    indptr.setflags(write=False)
    indices.setflags(write=False)
    return indptr, indices


def csr_counts(indptr: Array, nodes: Array) -> Array:
    """Per-node row lengths for the given ``nodes``."""
    return indptr[nodes + 1] - indptr[nodes]


def csr_gather(
    indptr: Array, indices: Array, nodes: Array
) -> tuple[Array, Array]:
    """Gather the concatenated CSR rows of ``nodes``.

    Returns ``(values, counts)`` where ``values`` is the concatenation of
    ``indices[indptr[u]:indptr[u+1]]`` for each ``u`` in ``nodes`` (in order)
    and ``counts[i]`` is the length contributed by ``nodes[i]``.

    This is the vectorized multi-range gather used by the level-synchronous
    graph algorithms; it avoids a Python-level loop over frontier nodes.
    """
    nodes = as_int_array(nodes)
    counts = csr_counts(indptr, nodes)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=_INT), counts
    # For output slot k, find which node it belongs to and its offset within
    # that node's row, then index straight into `indices`.
    ends = np.cumsum(counts)
    starts = ends - counts
    node_for_slot = np.repeat(np.arange(nodes.size, dtype=_INT), counts)
    within = np.arange(total, dtype=_INT) - starts[node_for_slot]
    values = indices[indptr[nodes][node_for_slot] + within]
    return values, counts


def repeat_by_counts(values: Array, counts: Array) -> Array:
    """``np.repeat`` wrapper with dtype normalization (hot-path helper)."""
    return np.repeat(as_int_array(values), as_int_array(counts))


def segment_max(values: Array, counts: Array, empty: int = 0) -> Array:
    """Max of each consecutive segment of ``values`` whose lengths are given
    by ``counts``; empty segments yield ``empty``.

    Used to compute ``height[u] = 1 + max(height[children(u)])`` one
    depth-level at a time without a per-node Python loop.
    """
    counts = as_int_array(counts)
    out = np.full(counts.size, empty, dtype=_INT)
    nonempty = counts > 0
    if not nonempty.any():
        return out
    ends = np.cumsum(counts)
    starts = (ends - counts)[nonempty]
    out[nonempty] = np.maximum.reduceat(values, starts)
    return out


def stable_unique(values: Sequence[int] | Array) -> Array:
    """Unique values preserving first-occurrence order."""
    arr = as_int_array(values)
    _, first = np.unique(arr, return_index=True)
    return arr[np.sort(first)]
