"""Optional ``@njit(cache=True)`` translations of the engine kernels.

Loop translations of the :mod:`.numpy_backend` reference: same inputs,
same outputs, bit-for-bit (pinned by the four-way backend parity suite).
The win over the reference is avoiding NumPy's per-call temporaries — the
multi-range CSR gather alone materializes six intermediate arrays per
step, where the compiled loop writes the output directly.

numba is an *optional* dependency: importing this module is always safe,
and :func:`load` raises :class:`~repro.core.kernels.BackendUnavailable`
when numba is missing (the registry then falls back to numpy with a
one-time warning). Compilation is lazy — first :func:`load` call per
process — and ``cache=True`` persists the compiled machine code next to
this file, so subsequent processes (pool workers included) pay a disk
load, not a recompile.

Kernel bodies are the ``k_``-prefixed module functions below; lint rule
RPR008 holds them to the nopython discipline (``KERNEL_STYLE``): no
object-dtype arrays, no Python container types numba cannot compile.

``batch_select_order`` (a lexsort) has no nopython translation and is
deliberately absent: the registry fills it from the numpy reference
(per-kernel fallback — see the fallback matrix in
``docs/engine-internals.md``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["KERNEL_STYLE", "load"]

#: Kernels in this module are nopython loop bodies; RPR008 flags
#: constructs numba's nopython mode rejects (object dtype, dict/set, ...).
KERNEL_STYLE = "nopython"

#: Compiled kernels, built once per process by :func:`load`.
_COMPILED: dict[str, Callable] = {}


def k_csr_children(indptr, indices, nodes):  # pragma: no cover - jitted
    total = 0
    for i in range(nodes.shape[0]):
        u = nodes[i]
        total += indptr[u + 1] - indptr[u]
    out = np.empty(total, np.int64)
    pos = 0
    for i in range(nodes.shape[0]):
        u = nodes[i]
        for e in range(indptr[u], indptr[u + 1]):
            out[pos] = indices[e]
            pos += 1
    return out


def k_commit_frontier(
    indptr, indices, completion, gids, finish
):  # pragma: no cover - jitted
    total = 0
    for i in range(gids.shape[0]):
        u = gids[i]
        completion[u] = finish
        total += indptr[u + 1] - indptr[u]
    out = np.empty(total, np.int64)
    pos = 0
    for i in range(gids.shape[0]):
        u = gids[i]
        for e in range(indptr[u], indptr[u + 1]):
            out[pos] = indices[e]
            pos += 1
    return out


def k_chain_min_dt(steps_to_end, gids, bound):  # pragma: no cover - jitted
    best = bound
    for i in range(gids.shape[0]):
        r = steps_to_end[gids[i]]
        if r < best:
            best = r
            if best <= 1:
                # Chain-run remainders are >= 1, so 1 is the global floor.
                break
    return best


def k_macro_fill(
    run_nodes, node_index, steps_to_end, completion, gids, t, dt
):  # pragma: no cover - jitted
    c = gids.shape[0]
    n_cont = 0
    for i in range(c):
        if steps_to_end[gids[i]] > dt:
            n_cont += 1
    nxt = np.empty(n_cont, np.int64)
    term = np.empty(c - n_cont, np.int64)
    a = 0
    b = 0
    base = t + 1
    for i in range(c):
        g = gids[i]
        s = node_index[g]
        for d in range(dt):
            completion[run_nodes[s + d]] = base + d
        if steps_to_end[g] > dt:
            nxt[a] = run_nodes[s + dt]
            a += 1
        else:
            term[b] = run_nodes[s + dt - 1]
            b += 1
    return nxt, term


def k_merge_sorted(a, b):  # pragma: no cover - jitted
    na = a.shape[0]
    nb = b.shape[0]
    if nb == 0:
        return a
    if na == 0:
        return b
    out = np.empty(na + nb, np.int64)
    i = 0
    j = 0
    pos = 0
    while i < na and j < nb:
        if a[i] <= b[j]:
            out[pos] = a[i]
            i += 1
        else:
            out[pos] = b[j]
            j += 1
        pos += 1
    while i < na:
        out[pos] = a[i]
        i += 1
        pos += 1
    while j < nb:
        out[pos] = b[j]
        j += 1
        pos += 1
    return out


def k_batch_take(fkeys, seg, k, total_k):  # pragma: no cover - jitted
    taken = np.empty(total_k, np.int64)
    remaining = np.empty(fkeys.shape[0] - total_k, np.int64)
    ti = 0
    ri = 0
    for b in range(k.shape[0]):
        lo = seg[b]
        hi = seg[b + 1]
        kk = k[b]
        for i in range(lo, lo + kk):
            taken[ti] = fkeys[i]
            ti += 1
        for i in range(lo + kk, hi):
            remaining[ri] = fkeys[i]
            ri += 1
    return taken, remaining


def k_arena_gather(fbuf, starts, k, total_k):  # pragma: no cover - jitted
    taken = np.empty(total_k, np.int64)
    pos = 0
    for i in range(starts.shape[0]):
        s = starts[i]
        for j in range(k[i]):
            taken[pos] = fbuf[s + j]
            pos += 1
    return taken


def k_arena_commit(
    fbuf, offsets, sizes, slots, seg, new_keys
):  # pragma: no cover - jitted
    for i in range(slots.shape[0]):
        s = slots[i]
        off = offsets[s]
        size = sizes[s]
        add = np.sort(new_keys[seg[i] : seg[i + 1]])
        cnt = add.shape[0]
        # Backward in-place merge: the resident slice grows by cnt
        # without a scratch buffer (slot capacity covers it).
        w = size + cnt - 1
        a = size - 1
        b = cnt - 1
        while b >= 0:
            if a >= 0 and fbuf[off + a] > add[b]:
                fbuf[off + w] = fbuf[off + a]
                a -= 1
            else:
                fbuf[off + w] = add[b]
                b -= 1
            w -= 1


#: Kernel name -> python loop body to compile. ``batch_select_order`` is
#: intentionally missing (numpy fallback).
_KERNEL_BODIES: dict[str, Callable] = {
    "csr_children": k_csr_children,
    "commit_frontier": k_commit_frontier,
    "chain_min_dt": k_chain_min_dt,
    "macro_fill": k_macro_fill,
    "merge_sorted": k_merge_sorted,
    "batch_take": k_batch_take,
    "arena_gather": k_arena_gather,
    "arena_commit": k_arena_commit,
}


def load() -> dict[str, Callable]:
    """Compile (or fetch the cached) nopython kernels.

    Raises
    ------
    BackendUnavailable
        When numba cannot be imported in this environment.
    """
    if _COMPILED:
        return dict(_COMPILED)
    from . import BackendUnavailable

    try:
        from numba import njit
    except ImportError as exc:
        raise BackendUnavailable(f"numba is not installed: {exc}") from exc
    for kname, body in _KERNEL_BODIES.items():
        _COMPILED[kname] = njit(cache=True)(body)
    return dict(_COMPILED)
