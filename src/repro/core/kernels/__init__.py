"""Pluggable compiled backends for the engine's hot inner kernels.

The simulation engine (:mod:`repro.core.simulator`) spends its time in a
handful of array kernels: the per-step frontier advance (completion commit
+ CSR child gather), the chain-run Δt scan, the macro-step block fill, the
sorted-frontier merge, and the batched engine's ragged prefix gather and
selection-rank permutation. This package extracts those kernels behind a
small registry so they can be swapped wholesale:

* the ``numpy`` backend (:mod:`.numpy_backend`) is a *pure refactor* of the
  engine's original array passes — bit-identical by construction, and the
  reference every other backend is property-tested against;
* the ``numba`` backend (:mod:`.numba_backend`) compiles loop translations
  of the same kernels with ``@njit(cache=True)``. It is entirely optional:
  when numba is not importable, requesting it falls back to ``numpy`` with
  a one-time :class:`RuntimeWarning`; kernels that have no nopython
  translation (``batch_select_order`` — a lexsort) silently use the numpy
  implementation per kernel.

Selection is by the ``REPRO_BACKEND`` environment variable (``numpy`` |
``numba``; the ``repro`` CLI's ``--backend`` flag sets it), resolved at
each :func:`get_backend` call so workers spawned with the variable in
their environment inherit the choice. Backend identity is recorded per run
in :attr:`~repro.core.simulator.EngineStats.backend` together with
per-kernel dispatch counts, so ``--engine-stats`` shows exactly which
backend served a run.

Adding a backend: provide a module exposing one callable per name in
:data:`KERNEL_NAMES` (signatures documented in :mod:`.numpy_backend`),
declare ``KERNEL_STYLE`` (``"vectorized"`` or ``"nopython"`` — lint rule
RPR008 enforces the matching discipline), register it in
:func:`get_backend`, and extend the parity suite
(``tests/properties/test_backend_parity.py``) with the new name.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from ..exceptions import ConfigurationError

__all__ = [
    "KERNEL_NAMES",
    "KernelBackend",
    "BackendUnavailable",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
    "warmup",
]

#: Environment variable naming the active backend (``numpy`` is the default).
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Every kernel a backend must provide (possibly by borrowing the numpy
#: implementation; :attr:`KernelBackend.supported` records which ones are
#: native).
KERNEL_NAMES = (
    "csr_children",
    "commit_frontier",
    "chain_min_dt",
    "macro_fill",
    "merge_sorted",
    "batch_take",
    "batch_select_order",
    "arena_gather",
    "arena_commit",
)


class BackendUnavailable(RuntimeError):
    """A requested backend cannot be loaded (missing optional dependency)."""


@dataclass(frozen=True)
class KernelBackend:
    """One resolved set of engine kernels.

    ``name`` is the backend actually serving calls; ``requested`` is what
    the caller asked for (they differ only when a request fell back).
    ``supported`` lists the kernels the backend implements natively — the
    rest are borrowed from the numpy reference per kernel.
    """

    name: str
    requested: str
    supported: frozenset[str]
    csr_children: Callable
    commit_frontier: Callable
    chain_min_dt: Callable
    macro_fill: Callable
    merge_sorted: Callable
    batch_take: Callable
    batch_select_order: Callable
    arena_gather: Callable
    arena_commit: Callable


_CACHE: dict[str, KernelBackend] = {}
_WARNED: set[str] = set()


def _numpy_kernels() -> dict[str, Callable]:
    from . import numpy_backend

    return {kname: getattr(numpy_backend, kname) for kname in KERNEL_NAMES}


def _build_numpy() -> KernelBackend:
    return KernelBackend(
        name="numpy",
        requested="numpy",
        supported=frozenset(KERNEL_NAMES),
        **_numpy_kernels(),
    )


def _build_numba() -> KernelBackend:
    """Load and compile the numba backend.

    Raises :class:`BackendUnavailable` when numba cannot be imported;
    kernels without a nopython translation are filled in from the numpy
    reference (per-kernel fallback).
    """
    from . import numba_backend

    compiled = numba_backend.load()  # raises BackendUnavailable
    kernels = _numpy_kernels()
    kernels.update(compiled)
    return KernelBackend(
        name="numba",
        requested="numba",
        supported=frozenset(compiled),
        **kernels,
    )


def resolve_backend_name() -> str:
    """The backend name currently requested via ``REPRO_BACKEND``."""
    return os.environ.get(BACKEND_ENV_VAR, "").strip().lower() or "numpy"


def available_backends() -> tuple[str, ...]:
    """Backends loadable in this environment (``numpy`` always is)."""
    names = ["numpy"]
    try:
        from . import numba_backend

        numba_backend.load()
    except BackendUnavailable:  # repro-lint: disable=RPR005 (availability probe: absence of the optional dependency is the answer, not a failure)
        pass
    else:
        names.append("numba")
    return tuple(names)


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a kernel backend by name (default: ``REPRO_BACKEND``).

    Unknown names raise :class:`~repro.core.exceptions.ConfigurationError`
    — an explicit misconfiguration should be loud. A known-but-unavailable
    backend (``numba`` without numba installed) degrades gracefully: the
    numpy reference is returned and a single :class:`RuntimeWarning` is
    emitted per process.
    """
    requested = name if name is not None else resolve_backend_name()
    cached = _CACHE.get(requested)
    if cached is not None:
        return cached
    if requested == "numpy":
        backend = _build_numpy()
    elif requested == "numba":
        try:
            backend = _build_numba()
        except BackendUnavailable as exc:
            if requested not in _WARNED:
                _WARNED.add(requested)
                warnings.warn(
                    f"{BACKEND_ENV_VAR}={requested} requested but "
                    f"unavailable ({exc}); falling back to the numpy "
                    "backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
            numpy_backend = get_backend("numpy")
            backend = KernelBackend(
                name="numpy",
                requested=requested,
                supported=numpy_backend.supported,
                **{
                    kname: getattr(numpy_backend, kname)
                    for kname in KERNEL_NAMES
                },
            )
    else:
        raise ConfigurationError(
            f"unknown kernel backend {requested!r} "
            f"(set {BACKEND_ENV_VAR} to one of: numpy, numba)"
        )
    _CACHE[requested] = backend
    return backend


def warmup(backend: KernelBackend) -> None:
    """Exercise every kernel once on tiny inputs.

    For the numba backend this triggers (or loads from the on-disk
    ``cache=True`` store) every JIT compilation up front, so the first
    real simulation does not pay compile latency mid-run.
    """
    import numpy as np

    indptr = np.array([0, 1, 1], dtype=np.int64)
    indices = np.array([1], dtype=np.int64)
    nodes = np.array([0], dtype=np.int64)
    completion = np.zeros(2, dtype=np.int64)
    backend.csr_children(indptr, indices, nodes)
    backend.commit_frontier(indptr, indices, completion, nodes, 1)
    steps_to_end = np.array([2, 1], dtype=np.int64)
    backend.chain_min_dt(steps_to_end, nodes, 5)
    run_nodes = np.array([0, 1], dtype=np.int64)
    node_index = np.array([0, 1], dtype=np.int64)
    backend.macro_fill(
        run_nodes, node_index, steps_to_end, np.zeros(2, dtype=np.int64),
        nodes, 0, 1,
    )
    backend.merge_sorted(
        np.array([1, 3], dtype=np.int64), np.array([2], dtype=np.int64)
    )
    backend.batch_take(
        np.array([0, 1], dtype=np.int64),
        np.array([0, 2], dtype=np.int64),
        np.array([1], dtype=np.int64),
        1,
    )
    backend.batch_select_order(
        np.zeros(2, dtype=np.int64), np.array([0, 1], dtype=np.int64)
    )
    fbuf = np.array([1, 3, 0, 0], dtype=np.int64)
    backend.arena_gather(
        fbuf, np.array([0], dtype=np.int64), np.array([1], dtype=np.int64), 1
    )
    backend.arena_commit(
        fbuf,
        np.array([0], dtype=np.int64),  # offsets
        np.array([2], dtype=np.int64),  # sizes
        np.array([0], dtype=np.int64),  # slots
        np.array([0, 1], dtype=np.int64),  # seg
        np.array([2], dtype=np.int64),  # new_keys
    )


def _reset_for_testing() -> None:
    """Drop cached backends and warning state (test isolation hook)."""
    _CACHE.clear()
    _WARNED.clear()
