"""The reference kernel backend: the engine's original NumPy array passes.

Every function here is a *pure extraction* of code that previously lived
inline in :mod:`repro.core.simulator` — same operations, same order, same
dtypes — so this backend is bit-identical to the pre-extraction engine by
construction. It is the ground truth the property suites compare every
other backend against, and the per-kernel fallback used for kernels a
backend does not translate.

Kernel signatures (all arrays are 1-D ``int64`` unless noted):

``csr_children(indptr, indices, nodes) -> children``
    Concatenated CSR child rows of ``nodes``, in node order (each row
    ascending — the CSR is canonical).
``commit_frontier(indptr, indices, completion, gids, finish) -> children``
    Write ``completion[gids] = finish`` then gather the children — the
    per-step frontier advance.
``chain_min_dt(steps_to_end, gids, bound) -> int``
    ``min(bound, steps_to_end[gids].min())`` — the chain-run Δt scan.
``macro_fill(run_nodes, node_index, steps_to_end, completion, gids, t, dt)
-> (nxt, term)``
    Commit the ``(len(gids), dt)`` chain block: node ``i``'s next ``dt``
    chain steps complete at ``t+1 .. t+dt``. Returns the continuation
    heads (runs longer than ``dt``, in ``gids`` order) and the run
    terminals committed in the last column (rest of ``gids``, in order).
``merge_sorted(a, b) -> merged``
    Merge two sorted arrays with disjoint values in O(len).
``batch_take(fkeys, seg, k, total_k) -> (taken, remaining)``
    Ragged prefix gather: segment ``b`` of ``fkeys`` (bounds ``seg``)
    contributes its first ``k[b]`` entries to ``taken``; ``remaining`` is
    everything else, order preserved. ``total_k == k.sum()``.
``batch_select_order(prio, job_of_node) -> (order, sel_rank)``
    The batch-global selection permutation: stable sort by
    ``(job_of_node, prio, id)`` and its inverse rank array.
``arena_gather(fbuf, starts, k, total_k) -> taken``
    Streaming-arena prefix gather: slice ``i`` of the resident frontier
    buffer (starting at ``starts[i]``) contributes its first ``k[i]``
    keys, concatenated in slice order. ``total_k == k.sum()``. Unlike
    ``batch_take`` the buffer is *mutable and resident*: the caller
    shifts the (at most one) partially-taken slice in place, so no
    ``remaining`` array is materialized.
``arena_commit(fbuf, offsets, sizes, slots, seg, new_keys) -> None``
    Streaming-arena frontier merge, in place: for each arena slot
    ``slots[i]``, merge the sorted new keys ``new_keys[seg[i]:seg[i+1]]``
    (unsorted on input; values disjoint from the resident keys) into the
    sorted resident slice ``fbuf[offsets[slots[i]] : ... + sizes[slots[i]]]``,
    growing it by the segment length. Slot capacities are guaranteed by
    the arena layout (a slot's region holds ``n`` keys).

Lint rule RPR008 holds these kernels to the vectorized discipline
(``KERNEL_STYLE``): no Python-level loops, no object-dtype arrays.
"""

from __future__ import annotations

import numpy as np

from ..util import Array, csr_gather

__all__ = [
    "KERNEL_STYLE",
    "csr_children",
    "commit_frontier",
    "chain_min_dt",
    "macro_fill",
    "merge_sorted",
    "batch_take",
    "batch_select_order",
    "arena_gather",
    "arena_commit",
]

#: Kernels in this module are whole-array passes; RPR008 flags any
#: Python-level loop that would silently de-vectorize the reference.
KERNEL_STYLE = "vectorized"

_INT = np.int64


def csr_children(indptr: Array, indices: Array, nodes: Array) -> Array:
    """Concatenated CSR child rows of ``nodes`` (counts discarded)."""
    values, _ = csr_gather(indptr, indices, nodes)
    return values


def commit_frontier(
    indptr: Array, indices: Array, completion: Array, gids: Array, finish: int
) -> Array:
    """Complete ``gids`` at ``finish`` and gather their children."""
    completion[gids] = finish
    values, _ = csr_gather(indptr, indices, gids)
    return values


def chain_min_dt(steps_to_end: Array, gids: Array, bound: int) -> int:
    """Tighten ``bound`` by the shortest chain-run remainder in ``gids``."""
    r = int(steps_to_end[gids].min())
    return r if r < bound else bound


def macro_fill(
    run_nodes: Array,
    node_index: Array,
    steps_to_end: Array,
    completion: Array,
    gids: Array,
    t: int,
    dt: int,
) -> tuple[Array, Array]:
    """Commit ``dt`` forced chain steps for every gid in one block write."""
    starts = node_index[gids]
    span_idx = np.arange(dt, dtype=_INT)
    # (c, Δt) block of chain nodes: column i holds the nodes forced at
    # step t + i; the times row broadcasts across the c committed slots.
    nodes = run_nodes[starts[:, None] + span_idx]
    completion[nodes] = t + 1 + span_idx
    rem = steps_to_end[gids]
    cont = rem > dt
    nxt = run_nodes[starts[cont] + dt]
    term = run_nodes[starts[~cont] + (dt - 1)]
    return nxt, term


def merge_sorted(a: Array, b: Array) -> Array:
    """Merge two sorted int64 arrays with disjoint values in O(len)."""
    if b.size == 0:
        return a
    if a.size == 0:
        return b
    slots = np.searchsorted(a, b) + np.arange(b.size, dtype=_INT)
    out = np.empty(a.size + b.size, dtype=a.dtype)
    out[slots] = b
    keep = np.ones(out.size, dtype=bool)
    keep[slots] = False
    out[keep] = a
    return out


def batch_take(
    fkeys: Array, seg: Array, k: Array, total_k: int
) -> tuple[Array, Array]:
    """Take the first ``k[b]`` keys of each frontier segment.

    Ragged prefix gather: output slot ``i`` maps to its segment's start
    plus the slot's offset within that segment's quota.
    """
    csum = np.cumsum(k)
    idx = (
        np.repeat(seg[:-1], k)
        + np.arange(total_k, dtype=_INT)
        - np.repeat(csum - k, k)
    )
    taken = fkeys[idx]
    keep = np.ones(fkeys.size, dtype=bool)
    keep[idx] = False
    remaining = fkeys[keep]
    return taken, remaining


def _ragged_positions(starts: Array, counts: Array, total: int) -> Array:
    """Flat indices of ``counts[i]`` consecutive slots from ``starts[i]``."""
    csum = np.cumsum(counts)
    return (
        np.repeat(starts, counts)
        + np.arange(total, dtype=_INT)
        - np.repeat(csum - counts, counts)
    )


def arena_gather(fbuf: Array, starts: Array, k: Array, total_k: int) -> Array:
    """Take the first ``k[i]`` keys of each resident frontier slice."""
    return fbuf[_ragged_positions(starts, k, total_k)]


def arena_commit(
    fbuf: Array,
    offsets: Array,
    sizes: Array,
    slots: Array,
    seg: Array,
    new_keys: Array,
) -> None:
    """Merge per-slot key batches into the resident sorted frontiers.

    All slots merge in one pass: resident and new keys are lifted to
    composite keys ``lane * base + key`` (``lane`` = position in
    ``slots``, ``base`` > every key), merged with the disjoint-value
    sorted merge, then written back slot-contiguously. The lift keeps
    lanes separated, so one global merge is ``len(slots)`` independent
    per-slot merges.
    """
    counts = np.diff(seg)
    old = sizes[slots]
    offs = offsets[slots]
    have = fbuf[_ragged_positions(offs, old, int(old.sum()))]
    base = 1 + max(int(have.max(initial=0)), int(new_keys.max(initial=0)))
    if slots.size > (2**63 - 1) // base:
        # Composite keys would overflow int64 (needs ~1e9 slots at n=1e5
        # nodes/job — far beyond any real live window). Degrade to
        # per-slot merges rather than corrupt keys.
        for i in range(slots.size):  # repro-lint: disable=RPR008 (int64-overflow escape hatch: per-slot merge when lane*base composite keys cannot fit; unreachable at realistic live-window sizes)
            lo, hi = int(seg[i]), int(seg[i + 1])
            off, size = int(offs[i]), int(old[i])
            merged = merge_sorted(
                fbuf[off : off + size].copy(), np.sort(new_keys[lo:hi])
            )
            fbuf[off : off + merged.size] = merged
        return
    lane_old = np.repeat(np.arange(slots.size, dtype=_INT), old)
    lane_new = np.repeat(np.arange(slots.size, dtype=_INT), counts)
    merged = merge_sorted(
        lane_old * base + have, np.sort(lane_new * base + new_keys)
    )
    grown = old + counts
    fbuf[_ragged_positions(offs, grown, int(grown.sum()))] = merged % base


def batch_select_order(prio: Array, job_of_node: Array) -> tuple[Array, Array]:
    """Batch-global selection order and its inverse rank permutation.

    Instance-major because batch-global job ids are; within a job,
    (priority, id) — exactly the per-instance encoded-frontier order.
    lexsort is stable, so ties keep ascending id.
    """
    order = np.lexsort((prio, job_of_node)).astype(_INT)
    sel_rank = np.empty(order.size, dtype=_INT)
    sel_rank[order] = np.arange(order.size, dtype=_INT)
    return order, sel_rank
