"""Per-step processor availability traces (fluctuating allocations).

The paper's robustness results — most prominently Lemma 5.5 (Most-Children
replay never idles granted processors) — are stated against an *adversarially
fluctuating* allocation ``m_t``: at step ``t`` the machine grants ``m_t``
processors, with ``0 <= m_t <= m``. This module holds the data type the
simulation engine consumes; the generators that build random/adversarial
traces live in :mod:`repro.faults` (the engine must not depend on them).

A trace is an explicit prefix of per-step capacities plus a *tail* value
that applies to every step beyond the prefix. The tail must be positive:
a trace that stays at zero forever can never finish any instance, and the
engine's livelock bound needs a horizon after which progress is guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from .exceptions import ConfigurationError

__all__ = ["AvailabilityTrace", "AvailabilityLike", "as_trace"]


@dataclass(frozen=True)
class AvailabilityTrace:
    """An immutable per-step processor allocation ``m_t``.

    Attributes
    ----------
    values:
        Explicit capacities for steps ``0 .. len(values) - 1``.
    tail:
        Capacity for every step at or beyond ``len(values)`` (must be
        ``>= 1`` so every run eventually terminates).
    """

    values: tuple[int, ...]
    tail: int

    def __post_init__(self) -> None:
        if self.tail < 1:
            raise ConfigurationError(
                f"availability tail must be >= 1, got {self.tail} "
                "(a forever-zero allocation can never finish a run)"
            )
        for idx, v in enumerate(self.values):
            if v < 0:
                raise ConfigurationError(
                    f"availability trace has negative capacity {v} at step {idx}"
                )

    @property
    def horizon(self) -> int:
        """Number of steps with an explicit capacity."""
        return len(self.values)

    @property
    def max_value(self) -> int:
        """Largest capacity the trace ever grants."""
        return max(self.values, default=self.tail) if self.values else self.tail

    def capacity_at(self, t: int) -> int:
        """The allocation ``m_t`` for step ``t`` (tail beyond the prefix)."""
        if t < 0:
            raise ConfigurationError(f"step index must be >= 0, got {t}")
        return self.values[t] if t < len(self.values) else self.tail

    def prefix(self, n: int) -> list[int]:
        """The first ``n`` capacities as a plain list (tail-extended)."""
        if n <= len(self.values):
            return list(self.values[:n])
        return list(self.values) + [self.tail] * (n - len(self.values))

    def clamped(self, m: int) -> "AvailabilityTrace":
        """A copy with every capacity (and the tail) clamped to ``<= m``."""
        if m < 1:
            raise ConfigurationError("m must be positive")
        return AvailabilityTrace(
            tuple(min(v, m) for v in self.values), min(self.tail, m)
        )


AvailabilityLike = Union[AvailabilityTrace, Sequence[int]]


def as_trace(availability: AvailabilityLike, m: int) -> AvailabilityTrace:
    """Normalize an availability spec against the machine cap ``m``.

    Accepts an :class:`AvailabilityTrace` or a plain sequence of ints (whose
    tail defaults to ``m`` — "back to full machine after the trace"). The
    result is validated: every capacity must satisfy ``0 <= m_t <= m``.
    """
    if isinstance(availability, AvailabilityTrace):
        trace = availability
    else:
        trace = AvailabilityTrace(
            tuple(int(v) for v in availability), tail=m
        )
    if trace.max_value > m:
        raise ConfigurationError(
            f"availability trace grants {trace.max_value} > m={m} processors"
        )
    if trace.tail > m:
        raise ConfigurationError(
            f"availability tail {trace.tail} exceeds m={m}"
        )
    return trace
