"""Serialization: persist DAGs, instances and schedules.

Experiments freeze adversarial instances and witness schedules; being able
to save them (and reload them in a later session, a notebook, or a bug
report) is table stakes for a release. Formats:

* **dict/JSON** — human-readable, good for small instances and fixtures;
* **npz** — compact binary for large frozen families (the m=128
  adversarial instance has 8.4M subjobs; JSON would be absurd).

Round-trips are exact: ids, releases, labels, completion times.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from .dag import DAG
from .exceptions import ScheduleError
from .instance import Instance
from .job import Job
from .schedule import Schedule
from .util import Array

__all__ = [
    "dag_to_dict",
    "dag_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_instance_json",
    "load_instance_json",
    "save_schedule_npz",
    "load_schedule_npz",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# dict / JSON
# ----------------------------------------------------------------------


def dag_to_dict(dag: DAG) -> dict[str, Any]:
    """Canonical dict form: node count + edge list."""
    return {"n": dag.n, "edges": [[int(u), int(v)] for u, v in dag.edge_list()]}


def dag_from_dict(data: dict[str, Any]) -> DAG:
    return DAG(int(data["n"]), [(int(u), int(v)) for u, v in data["edges"]])


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    return {
        "jobs": [
            {
                "release": job.release,
                "label": job.label,
                "dag": dag_to_dict(job.dag),
            }
            for job in instance
        ]
    }


def instance_from_dict(data: dict[str, Any]) -> Instance:
    return Instance(
        [
            Job(dag_from_dict(j["dag"]), int(j["release"]), j.get("label"))
            for j in data["jobs"]
        ]
    )


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    return {
        "m": schedule.m,
        "instance": instance_to_dict(schedule.instance),
        "completion": [c.tolist() for c in schedule.completion],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    instance = instance_from_dict(data["instance"])
    completion = [np.asarray(c, dtype=np.int64) for c in data["completion"]]
    return Schedule(instance, int(data["m"]), completion)


def save_instance_json(instance: Instance, path: PathLike) -> None:
    """Write ``instance`` to ``path`` as JSON (see :func:`instance_to_dict`)."""
    Path(path).write_text(json.dumps(instance_to_dict(instance)))


def load_instance_json(path: PathLike) -> Instance:
    """Read an instance previously written by :func:`save_instance_json`."""
    return instance_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# npz (binary, for large frozen families)
# ----------------------------------------------------------------------


def save_schedule_npz(schedule: Schedule, path: PathLike) -> None:
    """Binary snapshot: per-job edge arrays, releases, completions.

    Labels are stored as a JSON side-string inside the archive.
    """
    arrays: dict[str, Array] = {"m": np.array([schedule.m], dtype=np.int64)}
    meta: list[dict[str, Any]] = []
    for i, job in enumerate(schedule.instance):
        dag = job.dag
        sources = np.repeat(
            np.arange(dag.n, dtype=np.int64), np.diff(dag.child_indptr)
        )
        arrays[f"job{i}_src"] = sources
        arrays[f"job{i}_dst"] = dag.child_indices
        arrays[f"job{i}_completion"] = np.asarray(schedule.completion[i])
        meta.append({"n": dag.n, "release": job.release, "label": job.label})
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez_compressed(Path(path), **arrays)


def load_schedule_npz(path: PathLike) -> Schedule:
    """Read a schedule previously written by :func:`save_schedule_npz`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        m = int(data["m"][0])
        jobs: list[Job] = []
        completion: list[Array] = []
        for i, info in enumerate(meta):
            edges = list(
                zip(data[f"job{i}_src"].tolist(), data[f"job{i}_dst"].tolist())
            )
            dag = DAG(int(info["n"]), edges)
            jobs.append(Job(dag, int(info["release"]), info.get("label")))
            completion.append(np.asarray(data[f"job{i}_completion"], dtype=np.int64))
    try:
        return Schedule(Instance(jobs), m, completion)
    except ScheduleError as exc:  # pragma: no cover - corrupt file path
        raise ScheduleError(f"corrupt schedule archive {path}: {exc}") from exc
