"""Immutable DAG representation for dynamic-multithreaded jobs.

The paper (Section 3) models a job as a DAG whose vertices ("subjobs") are
unit-time atomic computations and whose edges are precedence constraints.
This module provides that representation plus the derived quantities the
algorithms and analyses need:

* ``depth(j)``  — number of nodes on the path from a root to ``j`` (roots
  have depth 1), Section 5 notation ``D(j)``;
* ``height(j)`` — number of nodes on the longest path from ``j`` to a leaf
  (leaves have height 1), Section 5 notation ``H(j)``;
* ``span``      — number of vertices on the longest path (``P_i``);
* ``work``      — number of vertices (``W_i``);
* ``deeper_than(d)`` — ``W(d)``, the number of subjobs with depth strictly
  greater than ``d`` (used by the Lemma 5.1 lower bound and the
  Corollary 5.4 closed form).

Nodes are integers ``0..n-1``. The adjacency is stored twice in CSR form
(children and parents) as ``int64`` numpy arrays; all derived quantities are
computed once, on first access, by level-synchronous vectorized passes.
Instances are immutable: every combinator returns a new DAG.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from functools import cached_property
from typing import Any

import numpy as np

from .exceptions import CycleError, GraphError, NotAForestError
from .util import Array, as_int_array, build_csr, csr_gather, check_nonnegative_int

__all__ = [
    "DAG",
    "ChainRuns",
    "chain",
    "antichain",
    "star",
    "complete_kary_tree",
    "spider",
    "caterpillar",
]

_INT = np.int64


@dataclass(frozen=True)
class ChainRuns:
    """Chain-run decomposition of a DAG (engine macro-stepping input).

    A *chain run* is a maximal path ``v_0 → v_1 → ... → v_{k-1}`` in which
    every non-terminal node has exactly one child and every non-head node
    has exactly one parent. Runs partition the node set: a node whose sole
    parent branches (or that has zero / multiple parents) heads a new run,
    and a node with out-degree ≠ 1 — or whose sole child has another
    parent — terminates its run. Singleton runs are legal, so every node
    belongs to exactly one run and ``steps_to_end >= 1`` everywhere.

    While a run's current node is scheduled, the next ``steps_to_end - 1``
    selections of that slot are forced one-per-step — the property the
    simulator's macro-step commit exploits (``docs/engine-internals.md``).

    Attributes
    ----------
    order:
        ``(n,)`` all nodes grouped by run, path order within each run.
    indptr:
        ``(n_runs + 1,)`` run ``r`` occupies ``order[indptr[r]:indptr[r+1]]``.
    run_id:
        ``(n,)`` run index of each node.
    index_of:
        ``(n,)`` position of each node inside ``order``.
    steps_to_end:
        ``(n,)`` nodes from ``v`` through its run's terminal, inclusive.
    """

    order: Array
    indptr: Array
    run_id: Array
    index_of: Array
    steps_to_end: Array

    @property
    def n_runs(self) -> int:
        return int(self.indptr.size - 1)


class DAG:
    """An immutable unit-work precedence DAG.

    Parameters
    ----------
    n:
        Number of nodes. Nodes are ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs meaning *u must complete before v
        starts*. Duplicate edges are rejected.

    Notes
    -----
    Construction is O(n + e log e); cycle detection runs eagerly so that a
    ``DAG`` object is always valid by the time user code holds it.
    """

    __slots__ = (
        "n",
        "child_indptr",
        "child_indices",
        "parent_indptr",
        "parent_indices",
        "__dict__",  # for cached_property storage
    )

    def __init__(
        self, n: int, edges: Iterable[tuple[int, int]] | Array = ()
    ) -> None:
        self.n = check_nonnegative_int(n, "n")
        if isinstance(edges, np.ndarray):
            # Fast path: an (e, 2) integer array avoids the Python-tuple
            # round trip (matters when freezing multi-million-node DAGs).
            arr = np.ascontiguousarray(edges, dtype=_INT)
        else:
            edge_list = list(edges)
            arr = (
                np.asarray(edge_list, dtype=_INT)
                if edge_list
                else np.empty((0, 2), dtype=_INT)
            )
        if arr.size:
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise GraphError("edges must be (u, v) pairs")
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = dst = np.empty(0, dtype=_INT)
        if src.size:
            if np.any(src == dst):
                raise CycleError("self-loop edge found")
            pair_keys = src * np.int64(self.n) + dst
            if np.unique(pair_keys).size != pair_keys.size:
                raise GraphError("duplicate edge found")
        self.child_indptr, self.child_indices = build_csr(self.n, src, dst)
        self.parent_indptr, self.parent_indices = build_csr(self.n, dst, src)
        # Eager acyclicity check: computing depth performs a full Kahn pass.
        _ = self.depth

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_parents(cls, parents: Sequence[int]) -> "DAG":
        """Build an out-forest from a parent array.

        ``parents[i]`` is the (single) parent of node ``i``, or ``-1`` for a
        root. This is the natural encoding for trees and is used by every
        tree workload generator.
        """
        parr = as_int_array(parents)
        n = parr.size
        if parr.size and (parr.max() >= n or parr.min() < -1):
            raise GraphError("parent id out of range")
        child_mask = parr >= 0
        children = np.nonzero(child_mask)[0]
        edges = np.stack([parr[child_mask], children], axis=1)
        return cls(n, edges)

    @classmethod
    def from_networkx(cls, graph: Any) -> "DAG":
        """Build from a ``networkx.DiGraph`` whose nodes are ``0..n-1``."""
        n = graph.number_of_nodes()
        if set(graph.nodes) != set(range(n)):
            raise GraphError("networkx graph nodes must be exactly 0..n-1")
        return cls(n, graph.edges())

    def to_networkx(self) -> Any:
        """Export to a ``networkx.DiGraph`` (for plotting / interop)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edge_list())
        return g

    # ------------------------------------------------------------------
    # Basic structure queries
    # ------------------------------------------------------------------

    def children(self, u: int) -> Array:
        """Direct successors of ``u`` (sorted)."""
        return self.child_indices[self.child_indptr[u] : self.child_indptr[u + 1]]

    def parents(self, u: int) -> Array:
        """Direct predecessors of ``u`` (sorted)."""
        return self.parent_indices[self.parent_indptr[u] : self.parent_indptr[u + 1]]

    def edge_list(self) -> list[tuple[int, int]]:
        """All edges as ``(u, v)`` tuples, sorted by ``(u, v)``."""
        sources = np.repeat(
            np.arange(self.n, dtype=_INT), np.diff(self.child_indptr)
        )
        return list(zip(sources.tolist(), self.child_indices.tolist()))

    @cached_property
    def indegree(self) -> Array:
        """Number of parents per node (read-only)."""
        deg = np.diff(self.parent_indptr)
        deg.setflags(write=False)
        return deg

    @cached_property
    def outdegree(self) -> Array:
        """Number of children per node (read-only)."""
        deg = np.diff(self.child_indptr)
        deg.setflags(write=False)
        return deg

    @cached_property
    def roots(self) -> Array:
        """Nodes with no predecessors, ascending."""
        r = np.nonzero(self.indegree == 0)[0]
        r.setflags(write=False)
        return r

    @cached_property
    def leaves(self) -> Array:
        """Nodes with no successors, ascending."""
        lv = np.nonzero(self.outdegree == 0)[0]
        lv.setflags(write=False)
        return lv

    @property
    def work(self) -> int:
        """Total number of subjobs (``W_i`` in the paper)."""
        return self.n

    @property
    def n_edges(self) -> int:
        return int(self.child_indices.size)

    # ------------------------------------------------------------------
    # Depth / height / span (level-synchronous vectorized passes)
    # ------------------------------------------------------------------

    @cached_property
    def depth(self) -> Array:
        """``D(j)``: nodes on the root→j path; roots have depth 1.

        Computed by a vectorized Kahn pass; raises :class:`CycleError` if the
        edge set is cyclic (this runs at construction time).
        """
        n = self.n
        depth = np.zeros(n, dtype=_INT)
        remaining = self.indegree.copy()
        frontier = np.nonzero(remaining == 0)[0]
        depth[frontier] = 1
        processed = frontier.size
        while frontier.size:
            kids, counts = csr_gather(self.child_indptr, self.child_indices, frontier)
            if kids.size == 0:
                break
            parent_depth = np.repeat(depth[frontier] + 1, counts)
            np.maximum.at(depth, kids, parent_depth)
            np.subtract.at(remaining, kids, 1)
            # A child may appear several times in `kids`; take each once.
            candidates = np.unique(kids)
            frontier = candidates[remaining[candidates] == 0]
            processed += frontier.size
        if processed != n:
            raise CycleError(f"graph has a cycle ({n - processed} nodes unreachable)")
        depth.setflags(write=False)
        return depth

    @cached_property
    def height(self) -> Array:
        """``H(j)``: nodes on the longest j→leaf path; leaves have height 1.

        A node's children always have strictly larger depth, so iterating
        depth levels from deepest to shallowest is a valid reverse
        topological order.
        """
        n = self.n
        height = np.zeros(n, dtype=_INT)
        depth = self.depth
        if n == 0:
            height.setflags(write=False)
            return height
        order = np.argsort(depth, kind="stable")[::-1]  # deepest first
        level_starts = np.nonzero(np.diff(depth[order]) != 0)[0] + 1
        blocks = np.split(order, level_starts)
        from .util import segment_max

        for block in blocks:
            kids, counts = csr_gather(self.child_indptr, self.child_indices, block)
            height[block] = 1 + segment_max(height[kids], counts, empty=0)
        height.setflags(write=False)
        return height

    @property
    def span(self) -> int:
        """``P_i``: the number of vertices on the longest path."""
        if self.n == 0:
            return 0
        return int(self.depth.max())

    @cached_property
    def max_depth(self) -> int:
        """Maximum depth of any node (equals :attr:`span`)."""
        return self.span

    @cached_property
    def depth_counts(self) -> Array:
        """``depth_counts[d]`` = number of nodes with depth exactly ``d``
        (index 0 unused)."""
        counts = np.bincount(self.depth, minlength=self.span + 1).astype(_INT)
        counts.setflags(write=False)
        return counts

    def deeper_than(self, d: int) -> int:
        """``W(d)``: the number of subjobs with depth strictly greater than
        ``d`` (Section 5 notation ``W_i(d)``)."""
        d = check_nonnegative_int(d, "d")
        if d >= self.span:
            return 0
        return int(self.depth_counts[d + 1 :].sum())

    @cached_property
    def deeper_than_profile(self) -> Array:
        """Vector ``[W(0), W(1), ..., W(span)]`` (``W(span) == 0``)."""
        suffix = np.concatenate(
            [np.cumsum(self.depth_counts[::-1])[::-1][1:], np.zeros(1, dtype=_INT)]
        )
        suffix.setflags(write=False)
        return suffix

    @cached_property
    def topological_order(self) -> Array:
        """Any topological order (by nondecreasing depth, ties by id)."""
        order = np.lexsort((np.arange(self.n, dtype=_INT), self.depth))
        order.setflags(write=False)
        return order

    # ------------------------------------------------------------------
    # Shape predicates
    # ------------------------------------------------------------------

    @cached_property
    def is_out_forest(self) -> bool:
        """True iff every node has at most one parent."""
        return bool(np.all(self.indegree <= 1))

    @cached_property
    def is_out_tree(self) -> bool:
        """True iff the DAG is an out-forest with exactly one root (and is
        therefore connected)."""
        return self.is_out_forest and self.roots.size == 1 and self.n >= 1

    @cached_property
    def is_chain(self) -> bool:
        """True iff the DAG is a single directed path (sequential job)."""
        if self.n <= 1:
            return True
        return (
            self.is_out_tree
            and bool(np.all(self.outdegree <= 1))
        )

    @cached_property
    def chain_runs(self) -> ChainRuns:
        """The :class:`ChainRuns` decomposition (computed once, cached).

        Vectorized: chain links are one mask over the parent CSR, run heads
        resolve by pointer doubling (O(n log n) work, O(log n) passes), and
        in-run positions fall out of :attr:`depth` — a chain child is
        always exactly one level below its chain parent.
        """
        n = self.n
        # v's chain parent: its sole parent p, provided p has exactly one
        # child (then the edge p→v can never be scheduled other than
        # back-to-back under a forced frontier).
        link = np.full(n, -1, dtype=_INT)
        single = np.nonzero(self.indegree == 1)[0]
        if single.size:
            par = self.parent_indices[self.parent_indptr[single]]
            chained = self.outdegree[par] == 1
            link[single[chained]] = par[chained]
        head = np.where(link >= 0, link, np.arange(n, dtype=_INT))
        while True:
            nxt = head[head]
            if np.array_equal(nxt, head):
                break
            head = nxt
        heads, run_id = np.unique(head, return_inverse=True)
        run_id = run_id.astype(_INT, copy=False)
        indptr = np.zeros(heads.size + 1, dtype=_INT)
        np.cumsum(np.bincount(run_id, minlength=heads.size), out=indptr[1:])
        pos = self.depth - self.depth[head]
        index_of = indptr[run_id] + pos
        order = np.empty(n, dtype=_INT)
        order[index_of] = np.arange(n, dtype=_INT)
        steps_to_end = indptr[run_id + 1] - index_of
        for arr in (order, indptr, run_id, index_of, steps_to_end):
            arr.setflags(write=False)
        return ChainRuns(
            order=order,
            indptr=indptr,
            run_id=run_id,
            index_of=index_of,
            steps_to_end=steps_to_end,
        )

    def require_out_forest(self) -> None:
        """Raise :class:`NotAForestError` unless this is an out-forest."""
        if not self.is_out_forest:
            bad = int(np.nonzero(self.indegree > 1)[0][0])
            raise NotAForestError(
                f"node {bad} has {int(self.indegree[bad])} parents; out-forests "
                "require at most one"
            )

    def parent_array(self) -> Array:
        """Out-forest encoding: ``parent[i]`` or ``-1`` for roots.

        Raises :class:`NotAForestError` on general DAGs.
        """
        self.require_out_forest()
        parents = np.full(self.n, -1, dtype=_INT)
        has_parent = self.indegree == 1
        parents[has_parent] = self.parent_indices[
            self.parent_indptr[np.nonzero(has_parent)[0]]
        ]
        parents.setflags(write=False)
        return parents

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    @staticmethod
    def disjoint_union(dags: Sequence["DAG"]) -> tuple["DAG", Array]:
        """Disjoint union of ``dags``.

        Returns ``(union, offsets)`` where the nodes of ``dags[i]`` appear in
        the union as ``offsets[i] + local_id``. ``offsets`` has one extra
        entry equal to the union's node count, so
        ``offsets[i]:offsets[i+1]`` slices out component ``i``.
        """
        sizes = np.array([d.n for d in dags], dtype=_INT)
        offsets = np.zeros(len(dags) + 1, dtype=_INT)
        np.cumsum(sizes, out=offsets[1:])
        parts: list[Array] = []
        for off, d in zip(offsets[:-1].tolist(), dags):
            if not d.child_indices.size:
                continue
            part = np.empty((d.child_indices.size, 2), dtype=_INT)
            part[:, 0] = off + np.repeat(
                np.arange(d.n, dtype=_INT), np.diff(d.child_indptr)
            )
            part[:, 1] = off + d.child_indices
            parts.append(part)
        edges = (
            np.concatenate(parts) if parts else np.empty((0, 2), dtype=_INT)
        )
        return DAG(int(offsets[-1]), edges), offsets

    def series(self, other: "DAG") -> "DAG":
        """Series composition: every leaf of ``self`` precedes every root of
        ``other`` (used by the series-parallel workload builder)."""
        union, offsets = DAG.disjoint_union([self, other])
        off = int(offsets[1])
        extra = [
            (int(leaf), off + int(root))
            for leaf in self.leaves
            for root in other.roots
        ]
        return DAG(union.n, union.edge_list() + extra)

    def parallel(self, other: "DAG") -> "DAG":
        """Parallel composition: plain disjoint union."""
        union, _ = DAG.disjoint_union([self, other])
        return union

    def transitive_reduction(self) -> "DAG":
        """The minimal DAG with the same reachability (unique for DAGs).

        Redundant edges — those implied by a longer path — are removed.
        Precedence-equivalent: any feasible schedule for the reduction is
        feasible for the original and vice versa. Out-forests are already
        reduced (each node has a single parent). O(n·e) worst case; meant
        for analysis/visualization, not hot paths.
        """
        if self.is_out_forest:
            return self
        keep: list[tuple[int, int]] = []
        for u in range(self.n):
            kids = self.children(u)
            if kids.size <= 1:
                keep.extend((u, int(v)) for v in kids)
                continue
            kid_set = set(int(v) for v in kids)
            # v is redundant if reachable from another child of u.
            redundant: set[int] = set()
            for w in kids:
                reach = self.descendants(int(w))
                redundant.update(kid_set.intersection(reach.tolist()))
            keep.extend((u, v) for v in kid_set - redundant)
        return DAG(self.n, keep)

    def induced_subgraph(
        self, keep: Sequence[int] | Array
    ) -> tuple["DAG", Array]:
        """Subgraph induced on ``keep`` (edges with both endpoints kept).

        Returns ``(sub, original_ids)`` where node ``k`` of ``sub``
        corresponds to ``original_ids[k]`` of this DAG. The main use is the
        *remainder* of a partially executed job: if the removed nodes are
        downward-closed under "executed" (no kept node precedes a removed
        one), the remainder of an out-forest is again an out-forest whose
        new roots are exactly the subjobs whose parents have executed.
        """
        original_ids = np.unique(as_int_array(keep))
        if original_ids.size and (
            original_ids.min() < 0 or original_ids.max() >= self.n
        ):
            raise GraphError("induced_subgraph: node id out of range")
        new_id = np.full(self.n, -1, dtype=_INT)
        new_id[original_ids] = np.arange(original_ids.size, dtype=_INT)
        edges: list[tuple[int, int]] = []
        for u, v in self.edge_list():
            if new_id[u] >= 0 and new_id[v] >= 0:
                edges.append((int(new_id[u]), int(new_id[v])))
        return DAG(int(original_ids.size), edges), original_ids

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def descendants(self, u: int) -> Array:
        """All nodes reachable from ``u`` (excluding ``u``), ascending."""
        seen = np.zeros(self.n, dtype=bool)
        frontier = self.children(u)
        while frontier.size:
            fresh = frontier[~seen[frontier]]
            seen[fresh] = True
            frontier, _ = csr_gather(self.child_indptr, self.child_indices, fresh)
            frontier = np.unique(frontier)
        return np.nonzero(seen)[0]

    def ancestors(self, u: int) -> Array:
        """All nodes that reach ``u`` (excluding ``u``), ascending."""
        seen = np.zeros(self.n, dtype=bool)
        frontier = self.parents(u)
        while frontier.size:
            fresh = frontier[~seen[frontier]]
            seen[fresh] = True
            frontier, _ = csr_gather(self.parent_indptr, self.parent_indices, fresh)
            frontier = np.unique(frontier)
        return np.nonzero(seen)[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAG):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.child_indptr, other.child_indptr)
            and np.array_equal(self.child_indices, other.child_indices)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.child_indices.tobytes(), self.child_indptr.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "out-tree" if self.is_out_tree else (
            "out-forest" if self.is_out_forest else "dag"
        )
        return (
            f"DAG(n={self.n}, edges={self.n_edges}, span={self.span}, kind={kind})"
        )


# ----------------------------------------------------------------------
# Canonical small shapes (deterministic builders)
# ----------------------------------------------------------------------


def chain(n: int) -> DAG:
    """A sequential job: path ``0 → 1 → ... → n-1``."""
    check_nonnegative_int(n, "n")
    return DAG(n, ((i, i + 1) for i in range(n - 1)))


def antichain(n: int) -> DAG:
    """A fully parallel job: ``n`` independent unit subjobs."""
    check_nonnegative_int(n, "n")
    return DAG(n, ())


def star(n_leaves: int) -> DAG:
    """A root (node 0) with ``n_leaves`` independent children."""
    check_nonnegative_int(n_leaves, "n_leaves")
    return DAG(n_leaves + 1, ((0, i) for i in range(1, n_leaves + 1)))


def complete_kary_tree(branching: int, levels: int) -> DAG:
    """Complete ``branching``-ary out-tree with ``levels`` levels.

    ``levels=1`` is a single node; each internal node has exactly
    ``branching`` children. Node ids follow BFS order (root = 0).
    """
    if branching < 1:
        raise ValueError("branching must be >= 1")
    check_nonnegative_int(levels, "levels")
    if levels == 0:
        return DAG(0)
    sizes = [branching**i for i in range(levels)]
    n = sum(sizes)
    parents = np.full(n, -1, dtype=_INT)
    ids = np.arange(1, n, dtype=_INT)
    parents[1:] = (ids - 1) // branching
    return DAG.from_parents(parents)


def spider(n_legs: int, leg_length: int) -> DAG:
    """A root with ``n_legs`` chains of ``leg_length`` nodes hanging off it.

    This is the canonical "one long sequential part plus parallel slack"
    shape when ``leg_length`` varies; with equal legs it stresses tie-breaks.
    """
    check_nonnegative_int(n_legs, "n_legs")
    check_nonnegative_int(leg_length, "leg_length")
    parents = [-1]
    for leg in range(n_legs):
        base = 1 + leg * leg_length
        for k in range(leg_length):
            parents.append(0 if k == 0 else base + k - 1)
    return DAG.from_parents(parents)


def caterpillar(spine: int, legs_per_node: int) -> DAG:
    """A chain of length ``spine`` where every spine node additionally has
    ``legs_per_node`` leaf children."""
    check_nonnegative_int(spine, "spine")
    check_nonnegative_int(legs_per_node, "legs_per_node")
    parents: list[int] = []
    spine_ids: list[int] = []
    prev = -1
    for _ in range(spine):
        parents.append(prev)
        prev = len(parents) - 1
        spine_ids.append(prev)
        for _ in range(legs_per_node):
            parents.append(prev)
    return DAG.from_parents(parents)
