"""Execution tracing: per-step and per-job metrics from a live simulation.

:class:`MetricsCollector` plugs into :func:`repro.core.simulate` as an
observer and records what post-hoc schedule inspection cannot see — the
*online* state: how many subjobs were ready at each step (the scheduler's
instantaneous parallelism), how many jobs were alive, how much work was
backlogged. Experiment tables use it for utilization and backlog columns;
it is also the honest way to measure "how far behind OPT the scheduler's
outstanding work is", the quantity the paper's Section 1 discussion and
Section 6 induction revolve around.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .simulator import EngineState, Selection, SimulationObserver
from .util import Array

__all__ = ["MetricsCollector", "TraceSummary"]


@dataclass(frozen=True)
class TraceSummary:
    """Aggregated metrics of one simulation run."""

    n_steps: int
    busy_processor_steps: int
    idle_processor_steps: int
    utilization: float  # busy / (busy + idle) over the active window
    max_ready: int  # peak instantaneous parallelism offered
    mean_ready: float
    max_alive_jobs: int
    max_backlog: int  # peak unfinished work while any job was alive
    first_step: int
    last_step: int


@dataclass
class MetricsCollector(SimulationObserver):
    """Records per-step online metrics during a simulation.

    Attributes (populated as the run progresses; numpy-friendly lists):

    * ``times`` — the time stamp ``t`` of each observed step;
    * ``scheduled`` — subjobs executed during ``(t, t+1]``;
    * ``ready_before`` — ready subjobs *remaining* after the selection
      (what the scheduler left on the table);
    * ``alive_jobs`` — released-but-unfinished jobs after the step;
    * ``backlog`` — total unfinished subjobs after the step.
    """

    times: list[int] = field(default_factory=list)
    scheduled: list[int] = field(default_factory=list)
    ready_after: list[int] = field(default_factory=list)
    alive_jobs: list[int] = field(default_factory=list)
    backlog: list[int] = field(default_factory=list)
    m: int = 0

    def on_step(self, t: int, selection: Selection, state: EngineState) -> None:
        self.m = state.m
        self.times.append(t)
        self.scheduled.append(len(selection))
        self.ready_after.append(state.ready_count())
        # The engine updates state before notifying; a job was alive *at*
        # this step if it still has work or just executed its last subjob.
        touched = {job_id for job_id, _ in selection}
        alive = sum(
            1
            for i in range(len(state.instance))
            if state.released[i]
            and (state.unfinished_counts[i] > 0 or i in touched)
        )
        self.alive_jobs.append(alive)
        self.backlog.append(state.total_unfinished)

    # ------------------------------------------------------------------

    def utilization_profile(self) -> Array:
        """Fraction of processors busy at each observed step."""
        if not self.times:
            return np.empty(0, dtype=float)
        return np.asarray(self.scheduled, dtype=float) / float(self.m)

    def summary(self) -> TraceSummary:
        """Aggregate the run (raises if no steps were observed)."""
        if not self.times:
            raise ValueError("no steps observed — pass the collector to simulate()")
        scheduled = np.asarray(self.scheduled, dtype=np.int64)
        ready_after = np.asarray(self.ready_after, dtype=np.int64)
        offered = scheduled + ready_after  # ready at selection time
        busy = int(scheduled.sum())
        idle = int((self.m - scheduled).sum())
        return TraceSummary(
            n_steps=len(self.times),
            busy_processor_steps=busy,
            idle_processor_steps=idle,
            utilization=busy / max(1, busy + idle),
            max_ready=int(offered.max()),
            mean_ready=float(offered.mean()),
            max_alive_jobs=int(max(self.alive_jobs)),
            # Backlog is recorded after the step; before-step backlog adds
            # back what the step executed.
            max_backlog=int(
                (np.asarray(self.backlog, dtype=np.int64) + scheduled).max()
            ),
            first_step=int(self.times[0]),
            last_step=int(self.times[-1]),
        )
