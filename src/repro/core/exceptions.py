"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing model errors (bad DAGs), schedule errors (infeasible
schedules) and configuration errors (bad parameters).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "NotAForestError",
    "ScheduleError",
    "InfeasibleScheduleError",
    "SimulationError",
    "SchedulerProtocolError",
    "ConfigurationError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class GraphError(ReproError):
    """A DAG construction or query was invalid."""


class CycleError(GraphError):
    """The edge set supplied to a DAG constructor contains a cycle."""


class NotAForestError(GraphError):
    """An operation requiring an out-forest received a general DAG."""


class ScheduleError(ReproError):
    """A schedule object is malformed (wrong shapes, negative times...)."""


class InfeasibleScheduleError(ScheduleError):
    """A schedule violates capacity, precedence, release or uniqueness.

    Attributes
    ----------
    violations:
        Human-readable description of each violation found (the validator
        collects all of them rather than stopping at the first).
    """

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        preview = "; ".join(self.violations[:5])
        more = "" if len(self.violations) <= 5 else f" (+{len(self.violations) - 5} more)"
        super().__init__(f"infeasible schedule: {preview}{more}")


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SchedulerProtocolError(SimulationError):
    """A scheduler returned an illegal selection (non-ready node, too many
    nodes, duplicate node, unknown job...)."""


class ConfigurationError(ReproError):
    """Invalid parameters passed to an algorithm or workload generator."""


class SolverError(ReproError):
    """The exact offline solver failed (e.g. instance too large)."""
