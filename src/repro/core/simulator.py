"""Discrete-time multiprocessor simulation engine.

The engine implements the execution model of Section 3 verbatim:

* time advances in integer steps; at each time ``t`` the scheduler selects up
  to ``m`` *ready* subjobs, which then occupy the interval ``(t, t+1]`` and
  complete at ``t + 1`` (i.e. they form ``S(t+1)``);
* a subjob is ready at ``t`` iff its job has been released (``r_i <= t``),
  all its predecessors completed by ``t``, and it has not itself completed;
* the engine notifies the scheduler of job arrivals and of subjobs becoming
  ready, so schedulers never rescan DAGs on the hot path.

The engine is authoritative about readiness: every selection is checked
against its own ready sets, so a buggy scheduler raises
:class:`SchedulerProtocolError` instead of silently producing an infeasible
schedule. (Resulting :class:`~repro.core.schedule.Schedule` objects can be
re-validated independently via ``Schedule.validate``.)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .exceptions import ConfigurationError, SchedulerProtocolError, SimulationError
from .instance import Instance
from .job import Job
from .schedule import Schedule

__all__ = ["Scheduler", "SimulationObserver", "simulate", "EngineState"]

_INT = np.int64

Selection = Sequence[tuple[int, int]]


class Scheduler(abc.ABC):
    """Protocol every scheduling policy implements.

    Lifecycle: ``reset`` once per run, then at each time step the engine
    calls ``on_job_arrival`` for jobs with ``r_i == t``, ``on_nodes_ready``
    for subjobs that became ready at ``t``, and finally ``select``.
    """

    #: Whether the policy inspects job DAGs beyond what a non-clairvoyant
    #: scheduler could observe (Section 3, "Online Setting"). Informational;
    #: experiment tables report it.
    clairvoyant: bool = False

    @abc.abstractmethod
    def reset(self, instance: Instance, m: int) -> None:
        """Prepare for a fresh simulation of ``instance`` on ``m``
        processors."""

    def on_job_arrival(self, t: int, job_id: int, job: Job) -> None:
        """Job ``job_id`` was released at time ``t``."""

    def on_nodes_ready(self, t: int, job_id: int, nodes: np.ndarray) -> None:
        """``nodes`` of job ``job_id`` became ready at time ``t``.

        For a job arriving at ``t`` this is called (after
        :meth:`on_job_arrival`) with the DAG's roots; afterwards it is called
        with subjobs whose last predecessor completed at ``t``.
        """

    @abc.abstractmethod
    def select(self, t: int, capacity: int) -> Selection:
        """Return up to ``capacity`` ready ``(job_id, node_id)`` pairs to run
        during ``(t, t+1]``."""

    @property
    def name(self) -> str:
        return type(self).__name__


class SimulationObserver:
    """Optional per-step callback hook (used by analyses that need online
    state, e.g. measuring ready-set sizes over time)."""

    def on_step(
        self, t: int, selection: Selection, state: "EngineState"
    ) -> None:  # pragma: no cover - default no-op
        pass


@dataclass
class EngineState:
    """Mutable execution state, exposed read-only to observers."""

    instance: Instance
    m: int
    remaining_indegree: list[np.ndarray] = field(default_factory=list)
    done: list[np.ndarray] = field(default_factory=list)
    ready: list[set] = field(default_factory=list)
    unfinished_counts: np.ndarray = field(default_factory=lambda: np.empty(0, _INT))
    released: np.ndarray = field(default_factory=lambda: np.empty(0, bool))

    def __post_init__(self) -> None:
        for job in self.instance:
            self.remaining_indegree.append(job.dag.indegree.copy())
            self.done.append(np.zeros(job.dag.n, dtype=bool))
            self.ready.append(set())
        self.unfinished_counts = np.array(
            [job.dag.n for job in self.instance], dtype=_INT
        )
        self.released = np.zeros(len(self.instance), dtype=bool)

    @property
    def total_unfinished(self) -> int:
        return int(self.unfinished_counts.sum())

    def ready_count(self) -> int:
        return sum(len(r) for r in self.ready)

    def unfinished_job_ids(self) -> list[int]:
        return [i for i in range(len(self.instance)) if self.unfinished_counts[i] > 0]


def _selection_error(
    selection: list[tuple[int, int]],
    index: int,
    state: EngineState,
    t: int,
    scheduler: "Scheduler",
) -> SchedulerProtocolError:
    """Diagnose why ``selection[index]`` was illegal (cold path)."""
    job_id, node = selection[index]
    if not (0 <= job_id < len(state.instance)):
        return SchedulerProtocolError(
            f"{scheduler.name} selected unknown job {job_id} at t={t}"
        )
    if (job_id, node) in selection[:index]:
        return SchedulerProtocolError(
            f"{scheduler.name} selected ({job_id},{node}) twice at t={t}"
        )
    return SchedulerProtocolError(
        f"{scheduler.name} selected non-ready subjob ({job_id},{node}) at t={t}"
    )


def simulate(
    instance: Instance,
    m: int,
    scheduler: Scheduler,
    *,
    max_steps: Optional[int] = None,
    observer: Optional[SimulationObserver] = None,
) -> Schedule:
    """Run ``scheduler`` on ``instance`` with ``m`` processors to completion.

    Parameters
    ----------
    max_steps:
        Safety bound on simulated time; defaults to a generous bound
        (``last release + total work + total span + 16``) that any
        work-conserving policy satisfies trivially. Exceeding it raises
        :class:`SimulationError` (it indicates a livelocked scheduler).
    observer:
        Optional hook receiving ``(t, selection, state)`` after each step.

    Returns
    -------
    Schedule
        A complete, feasible schedule. Feasibility is enforced online; the
        returned object additionally passes ``Schedule.validate()``.
    """
    if m <= 0:
        raise ConfigurationError("m must be positive")
    if max_steps is None:
        total_span = sum(j.span for j in instance)
        max_steps = instance.horizon_hint + total_span + 16

    state = EngineState(instance, m)
    completion = [np.zeros(job.dag.n, dtype=_INT) for job in instance]
    scheduler.reset(instance, m)

    releases = instance.releases
    arrival_order = np.argsort(releases, kind="stable")
    next_arrival_idx = 0
    n_jobs = len(instance)

    # Hot-loop locals (profiled: attribute chasing dominated the per-node
    # cost — see the HPC guides' "measure, then optimize").
    ready_sets = state.ready
    indegrees = state.remaining_indegree
    done_arrays = state.done
    unfinished = state.unfinished_counts
    child_indptrs = [job.dag.child_indptr for job in instance]
    child_indices = [job.dag.child_indices for job in instance]
    ready_total = 0
    total_left = int(unfinished.sum())

    t = 0
    while total_left:
        if t > max_steps:
            raise SimulationError(
                f"simulation exceeded max_steps={max_steps}; scheduler "
                f"{scheduler.name} appears to be livelocked "
                f"({state.total_unfinished} subjobs left)"
            )
        # Deliver arrivals with r_i == t.
        while (
            next_arrival_idx < n_jobs
            and releases[arrival_order[next_arrival_idx]] == t
        ):
            job_id = int(arrival_order[next_arrival_idx])
            job = instance[job_id]
            state.released[job_id] = True
            scheduler.on_job_arrival(t, job_id, job)
            roots = job.dag.roots
            ready_sets[job_id].update(roots.tolist())
            ready_total += roots.size
            scheduler.on_nodes_ready(t, job_id, roots)
            next_arrival_idx += 1

        # Fast-forward through genuinely empty time (no ready work at all).
        if ready_total == 0:
            if next_arrival_idx >= n_jobs:
                raise SimulationError(
                    "no ready work and no future arrivals but "
                    f"{state.total_unfinished} subjobs unfinished"
                )
            t = int(releases[arrival_order[next_arrival_idx]])
            continue

        selection = list(scheduler.select(t, m))
        if len(selection) > m:
            raise SchedulerProtocolError(
                f"{scheduler.name} selected {len(selection)} > m={m} nodes at t={t}"
            )

        finish = t + 1
        newly_ready: dict[int, list[int]] = {}
        for i, (job_id, node) in enumerate(selection):
            # Apply + validate in one pass: a legal (job, node) is in the
            # authoritative ready set exactly once.
            try:
                ready_set = ready_sets[job_id]
            except (IndexError, TypeError):
                raise _selection_error(selection, i, state, t, scheduler) from None
            if job_id < 0 or node not in ready_set:
                raise _selection_error(selection, i, state, t, scheduler)
            ready_set.discard(node)
            ready_total -= 1
            completion[job_id][node] = finish
            done_arrays[job_id][node] = True
            unfinished[job_id] -= 1
            total_left -= 1
            indptr = child_indptrs[job_id]
            indeg = indegrees[job_id]
            for child in child_indices[job_id][indptr[node] : indptr[node + 1]]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    newly_ready.setdefault(job_id, []).append(int(child))
        if observer is not None:
            observer.on_step(t, selection, state)
        t = finish
        for job_id, nodes in newly_ready.items():
            arr = np.array(sorted(nodes), dtype=_INT)
            ready_sets[job_id].update(nodes)
            ready_total += len(nodes)
            scheduler.on_nodes_ready(t, job_id, arr)

    return Schedule(instance, m, completion)
