"""Discrete-time multiprocessor simulation engine.

The engine implements the execution model of Section 3 verbatim:

* time advances in integer steps; at each time ``t`` the scheduler selects up
  to ``m`` *ready* subjobs, which then occupy the interval ``(t, t+1]`` and
  complete at ``t + 1`` (i.e. they form ``S(t+1)``);
* a subjob is ready at ``t`` iff its job has been released (``r_i <= t``),
  all its predecessors completed by ``t``, and it has not itself completed;
* the engine notifies the scheduler of job arrivals and of subjobs becoming
  ready, so schedulers never rescan DAGs on the hot path.

The engine is authoritative about readiness: every selection is checked
against its own ready state, so a buggy scheduler raises
:class:`SchedulerProtocolError` instead of silently producing an infeasible
schedule. (Resulting :class:`~repro.core.schedule.Schedule` objects can be
re-validated independently via ``Schedule.validate``.)

Vectorized frontier engine
--------------------------

Internally the engine works on the *flattened* instance graph
(:attr:`~repro.core.instance.Instance.flat_graph`): all jobs share one
global node-id space, readiness is a boolean frontier mask, and applying a
selection is a handful of batched NumPy kernels (bulk completion-time
writes, a CSR child gather, ``np.subtract.at`` indegree decrements) instead
of one Python iteration per subjob. Selections below
:data:`_SCALAR_THRESHOLD` nodes take a scalar path — for tiny steps the
fixed cost of array dispatch exceeds the loop it replaces.

On top of that sits a *steady-state fast path* for the packed-rectangle
regime of Lemmas 5.1/5.5: when a scheduler declares the FIFO frontier
contract (:attr:`Scheduler.supports_fast_forward`) and the ready frontier
of a prefix of jobs fits the machine exactly, the selection is *forced* —
no tie-break can change it — so the engine commits whole layers and
advances many steps per scheduler dispatch, resynchronizing the scheduler
(:meth:`Scheduler.resync`) only when the forced regime ends. Schedules are
bit-identical to the reference per-node loop (kept as
:func:`_simulate_reference` and enforced by the differential-equivalence
tests).

On chain-heavy out-forest instances the fast path additionally
*macro-steps*: using the precomputed chain-run decomposition
(:attr:`~repro.core.instance.Instance.chain_layout`) it detects that a
forced selection will repeat verbatim for the next Δt steps and commits
all Δt schedule columns in one vectorized write (see
:attr:`Scheduler.macro_step_safe` and ``docs/engine-internals.md``).

Per-run counters are collected in :class:`EngineStats` (attached to the
returned schedule as ``schedule.engine_stats``) and accumulated process-wide
(:func:`engine_stats_snapshot`).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Iterable, Optional, Protocol, Sequence, Union

import numpy as np

from .availability import AvailabilityLike, AvailabilityTrace, as_trace
from .exceptions import ConfigurationError, SchedulerProtocolError, SimulationError
from .instance import Instance, InstanceBatch, pack_instances
from .job import Job
from .kernels import get_backend
from .schedule import Schedule
from .util import Array

__all__ = [
    "Scheduler",
    "SimulationObserver",
    "FaultHooks",
    "simulate",
    "simulate_batch",
    "EngineState",
    "EngineStats",
    "engine_stats_snapshot",
    "reset_engine_stats",
    "accumulate_engine_stats",
]

_INT = np.int64

#: Selections smaller than this are applied by a scalar loop; the NumPy
#: batch path's fixed dispatch cost only pays off for wider steps.
_SCALAR_THRESHOLD = 8

#: A scheduler selection: ``(job_id, node)`` pairs, either as a Python
#: sequence of tuples or as a ``(k, 2)`` integer array (which the batched
#: apply path consumes without a per-pair conversion round-trip). A 1-D
#: integer array is also accepted and read as *flat gids* over the
#: instance CSR (``offsets[job] + node``) — the cheapest form for
#: schedulers that already work in gid space (e.g. work stealing).
Selection = Sequence[tuple[int, int]] | Array


class Scheduler(abc.ABC):
    """Protocol every scheduling policy implements.

    Lifecycle: ``reset`` once per run, then at each time step the engine
    calls ``on_job_arrival`` for jobs with ``r_i == t``, ``on_nodes_ready``
    for subjobs that became ready at ``t``, and finally ``select``.
    """

    #: Whether the policy inspects job DAGs beyond what a non-clairvoyant
    #: scheduler could observe (Section 3, "Online Setting"). Informational;
    #: experiment tables report it.
    clairvoyant: bool = False

    #: Opt-in to the engine's steady-state fast path. Setting this True
    #: declares the *FIFO frontier contract*: at every step the scheduler
    #: selects ready subjobs by walking released unfinished jobs in
    #: ascending job-id order, taking from each job as many of its ready
    #: subjobs as remaining capacity allows (which subjobs are taken when a
    #: job is truncated may depend on the tie-break). Whenever the capacity
    #: boundary falls exactly on a job boundary the selection *set* is
    #: forced, and the engine may commit it without calling
    #: :meth:`select` — it will call :meth:`resync` before the next real
    #: ``select``. Schedulers that opt in MUST implement :meth:`resync` and
    #: MUST NOT keep selection-relevant state that a resync cannot rebuild
    #: (e.g. RNG streams advanced per ready node).
    supports_fast_forward: bool = False

    #: Opt-in to chain-run macro-stepping on top of the fast path
    #: (requires :attr:`supports_fast_forward`; ignored without it).
    #: Setting this True declares that when a *forced* whole-frontier
    #: selection would repeat verbatim for the next Δt steps — every
    #: selected gid sits on a chain run, no arrival or capacity change
    #: intervenes — the engine may commit all Δt schedule columns in one
    #: batch without any per-step callbacks in between. Schedulers whose
    #: behaviour depends on observing each step individually (beyond what
    #: :meth:`resync` rebuilds) must leave it False; fault hooks,
    #: observers, and impure tie-breaks force the per-step path anyway.
    #: Lint rule RPR006 flags declarations that contradict per-step hooks.
    macro_step_safe: bool = False

    #: Opt-in to the batched multi-instance engine
    #: (:func:`simulate_batch`). Setting this True declares that the
    #: scheduler's behaviour on every instance is *fully determined* by its
    #: priority kernel under the FIFO frontier contract: with
    #: :attr:`supports_fast_forward` True and
    #: :meth:`frontier_priorities` returning an array, each step's
    #: selection is exactly the capacity-smallest ready subjobs by
    #: ``(job id, kernel priority, node id)`` — so B independent instances
    #: can be advanced in lockstep array passes with no per-instance
    #: dispatch at all. Schedulers that keep per-step observable state
    #: (hooks beyond what the kernel encodes, impure tie-breaks) must
    #: leave it False; :func:`simulate_batch` then falls back to
    #: per-instance :func:`simulate` runs. Lint rule RPR007 flags
    #: declarations that contradict per-instance-only hooks.
    batch_capable: bool = False

    #: Opt-in to a *dynamic job walk order* on the fast path. False (the
    #: default) keeps the FIFO walk: released unfinished jobs in ascending
    #: job-id order. Setting True declares that the scheduler's ``select``
    #: walks jobs in exactly the order :meth:`fast_path_job_order` returns
    #: — which the engine recomputes every step from its authoritative
    #: unfinished counts — taking whole ready frontiers until capacity
    #: runs out, like the FIFO contract in every other respect. This is
    #: what lets non-FIFO job orders that are pure functions of engine
    #: state (e.g. SRPT's remaining-work order) use the forced-frontier
    #: fast path, priority commits, and chain-run macro-stepping.
    #: Macro-safety note: a macro window only commits whole frontiers, and
    #: committed jobs' unfinished counts only decrease while excluded
    #: jobs' stay constant — so for any walk order that is monotone in
    #: (unfinished, job id) the committed prefix cannot be overtaken
    #: mid-window. Orders that are not monotone in the engine-tracked
    #: counts must leave :attr:`macro_step_safe` False.
    dynamic_job_order: bool = False

    #: Opt-in to flat ready delivery: when True (and no observer is
    #: attached) the engine calls :meth:`on_ready_gids` with ascending
    #: *global* node ids instead of grouping newly-ready nodes per job for
    #: :meth:`on_nodes_ready` — skipping a searchsorted/unique pass per
    #: step for schedulers (e.g. work stealing) that do not care about job
    #: identity. Opting in requires implementing BOTH callbacks: observer
    #: runs still use the per-job form.
    wants_ready_gids: bool = False

    def on_ready_gids(self, t: int, gids: Array) -> None:
        """``gids`` (ascending global node ids spanning any number of jobs)
        became ready at time ``t``. Only called when
        :attr:`wants_ready_gids` is True."""

    def fast_path_job_order(
        self, jobs: list[int], unfinished: Array
    ) -> list[int]:
        """Walk order over ``jobs`` for one fast-path commit scan.

        Only consulted when :attr:`dynamic_job_order` is True. ``jobs``
        are the released jobs with ready work this step (ascending ids);
        ``unfinished`` is the engine's authoritative per-job count of
        uncompleted subjobs. Must return a permutation of ``jobs`` in
        exactly the order the scheduler's own :meth:`select` would serve
        them — the engine commits whole frontiers along it.
        """
        return jobs

    def frontier_priorities(self, instance: Instance) -> Optional[Array]:
        """Flat per-global-node int64 priorities for the engine's
        *priority commit* (smaller = sooner, ties by ascending id).

        Consulted once per run, after :meth:`reset`, and only when
        :attr:`supports_fast_forward` is True. Returning an array extends
        the forced-frontier fast path to *truncated* steps: when capacity
        runs out mid-job the engine itself takes the priority-best ready
        subjobs of that job via one stable argsort, so :meth:`select` (and
        :meth:`resync`) are never dispatched at all. The array must order
        every job's nodes exactly as the scheduler's own tie-break would;
        returning ``None`` (the default) keeps the job-boundary-only fast
        path.
        """
        return None

    @abc.abstractmethod
    def reset(self, instance: Instance, m: int) -> None:
        """Prepare for a fresh simulation of ``instance`` on ``m``
        processors."""

    def on_job_arrival(self, t: int, job_id: int, job: Job) -> None:
        """Job ``job_id`` was released at time ``t``."""

    def on_nodes_ready(self, t: int, job_id: int, nodes: Array) -> None:
        """``nodes`` of job ``job_id`` became ready at time ``t``.

        For a job arriving at ``t`` this is called (after
        :meth:`on_job_arrival`) with the DAG's roots; afterwards it is called
        with subjobs whose last predecessor completed at ``t``.
        """

    def resync(self, t: int, state: "EngineState") -> None:
        """Rebuild ready bookkeeping after an engine fast-forward.

        Called at time ``t`` when the engine committed one or more forced
        selections without consulting the scheduler (see
        :attr:`supports_fast_forward`). Implementations must rebuild all
        selection-relevant state from ``state`` (authoritative unfinished
        counts, release flags, and per-job ready frontiers via
        :meth:`EngineState.ready_nodes`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} sets supports_fast_forward but does not "
            "implement resync()"
        )

    @abc.abstractmethod
    def select(self, t: int, capacity: int) -> Selection:
        """Return up to ``capacity`` ready subjobs to run during
        ``(t, t+1]`` — ``(job_id, node_id)`` pairs (sequence of tuples or a
        ``(k, 2)`` integer array), or a 1-D integer array of flat gids."""

    @property
    def name(self) -> str:
        return type(self).__name__


class SimulationObserver:
    """Optional per-step callback hook (used by analyses that need online
    state, e.g. measuring ready-set sizes over time). Passing an observer
    disables the fast path so every step is observed with its selection."""

    def on_step(
        self, t: int, selection: Selection, state: "EngineState"
    ) -> None:  # pragma: no cover - default no-op
        pass


class FaultHooks(Protocol):
    """Hooks the engine consults when a fault injector is attached.

    The concrete implementation (:class:`repro.faults.FaultInjector`) lives
    outside the engine so the core never depends on workload/randomness
    plumbing; any object with this shape works. Attaching one disables the
    steady-state fast path (every step must be observable for the hooks to
    fire deterministically) and flat-gid ready delivery (perturbation is
    defined on per-job delivery groups).

    Determinism contract: :func:`simulate` and the reference loop call the
    hooks in exactly the same sequence — ``begin_run`` once, then per
    dispatch step ``should_crash(t)`` and (when the step enabled at least
    one delivery group) ``delivery_order(t, n_groups)`` — so one seeded
    injector drives bit-identical runs on both engines.
    """

    def begin_run(self) -> None:
        """Reset per-run state (RNG stream, fired-fault log)."""

    def should_crash(self, t: int) -> bool:
        """True to kill the scheduler at step ``t``; the engine rebuilds it
        from the committed schedule prefix before the next ``select``."""

    def delivery_order(self, t: int, n_groups: int) -> Optional[Array]:
        """A permutation of ``range(n_groups)`` to reorder this step's
        per-job ready delivery groups, or ``None`` to keep engine order."""


@dataclass
class EngineStats:
    """Counters for one simulation run (or a process-wide accumulation).

    Attributes
    ----------
    steps:
        Time steps on which work was committed (fast or slow path).
    fast_forwarded_steps:
        Steps committed by the forced-frontier fast path, without a
        ``select`` dispatch.
    kernel_steps:
        The subset of fast-forwarded steps that truncated a job mid-frontier
        and were resolved by the scheduler's priority kernel
        (:meth:`Scheduler.frontier_priorities`) instead of a dispatch.
    macro_steps:
        Macro-step batch commits: each wrote several consecutive forced
        schedule columns in one vectorized pass (chain-run compression,
        see :attr:`Scheduler.macro_step_safe`).
    compressed_steps:
        Time steps covered by those macro batches (a subset of
        ``fast_forwarded_steps``; ``compressed_steps / macro_steps`` is the
        average compression ratio Δt).
    selections:
        Subjobs scheduled in total.
    select_calls:
        Scheduler ``select`` dispatches (slow-path steps).
    resyncs:
        :meth:`Scheduler.resync` calls issued when leaving the fast path.
    sim_seconds:
        Wall-clock time spent inside :func:`simulate` /
        :func:`simulate_batch`.
    batch_steps:
        Lockstep commits of the batched multi-instance engine
        (:func:`simulate_batch`): each advanced every active instance of a
        batch by one step (or by Δt steps for a batched macro commit) in
        one NumPy pass.
    fallback_runs:
        Instances :func:`simulate_batch` routed through per-instance
        :func:`simulate` because they (or their scheduler) were ineligible
        for the lockstep path.
    batch_size_histogram:
        Histogram of active-instance counts over batched commits, bucketed
        by power of two (key ``b`` counts commits with ``2**b <= active <
        2**(b+1)``) so the dict stays small whatever the batch size.
    backend:
        The kernel backend that served this run (``numpy`` | ``numba``,
        see :mod:`repro.core.kernels`); ``"mixed"`` after accumulating
        runs served by different backends, ``""`` for an untouched
        accumulator.
    kernel_dispatches:
        Per-kernel dispatch counts (kernel name -> calls) for the
        extracted hot kernels, merged key-wise on accumulation.
    stream_steps:
        Time steps advanced by the streaming engine
        (:class:`repro.streaming.engine.StreamingEngine`), including
        zero-commit steps; committed streaming steps also count into
        ``steps``/``selections`` so aggregate throughput stays comparable.
    stream_retired:
        Jobs retired (completed and released from memory) by the
        streaming engine.
    stream_shed:
        Jobs rejected by streaming admission control (bounded live
        window overflow).
    stream_arena_steps:
        Streaming steps committed through the vectorized arena path
        (one batched pass over the whole live window instead of a
        per-job Python walk; see :mod:`repro.streaming.arena`).
    stream_epoch_steps:
        Arena epoch macro-commits — each one batches ``Δt`` consecutive
        forced streaming steps into a single write.
    stream_epoch_compressed:
        Total time steps covered by epoch macro-commits (each also
        counts into ``stream_steps``/``steps``, so throughput stays
        comparable across paths).
    """

    steps: int = 0
    fast_forwarded_steps: int = 0
    selections: int = 0
    select_calls: int = 0
    resyncs: int = 0
    sim_seconds: float = 0.0
    kernel_steps: int = 0
    macro_steps: int = 0
    compressed_steps: int = 0
    batch_steps: int = 0
    fallback_runs: int = 0
    batch_size_histogram: dict[int, int] = field(default_factory=dict)
    backend: str = ""
    kernel_dispatches: dict[str, int] = field(default_factory=dict)
    stream_steps: int = 0
    stream_retired: int = 0
    stream_shed: int = 0
    stream_arena_steps: int = 0
    stream_epoch_steps: int = 0
    stream_epoch_compressed: int = 0

    @property
    def ns_per_subjob(self) -> float:
        """Average engine cost per scheduled subjob, in nanoseconds."""
        return self.sim_seconds * 1e9 / max(1, self.selections)

    @property
    def fast_fraction(self) -> float:
        """Fraction of committed steps handled by the fast path."""
        return self.fast_forwarded_steps / max(1, self.steps)

    def add(self, other: "EngineStats") -> None:
        """Accumulate ``other`` into this counter block (in place).

        The histogram is merged key-wise by summation — the parallel
        harness folds many per-worker deltas into one accumulator, and an
        overwrite here would silently drop every worker but the last.
        """
        self.steps += other.steps
        self.fast_forwarded_steps += other.fast_forwarded_steps
        self.kernel_steps += other.kernel_steps
        self.macro_steps += other.macro_steps
        self.compressed_steps += other.compressed_steps
        self.selections += other.selections
        self.select_calls += other.select_calls
        self.resyncs += other.resyncs
        self.sim_seconds += other.sim_seconds
        self.batch_steps += other.batch_steps
        self.fallback_runs += other.fallback_runs
        for bucket, count in other.batch_size_histogram.items():
            self.batch_size_histogram[bucket] = (
                self.batch_size_histogram.get(bucket, 0) + count
            )
        # Backend/dispatch fields arrived after the first snapshot format;
        # read them defensively so folds of old pickled/checkpointed
        # snapshots (which lack the attributes) keep working.
        other_backend = getattr(other, "backend", "")
        if other_backend:
            self.backend = (
                other_backend
                if not self.backend or self.backend == other_backend
                else "mixed"
            )
        for kname, count in getattr(other, "kernel_dispatches", {}).items():
            self.kernel_dispatches[kname] = (
                self.kernel_dispatches.get(kname, 0) + count
            )
        self.stream_steps += getattr(other, "stream_steps", 0)
        self.stream_retired += getattr(other, "stream_retired", 0)
        self.stream_shed += getattr(other, "stream_shed", 0)
        self.stream_arena_steps += getattr(other, "stream_arena_steps", 0)
        self.stream_epoch_steps += getattr(other, "stream_epoch_steps", 0)
        self.stream_epoch_compressed += getattr(
            other, "stream_epoch_compressed", 0
        )

    def delta(self, earlier: "EngineStats") -> "EngineStats":
        """Counter difference ``self - earlier`` (for snapshot windows)."""
        hist = {
            bucket: count - earlier.batch_size_histogram.get(bucket, 0)
            for bucket, count in self.batch_size_histogram.items()
            if count != earlier.batch_size_histogram.get(bucket, 0)
        }
        earlier_kd = getattr(earlier, "kernel_dispatches", {})
        kd = {
            kname: count - earlier_kd.get(kname, 0)
            for kname, count in self.kernel_dispatches.items()
            if count != earlier_kd.get(kname, 0)
        }
        return EngineStats(
            steps=self.steps - earlier.steps,
            fast_forwarded_steps=self.fast_forwarded_steps
            - earlier.fast_forwarded_steps,
            kernel_steps=self.kernel_steps - earlier.kernel_steps,
            macro_steps=self.macro_steps - earlier.macro_steps,
            compressed_steps=self.compressed_steps - earlier.compressed_steps,
            selections=self.selections - earlier.selections,
            select_calls=self.select_calls - earlier.select_calls,
            resyncs=self.resyncs - earlier.resyncs,
            sim_seconds=self.sim_seconds - earlier.sim_seconds,
            batch_steps=self.batch_steps - earlier.batch_steps,
            fallback_runs=self.fallback_runs - earlier.fallback_runs,
            batch_size_histogram=hist,
            backend=self.backend,
            kernel_dispatches=kd,
            stream_steps=self.stream_steps - getattr(earlier, "stream_steps", 0),
            stream_retired=self.stream_retired
            - getattr(earlier, "stream_retired", 0),
            stream_shed=self.stream_shed - getattr(earlier, "stream_shed", 0),
            stream_arena_steps=self.stream_arena_steps
            - getattr(earlier, "stream_arena_steps", 0),
            stream_epoch_steps=self.stream_epoch_steps
            - getattr(earlier, "stream_epoch_steps", 0),
            stream_epoch_compressed=self.stream_epoch_compressed
            - getattr(earlier, "stream_epoch_compressed", 0),
        )

    def record_batch_step(self, n_active: int) -> None:
        """Count one batched commit over ``n_active`` live instances."""
        self.batch_steps += 1
        bucket = max(0, int(n_active).bit_length() - 1)
        self.batch_size_histogram[bucket] = (
            self.batch_size_histogram.get(bucket, 0) + 1
        )

    def summary(self) -> str:
        """One-line human-readable rendering (experiment notes, CLI)."""
        text = (
            f"steps={self.steps} fast={self.fast_forwarded_steps} "
            f"({100.0 * self.fast_fraction:.0f}%) "
            f"kernel={self.kernel_steps} macro={self.macro_steps} "
            f"compressed={self.compressed_steps} "
            f"selections={self.selections} "
            f"select_calls={self.select_calls} resyncs={self.resyncs} "
            f"ns/subjob={self.ns_per_subjob:.0f}"
        )
        if self.batch_steps or self.fallback_runs:
            sizes = " ".join(
                f"2^{b}:{self.batch_size_histogram[b]}"
                for b in sorted(self.batch_size_histogram)
            )
            text += (
                f" batch_steps={self.batch_steps} "
                f"fallback_runs={self.fallback_runs}"
            )
            if sizes:
                text += f" batch_sizes[{sizes}]"
        if self.stream_arena_steps or self.stream_epoch_steps:
            text += (
                f" stream_arena_steps={self.stream_arena_steps} "
                f"stream_epoch_steps={self.stream_epoch_steps} "
                f"stream_epoch_compressed={self.stream_epoch_compressed}"
            )
        if self.backend:
            text += f" backend={self.backend}"
        if self.kernel_dispatches:
            dispatches = " ".join(
                f"{kname}:{self.kernel_dispatches[kname]}"
                for kname in sorted(self.kernel_dispatches)
            )
            text += f" kernels[{dispatches}]"
        if self.stream_steps or self.stream_retired or self.stream_shed:
            text += (
                f" stream_steps={self.stream_steps} "
                f"stream_retired={self.stream_retired} "
                f"stream_shed={self.stream_shed}"
            )
        return text


#: Process-wide accumulation over every ``simulate`` call (see
#: :func:`engine_stats_snapshot`).
_GLOBAL_STATS = EngineStats()


def engine_stats_snapshot() -> EngineStats:
    """A copy of the process-wide engine counters accumulated so far.

    Take one snapshot before and one after a block of work and use
    :meth:`EngineStats.delta` to attribute engine effort to that block.

    The histogram dict is copied, not aliased: a shallow ``replace`` would
    let later runs mutate past snapshots (and pool-task folds would then
    overwrite instead of sum).
    """
    return replace(
        _GLOBAL_STATS,
        batch_size_histogram=dict(_GLOBAL_STATS.batch_size_histogram),
        kernel_dispatches=dict(_GLOBAL_STATS.kernel_dispatches),
    )


def reset_engine_stats() -> None:
    """Zero the process-wide engine counters."""
    global _GLOBAL_STATS
    _GLOBAL_STATS = EngineStats()


def accumulate_engine_stats(stats: EngineStats) -> None:
    """Fold externally-collected counters into this process's accumulator.

    The parallel experiment harness uses this to merge per-worker
    :class:`EngineStats` deltas back into the parent, so
    :func:`engine_stats_snapshot` windows account for engine effort spent
    in worker processes too.
    """
    _GLOBAL_STATS.add(stats)


class EngineState:
    """Mutable execution state, exposed read-only to observers.

    Backed by flat instance-level arrays (see
    :attr:`~repro.core.instance.Instance.flat_graph`); the per-job accessors
    below are views into (or materializations of) the same memory.
    """

    def __init__(self, instance: Instance, m: int) -> None:
        self.instance = instance
        self.m = m
        flat = instance.flat_graph
        # Debug backstop for lint rule RPR201 (compiled out under -O): the
        # shared CSR must still be frozen when a run starts.
        assert not flat.writable_arrays(), (
            "Instance.flat_graph arrays have lost writeable=False; "
            "something wrote through the shared CSR (see lint rule RPR201)"
        )
        n = flat.n_nodes
        self.offsets = flat.offsets
        self.indegree_flat = flat.indegree.copy()
        self.done_flat = np.zeros(n, dtype=bool)
        self.ready_mask = np.zeros(n, dtype=bool)
        self.completion_flat = np.zeros(n, dtype=_INT)
        self.unfinished_counts = np.diff(flat.offsets)
        self.ready_per_job = np.zeros(len(instance), dtype=_INT)
        self.released = np.zeros(len(instance), dtype=bool)

    # -- per-job accessors (compatibility with the per-job layout) --------

    @cached_property
    def remaining_indegree(self) -> list[Array]:
        """Per-job views of the live indegree array (shared memory)."""
        o = self.offsets
        return [self.indegree_flat[o[i] : o[i + 1]] for i in range(len(o) - 1)]

    @cached_property
    def done(self) -> list[Array]:
        """Per-job views of the live completion mask (shared memory)."""
        o = self.offsets
        return [self.done_flat[o[i] : o[i + 1]] for i in range(len(o) - 1)]

    @property
    def ready(self) -> list[set[int]]:
        """Per-job ready sets, materialized from the frontier mask."""
        o = self.offsets
        return [
            set(np.nonzero(self.ready_mask[o[i] : o[i + 1]])[0].tolist())
            for i in range(len(o) - 1)
        ]

    def ready_nodes(self, job_id: int) -> Array:
        """Ready subjobs of ``job_id`` as ascending local node ids."""
        lo, hi = self.offsets[job_id], self.offsets[job_id + 1]
        return np.nonzero(self.ready_mask[lo:hi])[0]

    # -- aggregates -------------------------------------------------------

    @property
    def total_unfinished(self) -> int:
        return int(self.unfinished_counts.sum())

    def ready_count(self) -> int:
        return int(np.count_nonzero(self.ready_mask))

    def unfinished_job_ids(self) -> list[int]:
        return [i for i in range(len(self.instance)) if self.unfinished_counts[i] > 0]


def _pairs_from_gids(offsets: Array, gids: Array) -> list[tuple[int, int]]:
    """Decode a flat-gid selection into (job, local node) pairs.

    Cold paths only (scalar steps, error diagnosis, observer delivery).
    Out-of-range gids decode to out-of-range pairs, which the pairwise
    validation then rejects with its usual diagnosis.
    """
    js = np.searchsorted(offsets, gids, side="right") - 1
    nodes = gids - offsets[js]
    return [(int(a), int(b)) for a, b in zip(js.tolist(), nodes.tolist())]


def _selection_error(
    selection: list[tuple[int, int]],
    index: int,
    state: EngineState,
    t: int,
    scheduler: "Scheduler",
) -> SchedulerProtocolError:
    """Diagnose why ``selection[index]`` was illegal (cold path)."""
    job_id, node = selection[index]
    if not (0 <= job_id < len(state.instance)):
        return SchedulerProtocolError(
            f"{scheduler.name} selected unknown job {job_id} at t={t}"
        )
    if (job_id, node) in selection[:index]:
        return SchedulerProtocolError(
            f"{scheduler.name} selected ({job_id},{node}) twice at t={t}"
        )
    return SchedulerProtocolError(
        f"{scheduler.name} selected non-ready subjob ({job_id},{node}) at t={t}"
    )


def _diagnose_selection(
    selection: list[tuple[int, int]],
    state: EngineState,
    t: int,
    scheduler: "Scheduler",
) -> SchedulerProtocolError:
    """Find the first illegal entry of a rejected batch (cold path).

    Mirrors the reference engine's scan order so error messages are
    identical: entries are checked in order against the authoritative
    ready state, with earlier entries already applied conceptually.
    """
    offsets = state.offsets
    n_jobs = len(state.instance)
    accepted: set[tuple[int, int]] = set()
    for index, pair in enumerate(selection):
        job_id, node = pair
        try:
            in_range = 0 <= job_id < n_jobs
        except TypeError:
            return _selection_error(selection, index, state, t, scheduler)
        legal = False
        if in_range:
            try:
                gid = offsets[job_id] + node
                legal = (
                    0 <= node < offsets[job_id + 1] - offsets[job_id]
                    and bool(state.ready_mask[gid])
                    and (job_id, node) not in accepted
                )
            except (TypeError, IndexError):
                legal = False
        if not legal:
            return _selection_error(selection, index, state, t, scheduler)
        accepted.add((job_id, node))
    return SchedulerProtocolError(
        f"{scheduler.name} produced an unappliable selection at t={t}"
    )


def simulate(
    instance: Instance,
    m: int,
    scheduler: Scheduler,
    *,
    max_steps: Optional[int] = None,
    observer: Optional[SimulationObserver] = None,
    availability: Optional[AvailabilityLike] = None,
    fault_injector: Optional[FaultHooks] = None,
    use_macro_steps: Optional[bool] = None,
) -> Schedule:
    """Run ``scheduler`` on ``instance`` with ``m`` processors to completion.

    Parameters
    ----------
    max_steps:
        Safety bound on simulated time; defaults to a generous bound
        (``last release + total work + total span + 16``, padded by the
        trace prefix plus a serial drain when ``availability`` is given)
        that any work-conserving policy satisfies trivially. Exceeding it
        raises :class:`SimulationError` (it indicates a livelocked
        scheduler).
    observer:
        Optional hook receiving ``(t, selection, state)`` after each step.
        Supplying one disables the fast path (every step is observed).
    availability:
        Optional fluctuating allocation: an
        :class:`~repro.core.availability.AvailabilityTrace` (or plain
        sequence of ints, tail-extended by ``m``) granting ``m_t <= m``
        processors at step ``t``. ``m`` stays the machine cap: it is what
        ``scheduler.reset`` sees and what selections are validated against
        per step. Trace generators live in :mod:`repro.faults`.
    fault_injector:
        Optional :class:`FaultHooks` (see :class:`repro.faults.
        FaultInjector`): may kill/restart the scheduler mid-run (the engine
        rebuilds its state from the committed prefix) and perturb ready
        delivery group order. Attaching one disables the fast path and
        flat-gid delivery so both engines drive the hooks identically.
    use_macro_steps:
        Chain-run macro-stepping override. ``None`` (default) lets the
        scheduler's :attr:`Scheduler.macro_step_safe` contract decide;
        ``False`` forces the per-step fast path even for safe schedulers
        (the reference configuration the macro equivalence tests compare
        against); ``True`` still requires the contract — it never enables
        macro-stepping for a scheduler that did not declare it safe.

    Returns
    -------
    Schedule
        A complete, feasible schedule. Feasibility is enforced online; the
        returned object additionally passes ``Schedule.validate()``. The
        run's :class:`EngineStats` is attached as ``schedule.engine_stats``.
    """
    if m <= 0:
        raise ConfigurationError("m must be positive")
    trace: Optional[AvailabilityTrace] = (
        None if availability is None else as_trace(availability, m)
    )
    if max_steps is None:
        total_span = sum(j.span for j in instance)
        max_steps = instance.horizon_hint + total_span + 16
        if trace is not None:
            # Zero-capacity steps stall progress; past the explicit prefix
            # the tail (>= 1) guarantees motion, so pad the livelock bound
            # by the prefix plus a serial drain of all work on the tail.
            max_steps += trace.horizon + instance.total_work

    t_wall = time.perf_counter()
    stats = EngineStats()
    state = EngineState(instance, m)
    scheduler.reset(instance, m)
    if fault_injector is not None:
        fault_injector.begin_run()

    releases = instance.releases
    arrival_order = np.argsort(releases, kind="stable")
    next_arrival_idx = 0
    n_jobs = len(instance)

    # Kernel backend (REPRO_BACKEND, see repro.core.kernels): the hot inner
    # kernels below dispatch through it. Dispatch counts are kept in plain
    # local ints and folded into stats once at the end of the run.
    backend = get_backend()
    stats.backend = backend.name
    k_commit = backend.commit_frontier
    k_children = backend.csr_children
    k_min_dt = backend.chain_min_dt
    k_macro = backend.macro_fill
    n_commit = n_children = n_min_dt = n_macro = 0

    # Hot-loop locals (profiled: attribute chasing dominated the per-step
    # cost — see the HPC guides' "measure, then optimize").
    flat = instance.flat_graph
    offsets = state.offsets
    offsets_list = offsets.tolist()
    child_indptr = flat.child_indptr
    child_indices = flat.child_indices
    indeg = state.indegree_flat
    indeg_list: Optional[list[int]] = None  # lazily synced copy (scalar path)
    done_flat = state.done_flat
    ready_mask = state.ready_mask
    completion_flat = state.completion_flat
    unfinished = state.unfinished_counts
    ready_per_job = state.ready_per_job
    is_forest = flat.all_out_forests
    # For pure out-forests every enabled child has exactly one parent, so
    # readiness never consults indegrees — skip their upkeep entirely unless
    # an observer may inspect ``state.remaining_indegree``.
    track_indeg = (not is_forest) or (observer is not None)

    ready_total = 0
    total_left = int(unfinished.sum())
    # Per-step allocation m_t (hot-loop locals; None means constant m).
    avail_vals: Optional[list[int]] = None
    avail_len = 0
    avail_tail = m
    if trace is not None:
        avail_vals = list(trace.values)
        avail_len = len(avail_vals)
        avail_tail = trace.tail
    fast_ok = (
        observer is None
        and fault_injector is None
        and scheduler.supports_fast_forward
    )
    # Dynamic job walk order (see Scheduler.dynamic_job_order): schedulers
    # whose job order is a pure function of the engine's own unfinished
    # counts (e.g. SRPT) hand the fast path their walk order each step —
    # the FIFO ascending-id walk otherwise.
    dyn_order = (
        scheduler.fast_path_job_order
        if fast_ok and scheduler.dynamic_job_order
        else None
    )
    # Flat priority kernel (see Scheduler.frontier_priorities): with one the
    # fast path also covers truncated-mid-job steps, committing the cap-best
    # ready subjobs by a stable argsort — select() is never dispatched.
    prio_flat: Optional[Array] = (
        scheduler.frontier_priorities(instance) if fast_ok else None
    )
    # Encoded priority frontiers: with a non-constant kernel the fast path
    # stores each frontier pre-sorted by the composite key
    # ``rank(priority) * n_total + gid`` — unique per node and lexicographic
    # in (priority, id) — so a mid-job truncation is a plain prefix slice
    # instead of a per-step argsort. Priorities are dense-ranked first so the
    # composite never overflows int64 whatever the kernel's magnitudes. A
    # constant kernel (e.g. Arbitrary's zeros) encodes to the identity:
    # ``prio_enc`` stays None and frontiers remain plain gid-sorted arrays
    # (preserving the contiguous-slice child gather).
    n_total = flat.n_nodes
    prio_enc: Optional[Array] = None
    if prio_flat is not None and prio_flat.size:
        # Cheap O(n) constancy scan first: skip the dense-ranking sort for
        # constant kernels, whose encoding would be the identity anyway.
        if int(prio_flat.min()) < int(prio_flat.max()):
            _ranks = np.unique(prio_flat, return_inverse=True)[1]
            prio_enc = _ranks.astype(np.int64) * n_total + np.arange(
                n_total, dtype=np.int64
            )
    # Chain-run macro-stepping (see Scheduler.macro_step_safe and
    # docs/engine-internals.md): when the forced whole-frontier selection
    # would repeat verbatim for the next Δt steps — every committed gid on
    # a chain run, no arrival, no capacity change — commit all Δt schedule
    # columns in one vectorized write instead of Δt loop iterations.
    # Restricted to out-forest instances: only there may the fast path skip
    # interior indegree decrements entirely (the forest exit below zeroes
    # indegrees wholesale from the done mask).
    macro_ok = (
        fast_ok
        and is_forest
        and scheduler.macro_step_safe
        and use_macro_steps is not False
    )
    run_nodes: Optional[Array] = None
    node_index: Optional[Array] = None
    steps_to_end: Optional[Array] = None
    if macro_ok:
        chains = instance.chain_layout
        run_nodes = chains.run_nodes
        node_index = chains.node_index
        steps_to_end = chains.steps_to_end
    # Flat ready delivery (see Scheduler.wants_ready_gids): hand newly-ready
    # nodes over as one ascending gid array instead of grouping per job.
    # Fault injection perturbs per-job delivery groups, so it forces the
    # grouped form (keeping hook sequences identical to the reference loop).
    use_flat_ready = (
        scheduler.wants_ready_gids and observer is None and fault_injector is None
    )
    # ready_per_job only feeds the fast-path frontier scan; skip its upkeep
    # on the batched slow path when nothing reads it.
    track_per_job = fast_ok or not use_flat_ready
    # While fast_run is True the engine runs on per-job frontier arrays and
    # defers ready_mask/done_flat (and, for forests, indegree) upkeep; the
    # deferred state is materialized when leaving fast mode, right before
    # the scheduler is resynced.
    fast_run = False
    frontiers: list[Optional[Array]] = [None] * n_jobs
    # Invariant: stored frontiers are ascending — in gids when ``prio_enc``
    # is None, else in encoded (priority, id) keys. fr_contig[j] marks
    # gid-sorted frontiers that are a contiguous id range (then their CSR
    # child rows are adjacent and the per-step gather collapses to one
    # slice); encoded frontiers never claim contiguity.
    fr_contig = [False] * n_jobs
    head = 0  # job ids below this are finished (jobs finish roughly FIFO)

    t = 0
    while total_left:
        if t > max_steps:
            raise SimulationError(
                f"simulation exceeded max_steps={max_steps}; scheduler "
                f"{scheduler.name} appears to be livelocked "
                f"({state.total_unfinished} subjobs left)"
            )
        # Deliver arrivals with r_i == t.
        while (
            next_arrival_idx < n_jobs
            and releases[arrival_order[next_arrival_idx]] == t
        ):
            job_id = int(arrival_order[next_arrival_idx])
            job = instance[job_id]
            state.released[job_id] = True
            scheduler.on_job_arrival(t, job_id, job)
            roots = job.dag.roots
            if fast_run:
                # The scheduler's ready bookkeeping is stale anyway while
                # fast-forwarded; resync() will deliver it wholesale.
                fr = offsets[job_id] + roots  # roots are ascending
                if prio_enc is not None:
                    fr = np.sort(prio_enc[fr])
                    frontiers[job_id] = fr
                else:
                    frontiers[job_id] = fr
                    fr_contig[job_id] = bool(fr[-1] - fr[0] == fr.size - 1)
            else:
                root_gids = offsets[job_id] + roots
                ready_mask[root_gids] = True
                if use_flat_ready:
                    scheduler.on_ready_gids(t, root_gids)
                else:
                    scheduler.on_nodes_ready(t, job_id, roots)
            ready_per_job[job_id] += roots.size
            ready_total += roots.size
            next_arrival_idx += 1

        # Fast-forward through genuinely empty time (no ready work at all).
        if ready_total == 0:
            if next_arrival_idx >= n_jobs:
                raise SimulationError(
                    "no ready work and no future arrivals but "
                    f"{state.total_unfinished} subjobs unfinished"
                )
            t = int(releases[arrival_order[next_arrival_idx]])
            continue

        while head < n_jobs and unfinished[head] == 0:
            head += 1

        # This step's allocation m_t (constant m without a trace).
        cap_t = (
            m
            if avail_vals is None
            else (avail_vals[t] if t < avail_len else avail_tail)
        )

        # ------------------------------------------------------------------
        # Steady-state fast path: under the FIFO frontier contract the
        # selection is forced whenever the capacity boundary falls on a job
        # boundary — commit whole ready layers without dispatching.
        # ------------------------------------------------------------------
        if fast_ok:
            cap = cap_t
            commit_jobs: list[int] = []
            forced = True
            trunc_job = -1
            walk: Iterable[int]
            if dyn_order is None:
                walk = range(head, next_arrival_idx)
            else:
                live = np.nonzero(ready_per_job[head:next_arrival_idx])[0]
                live += head
                walk = dyn_order(live.tolist(), unfinished)
            for j in walk:
                if cap == 0:
                    break
                c = int(ready_per_job[j])
                if c == 0:
                    continue
                if c <= cap:
                    commit_jobs.append(j)
                    cap -= c
                elif prio_flat is not None:
                    trunc_job = j  # truncation mid-job: the kernel decides
                    break
                else:
                    forced = False  # truncation mid-job: tie-break decides
                    break
            if forced:
                if not fast_run:
                    # Entering fast mode: snapshot each live frontier out of
                    # the mask; from here mask/done upkeep is deferred.
                    for j in range(head, next_arrival_idx):
                        if unfinished[j] > 0:
                            lo, hi = offsets_list[j], offsets_list[j + 1]
                            fr = np.nonzero(ready_mask[lo:hi])[0]
                            fr += lo
                            if prio_enc is not None:
                                fr = np.sort(prio_enc[fr])
                                frontiers[j] = fr
                            else:
                                frontiers[j] = fr
                                fr_contig[j] = bool(
                                    fr.size == 0
                                    or fr[-1] - fr[0] == fr.size - 1
                                )
                    fast_run = True
                    indeg_list = None  # scalar-path copy goes stale
                if macro_ok and trunc_job < 0 and commit_jobs:
                    # Macro-step commit: find Δt, the number of steps this
                    # exact forced selection pattern repeats. Three bounds:
                    # the gap to the next arrival (a new job changes the
                    # packing), the shortest chain-run remainder among the
                    # committed frontiers (a slot stays forced only while
                    # its node has a sole in-chain successor), and the
                    # window over which the availability trace stays cap_t.
                    if next_arrival_idx < n_jobs:
                        dt = int(releases[arrival_order[next_arrival_idx]]) - t
                    else:
                        dt = total_left  # chain remainders tighten below
                    macro_gids: list[Array] = []
                    if dt > 1:
                        assert steps_to_end is not None  # set when macro_ok
                        for j in commit_jobs:
                            fr = frontiers[j]
                            assert fr is not None
                            g = fr if prio_enc is None else fr % n_total
                            macro_gids.append(g)
                            dt = int(k_min_dt(steps_to_end, g, dt))
                            n_min_dt += 1
                            if dt == 1:
                                break
                    if dt > 1 and avail_vals is not None and t < avail_len:
                        # Inside the explicit trace prefix m_t may vary;
                        # past it the tail is constant and equals cap_t
                        # (this step already drew it), so no bound applies.
                        span = 1
                        while span < dt:
                            tk = t + span
                            if (
                                avail_vals[tk] if tk < avail_len else avail_tail
                            ) != cap_t:
                                break
                            span += 1
                        dt = span
                    if dt > 1:
                        assert run_nodes is not None and node_index is not None
                        assert steps_to_end is not None
                        k = 0
                        for j, gids in zip(commit_jobs, macro_gids):
                            nxt, term = k_macro(
                                run_nodes,
                                node_index,
                                steps_to_end,
                                completion_flat,
                                gids,
                                t,
                                dt,
                            )
                            kids = k_children(
                                child_indptr, child_indices, term
                            )
                            n_macro += 1
                            n_children += 1
                            # (Forest: every child's sole parent — a run
                            # terminal committed in the last column — is
                            # done, so all gathered children are ready.)
                            new = np.concatenate((nxt, kids))
                            if prio_enc is None:
                                nfr = np.sort(new)
                                nsz = nfr.size
                                fr_contig[j] = bool(
                                    nsz == 0 or nfr[-1] - nfr[0] == nsz - 1
                                )
                            else:
                                nfr = np.sort(prio_enc[new])
                                nsz = nfr.size
                            frontiers[j] = nfr
                            c = gids.size
                            ready_per_job[j] = nsz
                            unfinished[j] -= c * dt
                            ready_total += nsz - c
                            k += c * dt
                        total_left -= k
                        stats.steps += dt
                        stats.fast_forwarded_steps += dt
                        stats.macro_steps += 1
                        stats.compressed_steps += dt
                        stats.selections += k
                        t += dt
                        continue
                finish = t + 1
                k = 0
                for j in commit_jobs:
                    fr = frontiers[j]
                    assert fr is not None  # commit_jobs have live frontiers
                    gids = fr if prio_enc is None else fr % n_total
                    if fr_contig[j]:
                        # Contiguous CSR rows: concatenated children are one
                        # slice (the common layered shape).
                        completion_flat[gids] = finish
                        kids = child_indices[
                            child_indptr[gids[0]] : child_indptr[gids[-1] + 1]
                        ]
                    else:
                        kids = k_commit(
                            child_indptr,
                            child_indices,
                            completion_flat,
                            gids,
                            finish,
                        )
                        n_commit += 1
                    if not is_forest:
                        np.subtract.at(indeg, kids, 1)
                        kids = np.unique(kids[indeg[kids] == 0])
                    # (For forests every child's sole parent just completed.)
                    if prio_enc is None:
                        # Sort to keep the frontier-ascending invariant
                        # (np.unique output above is already sorted).
                        nfr = np.sort(kids) if is_forest else kids
                        ksz = nfr.size
                        fr_contig[j] = bool(
                            ksz == 0 or nfr[-1] - nfr[0] == ksz - 1
                        )
                    else:
                        nfr = np.sort(prio_enc[kids])
                        ksz = nfr.size
                    frontiers[j] = nfr
                    taken = gids.size
                    ready_per_job[j] = ksz
                    unfinished[j] -= taken
                    ready_total += ksz - taken
                    k += taken
                if trunc_job >= 0:
                    # Priority commit: resolve the mid-job truncation with
                    # the flat kernel. Frontiers are pre-sorted in tie-break
                    # order — by encoded (priority, id) keys, or by gid when
                    # the kernel is constant — so the cap-best nodes are a
                    # plain prefix slice; the engine never consults the
                    # scheduler and no per-step sort of the whole frontier
                    # by priority is needed.
                    j = trunc_job
                    fr = frontiers[j]
                    # trunc_job is only set when a kernel exists, and its
                    # frontier was materialized on fast-mode entry.
                    assert fr is not None
                    taken_enc = fr[:cap]
                    rest = fr[cap:]
                    gids = (
                        taken_enc if prio_enc is None else taken_enc % n_total
                    )
                    kids = k_commit(
                        child_indptr, child_indices, completion_flat, gids, finish
                    )
                    n_commit += 1
                    if not is_forest:
                        np.subtract.at(indeg, kids, 1)
                        kids = np.unique(kids[indeg[kids] == 0])
                    if prio_enc is not None:
                        kids = prio_enc[kids]
                    new_fr = np.concatenate((rest, kids))
                    new_fr.sort()
                    frontiers[j] = new_fr
                    nsz = new_fr.size
                    if prio_enc is None:
                        fr_contig[j] = bool(
                            nsz == 0 or new_fr[-1] - new_fr[0] == nsz - 1
                        )
                    ready_per_job[j] = nsz
                    unfinished[j] -= cap
                    ready_total += nsz - fr.size
                    k += cap
                    stats.kernel_steps += 1
                total_left -= k
                stats.steps += 1
                stats.fast_forwarded_steps += 1
                stats.selections += k
                t = finish
                continue

        # ------------------------------------------------------------------
        # Dispatch path: consult the scheduler, first materializing any
        # deferred fast-mode state and resyncing the scheduler's view.
        # ------------------------------------------------------------------
        if fast_run:
            np.not_equal(completion_flat, 0, out=done_flat)
            ready_mask[:] = False
            for j in range(n_jobs):
                fr = frontiers[j]
                if fr is not None:
                    if fr.size:
                        ids = fr if prio_enc is None else fr % n_total
                        ready_mask[ids] = True
                        if is_forest:
                            indeg[ids] = 0
                    frontiers[j] = None
            if is_forest:
                # Forest fast mode skips decrements: every node enabled
                # during the run is now done or in a frontier — zero both.
                indeg[done_flat] = 0
            fast_run = False
            scheduler.resync(t, state)
            stats.resyncs += 1

        if fault_injector is not None and fault_injector.should_crash(t):
            # Crash/restart: throw the scheduler's private state away and
            # rebuild it from the committed schedule prefix — the engine
            # state is authoritative. Arrivals replay in release order
            # (matching the original delivery order), then each job's live
            # ready frontier is delivered wholesale.
            scheduler.reset(instance, m)
            for idx in range(next_arrival_idx):
                job_id = int(arrival_order[idx])
                scheduler.on_job_arrival(t, job_id, instance[job_id])
            for idx in range(next_arrival_idx):
                job_id = int(arrival_order[idx])
                if unfinished[job_id] > 0:
                    nodes = state.ready_nodes(job_id)
                    if nodes.size:
                        scheduler.on_nodes_ready(t, job_id, nodes)

        raw = scheduler.select(t, cap_t)
        stats.select_calls += 1
        sel_arr: Optional[Array] = None
        gid_sel: Optional[Array] = None
        selection: Optional[list[tuple[int, int]]] = None
        if isinstance(raw, np.ndarray):
            # Array selections skip the per-pair list round-trip entirely:
            # (k, 2) rows of (job, local node), or — cheapest — a 1-D array
            # of flat gids over the instance CSR (no id split round-trip).
            if raw.ndim == 1 and raw.dtype.kind in "iu":
                gid_sel = raw
                k = int(raw.shape[0])
            elif raw.ndim == 2 and raw.shape[1] == 2 and raw.dtype.kind in "iu":
                sel_arr = raw
                k = int(raw.shape[0])
            else:
                raise SchedulerProtocolError(
                    f"{scheduler.name} returned a malformed selection array "
                    f"(shape {raw.shape}, dtype {raw.dtype}) at t={t}"
                )
        else:
            selection = list(raw)
            k = len(selection)
        if k > cap_t:
            raise SchedulerProtocolError(
                f"{scheduler.name} selected {k} > m={cap_t} nodes at t={t}"
            )
        finish = t + 1
        ready_jobs_in_order: list[int] = []
        ready_locals: list[Array] = []
        flat_ready_gids: Optional[Array] = None

        if 0 < k < _SCALAR_THRESHOLD:
            # Scalar path: tiny steps are cheaper without array dispatch.
            if selection is None:
                if sel_arr is not None:
                    selection = [(int(a), int(b)) for a, b in sel_arr.tolist()]
                else:
                    assert gid_sel is not None
                    selection = _pairs_from_gids(offsets, gid_sel)
            if track_indeg and indeg_list is None:
                indeg_list = indeg.tolist()
            newly_by_job: dict[int, list[int]] = {}
            for i, (job_id, node) in enumerate(selection):
                # Entries are applied in order, so on failure the reference
                # engine's failing index is exactly this one.
                try:
                    lo = offsets_list[job_id]
                    legal = (
                        job_id >= 0
                        and 0 <= node < offsets_list[job_id + 1] - lo
                        and ready_mask[lo + node]
                    )
                except (IndexError, TypeError):
                    raise _selection_error(
                        selection, i, state, t, scheduler
                    ) from None
                if not legal:
                    raise _selection_error(selection, i, state, t, scheduler)
                gid = lo + node
                ready_mask[gid] = False
                completion_flat[gid] = finish
                done_flat[gid] = True
                unfinished[job_id] -= 1
                ready_per_job[job_id] -= 1
                total_left -= 1
                ready_total -= 1
                # Children always live in the selecting job's id range (the
                # flat CSR concatenates per-job DAGs).
                if track_indeg:
                    assert indeg_list is not None
                    for child in child_indices[
                        child_indptr[gid] : child_indptr[gid + 1]
                    ].tolist():
                        left = indeg_list[child] - 1
                        indeg_list[child] = left
                        indeg[child] = left
                        if left == 0:
                            newly_by_job.setdefault(job_id, []).append(child - lo)
                else:
                    # Out-forest: the sole parent just completed, so every
                    # child is ready now.
                    for child in child_indices[
                        child_indptr[gid] : child_indptr[gid + 1]
                    ].tolist():
                        newly_by_job.setdefault(job_id, []).append(child - lo)
            flat_parts: list[Array] = []
            for job_id, locals_ in newly_by_job.items():
                locals_.sort()
                arr = np.array(locals_, dtype=_INT)
                garr = offsets[job_id] + arr
                ready_mask[garr] = True
                ready_per_job[job_id] += arr.size
                ready_total += arr.size
                if use_flat_ready:
                    flat_parts.append(garr)
                else:
                    ready_jobs_in_order.append(job_id)
                    ready_locals.append(arr)
            if flat_parts:
                if len(flat_parts) == 1:
                    flat_ready_gids = flat_parts[0]
                else:
                    flat_ready_gids = np.concatenate(flat_parts)
                    flat_ready_gids.sort()
        elif k:
            # Batched path: apply + validate the whole selection at once.
            if gid_sel is not None:
                # Flat-gid form: bounds come from the sorted copy, then one
                # readiness reduction and a sort-diff distinctness check.
                gids = gid_sel.astype(_INT, copy=False)
                sg = np.sort(gids)
                ok = bool(int(sg[0]) >= 0 and int(sg[-1]) < n_total) and bool(
                    ready_mask[gids].all() and (sg[1:] != sg[:-1]).all()
                )
                if ok:
                    jobs_sel = np.searchsorted(offsets, gids, side="right") - 1
            else:
                if sel_arr is not None:
                    ok = True
                    jobs_sel = sel_arr[:, 0].astype(_INT, copy=False)
                    nodes_sel = sel_arr[:, 1].astype(_INT, copy=False)
                else:
                    try:
                        sel = np.asarray(selection)
                        ok = (
                            sel.ndim == 2
                            and sel.shape[1] == 2
                            and sel.dtype.kind in "iu"
                        )
                    except (TypeError, ValueError):
                        ok = False
                    if ok:
                        jobs_sel = sel[:, 0].astype(_INT, copy=False)
                        nodes_sel = sel[:, 1].astype(_INT, copy=False)
                if ok:
                    if (jobs_sel < 0).any() or (jobs_sel >= n_jobs).any():
                        ok = False
                    else:
                        gids = offsets[jobs_sel] + nodes_sel
                        ok = bool(
                            (
                                (nodes_sel >= 0)
                                & (gids < offsets[jobs_sel + 1])
                            ).all()
                        )
                        if ok:
                            sg = np.sort(gids)
                            ok = bool(
                                ready_mask[gids].all()
                                # Distinctness via sort-diff (cheaper than
                                # np.unique, which also extracts values).
                                and (k < 2 or (sg[1:] != sg[:-1]).all())
                            )
            if not ok:
                if selection is None:
                    if sel_arr is not None:
                        selection = [
                            (int(a), int(b)) for a, b in sel_arr.tolist()
                        ]
                    else:
                        assert gid_sel is not None
                        selection = _pairs_from_gids(offsets, gid_sel)
                raise _diagnose_selection(selection, state, t, scheduler)
            completion_flat[gids] = finish
            done_flat[gids] = True
            ready_mask[gids] = False
            cnt = np.bincount(jobs_sel, minlength=n_jobs)
            unfinished -= cnt
            if track_per_job:
                ready_per_job -= cnt
            total_left -= k
            ready_total -= k
            if indeg_list is not None:
                indeg_list = None
            kids = k_children(child_indptr, child_indices, gids)
            n_children += 1
            if kids.size:
                if track_indeg:
                    np.subtract.at(indeg, kids, 1)
                if is_forest:
                    # Every child's sole parent just completed: all ready.
                    stream = kids
                    childs = np.sort(kids)
                else:
                    zero_mask = indeg[kids] == 0
                    zc = kids[zero_mask]
                    if zc.size:
                        # A multi-parent child hits zero on its *last*
                        # decrement; keep that occurrence only so callback
                        # order matches the reference loop exactly.
                        zpos = np.nonzero(zero_mask)[0]
                        order = np.lexsort((zpos, zc))
                        zc, zpos = zc[order], zpos[order]
                        last = np.ones(zc.size, dtype=bool)
                        last[:-1] = zc[1:] != zc[:-1]
                        zc, zpos = zc[last], zpos[last]
                        stream = zc[np.argsort(zpos, kind="stable")]
                        childs = zc  # ascending unique
                    else:
                        stream = childs = zc  # nothing enabled
                if childs.size:
                    ready_mask[childs] = True
                    ready_total += childs.size
                    if track_per_job:
                        sjobs = (
                            np.searchsorted(offsets, stream, side="right") - 1
                        )
                        ready_per_job += np.bincount(sjobs, minlength=n_jobs)
                    if use_flat_ready:
                        flat_ready_gids = childs
                    else:
                        # Group per job in first-enabled order, ascending.
                        ujobs, first = np.unique(sjobs, return_index=True)
                        for j in ujobs[np.argsort(first, kind="stable")].tolist():
                            lo, hi = offsets_list[j], offsets_list[j + 1]
                            a = np.searchsorted(childs, lo)
                            b = np.searchsorted(childs, hi)
                            ready_jobs_in_order.append(j)
                            ready_locals.append(childs[a:b] - lo)

        if observer is not None:
            if selection is None:
                if sel_arr is not None:
                    selection = [(int(a), int(b)) for a, b in sel_arr.tolist()]
                else:
                    assert gid_sel is not None
                    selection = _pairs_from_gids(offsets, gid_sel)
            observer.on_step(t, selection, state)
        stats.steps += 1
        stats.selections += k
        t = finish
        if flat_ready_gids is not None:
            scheduler.on_ready_gids(t, flat_ready_gids)
        else:
            if fault_injector is not None and ready_jobs_in_order:
                # Perturb the order delivery groups arrive in (the per-job
                # node arrays stay ascending — that part is contractual).
                order = fault_injector.delivery_order(
                    t, len(ready_jobs_in_order)
                )
                if order is not None:
                    ready_jobs_in_order = [
                        ready_jobs_in_order[int(i)] for i in order
                    ]
                    ready_locals = [ready_locals[int(i)] for i in order]
            for job_id, arr in zip(ready_jobs_in_order, ready_locals):
                scheduler.on_nodes_ready(t, job_id, arr)

    schedule = Schedule.from_flat(instance, m, completion_flat)
    for kname, count in (
        ("commit_frontier", n_commit),
        ("csr_children", n_children),
        ("chain_min_dt", n_min_dt),
        ("macro_fill", n_macro),
    ):
        if count:
            stats.kernel_dispatches[kname] = count
    stats.sim_seconds = time.perf_counter() - t_wall
    _GLOBAL_STATS.add(stats)
    object.__setattr__(schedule, "engine_stats", stats)
    return schedule


# ----------------------------------------------------------------------
# Batched multi-instance engine
# ----------------------------------------------------------------------

#: Element cap on one macro commit's ``(selected, Δt)`` chain block.
#: Splitting an over-budget macro window into several commits is pure
#: compression bookkeeping — the committed columns are identical — so this
#: only bounds peak memory, never results.
_MACRO_BLOCK_BUDGET = 1 << 22

#: Availability accepted by :func:`simulate_batch`: one spec shared by the
#: whole batch (an :class:`~repro.core.availability.AvailabilityTrace` or a
#: plain sequence of ints), or a per-instance sequence of such specs
#: (``None`` entries meaning "constant m" for that instance).
BatchAvailability = Union[
    AvailabilityLike, Sequence[Optional[AvailabilityLike]], None
]


def _normalize_batch_availability(
    availability: BatchAvailability, m: int, n: int
) -> Optional[list[Optional[AvailabilityTrace]]]:
    """Resolve a batch availability spec to per-instance traces.

    Returns ``None`` for the constant-``m`` case; otherwise a length-``n``
    list of validated traces (``None`` entries = constant ``m``).
    """
    if availability is None:
        return None
    if isinstance(availability, AvailabilityTrace):
        shared = as_trace(availability, m)
        return [shared] * n
    seq = list(availability)
    if all(isinstance(v, (int, np.integer)) for v in seq):
        shared = as_trace([int(v) for v in seq], m)
        return [shared] * n
    if len(seq) != n:
        raise ConfigurationError(
            f"per-instance availability has {len(seq)} entries for "
            f"{n} instances"
        )
    return [None if v is None else as_trace(v, m) for v in seq]


def _batch_priorities(
    scheduler: Scheduler, instances: Sequence[Instance], m: int
) -> list[Optional[Array]]:
    """Probe per-instance eligibility for the lockstep path.

    Mirrors :func:`simulate`'s kernel setup: ``reset`` then
    :meth:`Scheduler.frontier_priorities` per instance. ``None`` entries
    mark instances that must fall back to per-instance runs.
    """
    if not (scheduler.batch_capable and scheduler.supports_fast_forward):
        return [None] * len(instances)
    kernels: list[Optional[Array]] = []
    for inst in instances:
        scheduler.reset(inst, m)
        kernels.append(scheduler.frontier_priorities(inst))
    return kernels


def _simulate_batch_packed(
    batch: InstanceBatch,
    m: int,
    prio_full: Array,
    traces: Optional[list[Optional[AvailabilityTrace]]],
    max_steps: int,
    macro_ok: bool,
    stats: EngineStats,
) -> Array:
    """Advance every instance of ``batch`` in lockstep; returns the
    batch-global completion array.

    Correctness rests on the priority-commit observation: under the FIFO
    frontier contract with a priority kernel, each instance's step-``t``
    selection is exactly its ``cap_t`` smallest ready nodes in
    ``(job id, kernel priority, node id)`` order — truncated or not. The
    engine therefore keeps ONE sorted array of ready *selection ranks*
    (the batch-global permutation ``sel_rank`` below); per step, each
    instance's selection is a prefix slice of its rank segment, and all B
    commits are single NumPy writes.
    """
    node_off = batch.node_off
    n_total = int(node_off[-1])
    n_inst = batch.n_instances
    is_forest = batch.all_out_forests

    # Kernel backend (REPRO_BACKEND): the lockstep engine's hot kernels
    # dispatch through it, with local dispatch counters folded into stats
    # once at the end (same discipline as simulate()).
    backend = get_backend()
    stats.backend = backend.name
    k_commit = backend.commit_frontier
    k_children = backend.csr_children
    k_min_dt = backend.chain_min_dt
    k_macro = backend.macro_fill
    k_merge = backend.merge_sorted
    k_take = backend.batch_take
    n_commit = n_children = n_min_dt = n_macro = 0
    n_merge = n_take = 0

    # Batch-global selection order: instance-major because batch-global
    # job ids are; within a job, (priority, id) — exactly the per-instance
    # encoded-frontier order (see numpy_backend.batch_select_order).
    order, sel_rank = backend.batch_select_order(prio_full, batch.job_of_node)
    stats.kernel_dispatches["batch_select_order"] = (
        stats.kernel_dispatches.get("batch_select_order", 0) + 1
    )
    # Instance b's nodes occupy the contiguous rank range
    # [node_off[b], node_off[b+1]) — segment boundaries into the sorted
    # frontier come from one searchsorted against node_off.

    # Arrival schedule: every DAG root keyed by (release, selection rank).
    root_keys = sel_rank[batch.root_gids]
    arr_order = np.lexsort((root_keys, batch.root_release))
    arr_rel = batch.root_release[arr_order]
    arr_keys = root_keys[arr_order]
    n_roots = int(arr_rel.size)
    p = 0  # roots below this index have been delivered

    completion_flat = np.zeros(n_total, dtype=_INT)
    left = np.diff(node_off)  # per-instance unfinished counts
    total_left = int(left.sum())
    indeg = None if is_forest else batch.indegree.copy()
    child_indptr = batch.child_indptr
    child_indices = batch.child_indices
    fkeys = np.empty(0, dtype=_INT)  # sorted ranks of all ready nodes

    # Per-instance capacities: constant m, or a padded (B, L) prefix
    # matrix plus tail vector (rows without a trace are all-m).
    if traces is None:
        horizons = tails = cap_mat = None
        max_horizon = 0
    else:
        horizons = np.array(
            [0 if tr is None else tr.horizon for tr in traces], dtype=_INT
        )
        tails = np.array(
            [m if tr is None else tr.tail for tr in traces], dtype=_INT
        )
        max_horizon = int(horizons.max())
        cap_mat = np.full((n_inst, max_horizon), m, dtype=_INT)
        for b, tr in enumerate(traces):
            if tr is not None and tr.horizon:
                cap_mat[b, : tr.horizon] = tr.values

    t = 0
    while total_left:
        if t > max_steps:
            raise SimulationError(
                f"simulation exceeded max_steps={max_steps}; batched run "
                f"appears to be livelocked ({total_left} subjobs left)"
            )
        if p < n_roots and arr_rel[p] == t:
            q = int(np.searchsorted(arr_rel, t, side="right"))
            fkeys = k_merge(fkeys, arr_keys[p:q])
            n_merge += 1
            p = q
        if fkeys.size == 0:
            # The whole batch is idle: jump to the next arrival anywhere.
            if p >= n_roots:
                raise SimulationError(
                    "no ready work and no future arrivals but "
                    f"{total_left} subjobs unfinished"
                )
            t = int(arr_rel[p])
            continue

        seg = np.searchsorted(fkeys, node_off)
        counts = np.diff(seg)
        if traces is None:
            caps = None
            k = np.minimum(counts, m)
        else:
            caps = tails.copy()
            live = horizons > t
            if live.any():
                caps[live] = cap_mat[live, t]
            k = np.minimum(counts, caps)
        total_k = int(k.sum())
        n_active = int(np.count_nonzero(left))

        if total_k == 0:
            # Every instance with ready work drew zero capacity: commit an
            # empty step (time still advances, like the per-instance engine).
            stats.steps += 1
            stats.fast_forwarded_steps += 1
            stats.record_batch_step(n_active)
            t += 1
            continue

        # Ragged prefix gather: instance b takes the first k[b] entries of
        # its frontier segment (= its forced/kernel selection this step).
        taken, remaining = k_take(fkeys, seg, k, total_k)
        n_take += 1
        gids = order[taken]
        truncated_any = bool(np.any((k < counts) & (k > 0)))

        # Batched macro-step: when every capacity-holding instance commits
        # its whole frontier, the pattern repeats for Δt steps bounded by
        # the next arrival, the shortest chain-run remainder among the
        # selected nodes, the window over which every instance's capacity
        # keeps its regime, and the macro block memory budget.
        dt = 1
        if macro_ok and not truncated_any:
            if p < n_roots:
                dt = int(arr_rel[p]) - t
            else:
                dt = total_left  # chain remainders tighten below
            if dt > 1:
                assert batch.steps_to_end is not None
                dt = int(k_min_dt(batch.steps_to_end, gids, dt))
                n_min_dt += 1
            if dt > 1:
                dt = min(dt, max(1, _MACRO_BLOCK_BUDGET // total_k))
            if dt > 1 and traces is not None:
                committing = k > 0
                idle_front = (counts > 0) & ~committing
                span = 1
                while span < dt:
                    tk = t + span
                    if tk >= max_horizon:
                        ck = tails
                    else:
                        ck = tails.copy()
                        live = horizons > tk
                        ck[live] = cap_mat[live, tk]
                    ok = bool(
                        np.all(ck[committing] >= counts[committing])
                    ) and bool(np.all(ck[idle_front] == 0))
                    if not ok:
                        break
                    if tk >= max_horizon:
                        span = dt  # constant beyond every prefix
                        break
                    span += 1
                dt = span
        if dt > 1:
            assert batch.run_nodes is not None
            assert batch.node_index is not None
            assert batch.steps_to_end is not None
            # (total_k, Δt) chain block: column i holds the nodes every
            # committing instance is forced to run at step t + i.
            nxt, term = k_macro(
                batch.run_nodes,
                batch.node_index,
                batch.steps_to_end,
                completion_flat,
                gids,
                t,
                dt,
            )
            kids = k_children(child_indptr, child_indices, term)
            n_macro += 1
            n_children += 1
            new_keys = np.sort(sel_rank[np.concatenate((nxt, kids))])
            fkeys = k_merge(remaining, new_keys)
            n_merge += 1
            left -= k * dt
            total_left -= total_k * dt
            stats.steps += dt
            stats.fast_forwarded_steps += dt
            stats.macro_steps += 1
            stats.compressed_steps += dt
            stats.selections += total_k * dt
            stats.record_batch_step(n_active)
            t += dt
            continue

        kids = k_commit(child_indptr, child_indices, completion_flat, gids, t + 1)
        n_commit += 1
        if is_forest:
            newly = kids  # sole parent just completed: all ready
        else:
            assert indeg is not None
            np.subtract.at(indeg, kids, 1)
            newly = kids[indeg[kids] == 0]
            if newly.size:
                newly = np.unique(newly)
        new_keys = np.sort(sel_rank[newly])
        fkeys = k_merge(remaining, new_keys)
        n_merge += 1
        left -= k
        total_left -= total_k
        stats.steps += 1
        stats.fast_forwarded_steps += 1
        stats.selections += total_k
        if truncated_any:
            stats.kernel_steps += 1
        stats.record_batch_step(n_active)
        t += 1

    kd = stats.kernel_dispatches
    for kname, count in (
        ("commit_frontier", n_commit),
        ("csr_children", n_children),
        ("chain_min_dt", n_min_dt),
        ("macro_fill", n_macro),
        ("merge_sorted", n_merge),
        ("batch_take", n_take),
    ):
        if count:
            kd[kname] = kd.get(kname, 0) + count
    return completion_flat


def simulate_batch(
    instances: Sequence[Instance],
    m: int,
    scheduler: Scheduler,
    *,
    availability: BatchAvailability = None,
    max_steps: Optional[int] = None,
    use_macro_steps: Optional[bool] = None,
    batch: Optional[InstanceBatch] = None,
) -> list[Schedule]:
    """Run ``scheduler`` on many independent instances in lockstep.

    The batched engine packs the instances' flat-CSR layouts along a batch
    axis (:func:`~repro.core.instance.pack_instances`) and advances every
    eligible instance per time step with single NumPy passes — including a
    batched chain-run macro-step. Results are **bit-identical** to running
    :func:`simulate` per instance (enforced by the three-way property
    suite): eligibility is exactly the regime in which the per-instance
    engine never dispatches ``select`` — the scheduler declares
    :attr:`Scheduler.batch_capable` (and the fast-forward contract) and
    exposes a priority kernel for the instance. Ineligible instances are
    transparently routed through per-instance :func:`simulate` (counted in
    :attr:`EngineStats.fallback_runs`).

    Parameters
    ----------
    instances:
        Independent instances; one schedule is returned per instance, in
        order.
    scheduler:
        A single scheduler instance, ``reset`` per probed/fallback run —
        the same reuse contract as consecutive :func:`simulate` calls.
    availability:
        One spec for the whole batch, or a per-instance sequence of specs
        (see :data:`BatchAvailability`).
    max_steps / use_macro_steps:
        As for :func:`simulate`; the default step bound covers the whole
        batch.
    batch:
        Optional pre-packed :class:`InstanceBatch` for ``instances``
        (reused across sweeps to skip packing); must pack exactly these
        instances.

    Returns
    -------
    list[Schedule]
        One validated-feasible schedule per instance. Batched runs share
        one :class:`EngineStats` block (attached to each of their
        schedules); fallback runs carry their own per-run stats.
    """
    if m <= 0:
        raise ConfigurationError("m must be positive")
    insts = tuple(instances)
    if not insts:
        return []
    traces = _normalize_batch_availability(availability, m, len(insts))
    kernels = _batch_priorities(scheduler, insts, m)
    eligible = [b for b, kern in enumerate(kernels) if kern is not None]

    if max_steps is None:
        # Same shape of guard as simulate()'s default, loosened so it costs
        # O(B) instead of a per-job Python scan: jobs are release-sorted so
        # jobs[-1] is the latest arrival, and span-sums are bounded by total
        # work (== flat n_nodes, cached and needed for packing anyway).
        max_steps = 16 + max(
            (inst.jobs[-1].release if inst.jobs else 0)
            + 2 * inst.flat_graph.n_nodes
            for inst in insts
        )
        if traces is not None:
            max_steps += max(
                (0 if tr is None else tr.horizon) + inst.flat_graph.n_nodes
                for tr, inst in zip(traces, insts)
            )

    stats = EngineStats()
    t_wall = time.perf_counter()
    results: list[Optional[Schedule]] = [None] * len(insts)

    if eligible:
        if batch is not None and len(eligible) == len(insts):
            if len(batch.instances) != len(insts) or any(
                a is not b for a, b in zip(batch.instances, insts)
            ):
                raise ConfigurationError(
                    "simulate_batch: `batch` does not pack these instances"
                )
            packed = batch
        else:
            packed = pack_instances([insts[b] for b in eligible])
        prio_full = np.concatenate([kernels[b] for b in eligible])
        sub_traces = (
            None if traces is None else [traces[b] for b in eligible]
        )
        macro_ok = (
            packed.all_out_forests
            and scheduler.macro_step_safe
            and use_macro_steps is not False
        )
        completion_flat = _simulate_batch_packed(
            packed, m, prio_full, sub_traces, max_steps, macro_ok, stats
        )
        for view, b in zip(
            packed.completion_views(completion_flat), eligible
        ):
            schedule = Schedule.from_flat(insts[b], m, view)
            object.__setattr__(schedule, "engine_stats", stats)
            results[b] = schedule

    stats.fallback_runs = len(insts) - len(eligible)
    stats.sim_seconds = time.perf_counter() - t_wall
    _GLOBAL_STATS.add(stats)

    for b, kern in enumerate(kernels):
        if kern is None:
            results[b] = simulate(
                insts[b],
                m,
                scheduler,
                availability=None if traces is None else traces[b],
                max_steps=max_steps,
                use_macro_steps=use_macro_steps,
            )
    assert all(s is not None for s in results)
    return results  # type: ignore[return-value]


def _simulate_reference(
    instance: Instance,
    m: int,
    scheduler: Scheduler,
    *,
    max_steps: Optional[int] = None,
    availability: Optional[AvailabilityLike] = None,
    fault_injector: Optional[FaultHooks] = None,
) -> Schedule:
    """The original per-node simulation loop, kept verbatim as ground truth.

    The differential-equivalence tests assert that :func:`simulate`
    produces bit-identical completion arrays to this loop for every
    scheduler on a spread of seeded workloads — including runs under an
    availability trace and/or a fault injector, whose hooks fire in the
    exact same sequence here as in the vectorized engine. Not a hot path —
    it exists to pin semantics, not to be fast.
    """
    if m <= 0:
        raise ConfigurationError("m must be positive")
    trace: Optional[AvailabilityTrace] = (
        None if availability is None else as_trace(availability, m)
    )
    if max_steps is None:
        total_span = sum(j.span for j in instance)
        max_steps = instance.horizon_hint + total_span + 16
        if trace is not None:
            max_steps += trace.horizon + instance.total_work

    completion = [np.zeros(job.dag.n, dtype=_INT) for job in instance]
    scheduler.reset(instance, m)
    if fault_injector is not None:
        fault_injector.begin_run()

    releases = instance.releases
    arrival_order = np.argsort(releases, kind="stable")
    next_arrival_idx = 0
    n_jobs = len(instance)

    ready_sets: list[set[int]] = [set() for _ in instance]
    indegrees = [job.dag.indegree.copy() for job in instance]
    done_arrays = [np.zeros(job.dag.n, dtype=bool) for job in instance]
    unfinished = np.array([job.dag.n for job in instance], dtype=_INT)
    child_indptrs = [job.dag.child_indptr for job in instance]
    child_indices = [job.dag.child_indices for job in instance]
    ready_total = 0
    total_left = int(unfinished.sum())

    def reference_error(
        selection: list[tuple[int, int]], index: int
    ) -> SchedulerProtocolError:
        job_id, node = selection[index]
        if not (0 <= job_id < n_jobs):
            return SchedulerProtocolError(
                f"{scheduler.name} selected unknown job {job_id} at t={t}"
            )
        if (job_id, node) in selection[:index]:
            return SchedulerProtocolError(
                f"{scheduler.name} selected ({job_id},{node}) twice at t={t}"
            )
        return SchedulerProtocolError(
            f"{scheduler.name} selected non-ready subjob ({job_id},{node}) at t={t}"
        )

    t = 0
    while total_left:
        if t > max_steps:
            raise SimulationError(
                f"simulation exceeded max_steps={max_steps}; scheduler "
                f"{scheduler.name} appears to be livelocked "
                f"({int(unfinished.sum())} subjobs left)"
            )
        while (
            next_arrival_idx < n_jobs
            and releases[arrival_order[next_arrival_idx]] == t
        ):
            job_id = int(arrival_order[next_arrival_idx])
            job = instance[job_id]
            scheduler.on_job_arrival(t, job_id, job)
            roots = job.dag.roots
            ready_sets[job_id].update(roots.tolist())
            ready_total += roots.size
            scheduler.on_nodes_ready(t, job_id, roots)
            next_arrival_idx += 1

        if ready_total == 0:
            if next_arrival_idx >= n_jobs:
                raise SimulationError(
                    "no ready work and no future arrivals but "
                    f"{int(unfinished.sum())} subjobs unfinished"
                )
            t = int(releases[arrival_order[next_arrival_idx]])
            continue

        cap_t = m if trace is None else trace.capacity_at(t)

        if fault_injector is not None and fault_injector.should_crash(t):
            # Crash/restart, mirroring the vectorized engine exactly:
            # reset, replay arrivals in release order, re-deliver each
            # unfinished job's live ready frontier.
            scheduler.reset(instance, m)
            for idx in range(next_arrival_idx):
                job_id = int(arrival_order[idx])
                scheduler.on_job_arrival(t, job_id, instance[job_id])
            for idx in range(next_arrival_idx):
                job_id = int(arrival_order[idx])
                if unfinished[job_id] > 0 and ready_sets[job_id]:
                    scheduler.on_nodes_ready(
                        t,
                        job_id,
                        np.array(sorted(ready_sets[job_id]), dtype=_INT),
                    )

        raw = scheduler.select(t, cap_t)
        if isinstance(raw, np.ndarray) and raw.ndim == 1:
            # Flat-gid selections (see ``Selection``): decode to pairs —
            # the reference engine always works pairwise.
            selection = _pairs_from_gids(instance.flat_graph.offsets, raw)
        else:
            selection = list(raw)
        if len(selection) > cap_t:
            raise SchedulerProtocolError(
                f"{scheduler.name} selected {len(selection)} > m={cap_t} nodes at t={t}"
            )

        finish = t + 1
        newly_ready: dict[int, list[int]] = {}
        for i, (job_id, node) in enumerate(selection):
            try:
                ready_set = ready_sets[job_id]
            except (IndexError, TypeError):
                raise reference_error(selection, i) from None
            if job_id < 0 or node not in ready_set:
                raise reference_error(selection, i)
            ready_set.discard(node)
            ready_total -= 1
            completion[job_id][node] = finish
            done_arrays[job_id][node] = True
            unfinished[job_id] -= 1
            total_left -= 1
            indptr = child_indptrs[job_id]
            indeg = indegrees[job_id]
            for child in child_indices[job_id][indptr[node] : indptr[node + 1]]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    newly_ready.setdefault(job_id, []).append(int(child))
        t = finish
        groups = list(newly_ready.items())
        if fault_injector is not None and groups:
            order = fault_injector.delivery_order(t, len(groups))
            if order is not None:
                groups = [groups[int(i)] for i in order]
        for job_id, nodes in groups:
            arr = np.array(sorted(nodes), dtype=_INT)
            ready_sets[job_id].update(nodes)
            ready_total += len(nodes)
            scheduler.on_nodes_ready(t, job_id, arr)

    return Schedule(instance, m, completion)
