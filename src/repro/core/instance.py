"""Instances: collections of jobs arriving over time.

An :class:`Instance` is the input ``I`` of the paper: a finite set of jobs
with release times. This module also implements the arrival-time transforms
used in Sections 5.3/5.4 and 6:

* :meth:`Instance.batched_to` — round arrivals *up* to multiples of a period
  and merge same-time jobs (the ``I → I'`` reduction of Section 5.4, and the
  batched-arrival assumption of Section 6);
* :meth:`Instance.is_batched` / :meth:`Instance.is_semi_batched` —
  predicates for the assumptions of Theorems 5.6 and 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from .exceptions import ConfigurationError
from .job import Job, merge_jobs
from .util import Array, check_nonnegative_int

__all__ = [
    "Instance",
    "FlatInstanceGraph",
    "FlatChainRuns",
    "InstanceBatch",
    "concat_csr_blocks",
    "pack_instances",
]

_INT = np.int64


def concat_csr_blocks(
    blocks: Iterable[tuple[Array, Array, int]],
) -> tuple[Array, Array]:
    """Concatenate CSR blocks into one flat id space.

    Each block is ``(indptr, indices, node_shift)``: rows are appended in
    block order, edge targets are shifted by ``node_shift`` into the
    global id space, and row pointers are rebased onto the running edge
    tail. This offset-shift concat is the packing primitive shared by
    :attr:`Instance.flat_graph`, :func:`pack_instances`, and the
    streaming arena's compaction rebuild
    (:class:`repro.streaming.arena.StreamArena`).
    """
    indptr_parts = [np.zeros(1, dtype=_INT)]
    index_parts: list[Array] = []
    edge_offset = 0
    for indptr, indices, shift in blocks:
        indptr_parts.append(indptr[1:] + edge_offset)
        index_parts.append(indices + shift)
        edge_offset += indices.size
    child_indptr = np.concatenate(indptr_parts)
    child_indices = (
        np.concatenate(index_parts) if index_parts else np.empty(0, dtype=_INT)
    )
    return child_indptr, child_indices


@dataclass(frozen=True)
class FlatChainRuns:
    """Instance-level chain-run layout over global node ids.

    The per-job :class:`~repro.core.dag.ChainRuns` decompositions
    concatenated into the flat id space of :class:`FlatInstanceGraph`
    (runs never span jobs). This is the lookup structure behind the
    engine's macro-step commit: a frontier gid at ``run_nodes`` position
    ``p`` is followed, for the next ``steps_to_end - 1`` forced steps, by
    ``run_nodes[p + 1], run_nodes[p + 2], ...`` — so Δt consecutive forced
    selections of a chain slot are the contiguous block
    ``run_nodes[p : p + Δt]``.

    Attributes
    ----------
    run_nodes:
        ``(n,)`` global ids grouped by run, path order within each run.
    node_index:
        ``(n,)`` position of each gid inside ``run_nodes``.
    steps_to_end:
        ``(n,)`` nodes from the gid through its run's terminal, inclusive
        (always ``>= 1``).
    """

    run_nodes: Array
    node_index: Array
    steps_to_end: Array


@dataclass(frozen=True)
class FlatInstanceGraph:
    """Instance-level flattened CSR child structure.

    All jobs' DAGs concatenated into one node-id space so the simulation
    engine can update readiness with batched array kernels instead of
    per-job Python loops. Node ``v`` of job ``i`` has the *global* id
    ``offsets[i] + v``; ``offsets`` has one extra entry equal to the total
    node count, so ``offsets[i]:offsets[i+1]`` slices out job ``i``.

    Attributes
    ----------
    offsets:
        ``(n_jobs + 1,)`` node-id offset table.
    child_indptr / child_indices:
        CSR adjacency over global ids (children only; the engine never
        needs parent rows on the hot path).
    indegree:
        Per-global-node parent counts (read-only; the engine copies it
        once per run).
    all_out_forests:
        True iff every job is an out-forest (lets consumers skip
        duplicate-child handling, since each node has at most one parent).
    """

    offsets: Array
    child_indptr: Array
    child_indices: Array
    indegree: Array
    all_out_forests: bool

    @property
    def n_nodes(self) -> int:
        """Total subjob count across all jobs."""
        return int(self.offsets[-1])

    def writable_arrays(self) -> list[str]:
        """Names of CSR arrays that have (wrongly) become writeable.

        The engine freezes all four arrays with ``writeable=False``; the
        debug-mode checkpoints in ``Schedule``/``EngineState`` assert this
        list is empty (the runtime backstop for lint rule RPR201).
        """
        fields = ("offsets", "child_indptr", "child_indices", "indegree")
        return [
            name for name in fields if getattr(self, name).flags.writeable
        ]


@dataclass(frozen=True)
class Instance:
    """An online scheduling instance.

    Jobs are stored sorted by ``(release, original index)`` so "FIFO order"
    is simply index order. Index in this tuple is the canonical job id used
    by schedules and schedulers.
    """

    jobs: tuple[Job, ...]

    def __init__(self, jobs: Sequence[Job]) -> None:
        ordered = sorted(enumerate(jobs), key=lambda p: (p[1].release, p[0]))
        object.__setattr__(self, "jobs", tuple(j for _, j in ordered))
        if not self.jobs:
            raise ConfigurationError("an instance must contain at least one job")

    def __getstate__(self) -> dict:
        # Drop materialized cached layouts: unpickling would thaw their
        # writeable=False arrays (numpy serializes values, not flags),
        # breaking the shared-CSR freeze contract (lint rule RPR201) in
        # the receiving process — e.g. a pool worker handed pre-built
        # instances by the batched trial runner. Rebuilding lazily on
        # first use re-freezes them and keeps pickles small.
        state = dict(self.__dict__)
        state.pop("flat_graph", None)
        state.pop("chain_layout", None)
        return state

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, i: int) -> Job:
        return self.jobs[i]

    @property
    def releases(self) -> Array:
        """Release times in job-id order (nondecreasing)."""
        return np.array([j.release for j in self.jobs], dtype=np.int64)

    @property
    def total_work(self) -> int:
        return int(sum(j.work for j in self.jobs))

    @property
    def max_span(self) -> int:
        return int(max(j.span for j in self.jobs))

    @property
    def horizon_hint(self) -> int:
        """A safe upper bound on the completion time of any work-conserving
        schedule on one processor: ``max release + total work``."""
        return int(self.releases.max()) + self.total_work

    @property
    def is_out_forest(self) -> bool:
        """True iff every job is an out-forest."""
        return all(j.is_out_forest for j in self.jobs)

    @cached_property
    def flat_graph(self) -> FlatInstanceGraph:
        """The flattened instance-level CSR (computed once, cached).

        Jobs are immutable, so the flat layout is safe to share between
        simulation runs; the engine treats it as read-only.
        """
        sizes = np.array([j.dag.n for j in self.jobs], dtype=_INT)
        offsets = np.zeros(len(self.jobs) + 1, dtype=_INT)
        np.cumsum(sizes, out=offsets[1:])
        child_indptr, child_indices = concat_csr_blocks(
            (job.dag.child_indptr, job.dag.child_indices, node_offset)
            for node_offset, job in zip(offsets[:-1].tolist(), self.jobs)
        )
        indegree = np.concatenate([j.dag.indegree for j in self.jobs])
        for arr in (offsets, child_indptr, child_indices, indegree):
            arr.setflags(write=False)
        return FlatInstanceGraph(
            offsets=offsets,
            child_indptr=child_indptr,
            child_indices=child_indices,
            indegree=indegree,
            all_out_forests=self.is_out_forest,
        )

    @cached_property
    def chain_layout(self) -> FlatChainRuns:
        """The flat :class:`FlatChainRuns` arrays (computed once, cached).

        Per-job runs are shifted into the global id space; each job's block
        of ``run_nodes`` occupies its ``offsets`` slice, so the flat
        position of a gid is the job offset plus its in-job run index.
        """
        offsets = self.flat_graph.offsets
        run_parts: list[Array] = []
        index_parts: list[Array] = []
        steps_parts: list[Array] = []
        for off, job in zip(offsets[:-1].tolist(), self.jobs):
            runs = job.dag.chain_runs
            run_parts.append(runs.order + off)
            index_parts.append(runs.index_of + off)
            steps_parts.append(runs.steps_to_end)
        run_nodes = np.concatenate(run_parts)
        node_index = np.concatenate(index_parts)
        steps_to_end = np.concatenate(steps_parts)
        for arr in (run_nodes, node_index, steps_to_end):
            arr.setflags(write=False)
        return FlatChainRuns(
            run_nodes=run_nodes,
            node_index=node_index,
            steps_to_end=steps_to_end,
        )

    def arrivals_at(self, t: int) -> list[int]:
        """Job ids released exactly at time ``t``."""
        return [i for i, j in enumerate(self.jobs) if j.release == t]

    def distinct_releases(self) -> Array:
        return np.unique(self.releases)

    # ------------------------------------------------------------------
    # Batching predicates and transforms (Sections 5.3 / 5.4 / 6)
    # ------------------------------------------------------------------

    def is_batched(self, period: int) -> bool:
        """True iff every release is an integer multiple of ``period`` and at
        most one job arrives per time (after merging, which the constructor
        does not do automatically)."""
        check_nonnegative_int(period, "period")
        if period == 0:
            raise ConfigurationError("period must be positive")
        rel = self.releases
        if np.any(rel % period != 0):
            return False
        return np.unique(rel).size == rel.size

    def is_semi_batched(self, half_period: int) -> bool:
        """True iff every release is an integer multiple of ``half_period``
        (the Section 5.3 assumption with ``half_period = OPT/2``)."""
        check_nonnegative_int(half_period, "half_period")
        if half_period == 0:
            raise ConfigurationError("half_period must be positive")
        return bool(np.all(self.releases % half_period == 0))

    def batched_to(self, period: int) -> "Instance":
        """The Section 5.4 reduction ``I → I'``.

        Jobs released in ``((i-1)*period, i*period]`` are delayed to
        ``i*period`` and merged into a single job. The optimal maximum flow
        of the result is at most ``OPT(I) + period`` (delay the optimal
        schedule by one period).
        """
        check_nonnegative_int(period, "period")
        if period == 0:
            raise ConfigurationError("period must be positive")
        buckets: dict[int, list[Job]] = {}
        for job in self.jobs:
            slot = -(-job.release // period) * period  # ceil to multiple
            buckets.setdefault(slot, []).append(job)
        merged: list[Job] = []
        for slot in sorted(buckets):
            group = buckets[slot]
            job, _ = merge_jobs(
                [g.delayed(slot) for g in group],
                release=slot,
                label=f"batch@{slot}",
            )
            merged.append(job)
        return Instance(merged)

    def delayed_by(self, delay: int) -> "Instance":
        """Every release shifted later by ``delay``."""
        check_nonnegative_int(delay, "delay")
        return Instance([j.delayed(j.release + delay) for j in self.jobs])

    def restricted_to(self, job_ids: Sequence[int]) -> "Instance":
        """Sub-instance containing only the given job ids."""
        ids = sorted(set(int(i) for i in job_ids))
        if not ids:
            raise ConfigurationError("restricted_to requires at least one job id")
        for i in ids:
            if not (0 <= i < len(self.jobs)):
                raise ConfigurationError(f"job id {i} out of range")
        return Instance([self.jobs[i] for i in ids])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Summary statistics (used by experiment tables)."""
        rel = self.releases
        works = np.array([j.work for j in self.jobs], dtype=np.int64)
        spans = np.array([j.span for j in self.jobs], dtype=np.int64)
        return {
            "n_jobs": len(self.jobs),
            "total_work": int(works.sum()),
            "max_work": int(works.max()),
            "max_span": int(spans.max()),
            "first_release": int(rel.min()),
            "last_release": int(rel.max()),
            "all_out_forests": self.is_out_forest,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        d = self.describe()
        return (
            f"Instance(n_jobs={d['n_jobs']}, total_work={d['total_work']}, "
            f"releases=[{d['first_release']}..{d['last_release']}])"
        )


@dataclass(frozen=True)
class InstanceBatch:
    """Structure-of-arrays packing of B independent instances.

    Every per-instance flat-CSR layout (:attr:`Instance.flat_graph`) is
    concatenated along one *batch axis*: node ``v`` of job ``j`` of
    instance ``b`` gets the batch-global id
    ``node_off[b] + instance_offsets[j] + v``. Because instances are laid
    out consecutively, any array indexed by batch-global id splits back
    into per-instance blocks by slicing at ``node_off`` — the layout the
    batched engine (:func:`~repro.core.simulator.simulate_batch`) exploits
    to advance all B instances with single NumPy passes.

    Attributes
    ----------
    instances:
        The packed instances, in caller order.
    node_off:
        ``(B + 1,)`` batch-global node offsets (``node_off[b]:node_off[b+1]``
        slices instance ``b``'s nodes).
    job_off:
        ``(B + 1,)`` batch-global job offsets.
    job_of_node:
        ``(N,)`` batch-global job id of every node (nondecreasing — jobs,
        like nodes, are instance-major).
    releases:
        ``(J,)`` release time of every batch-global job.
    root_gids / root_release:
        Concatenated DAG roots as batch-global ids with their jobs'
        release times — the batch arrival schedule (grouped by job,
        ascending within a job).
    child_indptr / child_indices / indegree:
        Concatenated CSR adjacency over batch-global ids (read-only, like
        the per-instance CSR; runs never cross instance boundaries).
    all_out_forests:
        True iff every packed instance is an out-forest.
    run_nodes / node_index / steps_to_end:
        Concatenated chain-run layouts (:attr:`Instance.chain_layout`)
        shifted into batch-global ids — present only when
        ``all_out_forests`` (the only regime the batched macro-step
        commits in); ``None`` otherwise.
    """

    instances: tuple[Instance, ...]
    node_off: Array
    job_off: Array
    job_of_node: Array
    releases: Array
    root_gids: Array
    root_release: Array
    child_indptr: Array
    child_indices: Array
    indegree: Array
    all_out_forests: bool
    run_nodes: Array | None
    node_index: Array | None
    steps_to_end: Array | None

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def n_nodes(self) -> int:
        """Total subjob count across the whole batch."""
        return int(self.node_off[-1])

    def completion_views(self, completion_flat: Array) -> list[Array]:
        """Slice a batch-global completion array back per instance."""
        return [
            completion_flat[self.node_off[b] : self.node_off[b + 1]]
            for b in range(self.n_instances)
        ]


def _batch_chain_runs(
    child_indptr: Array, child_indices: Array
) -> tuple[Array, Array, Array]:
    """Chain-run layout over a packed out-forest CSR, fully vectorized.

    Semantically the batch-global analogue of the per-job
    :attr:`~repro.core.dag.DAG.chain_runs` decomposition: a node continues
    its run iff it has exactly one child (in a forest that child's sole
    parent is the node, so the engine's macro commit may schedule it on
    the next step unconditionally). Computed by pointer doubling —
    O(N log max_chain) NumPy passes — instead of one per-job NumPy call
    chain per DAG, which dominated batch packing for sweeps of thousands
    of small instances.
    """
    n = int(child_indptr.size - 1)
    outdeg = np.diff(child_indptr)
    has_succ = outdeg == 1
    succ = np.full(n, -1, dtype=_INT)
    succ[has_succ] = child_indices[child_indptr[:-1][has_succ]]
    pred = np.full(n, -1, dtype=_INT)
    pred[succ[has_succ]] = np.nonzero(has_succ)[0]

    # steps_to_end: d[v] = nodes from v through its run terminal. Doubling
    # invariant after k rounds: d counts min(2^k, chain length) nodes and
    # g points 2^k successors ahead (or -1 past the end).
    d = np.ones(n, dtype=_INT)
    g = succ.copy()
    while True:
        valid = np.nonzero(g >= 0)[0]
        if valid.size == 0:
            break
        gv = g[valid]
        d[valid] += d[gv]
        g[valid] = g[gv]
    # head[v]: first node of v's run (doubling on pred; head[x] is clamped
    # at the run head once pred runs out, exactly mirroring d/g above).
    head = np.arange(n, dtype=_INT)
    g = pred.copy()
    while True:
        valid = np.nonzero(g >= 0)[0]
        if valid.size == 0:
            break
        gv = g[valid]
        head[valid] = head[gv]
        g[valid] = g[gv]

    # Runs laid out head-ascending; a node sits (head_len - own_len) past
    # its run's base, so node_index[succ(v)] == node_index[v] + 1.
    heads = np.nonzero(pred < 0)[0]
    base = np.zeros(n, dtype=_INT)
    lengths = d[heads]
    base[heads] = np.concatenate(
        (np.zeros(1, dtype=_INT), np.cumsum(lengths)[:-1])
    )
    node_index = base[head] + (d[head] - d)
    run_nodes = np.empty(n, dtype=_INT)
    run_nodes[node_index] = np.arange(n, dtype=_INT)
    return run_nodes, node_index, d


def pack_instances(instances: Sequence[Instance]) -> InstanceBatch:
    """Pack independent instances into one :class:`InstanceBatch`.

    Pure concatenation-with-shift over each instance's cached flat layout:
    O(total nodes) and allocation-bound. The packed arrays are frozen
    (``writeable=False``) like the per-instance CSR they mirror.
    """
    if not instances:
        raise ConfigurationError("pack_instances requires at least one instance")
    insts = tuple(instances)
    node_sizes = np.array(
        [inst.flat_graph.n_nodes for inst in insts], dtype=_INT
    )
    job_sizes = np.array([len(inst) for inst in insts], dtype=_INT)
    node_off = np.zeros(len(insts) + 1, dtype=_INT)
    np.cumsum(node_sizes, out=node_off[1:])
    job_off = np.zeros(len(insts) + 1, dtype=_INT)
    np.cumsum(job_sizes, out=job_off[1:])

    child_indptr, child_indices = concat_csr_blocks(
        (
            inst.flat_graph.child_indptr,
            inst.flat_graph.child_indices,
            int(node_off[b]),
        )
        for b, inst in enumerate(insts)
    )
    # One repeat over global job ids beats B per-instance repeat/shift
    # round-trips for sweeps of thousands of small instances.
    per_job_sizes = np.concatenate(
        [np.diff(inst.flat_graph.offsets) for inst in insts]
    )
    job_of_node = np.repeat(
        np.arange(int(job_off[-1]), dtype=_INT), per_job_sizes
    )
    indegree = np.concatenate([inst.flat_graph.indegree for inst in insts])
    releases = np.array(
        [j.release for inst in insts for j in inst.jobs], dtype=_INT
    )
    # Roots are exactly the zero-indegree nodes of the packed CSR, already
    # in (instance, job, node) order because the layout is instance-major.
    root_gids = np.nonzero(indegree == 0)[0].astype(_INT)
    root_release = releases[job_of_node[root_gids]]

    all_forests = all(inst.flat_graph.all_out_forests for inst in insts)
    run_nodes = node_index = steps_to_end = None
    if all_forests:
        run_nodes, node_index, steps_to_end = _batch_chain_runs(
            child_indptr, child_indices
        )

    frozen = [
        node_off, job_off, job_of_node, releases, root_gids, root_release,
        child_indptr, child_indices, indegree,
    ]
    if all_forests:
        frozen += [run_nodes, node_index, steps_to_end]
    for arr in frozen:
        arr.setflags(write=False)
    return InstanceBatch(
        instances=insts,
        node_off=node_off,
        job_off=job_off,
        job_of_node=job_of_node,
        releases=releases,
        root_gids=root_gids,
        root_release=root_release,
        child_indptr=child_indptr,
        child_indices=child_indices,
        indegree=indegree,
        all_out_forests=all_forests,
        run_nodes=run_nodes,
        node_index=node_index,
        steps_to_end=steps_to_end,
    )
