"""Series-parallel recognition and decomposition.

Dynamic-multithreaded programs compile to *series-parallel partial orders*
(Section 1), and the paper's open questions single out the series-parallel
class as the next frontier beyond out-trees. This module decides membership
and produces the decomposition tree:

* a single subjob is series-parallel;
* a *parallel* composition of series-parallel orders is series-parallel
  (disjoint union);
* a *series* composition (everything in the first part precedes everything
  in the second) is series-parallel.

Recognition uses the classical characterization (Valdes–Tarjan–Lawler): a
partial order is series-parallel iff it is **N-free**; equivalently, the
recursive split below always succeeds. We implement the recursive split on
the reachability (transitive-closure) matrix:

* **parallel split** — connected components of the comparability graph;
* **series split** — connected components of the *in*comparability graph,
  which must be totally ordered blockwise.

Complexity is O(n² · depth of recursion) with numpy boolean matrices —
ample for the job sizes the experiments use (≤ a few thousand nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .dag import DAG
from .exceptions import GraphError
from .util import Array

__all__ = ["SPNode", "sp_decomposition", "is_series_parallel"]


@dataclass(frozen=True)
class SPNode:
    """A node of the series-parallel decomposition tree.

    ``kind`` is ``"leaf"`` (with ``node`` set), ``"series"`` or
    ``"parallel"`` (with ``children`` set, in order for series).
    """

    kind: str
    node: Optional[int] = None
    children: tuple["SPNode", ...] = ()

    def leaves(self) -> list[int]:
        """Original node ids in this subtree."""
        if self.kind == "leaf":
            return [self.node]  # type: ignore[list-item]
        out: list[int] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def size(self) -> int:
        if self.kind == "leaf":
            return 1
        return sum(c.size() for c in self.children)


def _reachability(dag: DAG) -> Array:
    """Boolean matrix R with R[u, v] iff there is a path u -> v (u != v)."""
    n = dag.n
    reach = np.zeros((n, n), dtype=bool)
    # Process in reverse topological order: reach[u] = union of children's
    # reach plus the children themselves.
    for u in dag.topological_order[::-1]:
        kids = dag.children(int(u))
        if kids.size:
            reach[u, kids] = True
            reach[u] |= reach[kids].any(axis=0)
    return reach


def _components(adjacent: Array, ids: Array) -> list[Array]:
    """Connected components of the undirected graph ``adjacent`` restricted
    to ``ids`` (``adjacent`` indexed by original ids)."""
    remaining = set(int(i) for i in ids)
    comps: list[Array] = []
    while remaining:
        seed = remaining.pop()
        comp = {seed}
        frontier = [seed]
        while frontier:
            x = frontier.pop()
            neighbours = [y for y in remaining if adjacent[x, y]]
            for y in neighbours:
                remaining.discard(y)
                comp.add(y)
                frontier.append(y)
        comps.append(np.array(sorted(comp), dtype=np.int64))
    return comps


def sp_decomposition(dag: DAG) -> Optional[SPNode]:
    """The series-parallel decomposition tree of ``dag``'s partial order,
    or ``None`` if the order is not series-parallel (contains an N)."""
    if dag.n == 0:
        raise GraphError("empty DAG has no decomposition")
    reach = _reachability(dag)
    comparable = reach | reach.T
    incomparable = ~comparable
    np.fill_diagonal(incomparable, False)

    def solve(ids: Array) -> Optional[SPNode]:
        if ids.size == 1:
            return SPNode("leaf", node=int(ids[0]))
        # Parallel split: comparability components.
        comps = _components(comparable, ids)
        if len(comps) > 1:
            children: list[SPNode] = []
            for comp in comps:
                child = solve(comp)
                if child is None:
                    return None
                children.append(child)
            return SPNode("parallel", children=tuple(children))
        # Series split: incomparability components, which must be totally
        # ordered block against block.
        blocks = _components(incomparable, ids)
        if len(blocks) <= 1:
            return None  # connected and inseparable: contains an N
        # Order blocks: block A precedes B iff some (hence, if SP, every)
        # element of A reaches some element of B.
        def key(block: Array) -> int:
            # Count how many other elements reach into this block: sort by
            # number of predecessors outside the block.
            preds = reach[np.ix_(ids, block)].any(axis=1).sum()
            return int(preds)

        ordered = sorted(blocks, key=key)
        # Verify total blockwise order between consecutive blocks.
        for a, b in zip(ordered, ordered[1:]):
            if not reach[np.ix_(a, b)].all():
                return None
        series_children: list[SPNode] = []
        for block in ordered:
            child = solve(block)
            if child is None:
                return None
            series_children.append(child)
        return SPNode("series", children=tuple(series_children))

    return solve(np.arange(dag.n, dtype=np.int64))


def is_series_parallel(dag: DAG) -> bool:
    """True iff ``dag``'s induced partial order is series-parallel
    (equivalently: N-free)."""
    return sp_decomposition(dag) is not None


def series_segments(dag: DAG) -> Optional[list[Array]]:
    """Decompose ``dag`` into a maximal chain of out-forest *segments*.

    The paper (Section 1) notes that programs made of a sequence of
    parallel-for loops are "a series of out-trees" and suggests the
    out-tree algorithm may generalize to them. This function recognizes
    that class: it returns node-id arrays ``[S_1, S_2, ...]`` such that

    * every node is in exactly one segment;
    * each segment's *induced* sub-DAG is an out-forest;
    * all precedence between segments flows forward (everything in ``S_i``
      precedes everything in ``S_j`` for ``i < j``), so once ``S_i`` is
      fully executed, ``S_{i+1}``'s roots are all ready.

    Returns ``None`` when the DAG is not a series of out-forests (e.g. a
    parallel composition of two phased programs, or a non-SP order).
    An out-forest itself yields a single segment.
    """
    if dag.n == 0:
        raise GraphError("empty DAG has no segments")
    if dag.is_out_forest:
        return [np.arange(dag.n, dtype=np.int64)]
    tree = sp_decomposition(dag)
    if tree is None or tree.kind != "series":
        return None

    segments: list[Array] = []

    def flatten(node: SPNode) -> bool:
        """Append ``node``'s leaves as one or more segments; False on
        failure."""
        ids = np.array(sorted(node.leaves()), dtype=np.int64)
        sub, _ = dag.induced_subgraph(ids)
        if sub.is_out_forest:
            segments.append(ids)
            return True
        if node.kind == "series":
            return all(flatten(child) for child in node.children)
        return False

    for child in tree.children:
        if not flatten(child):
            return None
    # Merge a segment into its predecessor when the union is still an
    # out-forest (keeps segments maximal, minimizing sequential barriers).
    merged: list[Array] = []
    for seg in segments:
        if merged:
            candidate = np.concatenate([merged[-1], seg])
            sub, _ = dag.induced_subgraph(candidate)
            if sub.is_out_forest:
                merged[-1] = candidate
                continue
        merged.append(seg)
    return merged
