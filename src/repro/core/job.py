"""Jobs: a DAG plus a release time.

A :class:`Job` is the unit that arrives online (Section 3 of the paper):
the scheduler becomes aware of job ``i`` at its release time ``r_i`` and — in
the clairvoyant setting — learns its whole DAG at that moment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .dag import DAG
from .exceptions import ConfigurationError
from .util import Array, check_nonnegative_int

__all__ = ["Job", "merge_jobs"]


@dataclass(frozen=True)
class Job:
    """A dynamic-multithreaded job.

    Attributes
    ----------
    dag:
        Precedence structure; every node is a unit-time subjob.
    release:
        Arrival time ``r_i`` (non-negative integer). No subjob may run
        before ``release``; the flow of the job in a schedule ``S`` is
        ``C_i^S - release``.
    label:
        Optional human-readable name used by renderers and experiment
        tables.
    """

    dag: DAG
    release: int = 0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        check_nonnegative_int(self.release, "release")
        if self.dag.n == 0:
            raise ConfigurationError("a job must contain at least one subjob")

    # Convenience passthroughs ------------------------------------------------

    @property
    def work(self) -> int:
        """``W_i``: number of subjobs."""
        return self.dag.work

    @property
    def span(self) -> int:
        """``P_i``: vertices on the longest path (lower bound on flow)."""
        return self.dag.span

    @property
    def is_out_forest(self) -> bool:
        return self.dag.is_out_forest

    @property
    def is_out_tree(self) -> bool:
        return self.dag.is_out_tree

    def deeper_than(self, d: int) -> int:
        """``W_i(d)``: subjobs at depth strictly greater than ``d``."""
        return self.dag.deeper_than(d)

    def trivial_flow_lower_bound(self, m: int) -> int:
        """``max(P_i, ceil(W_i/m))`` — valid in any schedule on ``m``
        processors (Section 3)."""
        if m <= 0:
            raise ConfigurationError("m must be positive")
        return max(self.span, -(-self.work // m))

    def delayed(self, new_release: int) -> "Job":
        """Copy of this job released at ``new_release`` (must not be
        earlier than the current release: online algorithms may only delay)."""
        if new_release < self.release:
            raise ConfigurationError(
                f"cannot move release earlier ({self.release} -> {new_release})"
            )
        return Job(self.dag, new_release, self.label)

    def renamed(self, label: str) -> "Job":
        return Job(self.dag, self.release, label)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = f" {self.label!r}" if self.label else ""
        return (
            f"Job{name}(release={self.release}, work={self.work}, span={self.span})"
        )


def merge_jobs(
    jobs: list[Job],
    release: Optional[int] = None,
    label: Optional[str] = None,
) -> tuple[Job, Array]:
    """Union several jobs into one (Sections 5.3 / 6: "view all the jobs
    arriving at the same time as being one job").

    Parameters
    ----------
    jobs:
        Jobs to merge; the merged DAG is their disjoint union.
    release:
        Release of the merged job; defaults to the latest release among
        ``jobs`` (an online algorithm can only delay jobs, never advance
        them).

    Returns
    -------
    (job, offsets):
        The merged job, plus the node-id offset of each original job inside
        the union (length ``len(jobs) + 1``).
    """
    if not jobs:
        raise ConfigurationError("merge_jobs requires at least one job")
    union, offsets = DAG.disjoint_union([j.dag for j in jobs])
    if release is None:
        release = max(j.release for j in jobs)
    return Job(union, release, label), offsets
