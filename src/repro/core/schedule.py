"""Schedules: who ran when, plus feasibility validation and flow metrics.

Time semantics follow Section 3 of the paper exactly: ``S(t)`` is the set of
subjobs executed during the unit interval ``(t-1, t]``, so a subjob in
``S(t)`` *completes at* time ``t`` and the earliest step any subjob of a job
released at ``r`` may occupy is ``S(r+1)``. A schedule is stored as one
completion-time array per job (``completion[i][v] = t`` iff subjob ``v`` of
job ``i`` is in ``S(t)``; 0 means "never scheduled", which is only legal in
partial schedules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional, Sequence

import numpy as np

from .exceptions import InfeasibleScheduleError, ScheduleError
from .instance import Instance
from .util import Array, check_nonnegative_int

__all__ = ["Schedule"]

_INT = np.int64


def _flat_graph_still_frozen(instance: Instance) -> bool:
    """Debug-only backstop for lint rule RPR201 (compiled out under ``-O``).

    Only checks a flat graph that has already been materialized: forcing
    CSR construction just to inspect its flags would defeat the lazy
    ``cached_property``.
    """
    if "flat_graph" not in instance.__dict__:
        return True
    return not instance.flat_graph.writable_arrays()


@dataclass(frozen=True)
class Schedule:
    """A (possibly partial) schedule of an :class:`Instance` on ``m``
    processors.

    Attributes
    ----------
    instance:
        The instance this schedule serves.
    m:
        Number of processors.
    completion:
        ``completion[i][v]`` is the time step in which subjob ``v`` of job
        ``i`` ran (i.e. ``v ∈ S(completion[i][v])``), or 0 if unscheduled.
    """

    instance: Instance
    m: int
    completion: tuple[Array, ...]

    #: Per-run engine counters, attached by :func:`repro.core.simulate`
    #: (``None`` for schedules built any other way). Deliberately a
    #: ClassVar, not a dataclass field: diagnostics must not affect
    #: schedule equality.
    engine_stats: ClassVar[Any] = None

    def __init__(
        self, instance: Instance, m: int, completion: Sequence[Array]
    ) -> None:
        if m <= 0:
            raise ScheduleError("m must be positive")
        if len(completion) != len(instance):
            raise ScheduleError(
                f"completion arrays ({len(completion)}) must match job count "
                f"({len(instance)})"
            )
        assert _flat_graph_still_frozen(instance), (
            "Instance.flat_graph arrays have lost writeable=False; "
            "something wrote through the shared CSR (see lint rule RPR201)"
        )
        frozen: list[Array] = []
        for i, (job, arr) in enumerate(zip(instance, completion)):
            a = np.ascontiguousarray(arr, dtype=_INT)
            if a.shape != (job.dag.n,):
                raise ScheduleError(
                    f"job {i}: completion array has shape {a.shape}, "
                    f"expected ({job.dag.n},)"
                )
            if a.size and a.min() < 0:
                raise ScheduleError(f"job {i}: negative completion time")
            a.setflags(write=False)
            frozen.append(a)
        object.__setattr__(self, "instance", instance)
        object.__setattr__(self, "m", int(m))
        object.__setattr__(self, "completion", tuple(frozen))

    @classmethod
    def from_flat(
        cls, instance: Instance, m: int, completion_flat: Array
    ) -> "Schedule":
        """Build a schedule from one flat completion array over the
        instance's global node-id space (``Instance.flat_graph``).

        The engine commits completion times into a single flat array; this
        constructor slices it back into the per-job layout the Schedule
        API exposes. The per-job arrays are frozen views into the caller's
        buffer, so the caller must not write through it afterwards.
        """
        offsets = instance.flat_graph.offsets
        if completion_flat.shape != (int(offsets[-1]),):
            raise ScheduleError(
                f"flat completion array has shape {completion_flat.shape}, "
                f"expected ({int(offsets[-1])},)"
            )
        per_job = [
            completion_flat[offsets[i] : offsets[i + 1]]
            for i in range(len(instance))
        ]
        return cls(instance, m, per_job)

    # ------------------------------------------------------------------
    # Completeness / metrics
    # ------------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """True iff every subjob of every job has been scheduled."""
        return all(bool(np.all(c > 0)) for c in self.completion)

    def job_completion(self, i: int) -> int:
        """``C_i^S``: max completion time of any subjob of job ``i``.

        Raises :class:`ScheduleError` if the job is not fully scheduled.
        """
        c = self.completion[i]
        if np.any(c == 0):
            raise ScheduleError(f"job {i} is not fully scheduled")
        return int(c.max())

    def job_flow(self, i: int) -> int:
        """``F_i^S = C_i^S - r_i``."""
        return self.job_completion(i) - self.instance[i].release

    @property
    def flows(self) -> Array:
        """Per-job flow times, job-id order."""
        return np.array([self.job_flow(i) for i in range(len(self.instance))], dtype=_INT)

    @property
    def max_flow(self) -> int:
        """``F_max^S``: the objective value of this schedule."""
        return int(self.flows.max())

    @property
    def total_flow(self) -> int:
        """ℓ1 norm of flows (for comparison tables only)."""
        return int(self.flows.sum())

    @property
    def makespan(self) -> int:
        """Largest occupied time step (0 for an empty partial schedule)."""
        best = 0
        for c in self.completion:
            if c.size:
                best = max(best, int(c.max()))
        return best

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def usage_profile(self, job_ids: Optional[Sequence[int]] = None) -> Array:
        """``usage[t]`` = number of subjobs in ``S(t)`` (index 0 unused).

        With ``job_ids``, counts only those jobs — this is the restricted
        schedule ``S_i`` of Section 6 when ``job_ids`` are the jobs released
        no later than ``r_i``.
        """
        ids = range(len(self.instance)) if job_ids is None else job_ids
        horizon = self.makespan
        usage = np.zeros(horizon + 1, dtype=_INT)
        for i in ids:
            c = self.completion[i]
            scheduled = c[c > 0]
            if scheduled.size:
                usage += np.bincount(scheduled, minlength=horizon + 1)
        return usage

    def at(self, t: int) -> list[tuple[int, int]]:
        """``S(t)`` as a sorted list of ``(job_id, node_id)`` pairs."""
        check_nonnegative_int(t, "t")
        out: list[tuple[int, int]] = []
        for i, c in enumerate(self.completion):
            for v in np.nonzero(c == t)[0]:
                out.append((i, int(v)))
        return out

    def job_steps(self, i: int) -> list[tuple[int, Array]]:
        """Per-time node sets of job ``i``: sorted ``(t, nodes)`` pairs for
        every occupied time step (input format of the MC algorithm)."""
        c = self.completion[i]
        scheduled = np.nonzero(c > 0)[0]
        order = np.argsort(c[scheduled], kind="stable")
        scheduled = scheduled[order]
        times = c[scheduled]
        out: list[tuple[int, Array]] = []
        if scheduled.size == 0:
            return out
        boundaries = np.nonzero(np.diff(times))[0] + 1
        for block, t0 in zip(
            np.split(scheduled, boundaries), times[np.concatenate([[0], boundaries])]
        ):
            out.append((int(t0), np.sort(block)))
        return out

    def idle_steps(self, job_ids: Optional[Sequence[int]] = None) -> Array:
        """Time steps ``t`` in ``[1, makespan]`` where fewer than ``m``
        subjobs (of the selected jobs) ran."""
        usage = self.usage_profile(job_ids)
        steps = np.arange(1, usage.size, dtype=_INT)
        return steps[usage[1:] < self.m]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, *, require_complete: bool = True) -> None:
        """Check feasibility per Section 3; raise
        :class:`InfeasibleScheduleError` listing every violation.

        Checks: capacity (``|S(t)| <= m``), uniqueness (each subjob at most
        once — guaranteed by representation — and, when ``require_complete``,
        exactly once), precedence (``(u,v) ∈ E_i ⇒ t_u < t_v``), release
        (``v ∈ S(t) ⇒ t > r_i``).
        """
        violations: list[str] = []
        usage = self.usage_profile()
        over = np.nonzero(usage > self.m)[0]
        for t in over[:10]:
            violations.append(f"capacity exceeded at t={int(t)}: {int(usage[t])} > {self.m}")
        for i, (job, c) in enumerate(zip(self.instance, self.completion)):
            unscheduled = np.nonzero(c == 0)[0]
            if require_complete and unscheduled.size:
                violations.append(
                    f"job {i}: {unscheduled.size} subjobs never scheduled"
                )
            scheduled_mask = c > 0
            early = np.nonzero(scheduled_mask & (c <= job.release))[0]
            if early.size:
                violations.append(
                    f"job {i}: subjob {int(early[0])} runs at t={int(c[early[0]])} "
                    f"<= release {job.release}"
                )
            dag = job.dag
            sources = np.repeat(
                np.arange(dag.n, dtype=_INT), np.diff(dag.child_indptr)
            )
            targets = dag.child_indices
            both = scheduled_mask[sources] & scheduled_mask[targets]
            bad = np.nonzero(both & (c[sources] >= c[targets]))[0]
            if bad.size:
                u, v = int(sources[bad[0]]), int(targets[bad[0]])
                violations.append(
                    f"job {i}: precedence ({u},{v}) violated "
                    f"(t_u={int(c[u])} >= t_v={int(c[v])})"
                )
            # A scheduled child whose parent never ran is also infeasible.
            orphan = np.nonzero(~scheduled_mask[sources] & scheduled_mask[targets])[0]
            if orphan.size:
                u, v = int(sources[orphan[0]]), int(targets[orphan[0]])
                violations.append(
                    f"job {i}: subjob {v} ran but its predecessor {u} never did"
                )
        if violations:
            raise InfeasibleScheduleError(violations)

    def is_feasible(self, *, require_complete: bool = True) -> bool:
        """Boolean wrapper around :meth:`validate`."""
        try:
            self.validate(require_complete=require_complete)
        except InfeasibleScheduleError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "complete" if self.is_complete else "partial"
        return (
            f"Schedule(m={self.m}, jobs={len(self.instance)}, "
            f"makespan={self.makespan}, {state})"
        )
