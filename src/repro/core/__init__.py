"""Core model: DAGs, jobs, instances, schedules and the simulation engine.

These are the paper's Section 3 preliminaries turned into code. Everything
else in the library (schedulers, workloads, analyses, experiments) is built
on this subpackage.
"""

from .availability import AvailabilityTrace, as_trace
from .dag import (
    DAG,
    ChainRuns,
    antichain,
    caterpillar,
    chain,
    complete_kary_tree,
    spider,
    star,
)
from .exceptions import (
    ConfigurationError,
    CycleError,
    GraphError,
    InfeasibleScheduleError,
    NotAForestError,
    ReproError,
    ScheduleError,
    SchedulerProtocolError,
    SimulationError,
    SolverError,
)
from .instance import (
    FlatChainRuns,
    FlatInstanceGraph,
    Instance,
    InstanceBatch,
    pack_instances,
)
from .job import Job, merge_jobs
from .schedule import Schedule
from .simulator import (
    EngineState,
    EngineStats,
    FaultHooks,
    Scheduler,
    SimulationObserver,
    accumulate_engine_stats,
    engine_stats_snapshot,
    reset_engine_stats,
    simulate,
    simulate_batch,
)
from .io import (
    load_instance_json,
    load_schedule_npz,
    save_instance_json,
    save_schedule_npz,
)
from .sp import SPNode, is_series_parallel, series_segments, sp_decomposition
from .trace import MetricsCollector, TraceSummary

__all__ = [
    "DAG",
    "Job",
    "Instance",
    "Schedule",
    "Scheduler",
    "SimulationObserver",
    "AvailabilityTrace",
    "FaultHooks",
    "as_trace",
    "EngineState",
    "EngineStats",
    "FlatInstanceGraph",
    "FlatChainRuns",
    "InstanceBatch",
    "pack_instances",
    "ChainRuns",
    "engine_stats_snapshot",
    "reset_engine_stats",
    "accumulate_engine_stats",
    "MetricsCollector",
    "TraceSummary",
    "SPNode",
    "is_series_parallel",
    "sp_decomposition",
    "series_segments",
    "save_instance_json",
    "load_instance_json",
    "save_schedule_npz",
    "load_schedule_npz",
    "simulate",
    "simulate_batch",
    "merge_jobs",
    "chain",
    "antichain",
    "star",
    "complete_kary_tree",
    "spider",
    "caterpillar",
    "ReproError",
    "GraphError",
    "CycleError",
    "NotAForestError",
    "ScheduleError",
    "InfeasibleScheduleError",
    "SimulationError",
    "SchedulerProtocolError",
    "ConfigurationError",
    "SolverError",
]
