"""Packed instances: OPT known by construction.

The paper's Section 1 argues the hardest inputs are those an optimal
scheduler can pack into a *full rectangle* — "there are never any idle
processors", so an online algorithm that ever falls behind on work can never
catch up. This generator reverse-engineers exactly such inputs:

1. choose release times ``i · period`` and a target flow ``F``;
2. for every time column, split the ``m`` processors among the jobs alive
   in it (each alive job receiving at least one);
3. realize each job as an out-forest whose level ``k`` has exactly the
   width allocated to it in its ``k``-th active column (any width profile is
   an out-forest: level-``k`` nodes attach to arbitrary level-``k-1``
   parents).

The resulting witness schedule runs level ``k`` of each job at its
``k``-th column, is feasible, achieves flow exactly ``F`` for every job, and
fills all processors in the steady state — so ``OPT <= F``, and experiment
tables report ratios against ``F`` (an upper bound on OPT, i.e. a *lower*
bound on the true ratio... conservative in the opposite direction, which
the tables state; the load lower bound typically pins OPT = F exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.instance import Instance
from ..core.job import Job
from ..core.schedule import Schedule
from .random_trees import layered_tree

__all__ = ["PackedResult", "packed_instance"]

_INT = np.int64


@dataclass(frozen=True)
class PackedResult:
    """A packed instance plus its by-construction witness schedule."""

    instance: Instance
    witness: Schedule
    flow: int
    m: int

    @property
    def opt_upper_bound(self) -> int:
        return self.witness.max_flow


def packed_instance(
    m: int,
    n_jobs: int,
    flow: int,
    period: int,
    seed=None,
    *,
    pad_tail: bool = True,
) -> PackedResult:
    """Generate a packed instance.

    Parameters
    ----------
    m:
        Processors.
    n_jobs:
        Number of jobs, released at ``0, period, 2·period, ...``.
    flow:
        Target flow of every job; each job occupies columns
        ``r+1 .. r+flow``. Requires ``flow >= period`` for overlap and
        ``m >= ceil(flow / period)`` so every alive job can get a processor.
    period:
        Release spacing (``period <= flow`` gives a packed steady state;
        smaller periods mean more concurrently alive jobs).
    pad_tail:
        Also fill the ramp-up/ramp-down columns completely (the first and
        last ``flow - period`` columns have fewer alive jobs; padding gives
        those columns' full width to the alive jobs).
    """
    if m < 1:
        raise ConfigurationError("m must be >= 1")
    if n_jobs < 1:
        raise ConfigurationError("n_jobs must be >= 1")
    if period < 1:
        raise ConfigurationError("period must be >= 1")
    if flow < period:
        raise ConfigurationError("flow must be >= period (jobs must overlap)")
    max_alive = -(-flow // period)
    if m < max_alive:
        raise ConfigurationError(
            f"m={m} too small: up to {max_alive} jobs alive at once need a "
            "processor each"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    releases = [i * period for i in range(n_jobs)]
    horizon = releases[-1] + flow  # last occupied column
    # Alive job ids per column (1-indexed columns).
    widths = [np.zeros(flow, dtype=_INT) for _ in range(n_jobs)]
    for col in range(1, horizon + 1):
        alive = [
            i for i, r in enumerate(releases) if r + 1 <= col <= r + flow
        ]
        if not alive:
            continue
        if not pad_tail and len(alive) < max_alive:
            # Ramp columns: give each alive job just one unit.
            for i in alive:
                widths[i][col - releases[i] - 1] = 1
            continue
        # Full column: one unit each, then spread the slack randomly.
        alloc = np.ones(len(alive), dtype=_INT)
        slack = m - len(alive)
        if slack > 0:
            extra = rng.multinomial(slack, np.full(len(alive), 1.0 / len(alive)))
            alloc += extra
        for i, a in zip(alive, alloc):
            widths[i][col - releases[i] - 1] = a

    jobs = []
    completions = []
    for i, r in enumerate(releases):
        profile = [int(w) for w in widths[i]]
        assert all(w >= 1 for w in profile), "every column must allocate >= 1"
        dag = layered_tree(profile, rng)
        jobs.append(Job(dag, r, label=f"packed{i}"))
        # Witness: level k runs in column r + k + 1. layered_tree assigns
        # ids level-by-level, so completions follow the cumulative widths.
        comp = np.zeros(dag.n, dtype=_INT)
        start = 0
        for k, w in enumerate(profile):
            comp[start : start + w] = r + k + 1
            start += w
        completions.append(comp)

    instance = Instance(jobs)
    witness = Schedule(instance, m, completions)
    witness.validate()
    if witness.max_flow != flow:
        raise ConfigurationError("internal error: witness flow mismatch")
    return PackedResult(instance, witness, flow, m)
