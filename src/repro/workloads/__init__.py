"""Workload generators: deterministic tree shapes, random trees, recursion
trees of fork-join programs, the Section 4 adversarial family, packed
instances with known OPT, series-parallel DAGs, and arrival processes."""

from .adversarial import AdversarialResult, build_fifo_adversary
from .arrivals import (
    batched_instance,
    bursty_instance,
    poisson_instance,
    semi_batched_instance,
)
from .packed import PackedResult, packed_instance
from .phased import phased_parallel_for, series_of_trees
from .random_trees import (
    galton_watson_tree,
    layered_tree,
    random_attachment_tree,
    random_binary_tree,
    random_out_forest,
)
from .recursive import (
    divide_and_conquer_tree,
    map_reduce_dag,
    parallel_for_tree,
    quicksort_tree,
)
from .cache import cached_generator, clear_workload_cache, workload_cache_dir
from .seriesparallel import random_series_parallel

__all__ = [
    "AdversarialResult",
    "build_fifo_adversary",
    "batched_instance",
    "semi_batched_instance",
    "poisson_instance",
    "bursty_instance",
    "PackedResult",
    "packed_instance",
    "series_of_trees",
    "phased_parallel_for",
    "random_attachment_tree",
    "random_binary_tree",
    "galton_watson_tree",
    "layered_tree",
    "random_out_forest",
    "quicksort_tree",
    "divide_and_conquer_tree",
    "parallel_for_tree",
    "map_reduce_dag",
    "random_series_parallel",
    "cached_generator",
    "workload_cache_dir",
    "clear_workload_cache",
]
