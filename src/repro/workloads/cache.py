"""Keyed on-disk cache for expensive workload generators.

Adversarial co-simulations (:func:`~repro.workloads.build_fifo_adversary`)
and large random trees are pure functions of their arguments, yet the
experiment harness regenerates them for every seed of every sweep. The
:func:`cached_generator` decorator memoizes their pickled results on disk,
keyed by a canonicalized argument signature.

The cache is **opt-in**: it is active only while the ``REPRO_CACHE_DIR``
environment variable points at a directory (resolved at call time, so tests
can flip it per-case). Two safety valves keep cached results faithful:

* arguments that cannot be canonicalized to primitives (e.g. a live
  ``numpy`` ``Generator`` passed as ``seed``) bypass the cache — such calls
  are not reproducible from their signature;
* each decorated generator can declare a ``safe`` predicate over its bound
  arguments; returning False bypasses the cache. The tree generators use it
  to require a concrete integer seed (with ``seed=None`` every call must
  draw fresh randomness, and serving a frozen copy would silently change
  the statistics of repeated-trial experiments).
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional

__all__ = ["cached_generator", "workload_cache_dir", "clear_workload_cache"]

_ENV_VAR = "REPRO_CACHE_DIR"

#: Cache schema version, folded into every entry's key. Bump whenever the
#: pickled payload of cached generators changes shape — v2: instances and
#: DAGs grew precomputed chain-run arrays (``DAG.chain_runs`` /
#: ``Instance.chain_layout``); v3: ``Instance.__getstate__`` now strips the
#: cached flat/chain layouts from the pickle (they are rebuilt, re-frozen,
#: on first use), so v2 entries carrying thawed-on-unpickle arrays must be
#: regenerated rather than trusted to satisfy the frozen-CSR contract.
_SCHEMA_VERSION = 3


def workload_cache_dir() -> Optional[Path]:
    """The directory backing the workload cache, or ``None`` when disabled.

    Controlled by the ``REPRO_CACHE_DIR`` environment variable, read on
    every call (not at import), so enabling/disabling takes effect
    immediately.
    """
    raw = os.environ.get(_ENV_VAR, "").strip()
    return Path(raw) if raw else None


def clear_workload_cache() -> int:
    """Delete every cache entry; returns the number of files removed."""
    root = workload_cache_dir()
    if root is None or not root.is_dir():
        return 0
    removed = 0
    for path in root.glob("*.wlcache"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


class _Unkeyable(Exception):
    """Argument cannot be canonicalized into a stable cache key."""


def _canonical(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    raise _Unkeyable(type(value).__name__)


def cached_generator(
    fn: Optional[Callable] = None,
    *,
    safe: Optional[Callable[[dict], bool]] = None,
):
    """Decorator memoizing a pure generator's result on disk.

    ``safe`` (optional) receives the bound-and-defaulted argument dict and
    may veto caching for argument combinations whose output is not a pure
    function of the signature (e.g. ``seed=None``). See the module
    docstring for the activation rules.
    """

    def decorate(func: Callable) -> Callable:
        sig = inspect.signature(func)

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            root = workload_cache_dir()
            if root is None:
                return func(*args, **kwargs)
            try:
                bound = sig.bind(*args, **kwargs)
                bound.apply_defaults()
                arguments = dict(bound.arguments)
                items = tuple(
                    (k, _canonical(v)) for k, v in sorted(arguments.items())
                )
            except (TypeError, _Unkeyable):
                return func(*args, **kwargs)
            if safe is not None and not safe(arguments):
                return func(*args, **kwargs)
            digest = hashlib.sha256(
                repr(
                    (_SCHEMA_VERSION, func.__module__, func.__qualname__, items)
                ).encode()
            ).hexdigest()
            path = root / f"{func.__name__}-{digest[:32]}.wlcache"
            if path.is_file():
                try:
                    with open(path, "rb") as fh:
                        return pickle.load(fh)
                except Exception:
                    # Corrupt/racing/stale entry. pickle can raise almost
                    # anything on garbage bytes (ValueError, AttributeError,
                    # UnpicklingError, ...); a cache must never turn that
                    # into a crash — fall through and rewrite.
                    pass
            value = func(*args, **kwargs)
            try:
                root.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        pickle.dump(value, fh)
                    os.replace(tmp, path)  # atomic: concurrent readers are safe
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                pass  # caching is best-effort; the generated value is fine
            return value

        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate


def int_seed_required(arguments: dict) -> bool:
    """``safe`` predicate: cache only when ``seed`` is a concrete int."""
    return isinstance(arguments.get("seed"), int)
