"""The Section 4 lower-bound family: adaptive adversarial out-trees.

Construction (paper, Section 4): job ``J_i`` is released at time
``i(m+1)``; each job has ``m`` layers. Layer ``ℓ`` contains one *key*
subjob — the parent of every subjob on layer ``ℓ+1`` — plus some leaf
subjobs. The adversary fixes layer ``ℓ``'s size *adaptively*: at the first
time FIFO schedules from layer ``ℓ`` with ``f`` processors still available,
the layer has ``f + 1`` subjobs and the key is the one FIFO leaves behind.
Arbitrary FIFO then pays ≈ ``(m+1)`` time units per *sublayer* instead of
per layer, while OPT finishes every job within ``m + 1`` time units of its
release — Theorem 4.2 gives a competitive ratio of at least
``lg m − lg lg m``.

Shape note: the paper's construction leaves layer-1 subjobs parentless, so
each frozen job is an out-*forest* — one out-tree hanging off layer 1's key
plus single-node out-trees (the layer-1 leaves). This is the same class the
theorem addresses: an out-forest job is indistinguishable from several
out-tree jobs released at the same instant (Section 5.3 performs exactly
that merge in the other direction).

This module co-simulates deterministic arbitrary FIFO (ascending node id;
keys receive the largest id of their layer) against the lazy adversary,
then *freezes* the instance. The frozen instance replays bit-identically
through the general engine with
:class:`~repro.schedulers.base.ArbitraryTieBreak` (an integration test
asserts this), and ships with an explicit OPT witness schedule achieving
maximum flow at most ``m + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dag import DAG
from ..core.exceptions import ConfigurationError
from ..core.instance import Instance
from ..core.job import Job
from ..core.schedule import Schedule
from .cache import cached_generator

__all__ = ["AdversarialResult", "build_fifo_adversary"]

_INT = np.int64


@dataclass(frozen=True)
class AdversarialResult:
    """Output of the adversary co-simulation.

    Attributes
    ----------
    instance:
        The frozen concrete instance (one out-forest per release).
    fifo_schedule:
        The schedule arbitrary FIFO produced during the co-simulation.
    opt_witness:
        A feasible schedule with maximum flow at most ``period`` (the
        paper's witness: key of layer ℓ at time ``r_i + ℓ``, leaves greedily
        around it). Only constructible when release windows are disjoint
        (``period >= m + 1``, the paper's setting); ``None`` otherwise.
    m:
        Number of processors the family was built for.
    period:
        Release spacing (the paper uses ``m + 1``).
    """

    instance: Instance
    fifo_schedule: Schedule
    opt_witness: Schedule | None
    m: int
    period: int

    @property
    def fifo_max_flow(self) -> int:
        return self.fifo_schedule.max_flow

    @property
    def opt_upper_bound(self) -> int:
        """Witness objective — an upper bound on OPT (≤ m + 1 in the
        paper's ``period = m + 1`` setting). Raises when no witness exists
        (overloaded periods); use :attr:`opt_lower_bound` there."""
        if self.opt_witness is None:
            raise ConfigurationError(
                f"no OPT witness for period={self.period} < m+1={self.m + 1}; "
                "use opt_lower_bound"
            )
        return self.opt_witness.max_flow

    @property
    def opt_lower_bound(self) -> int:
        """A provable lower bound on OPT (always available)."""
        from ..schedulers.offline import max_flow_lower_bound

        return max_flow_lower_bound(self.instance, self.m)

    @property
    def ratio_lower_bound(self) -> float:
        """A certified lower bound on FIFO's competitive ratio (requires
        the witness)."""
        return self.fifo_max_flow / self.opt_upper_bound


class _AdversaryJob:
    """Mutable per-job state during the co-simulation."""

    __slots__ = (
        "release",
        "n_layers",
        "layers",  # list of lists of local node ids
        "keys",  # designated key subjob per layer
        "key_set",  # same as keys, as a set (hot-path membership test)
        "ready",  # local ids ready now
        "pending_layer",  # next layer index awaiting materialization, or None
        "n_nodes",
        "done_count",
        "completion",  # local id -> completion time (filled during co-sim)
    )

    def __init__(self, release: int, n_layers: int):
        self.release = release
        self.n_layers = n_layers
        self.layers: list[list[int]] = []
        self.keys: list[int] = []
        self.key_set: set[int] = set()
        self.ready: list[int] = []
        self.pending_layer: int | None = 0
        self.n_nodes = 0
        self.done_count = 0
        self.completion: dict[int, int] = {}

    @property
    def finished(self) -> bool:
        return self.pending_layer is None and not self.ready and (
            self.done_count == self.n_nodes
        )

    def materialize(self, size: int, key_index: int) -> list[int]:
        """Create the pending layer with ``size`` subjobs; the subjob at
        position ``key_index`` is the designated key (the one FIFO will
        leave unscheduled at first touch)."""
        assert self.pending_layer is not None
        base = self.n_nodes
        nodes = list(range(base, base + size))
        self.n_nodes += size
        self.layers.append(nodes)
        self.keys.append(nodes[key_index])
        self.key_set.add(nodes[key_index])
        self.ready.extend(nodes)
        self.pending_layer = None
        return nodes

    def key_of(self, layer_idx: int) -> int:
        return self.keys[layer_idx]

    def complete(self, local: int, t_finish: int) -> None:
        self.completion[local] = t_finish
        self.done_count += 1
        # If the completed node is the key of the latest layer and more
        # layers remain, the next layer becomes pending.
        latest = len(self.layers) - 1
        if local == self.key_of(latest) and latest + 1 < self.n_layers:
            self.pending_layer = latest + 1


@cached_generator(
    safe=lambda a: a.get("key_placement") != "random"
    or isinstance(a.get("seed"), int)
)
def build_fifo_adversary(
    m: int,
    n_jobs: int,
    *,
    n_layers: int | None = None,
    period: int | None = None,
    key_placement: str = "last",
    seed=None,
    max_steps: int | None = None,
) -> AdversarialResult:
    """Run the Section 4 adversary against arbitrary FIFO on ``m``
    processors and freeze the resulting instance.

    Parameters
    ----------
    m:
        Number of processors (>= 2).
    n_jobs:
        Number of released jobs. The paper's Theorem 4.2 argument uses
        ``2 m lg m`` jobs; the ratio typically saturates much sooner.
    n_layers:
        Layers per job (default ``m``, as in the paper).
    period:
        Release spacing (default ``m + 1``, as in the paper). Smaller
        periods probe regimes the paper's analysis does not cover; the
        adversary still adapts (layer sizes track FIFO's free capacity),
        but the OPT witness only exists for ``period >= m + 1``.
    key_placement:
        Which local id within each layer is designated the key —
        ``"last"`` (largest id; the placement that defeats ascending-id
        FIFO), ``"first"`` (defeats descending-id FIFO) or ``"random"``.
        The co-simulated *trace* is identical for every placement (layer
        subjobs are indistinguishable to a non-clairvoyant scheduler at
        first touch — this is why the lower bound extends to every
        non-clairvoyant FIFO tie-break, randomized included); only the
        frozen instance's labeling changes. E17 builds on this.
    seed:
        RNG for ``key_placement="random"``.
    max_steps:
        Safety cap on simulated time (default generous).
    """
    if m < 2:
        raise ConfigurationError("the adversarial family needs m >= 2")
    if n_jobs < 1:
        raise ConfigurationError("n_jobs must be >= 1")
    layers = m if n_layers is None else int(n_layers)
    if layers < 1:
        raise ConfigurationError("n_layers must be >= 1")
    period = m + 1 if period is None else int(period)
    if period < 1:
        raise ConfigurationError("period must be >= 1")
    if key_placement not in ("last", "first", "random"):
        raise ConfigurationError(
            "key_placement must be 'last', 'first' or 'random'"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    releases = [i * period for i in range(n_jobs)]
    if max_steps is None:
        # Theorem 4.2's argument unfolds within O(n_jobs * (m+1) * log m)
        # time; pad generously.
        max_steps = (n_jobs + 4 * layers + 8) * period * 4 + 64

    jobs: list[_AdversaryJob] = []
    next_release = 0
    alive: list[_AdversaryJob] = []  # released-and-unfinished, arrival order
    n_alive = 0  # len(alive), tracked to keep the loop condition O(1)
    t = 0
    # Co-simulate FIFO: scan alive jobs oldest-first, materializing layers
    # lazily the first time FIFO reaches them with spare capacity.
    while next_release < n_jobs or n_alive > 0:
        if t > max_steps:
            raise ConfigurationError(
                f"adversary co-simulation exceeded {max_steps} steps"
            )
        while next_release < n_jobs and releases[next_release] == t:
            job = _AdversaryJob(releases[next_release], layers)
            jobs.append(job)
            alive.append(job)
            next_release += 1
            n_alive += 1
        capacity = m
        scheduled: list[tuple[_AdversaryJob, int]] = []
        # `jobs` holds released jobs in arrival order; skip finished ones
        # without rescanning (they are pruned after completions below).
        for job in alive:
            if capacity <= 0:
                break
            if job.pending_layer is not None and capacity >= 1:
                # The adversary fixes the layer size now: capacity + 1,
                # and designates the key per the placement policy.
                size = capacity + 1
                if key_placement == "last":
                    key_index = size - 1
                elif key_placement == "first":
                    key_index = 0
                else:
                    key_index = int(rng.integers(0, size))
                job.materialize(size, key_index)
            if job.ready:
                take = min(capacity, len(job.ready))
                # Non-keys first (they are what FIFO schedules at first
                # touch); the designated key is ordered last.
                key_set = job.key_set
                job.ready.sort(key=lambda v: (v in key_set, v))
                chosen, job.ready = job.ready[:take], job.ready[take:]
                scheduled.extend((job, local) for local in chosen)
                capacity -= take
        # Advance time; if nothing ran and nothing is ready, jump to the
        # next release.
        if not scheduled:
            future = [r for r in releases[next_release:]]
            if not future and all(j.finished for j in jobs):
                break
            t = future[0] if future else t + 1
            continue
        finish = t + 1
        pruned = False
        for job, local in scheduled:
            job.complete(local, finish)
            if job.finished:
                n_alive -= 1
                pruned = True
        if pruned:
            alive = [j for j in alive if not j.finished]
        t = finish

    return _freeze(jobs, m, period)


def _freeze(jobs: list[_AdversaryJob], m: int, period: int) -> AdversarialResult:
    """Materialize the co-simulated family into concrete objects."""
    frozen_jobs: list[Job] = []
    completions: list[np.ndarray] = []
    for idx, aj in enumerate(jobs):
        parents = np.full(aj.n_nodes, -1, dtype=_INT)
        for layer_idx in range(1, len(aj.layers)):
            key = aj.key_of(layer_idx - 1)
            for node in aj.layers[layer_idx]:
                parents[node] = key
        dag = DAG.from_parents(parents)
        frozen_jobs.append(Job(dag, aj.release, label=f"adv{idx}"))
        comp = np.zeros(aj.n_nodes, dtype=_INT)
        for local, tf in aj.completion.items():
            comp[local] = tf
        completions.append(comp)
    instance = Instance(frozen_jobs)
    fifo_schedule = Schedule(instance, m, completions)
    fifo_schedule.validate()
    witness = None
    if period >= m + 1:
        witness = _opt_witness(instance, m, period)
        witness.validate()
    return AdversarialResult(instance, fifo_schedule, witness, m, period)


def _opt_witness(instance: Instance, m: int, period: int) -> Schedule:
    """The paper's OPT witness: run the key chain of each job one subjob per
    step starting right after release, and pack the leaves greedily into the
    job's own ``m+1``-step window (windows of consecutive jobs are disjoint,
    so each job has the full ``m`` processors)."""
    completions = []
    for job in instance:
        dag = job.dag
        r = job.release
        comp = np.zeros(dag.n, dtype=_INT)
        # Keys are the internal nodes (outdegree > 0) plus the deepest
        # layer's designated key; identify layers by depth.
        depth = dag.depth
        n_layers = int(depth.max())
        # Key of layer d: the unique node at depth d with children, or (at
        # the deepest layer) the largest-id node (by construction).
        slots = np.full(period, m, dtype=_INT)  # free capacity of steps r+1..r+period
        for d in range(1, n_layers + 1):
            level = np.nonzero(depth == d)[0]
            internal = level[dag.outdegree[level] > 0]
            key = int(internal[0]) if internal.size else int(level.max())
            comp[key] = r + d
            slots[d - 1] -= 1
            # Leaves of layer d may run in steps r+d .. r+period (they are
            # ready once the previous key completes at r+d-1).
            leaves = [int(v) for v in level if v != key]
            s = d - 1  # slot index of step r+d
            for v in leaves:
                while s < period and slots[s] == 0:
                    s += 1
                if s >= period:
                    raise ConfigurationError(
                        "witness construction overflow: layer too large"
                    )
                comp[v] = r + s + 1
                slots[s] -= 1
        completions.append(comp)
    return Schedule(instance, m, completions)
