"""Arrival processes: turn a stream of DAGs into an online instance.

The paper's analyses distinguish three arrival regimes:

* **batched** (Section 6): at most one (merged) job per integer multiple of
  a period;
* **semi-batched** (Section 5.3): releases at integer multiples of a
  half-period;
* **general** (Section 5.4): arbitrary integer release times — generated
  here by Poisson and bursty processes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.dag import DAG
from ..core.exceptions import ConfigurationError
from ..core.instance import Instance
from ..core.job import Job

__all__ = [
    "batched_instance",
    "semi_batched_instance",
    "poisson_instance",
    "bursty_instance",
]


def _label(prefix: str, i: int) -> str:
    return f"{prefix}{i}"


def batched_instance(dags: Sequence[DAG], period: int) -> Instance:
    """One job per multiple of ``period``: ``dags[i]`` released at
    ``i * period`` (the Section 6 arrival regime)."""
    if period < 1:
        raise ConfigurationError("period must be >= 1")
    if not dags:
        raise ConfigurationError("need at least one DAG")
    return Instance(
        [Job(d, i * period, _label("batch", i)) for i, d in enumerate(dags)]
    )


def semi_batched_instance(
    dags: Sequence[DAG],
    half_period: int,
    *,
    skip_slots: Sequence[int] = (),
) -> Instance:
    """Releases at multiples of ``half_period`` (Section 5.3 regime).

    ``skip_slots`` omits the given slot indices, producing gaps (the
    assumption allows any subset of multiples)."""
    if half_period < 1:
        raise ConfigurationError("half_period must be >= 1")
    if not dags:
        raise ConfigurationError("need at least one DAG")
    skip = set(skip_slots)
    jobs = []
    slot = 0
    for i, d in enumerate(dags):
        while slot in skip:
            slot += 1
        jobs.append(Job(d, slot * half_period, _label("semi", i)))
        slot += 1
    return Instance(jobs)


def poisson_instance(
    dags: Sequence[DAG],
    rate: float,
    seed=None,
) -> Instance:
    """Poisson arrivals: i.i.d. geometric-ish integer inter-arrival gaps
    with mean ``1 / rate`` (continuous exponentials rounded to integers,
    matching the paper's integer release times)."""
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    if not dags:
        raise ConfigurationError("need at least one DAG")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    t = 0
    jobs = []
    for i, d in enumerate(dags):
        jobs.append(Job(d, t, _label("poisson", i)))
        t += int(np.round(rng.exponential(1.0 / rate)))
    return Instance(jobs)


def bursty_instance(
    dags: Sequence[DAG],
    *,
    burst_size: int,
    quiet_gap: int,
    seed: Optional[int] = None,
) -> Instance:
    """Bursts of ``burst_size`` simultaneous jobs separated by
    ``quiet_gap`` idle time units (stress-tests batching reductions)."""
    if burst_size < 1:
        raise ConfigurationError("burst_size must be >= 1")
    if quiet_gap < 0:
        raise ConfigurationError("quiet_gap must be >= 0")
    if not dags:
        raise ConfigurationError("need at least one DAG")
    jobs = []
    t = 0
    for i, d in enumerate(dags):
        if i and i % burst_size == 0:
            t += quiet_gap
        jobs.append(Job(d, t, _label("burst", i)))
    return Instance(jobs)
