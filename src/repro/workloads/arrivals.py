"""Arrival processes: turn a stream of DAGs into an online instance.

The paper's analyses distinguish three arrival regimes:

* **batched** (Section 6): at most one (merged) job per integer multiple of
  a period;
* **semi-batched** (Section 5.3): releases at integer multiples of a
  half-period;
* **general** (Section 5.4): arbitrary integer release times — generated
  here by Poisson and bursty processes.

The ``*_instance`` builders below materialize a *finite* instance up
front. The :class:`ArrivalSource` API is the streaming counterpart: an
(optionally unbounded) arrival process defined as a **pure function of the
job index**, so the streaming engine (:mod:`repro.streaming`) can admit
job ``k`` without holding jobs ``0..k-1`` in memory, and a crash-safe
checkpoint needs to store only the cursor ``(next_index, next_release)``
plus the live jobs' done-masks — each live DAG is re-derived from its
index on resume, bit-identically.

Contract
--------
* ``dag_at(k)`` must return the same DAG for the same ``k`` on every call
  in every process (derive per-job randomness from
  ``np.random.default_rng((seed, ..., k))`` seed sequences — never from a
  shared stream whose state depends on call order).
* ``gap_before(k)`` is the integer gap between job ``k-1``'s release and
  job ``k``'s (``gap_before(0)`` is job 0's release); gaps are ``>= 0``,
  so releases are nondecreasing in the index.
* ``fingerprint()`` is a stable string identifying the configured process;
  checkpoints embed it so a resume under a different stream is rejected
  instead of silently mixing runs.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Optional, Sequence

import numpy as np

from ..core.dag import DAG
from ..core.exceptions import ConfigurationError
from ..core.instance import Instance
from ..core.job import Job
from .random_trees import galton_watson_tree, layered_tree, random_attachment_tree

__all__ = [
    "batched_instance",
    "semi_batched_instance",
    "poisson_instance",
    "bursty_instance",
    "ArrivalSource",
    "PoissonSource",
    "TraceReplaySource",
    "AdversarialDripSource",
    "STREAM_FAMILIES",
    "stream_prefix_instance",
]


def _label(prefix: str, i: int) -> str:
    return f"{prefix}{i}"


def batched_instance(dags: Sequence[DAG], period: int) -> Instance:
    """One job per multiple of ``period``: ``dags[i]`` released at
    ``i * period`` (the Section 6 arrival regime)."""
    if period < 1:
        raise ConfigurationError("period must be >= 1")
    if not dags:
        raise ConfigurationError("need at least one DAG")
    return Instance(
        [Job(d, i * period, _label("batch", i)) for i, d in enumerate(dags)]
    )


def semi_batched_instance(
    dags: Sequence[DAG],
    half_period: int,
    *,
    skip_slots: Sequence[int] = (),
) -> Instance:
    """Releases at multiples of ``half_period`` (Section 5.3 regime).

    ``skip_slots`` omits the given slot indices, producing gaps (the
    assumption allows any subset of multiples)."""
    if half_period < 1:
        raise ConfigurationError("half_period must be >= 1")
    if not dags:
        raise ConfigurationError("need at least one DAG")
    skip = set(skip_slots)
    jobs = []
    slot = 0
    for i, d in enumerate(dags):
        while slot in skip:
            slot += 1
        jobs.append(Job(d, slot * half_period, _label("semi", i)))
        slot += 1
    return Instance(jobs)


def poisson_instance(
    dags: Sequence[DAG],
    rate: float,
    seed=None,
) -> Instance:
    """Poisson arrivals: i.i.d. geometric-ish integer inter-arrival gaps
    with mean ``1 / rate`` (continuous exponentials rounded to integers,
    matching the paper's integer release times)."""
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    if not dags:
        raise ConfigurationError("need at least one DAG")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    t = 0
    jobs = []
    for i, d in enumerate(dags):
        jobs.append(Job(d, t, _label("poisson", i)))
        t += int(np.round(rng.exponential(1.0 / rate)))
    return Instance(jobs)


def bursty_instance(
    dags: Sequence[DAG],
    *,
    burst_size: int,
    quiet_gap: int,
    seed: Optional[int] = None,
) -> Instance:
    """Bursts of ``burst_size`` simultaneous jobs separated by
    ``quiet_gap`` idle time units (stress-tests batching reductions)."""
    if burst_size < 1:
        raise ConfigurationError("burst_size must be >= 1")
    if quiet_gap < 0:
        raise ConfigurationError("quiet_gap must be >= 0")
    if not dags:
        raise ConfigurationError("need at least one DAG")
    jobs = []
    t = 0
    for i, d in enumerate(dags):
        if i and i % burst_size == 0:
            t += quiet_gap
        jobs.append(Job(d, t, _label("burst", i)))
    return Instance(jobs)


# ----------------------------------------------------------------------
# Streaming arrival sources (pure functions of the job index)
# ----------------------------------------------------------------------


class ArrivalSource(abc.ABC):
    """An (optionally unbounded) deterministic stream of jobs.

    See the module docstring for the purity contract. ``n_jobs`` is the
    total stream length, or ``None`` for an unbounded process.
    """

    #: Short process name (reported in fingerprints and metrics ticks).
    name: str = "stream"

    #: Total number of jobs, or ``None`` when the stream is unbounded.
    n_jobs: Optional[int] = None

    @abc.abstractmethod
    def dag_at(self, index: int) -> DAG:
        """The DAG of job ``index`` (pure function of the index)."""

    @abc.abstractmethod
    def gap_before(self, index: int) -> int:
        """Integer release gap between jobs ``index - 1`` and ``index``
        (``gap_before(0)`` is job 0's absolute release)."""

    @abc.abstractmethod
    def fingerprint(self) -> str:
        """Stable identity string of the configured process (embedded in
        streaming checkpoints to reject resumes under a different stream)."""

    def release_of(self, index: int) -> int:
        """Absolute release of job ``index`` — O(index), for tests and
        prefix materialization; the engine tracks releases incrementally."""
        if index < 0:
            raise ConfigurationError(f"job index must be >= 0, got {index}")
        if self.n_jobs is not None and index >= self.n_jobs:
            raise ConfigurationError(
                f"job index {index} beyond stream length {self.n_jobs}"
            )
        return sum(self.gap_before(k) for k in range(index + 1))

    def job_at(self, index: int) -> Job:
        """Job ``index`` as a materialized :class:`~repro.core.Job`."""
        return Job(self.dag_at(index), self.release_of(index), _label(self.name, index))

    def prefix_instance(self, n_jobs: int) -> Instance:
        """The first ``n_jobs`` arrivals as a finite :class:`Instance`
        (the reference the streaming engine is property-tested against)."""
        if n_jobs < 1:
            raise ConfigurationError("n_jobs must be >= 1")
        if self.n_jobs is not None:
            n_jobs = min(n_jobs, self.n_jobs)
        jobs = []
        release = 0
        for k in range(n_jobs):
            release += self.gap_before(k)
            jobs.append(Job(self.dag_at(k), release, _label(self.name, k)))
        return Instance(jobs)


def stream_prefix_instance(source: ArrivalSource, n_jobs: int) -> Instance:
    """Materialize the first ``n_jobs`` arrivals of ``source``."""
    return source.prefix_instance(n_jobs)


#: DAG families a generated stream can draw per-job shapes from.
STREAM_FAMILIES = ("attachment", "galton-watson", "layered")


def _family_dag(family: str, n_nodes: int, rng: np.random.Generator) -> DAG:
    """One ~``n_nodes``-node DAG of the named family from ``rng``."""
    if family == "attachment":
        return random_attachment_tree(n_nodes, rng)
    if family == "galton-watson":
        return galton_watson_tree(n_nodes, rng)
    if family == "layered":
        width = max(1, int(np.sqrt(n_nodes)))
        widths = [width] * (n_nodes // width)
        if n_nodes % width:
            widths.append(n_nodes % width)
        return layered_tree(widths, rng)
    raise ConfigurationError(
        f"unknown stream family {family!r}; choose from {STREAM_FAMILIES}"
    )


class PoissonSource(ArrivalSource):
    """Poisson arrivals of random out-trees, as an index-pure stream.

    The streaming twin of :func:`poisson_instance`: i.i.d. exponential
    inter-arrival gaps with mean ``1 / rate`` rounded to integers. Job
    ``k``'s DAG and gap come from dedicated seed sequences
    ``(seed, tag, k)``, so both are pure functions of the index.
    """

    name = "poisson"

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        *,
        dag_nodes: int = 64,
        family: str = "attachment",
        n_jobs: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        if seed < 0:
            raise ConfigurationError("seed must be >= 0 (np seed-sequence entry)")
        if dag_nodes < 1:
            raise ConfigurationError("dag_nodes must be >= 1")
        if family not in STREAM_FAMILIES:
            raise ConfigurationError(
                f"unknown stream family {family!r}; choose from {STREAM_FAMILIES}"
            )
        if n_jobs is not None and n_jobs < 1:
            raise ConfigurationError("n_jobs must be >= 1 (or None for unbounded)")
        self.rate = float(rate)
        self.seed = int(seed)
        self.dag_nodes = int(dag_nodes)
        self.family = family
        self.n_jobs = n_jobs

    def dag_at(self, index: int) -> DAG:
        rng = np.random.default_rng((self.seed, 1, index))
        return _family_dag(self.family, self.dag_nodes, rng)

    def gap_before(self, index: int) -> int:
        if index == 0:
            return 0
        rng = np.random.default_rng((self.seed, 2, index))
        return int(np.round(rng.exponential(1.0 / self.rate)))

    def fingerprint(self) -> str:
        return (
            f"poisson(rate={self.rate!r},seed={self.seed},"
            f"nodes={self.dag_nodes},family={self.family},n_jobs={self.n_jobs})"
        )


class TraceReplaySource(ArrivalSource):
    """Replay a recorded finite instance as a stream.

    Jobs must arrive in nondecreasing release order — guaranteed when
    built :meth:`from_instance` (``Instance`` sorts its jobs), checked
    otherwise.
    """

    name = "replay"

    def __init__(self, jobs: Sequence[Job]) -> None:
        if not jobs:
            raise ConfigurationError("need at least one job to replay")
        for earlier, later in zip(jobs, jobs[1:]):
            if later.release < earlier.release:
                raise ConfigurationError(
                    "replay jobs must be sorted by nondecreasing release"
                )
        self._jobs = tuple(jobs)
        self.n_jobs = len(self._jobs)

    @classmethod
    def from_instance(cls, instance: Instance) -> "TraceReplaySource":
        return cls(tuple(instance))

    def dag_at(self, index: int) -> DAG:
        return self._jobs[index].dag

    def gap_before(self, index: int) -> int:
        if index == 0:
            return self._jobs[0].release
        return self._jobs[index].release - self._jobs[index - 1].release

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        for job in self._jobs:
            digest.update(np.int64(job.release).tobytes())
            digest.update(np.int64(job.dag.n).tobytes())
            digest.update(np.ascontiguousarray(job.dag.child_indptr).tobytes())
            digest.update(np.ascontiguousarray(job.dag.child_indices).tobytes())
        return f"replay(n_jobs={self.n_jobs},sha={digest.hexdigest()[:16]})"


class AdversarialDripSource(ArrivalSource):
    """A sustained drip of half-width packed rectangles.

    Each job is a ``⌈m/2⌉``-wide layered out-forest of depth ``depth``
    (solo optimum exactly ``depth``, the Section 4/6 building block),
    released every ``period`` steps. With ``period < depth`` the drip
    arrives faster than jobs finish, so the live window grows until the
    admission bound sheds — the deterministic overload workload for the
    streaming engine's shedding and watchdog paths.
    """

    name = "drip"

    def __init__(
        self,
        m: int,
        *,
        period: int,
        depth: Optional[int] = None,
        seed: int = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        if m < 2:
            raise ConfigurationError("m must be >= 2")
        if period < 1:
            raise ConfigurationError("period must be >= 1")
        if seed < 0:
            raise ConfigurationError("seed must be >= 0 (np seed-sequence entry)")
        if depth is not None and depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if n_jobs is not None and n_jobs < 1:
            raise ConfigurationError("n_jobs must be >= 1 (or None for unbounded)")
        self.m = int(m)
        self.period = int(period)
        self.depth = int(depth) if depth is not None else 2 * self.period
        self.seed = int(seed)
        self.n_jobs = n_jobs

    def dag_at(self, index: int) -> DAG:
        rng = np.random.default_rng((self.seed, 3, index))
        width = max(1, self.m // 2)
        return layered_tree([width] * self.depth, rng)

    def gap_before(self, index: int) -> int:
        return 0 if index == 0 else self.period

    def fingerprint(self) -> str:
        return (
            f"drip(m={self.m},period={self.period},depth={self.depth},"
            f"seed={self.seed},n_jobs={self.n_jobs})"
        )
