"""Random out-tree generators.

These produce the tree shapes the paper's introduction motivates (recursion
trees of dynamic-multithreaded programs) in randomized form, for sweeps in
the LPF-optimality and Algorithm-𝒜 experiments. All generators take a
``numpy.random.Generator`` (or an int seed) and are deterministic given it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.dag import DAG
from ..core.exceptions import ConfigurationError
from .cache import cached_generator, int_seed_required

__all__ = [
    "random_attachment_tree",
    "random_binary_tree",
    "galton_watson_tree",
    "layered_tree",
    "random_out_forest",
]


def _rng(seed_or_rng) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def random_attachment_tree(
    n: int, seed=None, *, bias: float = 0.0
) -> DAG:
    """Random recursive tree: node ``i`` attaches to a random node ``< i``.

    ``bias > 0`` tilts attachment toward recent nodes (deeper, chain-like
    trees); ``bias < 0`` toward old nodes (shallow, star-like trees);
    ``bias = 0`` is the uniform random recursive tree (expected span
    Θ(log n)).
    """
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    rng = _rng(seed)
    parents = np.full(n, -1, dtype=np.int64)
    for i in range(1, n):
        if bias == 0.0:
            parents[i] = rng.integers(0, i)
        else:
            weights = np.arange(1, i + 1, dtype=np.float64) ** bias
            weights /= weights.sum()
            parents[i] = rng.choice(i, p=weights)
    return DAG.from_parents(parents)


def random_binary_tree(n: int, seed=None) -> DAG:
    """Uniform-ish random binary out-tree grown by attaching each new node
    to a uniformly random node that still has fewer than two children."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    rng = _rng(seed)
    parents = np.full(n, -1, dtype=np.int64)
    open_slots = [0, 0]  # node 0 has two free child slots
    for i in range(1, n):
        k = int(rng.integers(0, len(open_slots)))
        open_slots[k], open_slots[-1] = open_slots[-1], open_slots[k]
        parent = open_slots.pop()
        parents[i] = parent
        open_slots.extend([i, i])
    return DAG.from_parents(parents)


def galton_watson_tree(
    max_nodes: int,
    seed=None,
    *,
    offspring_mean: float = 1.8,
    max_children: int = 8,
) -> DAG:
    """Galton–Watson branching tree, truncated at ``max_nodes``.

    Children counts are Poisson(``offspring_mean``) clipped to
    ``max_children``; generation proceeds breadth-first so truncation keeps
    the tree's upper levels intact. Always returns at least one node.
    """
    if max_nodes < 1:
        raise ConfigurationError("max_nodes must be >= 1")
    rng = _rng(seed)
    parents = [-1]
    frontier = [0]
    while frontier and len(parents) < max_nodes:
        nxt: list[int] = []
        for node in frontier:
            k = min(int(rng.poisson(offspring_mean)), max_children)
            for _ in range(k):
                if len(parents) >= max_nodes:
                    break
                parents.append(node)
                nxt.append(len(parents) - 1)
        frontier = nxt
    return DAG.from_parents(np.array(parents, dtype=np.int64))


@cached_generator(safe=int_seed_required)
def layered_tree(widths: list[int], seed=None) -> DAG:
    """Out-forest with prescribed per-level widths: level ``k`` has
    ``widths[k]`` nodes, each attached to a random node of level ``k-1``.

    Any positive width profile is realizable as an out-forest (level-0
    nodes are roots), which makes this the building block of the
    packed-instance generator.
    """
    if not widths or any(w < 1 for w in widths):
        raise ConfigurationError("widths must be a nonempty list of positive ints")
    rng = _rng(seed)
    parents: list[int] = [-1] * widths[0]
    prev_start = 0
    for k in range(1, len(widths)):
        prev = list(range(prev_start, prev_start + widths[k - 1]))
        prev_start = len(parents)
        for _ in range(widths[k]):
            parents.append(int(rng.choice(prev)))
    return DAG.from_parents(np.array(parents, dtype=np.int64))


def random_out_forest(
    n: int,
    seed=None,
    *,
    n_trees: Optional[int] = None,
    bias: float = 0.0,
) -> DAG:
    """Out-forest of ``n`` nodes split over ``n_trees`` random attachment
    trees (default: a Poisson-ish number around ``sqrt(n)``)."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    rng = _rng(seed)
    if n_trees is None:
        n_trees = max(1, int(rng.integers(1, int(np.sqrt(n)) + 2)))
    n_trees = min(n_trees, n)
    sizes = np.full(n_trees, n // n_trees, dtype=np.int64)
    sizes[: n % n_trees] += 1
    dags = [random_attachment_tree(int(s), rng, bias=bias) for s in sizes if s > 0]
    union, _ = DAG.disjoint_union(dags)
    return union
