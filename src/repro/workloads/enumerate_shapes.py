"""Exhaustive enumeration of small tree/forest shapes.

Property-based sampling can miss rare shapes; for the core optimality
claims (Corollary 5.4, Lemma 5.2, Lemma 5.5) the test suite instead checks
*every* out-tree/out-forest shape up to a small size.

Enumeration is by increasing parent arrays (node ``i`` attaches to some
``parent < i``, or is a root). Every rooted tree is isomorphic to at least
one increasing-parent labeling (relabel by BFS order), so iterating all
increasing parent arrays covers every shape — with some shapes repeated,
which is harmless for verification.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from ..core.dag import DAG
from ..core.exceptions import ConfigurationError

__all__ = [
    "all_out_trees",
    "all_out_forests",
    "count_out_trees",
    "count_out_forests",
]


def all_out_trees(n: int) -> Iterator[DAG]:
    """Every out-tree shape on ``n`` nodes (via increasing parent arrays:
    ``(n-1)!`` labelings, covering all shapes)."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    if n == 1:
        yield DAG.from_parents([-1])
        return
    for parents in itertools.product(*(range(i) for i in range(1, n))):
        yield DAG.from_parents(np.array([-1, *parents], dtype=np.int64))


def all_out_forests(n: int) -> Iterator[DAG]:
    """Every out-forest shape on ``n`` nodes (node ``i`` attaches to a
    parent ``< i`` or is a root: ``n!`` labelings)."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    for parents in itertools.product(*(range(-1, i) for i in range(1, n))):
        yield DAG.from_parents(np.array([-1, *parents], dtype=np.int64))


def count_out_trees(n: int) -> int:
    """Number of labelings yielded by :func:`all_out_trees`: ``(n-1)!``."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    out = 1
    for k in range(1, n):
        out *= k
    return out


def count_out_forests(n: int) -> int:
    """Number of labelings yielded by :func:`all_out_forests`: ``n!``."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    out = 1
    for k in range(1, n + 1):
        out *= k
    return out
