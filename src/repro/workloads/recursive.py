"""Recursion-tree workloads of canonical fork-join programs.

Section 1 of the paper motivates out-trees as the natural structure of
tail-recursive dynamic-multithreaded programs (Quicksort is the running
example) and of parallel-for loops. These generators build exactly those
recursion trees:

* :func:`quicksort_tree` — the spawn tree of parallel Quicksort on ``n``
  elements with a (possibly random) pivot split: each call node spawns the
  two recursive calls.
* :func:`divide_and_conquer_tree` — balanced D&C with configurable fanout,
  leaf size, and per-call sequential prologue (a chain before the spawn).
* :func:`parallel_for_tree` — a parallel-for loop: a spawn *spine* that
  forks one body chain per iteration (how work-stealing runtimes unroll
  ``cilk_for``-style loops with grain size 1).
* :func:`map_reduce_dag` — a map stage fanned out from a root followed by a
  reduction *in-tree* (general DAG, not an out-tree): used by the
  beyond-tree ablations.
"""

from __future__ import annotations

import numpy as np

from ..core.dag import DAG
from ..core.exceptions import ConfigurationError
from .cache import cached_generator, int_seed_required

__all__ = [
    "quicksort_tree",
    "divide_and_conquer_tree",
    "parallel_for_tree",
    "map_reduce_dag",
]


@cached_generator(safe=int_seed_required)
def quicksort_tree(n_elements: int, seed=None, *, cutoff: int = 1) -> DAG:
    """Spawn tree of parallel Quicksort on ``n_elements`` keys.

    Each call on a segment of size ``s > cutoff`` is one subjob that spawns
    two recursive calls on segments of size ``p`` and ``s - 1 - p``, where
    the pivot rank ``p`` is uniform. Segments of size ``<= cutoff`` are
    leaf subjobs. The result is an out-tree whose shape ranges from
    balanced (lucky pivots) to a chain (adversarial pivots).
    """
    if n_elements < 1:
        raise ConfigurationError("n_elements must be >= 1")
    if cutoff < 1:
        raise ConfigurationError("cutoff must be >= 1")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    parents: list[int] = []

    def recurse(size: int, parent: int) -> None:
        parents.append(parent)
        me = len(parents) - 1
        if size <= cutoff:
            return
        pivot = int(rng.integers(0, size))
        left, right = pivot, size - 1 - pivot
        if left > 0:
            recurse(left, me)
        if right > 0:
            recurse(right, me)

    import sys

    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, n_elements + 100))
    try:
        recurse(n_elements, -1)
    finally:
        sys.setrecursionlimit(old)
    return DAG.from_parents(np.array(parents, dtype=np.int64))


def divide_and_conquer_tree(
    n_leaves: int, *, fanout: int = 2, prologue: int = 0
) -> DAG:
    """Balanced divide-and-conquer spawn tree.

    Splits until segments reach size 1, producing ``n_leaves`` leaves; each
    internal call is preceded by a sequential ``prologue``-long chain
    (modeling per-call partitioning work, as in Quicksort's partition
    phase).
    """
    if n_leaves < 1:
        raise ConfigurationError("n_leaves must be >= 1")
    if fanout < 2:
        raise ConfigurationError("fanout must be >= 2")
    if prologue < 0:
        raise ConfigurationError("prologue must be >= 0")
    parents: list[int] = []

    def attach_chain(parent: int, length: int) -> int:
        for _ in range(length):
            parents.append(parent)
            parent = len(parents) - 1
        return parent

    def recurse(size: int, parent: int) -> None:
        parents.append(parent)
        me = len(parents) - 1
        if size <= 1:
            return
        me = attach_chain(me, prologue)
        base = size // fanout
        rem = size % fanout
        for k in range(fanout):
            child_size = base + (1 if k < rem else 0)
            if child_size > 0:
                recurse(child_size, me)

    recurse(n_leaves, -1)
    return DAG.from_parents(np.array(parents, dtype=np.int64))


def parallel_for_tree(iterations: int, *, body_span: int = 1) -> DAG:
    """A parallel-for loop as an out-tree.

    The spawn spine is a chain of ``iterations`` nodes; spine node ``k``
    forks a body chain of ``body_span`` nodes for iteration ``k``. (This is
    the grain-1 unrolling a work-stealing runtime performs; a balanced
    divide-and-conquer unrolling is :func:`divide_and_conquer_tree`.)
    """
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    if body_span < 1:
        raise ConfigurationError("body_span must be >= 1")
    parents: list[int] = []
    spine_prev = -1
    for _ in range(iterations):
        parents.append(spine_prev)
        spine_prev = len(parents) - 1
        body_prev = spine_prev
        for _ in range(body_span):
            parents.append(body_prev)
            body_prev = len(parents) - 1
    return DAG.from_parents(np.array(parents, dtype=np.int64))


def map_reduce_dag(width: int, *, map_span: int = 1, reduce_fanin: int = 2) -> DAG:
    """Fork-join map-reduce: root forks ``width`` map chains of length
    ``map_span``; a ``reduce_fanin``-ary reduction tree joins them.

    The join makes this a general (series-parallel) DAG — *not* an
    out-tree — so it exercises the code paths and experiments that go
    beyond the paper's positive results (Theorem 6.1 holds for general
    DAGs; Algorithm 𝒜 rejects this input by design).
    """
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    if map_span < 1:
        raise ConfigurationError("map_span must be >= 1")
    if reduce_fanin < 2:
        raise ConfigurationError("reduce_fanin must be >= 2")
    edges: list[tuple[int, int]] = []
    counter = 1  # node 0 is the root
    tails: list[int] = []
    for _ in range(width):
        prev = 0
        for _ in range(map_span):
            edges.append((prev, counter))
            prev = counter
            counter += 1
        tails.append(prev)
    layer = tails
    while len(layer) > 1:
        nxt: list[int] = []
        for i in range(0, len(layer), reduce_fanin):
            group = layer[i : i + reduce_fanin]
            node = counter
            counter += 1
            for g in group:
                edges.append((g, node))
            nxt.append(node)
        layer = nxt
    return DAG(counter, edges)
