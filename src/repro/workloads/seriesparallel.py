"""Random series-parallel DAGs.

Dynamic-multithreaded programs compile to series-parallel DAGs (Section 1);
the paper's positive Algorithm-𝒜 result covers only the out-tree subclass
and poses the series-parallel case as an open problem. This generator
produces random series-parallel DAGs by recursive series/parallel
composition, used by the beyond-tree ablation experiments (and by the FIFO
batched upper bound, Theorem 6.1, which holds for arbitrary DAGs).
"""

from __future__ import annotations

import numpy as np

from ..core.dag import DAG, chain
from ..core.exceptions import ConfigurationError

__all__ = ["random_series_parallel"]


def random_series_parallel(
    n_target: int,
    seed=None,
    *,
    p_series: float = 0.5,
    max_parallel: int = 4,
) -> DAG:
    """Random series-parallel DAG with roughly ``n_target`` nodes.

    Recursively splits the node budget: with probability ``p_series`` the
    block is a series composition of two sub-blocks (every sink of the first
    precedes every source of the second), otherwise a parallel composition
    of up to ``max_parallel`` sub-blocks. Budgets of 1 are single nodes.
    """
    if n_target < 1:
        raise ConfigurationError("n_target must be >= 1")
    if not (0.0 <= p_series <= 1.0):
        raise ConfigurationError("p_series must be in [0, 1]")
    if max_parallel < 2:
        raise ConfigurationError("max_parallel must be >= 2")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    def build(budget: int) -> DAG:
        if budget <= 1:
            return chain(1)
        if rng.random() < p_series:
            left = int(rng.integers(1, budget))
            return build(left).series(build(budget - left))
        k = int(rng.integers(2, max_parallel + 1))
        k = min(k, budget)
        sizes = np.full(k, budget // k, dtype=np.int64)
        sizes[: budget % k] += 1
        block = build(int(sizes[0]))
        for s in sizes[1:]:
            if s > 0:
                block = block.parallel(build(int(s)))
        return block

    return build(n_target)
