"""Phased jobs: series compositions of out-trees.

Section 1: *"many algorithms, such as those that contain a sequence of
parallel for-loops, can be thought of as a series of out-trees."* These
generators build exactly that shape — a chain of out-forest phases where
every phase must fully complete before the next begins — used by the E15
extension experiment.
"""

from __future__ import annotations

import numpy as np

from ..core.dag import DAG
from ..core.exceptions import ConfigurationError
from .random_trees import random_attachment_tree, random_out_forest

__all__ = ["series_of_trees", "phased_parallel_for"]


def series_of_trees(
    n_phases: int,
    phase_size: int,
    seed=None,
    *,
    forest: bool = True,
) -> DAG:
    """A job made of ``n_phases`` sequential out-forest phases.

    Each phase is a random out-forest (or single out-tree with
    ``forest=False``) of ``phase_size`` nodes; every leaf of phase ``k``
    precedes every root of phase ``k+1`` (the series composition of
    Section 5's model, applied phase-wise).
    """
    if n_phases < 1:
        raise ConfigurationError("n_phases must be >= 1")
    if phase_size < 1:
        raise ConfigurationError("phase_size must be >= 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    make = random_out_forest if forest else random_attachment_tree
    dag = make(phase_size, rng)
    for _ in range(n_phases - 1):
        dag = dag.series(make(phase_size, rng))
    return dag


def phased_parallel_for(
    n_loops: int,
    iterations: int,
    seed=None,
) -> DAG:
    """A sequence of parallel-for loops (the paper's concrete example):
    loop ``k`` forks ``iterations`` independent unit bodies, and all bodies
    join before loop ``k+1`` starts.

    Each loop is a star (spawn node + bodies); the join is the series
    composition, so the whole job is a series of out-trees.
    """
    if n_loops < 1:
        raise ConfigurationError("n_loops must be >= 1")
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    from ..core.dag import star

    dag = star(iterations)
    for _ in range(n_loops - 1):
        dag = dag.series(star(iterations))
    return dag
