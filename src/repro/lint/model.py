"""Core data model for ``repro lint``: violations, suppressions, reports."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "LintReport",
    "Suppression",
    "Violation",
    "parse_suppressions",
]

#: ``# repro-lint: disable=RPR001,RPR002 (why this line is exempt)``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule firing at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro-lint: disable=...`` pragma on one line."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str

    @property
    def has_reason(self) -> bool:
        return bool(self.reason.strip())

    def covers(self, violation: Violation, anchor_line: int | None = None) -> bool:
        """Does this pragma suppress ``violation``?

        A pragma covers the physical line it sits on; when the engine
        knows the violation lies on a *continuation line* of a multi-line
        statement, it passes that statement's first physical line as
        ``anchor_line`` so a pragma placed there covers the whole
        statement (both placements are legal).
        """
        if violation.rule_id not in self.rule_ids:
            return False
        return violation.line == self.line or (
            anchor_line is not None and anchor_line == self.line
        )


def parse_suppressions(source_lines: list[str]) -> list[Suppression]:
    """Extract every suppression pragma from a file's physical lines."""
    found = []
    for lineno, text in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = tuple(tok.strip() for tok in match.group("ids").split(","))
        reason = match.group("reason") or ""
        found.append(Suppression(line=lineno, rule_ids=ids, reason=reason))
    return found


@dataclass
class LintReport:
    """Aggregated result of linting a set of files.

    ``baselined_count`` counts violations filtered out because they match
    an entry in the committed baseline file (see
    :mod:`repro.lint.baseline`); they are accepted debt, not clean code,
    so the report tracks them separately from suppressions.
    """

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0
    baselined_count: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.files_checked += other.files_checked
        self.suppressed_count += other.suppressed_count
        self.baselined_count += other.baselined_count

    def sort(self) -> None:
        """Deterministic (path, line, col, rule_id, message) order — the
        same regardless of serial, parallel, or cached execution."""
        self.violations.sort()

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 2,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed_count,
            "baselined": self.baselined_count,
            "violation_count": len(self.violations),
            "violations": [v.to_json() for v in self.violations],
        }

    def render_text(self) -> str:
        lines = [v.format() for v in self.violations]
        noun = "file" if self.files_checked == 1 else "files"
        summary = (
            f"{len(self.violations)} violation"
            f"{'' if len(self.violations) == 1 else 's'} "
            f"in {self.files_checked} {noun}"
        )
        if self.suppressed_count:
            summary += f" ({self.suppressed_count} suppressed)"
        if self.baselined_count:
            summary += f" ({self.baselined_count} baselined)"
        lines.append(summary)
        return "\n".join(lines)
