"""Per-function effect summaries and their interprocedural propagation.

This is the analysis core behind the whole-program lint rules: for every
function in the analyzed file set we compute a :class:`FunctionSummary`
describing the *effects* the function performs — directly or through any
chain of project-local calls:

* ``rng`` — draws randomness (stdlib ``random``, unseeded ``numpy.random``
  module functions, or any RNG *stream* draw like ``self._rng.random()``);
* ``clock`` — reads the wall clock or a monotonic timer;
* ``env`` — reads OS entropy (``os.urandom``, ``secrets.*``, ``uuid``) or
  environment variables;
* ``global-state`` — rebinds module/global state (``global``/``nonlocal``);
* ``unordered-iter`` — iterates a set or dict view (hash-order dependent);

plus *parameter mutations*: which positional parameters the function
writes through in place (subscript/attribute stores, mutating method
calls, ufunc ``out=``/``.at()`` targets), again closed over helper calls
by mapping arguments to parameters.

Every transitive record carries a witness ``path`` — the chain of
fully-qualified callees from the summarized function down to the origin —
so rule messages can name the route (``select -> pkg.helpers._jitter ->
pkg.helpers._draw``). Summaries serialize to plain JSON for the
incremental cache and hash to a stable :func:`summary_fingerprint`, which
is what the engine uses to decide whether a dependent file must be
re-analyzed.

The shared "what is nondeterministic" tables live here (not in the rule
modules) so both the per-file determinism rules and this interprocedural
layer agree on them without import cycles.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .callgraph import (
    CallDesc,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    describe_call,
    module_name_for,
)

__all__ = [
    "EffectRecord",
    "FunctionSummary",
    "MutationRecord",
    "NUMPY_SEEDED_API",
    "RNG_PART_NAMES",
    "SummaryTable",
    "WALL_CLOCK_CALLS",
    "build_summaries",
    "extract_local",
    "extract_module",
    "project_from_sources",
    "rng_part",
    "summary_fingerprint",
]

#: numpy.random attributes that are explicitly-seeded constructors, not
#: the hidden global-state convenience API.
NUMPY_SEEDED_API = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",
    }
)

#: dotted call -> what it reads. ``time.perf_counter`` is the harness
#: timer: allowed by RPR003, but still a ``clock`` effect here because the
#: contract verifiers must know a priority path consults a timer.
WALL_CLOCK_CALLS = {
    "time.time": "the wall clock",
    "time.time_ns": "the wall clock",
    "datetime.datetime.now": "the wall clock",
    "os.urandom": "the OS entropy pool",
    "uuid.uuid1": "the host clock/MAC",
    "uuid.uuid4": "the OS entropy pool",
}

#: Attribute-chain parts that mark an expression as an RNG stream
#: (``self._rng.random()``, ``rng.integers(...)``).
RNG_PART_NAMES = frozenset({"rng", "random"})


def rng_part(name: str) -> bool:
    return name in RNG_PART_NAMES or name.endswith("_rng") or name.startswith("rng_")


#: Container methods that mutate their receiver in place. Includes both
#: ndarray in-place methods and the list/dict/set mutators.
MUTATING_METHODS = frozenset(
    {
        "sort", "fill", "resize", "put", "partition", "itemset", "setfield",
        "byteswap",  # ndarray
        "append", "extend", "insert", "remove", "pop", "clear", "update",
        "add", "discard", "popitem", "setdefault", "reverse",  # containers
    }
)


@dataclass(frozen=True, order=True)
class EffectRecord:
    """One (possibly transitive) effect of a function.

    ``path`` is the call chain from the summary's owner (exclusive) to the
    function containing the origin (inclusive); empty for direct effects.
    ``line`` is the origin's line *within its own file*.
    """

    kind: str  #: "rng" | "clock" | "env" | "global-state" | "unordered-iter"
    detail: str  #: human description of the origin, e.g. "`numpy.random.rand`"
    origin: str  #: qualname of the function containing the origin
    line: int
    path: tuple[str, ...] = ()

    def route(self, start: str) -> str:
        """``start -> a -> b`` display form of the witness chain."""
        return " -> ".join((start, *self.path))

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "origin": self.origin,
            "line": self.line,
            "path": list(self.path),
        }

    @classmethod
    def from_json(cls, data: dict) -> "EffectRecord":
        return cls(
            kind=data["kind"],
            detail=data["detail"],
            origin=data["origin"],
            line=data["line"],
            path=tuple(data["path"]),
        )


@dataclass(frozen=True, order=True)
class MutationRecord:
    """A parameter this function mutates in place (maybe transitively)."""

    param: int  #: positional index in the function's own signature
    param_name: str
    detail: str  #: e.g. "in-place `.fill()`" or "assignment into"
    origin: str
    line: int
    path: tuple[str, ...] = ()

    def route(self, start: str) -> str:
        return " -> ".join((start, *self.path))

    def to_json(self) -> dict:
        return {
            "param": self.param,
            "param_name": self.param_name,
            "detail": self.detail,
            "origin": self.origin,
            "line": self.line,
            "path": list(self.path),
        }

    @classmethod
    def from_json(cls, data: dict) -> "MutationRecord":
        return cls(
            param=data["param"],
            param_name=data["param_name"],
            detail=data["detail"],
            origin=data["origin"],
            line=data["line"],
            path=tuple(data["path"]),
        )


@dataclass(frozen=True)
class CallSite:
    """One call made by a function, with the argument→parameter map."""

    desc: CallDesc
    line: int
    #: caller-parameter-index -> callee-positional-index, for arguments
    #: that are bare names of the caller's own parameters.
    arg_params: tuple[tuple[int, int], ...] = ()

    def to_json(self) -> dict:
        return {
            "desc": list(self.desc),
            "line": self.line,
            "arg_params": [list(pair) for pair in self.arg_params],
        }

    @classmethod
    def from_json(cls, data: dict) -> "CallSite":
        return cls(
            desc=(data["desc"][0], data["desc"][1]),
            line=data["line"],
            arg_params=tuple((p[0], p[1]) for p in data["arg_params"]),
        )


@dataclass
class FunctionSummary:
    """Effects and mutations of one function, local or transitively closed."""

    qualname: str
    effects: tuple[EffectRecord, ...] = ()
    mutations: tuple[MutationRecord, ...] = ()
    calls: tuple[CallSite, ...] = ()

    def effects_of_kind(self, *kinds: str) -> list[EffectRecord]:
        return [e for e in self.effects if e.kind in kinds]

    def mutates_param(self, index: int) -> Optional[MutationRecord]:
        for record in self.mutations:
            if record.param == index:
                return record
        return None

    def to_json(self) -> dict:
        return {
            "qualname": self.qualname,
            "effects": [e.to_json() for e in self.effects],
            "mutations": [m.to_json() for m in self.mutations],
            "calls": [c.to_json() for c in self.calls],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            effects=tuple(EffectRecord.from_json(e) for e in data["effects"]),
            mutations=tuple(MutationRecord.from_json(m) for m in data["mutations"]),
            calls=tuple(CallSite.from_json(c) for c in data["calls"]),
        )


def summary_fingerprint(summary: FunctionSummary) -> str:
    """Stable content hash of a summary's *observable* part.

    Call sites are excluded: two revisions whose transitive effects and
    mutations agree are interchangeable for every consumer, even if the
    internal call routing changed — that is what makes the findings cache
    survive refactors that do not change behaviour summaries.
    """
    payload = {
        "effects": [e.to_json() for e in sorted(summary.effects)],
        "mutations": [m.to_json() for m in sorted(summary.mutations)],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Local (intraprocedural) extraction
# ----------------------------------------------------------------------


def _dotted_name(aliases: dict[str, str], node: ast.expr) -> Optional[str]:
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(aliases.get(cur.id, cur.id))
    return ".".join(reversed(parts))


def _attribute_parts(node: ast.expr) -> Optional[list[str]]:
    parts: list[str] = []
    cur: ast.expr = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        elif isinstance(cur, ast.Name):
            parts.append(cur.id)
            return list(reversed(parts))
        else:
            return None


def _expression_root(node: ast.expr) -> Optional[str]:
    cur: ast.expr = node
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    return cur.id if isinstance(cur, ast.Name) else None


def _rng_effect(aliases: dict[str, str], call: ast.Call) -> Optional[str]:
    """Why this call draws randomness, or ``None``."""
    dotted = _dotted_name(aliases, call.func)
    if dotted is not None:
        if dotted == "random" or dotted.startswith("random."):
            return f"`{dotted}` draws from stdlib global RNG state"
        if dotted.startswith("numpy.random."):
            attr = dotted.split(".")[2]
            if attr not in NUMPY_SEEDED_API:
                return f"`{dotted}` draws from numpy's global RNG"
            return None
    if isinstance(call.func, ast.Attribute):
        parts = _attribute_parts(call.func)
        if parts is not None and any(rng_part(p) for p in parts[:-1]):
            return f"`{'.'.join(parts)}` draws from an RNG stream"
    return None


def _clock_env_effect(aliases: dict[str, str], call: ast.Call) -> Optional[tuple[str, str]]:
    dotted = _dotted_name(aliases, call.func)
    if dotted is None:
        return None
    if dotted in WALL_CLOCK_CALLS:
        kind = "env" if "entropy" in WALL_CLOCK_CALLS[dotted] else "clock"
        return kind, f"`{dotted}` reads {WALL_CLOCK_CALLS[dotted]}"
    if dotted in ("time.perf_counter", "time.monotonic", "time.process_time"):
        return "clock", f"`{dotted}` reads a process timer"
    if dotted.startswith("secrets."):
        return "env", f"`{dotted}` reads the OS entropy pool"
    if dotted in ("os.getenv", "os.environ.get"):
        return "env", f"`{dotted}` reads the process environment"
    return None


def _unordered_iter(node: ast.expr) -> Optional[str]:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return f"a `{node.func.id}(...)` result"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "values",
            "keys",
            "items",
        ):
            return f"a dict `.{node.func.attr}()` view"
    return None


def _requests_writeable(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "write" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    if call.args and isinstance(call.args[0], ast.Constant):
        return bool(call.args[0].value)
    return False


def extract_local(
    info: FunctionInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: dict[str, str],
) -> FunctionSummary:
    """Intraprocedural summary of one function body.

    Nested function/class bodies are *included* (a closure defined and
    called inside counts toward the enclosing function's effects — the
    over-approximation errs on the reporting side, which suits lint).
    """
    effects: list[EffectRecord] = []
    mutations: dict[int, MutationRecord] = {}
    calls: list[CallSite] = []
    param_set = set(info.params)

    def effect(kind: str, detail: str, line: int) -> None:
        effects.append(
            EffectRecord(kind=kind, detail=detail, origin=info.qualname, line=line)
        )

    def mutate(name: str, detail: str, line: int) -> None:
        index = info.param_index(name)
        if index is None or index in mutations:
            return
        mutations[index] = MutationRecord(
            param=index,
            param_name=name,
            detail=detail,
            origin=info.qualname,
            line=line,
        )

    for sub in ast.walk(node):
        if isinstance(sub, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(sub, ast.Global) else "nonlocal"
            effect(
                "global-state",
                f"`{kind} {', '.join(sub.names)}` rebinds shared state",
                sub.lineno,
            )
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            why = _unordered_iter(sub.iter)
            if why is not None:
                effect("unordered-iter", f"iterates {why}", sub.iter.lineno)
        elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for comp in sub.generators:
                why = _unordered_iter(comp.iter)
                if why is not None:
                    effect(
                        "unordered-iter",
                        f"iterates {why} in a comprehension",
                        comp.iter.lineno,
                    )
        elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets
                if isinstance(sub, ast.Assign)
                else [sub.target]
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _expression_root(target)
                    if root is not None and root in param_set:
                        what = (
                            "augmented assignment into"
                            if isinstance(sub, ast.AugAssign)
                            else "assignment into"
                        )
                        mutate(root, what, target.lineno)
        elif isinstance(sub, ast.Call):
            why_rng = _rng_effect(aliases, sub)
            if why_rng is not None:
                effect("rng", why_rng, sub.lineno)
            clock_env = _clock_env_effect(aliases, sub)
            if clock_env is not None:
                effect(clock_env[0], clock_env[1], sub.lineno)
            # Receiver mutation: `p.sort()`, `p.setflags(write=True)`.
            func = sub.func
            if isinstance(func, ast.Attribute):
                root = _expression_root(func.value)
                if root is not None and root in param_set:
                    if func.attr in MUTATING_METHODS:
                        mutate(root, f"in-place `.{func.attr}()` on", sub.lineno)
                    elif func.attr == "setflags" and _requests_writeable(sub):
                        mutate(
                            root,
                            "re-enabling writes via `.setflags(write=True)` on",
                            sub.lineno,
                        )
                # `np.add.at(p, ...)` mutates its first argument.
                if func.attr == "at" and sub.args:
                    root = _expression_root(sub.args[0])
                    if root is not None and root in param_set:
                        mutate(root, "in-place ufunc `.at()` on", sub.lineno)
            for kw in sub.keywords:
                if kw.arg == "out":
                    root = _expression_root(kw.value)
                    if root is not None and root in param_set:
                        mutate(root, "ufunc `out=` writes into", sub.lineno)
            # Call edge for interprocedural propagation.
            desc = describe_call(sub)
            if desc is not None:
                arg_params = []
                for pos, arg in enumerate(sub.args):
                    if isinstance(arg, ast.Name) and arg.id in param_set:
                        caller_index = info.param_index(arg.id)
                        if caller_index is not None:
                            arg_params.append((caller_index, pos))
                calls.append(
                    CallSite(
                        desc=desc,
                        line=sub.lineno,
                        arg_params=tuple(arg_params),
                    )
                )

    return FunctionSummary(
        qualname=info.qualname,
        effects=tuple(sorted(set(effects))),
        mutations=tuple(sorted(mutations.values())),
        calls=tuple(calls),
    )


def extract_module(
    info: ModuleInfo, tree: ast.Module
) -> dict[str, FunctionSummary]:
    """Local summaries for every function defined at module or class level."""
    out: dict[str, FunctionSummary] = {}

    def visit(node: ast.stmt, class_name: Optional[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local = f"{class_name}.{node.name}" if class_name else node.name
            fn = info.functions.get(local)
            if fn is not None:
                out[fn.qualname] = extract_local(fn, node, info.aliases)
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                visit(sub, node.name)

    for stmt in tree.body:
        visit(stmt, None)
    return out


# ----------------------------------------------------------------------
# Interprocedural propagation
# ----------------------------------------------------------------------

#: Witness chains longer than this are truncated (they still report, the
#: path display just stops growing); prevents pathological blowup.
_MAX_PATH = 12


class SummaryTable:
    """Transitively-closed summaries for a whole project."""

    def __init__(
        self,
        index: ProjectIndex,
        summaries: dict[str, FunctionSummary],
    ) -> None:
        self.index = index
        self.summaries = summaries

    def get(self, qualname: str) -> Optional[FunctionSummary]:
        return self.summaries.get(qualname)

    def resolve_call(
        self, module: str, desc: CallDesc, class_name: Optional[str] = None
    ) -> Optional[FunctionSummary]:
        info = self.index.resolve_call(module, desc, class_name)
        if info is None:
            return None
        return self.summaries.get(info.qualname)

    def fingerprints(self, qualnames: Iterable[str]) -> dict[str, str]:
        out = {}
        for qualname in qualnames:
            summary = self.summaries.get(qualname)
            if summary is not None:
                out[qualname] = summary_fingerprint(summary)
        return out

    def reachable_from(self, roots: Sequence[str]) -> set[str]:
        """Every project function reachable from ``roots`` via call edges
        (roots included)."""
        seen: set[str] = set()
        stack = [q for q in roots if q in self.summaries]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            summary = self.summaries[qualname]
            info = self.index.function(qualname)
            class_name = info.class_name if info is not None else None
            module = info.module if info is not None else ""
            for call in summary.calls:
                callee = self.index.resolve_call(module, call.desc, class_name)
                if callee is not None and callee.qualname not in seen:
                    stack.append(callee.qualname)
        return seen


def build_summaries(
    index: ProjectIndex,
    local: dict[str, FunctionSummary],
) -> SummaryTable:
    """Close local summaries over the call graph (fixpoint iteration).

    Effects propagate unconditionally caller <- callee; parameter
    mutations propagate through the argument→parameter map recorded at
    each call site. Cycles converge because the effect/mutation sets only
    grow and witness paths are keyed by origin (first witness wins).
    """
    # Pre-resolve call edges once; resolution is pure table lookup.
    edges: dict[str, list[tuple[CallSite, str]]] = {}
    for qualname, summary in local.items():
        info = index.function(qualname)
        if info is None:
            edges[qualname] = []
            continue
        resolved = []
        for call in summary.calls:
            callee = index.resolve_call(info.module, call.desc, info.class_name)
            if callee is not None and callee.qualname in local:
                resolved.append((call, callee.qualname))
        edges[qualname] = resolved

    closed = {qualname: summary for qualname, summary in local.items()}

    changed = True
    while changed:
        changed = False
        for qualname in sorted(closed):
            summary = closed[qualname]
            # Keyed views for O(1) duplicate checks.
            effect_keys = {(e.kind, e.origin, e.line) for e in summary.effects}
            mutated = {m.param for m in summary.mutations}
            new_effects = list(summary.effects)
            new_mutations = list(summary.mutations)
            for call, callee_qualname in edges[qualname]:
                callee = closed[callee_qualname]
                for e in callee.effects:
                    key = (e.kind, e.origin, e.line)
                    if key in effect_keys:
                        continue
                    path = (callee_qualname, *e.path)[:_MAX_PATH]
                    new_effects.append(
                        EffectRecord(
                            kind=e.kind,
                            detail=e.detail,
                            origin=e.origin,
                            line=e.line,
                            path=path,
                        )
                    )
                    effect_keys.add(key)
                for caller_param, callee_param in call.arg_params:
                    if caller_param in mutated:
                        continue
                    hit = callee.mutates_param(callee_param)
                    if hit is None:
                        continue
                    info = index.function(qualname)
                    param_name = (
                        info.params[caller_param]
                        if info is not None and caller_param < len(info.params)
                        else f"arg{caller_param}"
                    )
                    path = (callee_qualname, *hit.path)[:_MAX_PATH]
                    new_mutations.append(
                        MutationRecord(
                            param=caller_param,
                            param_name=param_name,
                            detail=hit.detail,
                            origin=hit.origin,
                            line=hit.line,
                            path=path,
                        )
                    )
                    mutated.add(caller_param)
            if len(new_effects) != len(summary.effects) or len(new_mutations) != len(
                summary.mutations
            ):
                closed[qualname] = FunctionSummary(
                    qualname=qualname,
                    effects=tuple(sorted(new_effects)),
                    mutations=tuple(sorted(new_mutations)),
                    calls=summary.calls,
                )
                changed = True

    return SummaryTable(index, closed)


def project_from_sources(
    entries: Sequence[tuple[str, str, ast.Module]],
) -> SummaryTable:
    """Convenience: build the full table from ``(path, source, tree)``."""
    index = ProjectIndex()
    local: dict[str, FunctionSummary] = {}
    for path, _source, tree in entries:
        info = ModuleInfo(module_name_for(path), str(path), tree)
        index.add(info)
        local.update(extract_module(info, tree))
    return build_summaries(index, local)
