"""Argument handling for the ``repro lint`` subcommand."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .engine import lint_paths
from .registry import RULES, all_rules

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RPR001,RPR002",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.title}")
        print(f"        {rule.rationale}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code.

    Exit codes: 0 clean, 1 violations found, 2 usage error.
    """
    if args.list_rules:
        return _list_rules()

    rules = None
    if args.select is not None:
        wanted = [tok.strip() for tok in args.select.split(",") if tok.strip()]
        unknown = sorted(set(wanted) - set(RULES))
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [RULES[rule_id] for rule_id in wanted]

    try:
        report = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checks for this repository",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
