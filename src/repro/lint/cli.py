"""Argument handling for the ``repro lint`` subcommand.

Beyond the original run-the-rules flags, the CLI fronts the incremental
engine:

* ``--jobs N`` — parallel per-file analysis over a process pool;
* ``--cache-dir`` / ``--no-cache`` — the incremental findings cache
  (default ``.repro-lint-cache`` in the working directory; git-ignored);
* ``--changed [REF]`` — report findings only for files touched in the
  git diff against REF (default ``HEAD``) plus untracked files; every
  file still feeds the whole-program call graph, so interprocedural
  findings in changed files stay correct;
* ``--baseline`` / ``--update-baseline`` — the committed accepted-debt
  file (see :mod:`repro.lint.baseline`);
* ``--format sarif`` + ``--output`` — SARIF 2.1.0 for code scanning.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, load_baseline, write_baseline
from .engine import lint_paths, ruleset_fingerprint
from .registry import RULES, all_rules
from .sarif import render_sarif

__all__ = ["add_lint_arguments", "run_lint"]

#: Default cache location, relative to the working directory. Git-ignored.
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RPR001,RPR002",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files with N parallel worker processes (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=(
            "incremental cache directory (default: "
            f"{DEFAULT_CACHE_DIR}); findings and symbol tables are reused "
            "for files whose content, rule set, and cross-module summary "
            "dependencies are unchanged"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "report findings only for files changed relative to git REF "
            "(default HEAD) plus untracked files; the whole tree is still "
            "indexed so interprocedural results stay correct"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted findings (default: "
            f"{DEFAULT_BASELINE_NAME} in the working directory, if present)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.title}")
        print(f"        {rule.rationale}")
    return 0


def _git_changed_files(ref: str) -> Optional[set[str]]:
    """Paths changed vs ``ref`` plus untracked files, or ``None`` on error."""
    changed: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "-z", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "-z"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True, timeout=30
            )
        except (OSError, subprocess.SubprocessError):
            return None
        changed.update(tok for tok in proc.stdout.split("\0") if tok)
    return changed


def _resolve_restrict(ref: str) -> Optional[set[str]]:
    """Changed-file set normalized the way the engine keys files."""
    changed = _git_changed_files(ref)
    if changed is None:
        return None
    return {str(Path(p)) for p in changed if p.endswith(".py")}


def _emit(args: argparse.Namespace, text: str) -> None:
    if args.output is not None:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code.

    Exit codes: 0 clean, 1 violations found, 2 usage error.
    """
    if args.list_rules:
        return _list_rules()

    rules = None
    if args.select is not None:
        wanted = [tok.strip() for tok in args.select.split(",") if tok.strip()]
        unknown = sorted(set(wanted) - set(RULES))
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [RULES[rule_id] for rule_id in wanted]

    restrict: Optional[set[str]] = None
    if args.changed is not None:
        restrict = _resolve_restrict(args.changed)
        if restrict is None:
            print(
                f"--changed: git diff against {args.changed!r} failed; "
                "linting everything",
                file=sys.stderr,
            )

    baseline_path = Path(args.baseline) if args.baseline else Path(
        DEFAULT_BASELINE_NAME
    )
    baseline = None
    if not args.update_baseline:
        try:
            loaded = load_baseline(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        baseline = loaded or None

    cache_dir = None if args.no_cache else args.cache_dir
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        report = lint_paths(
            args.paths,
            rules=rules,
            jobs=args.jobs,
            cache_dir=cache_dir,
            restrict=restrict,
            baseline=baseline,
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.update_baseline:
        count = write_baseline(report.violations, baseline_path)
        print(f"recorded {count} finding(s) into {baseline_path}")
        return 0

    active = list(rules) if rules is not None else list(all_rules())
    if args.format == "json":
        _emit(args, json.dumps(report.to_json(), indent=2))
    elif args.format == "sarif":
        _emit(args, render_sarif(report, active, ruleset_fingerprint()))
    else:
        _emit(args, report.render_text())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checks for this repository",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
