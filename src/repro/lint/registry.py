"""Rule base class and the global rule registry.

A rule is a small object with an id, prose metadata (used by ``--list-rules``
and ``docs/lint.md``), a pair of example snippets (the fixture tests lint
both and assert the rule fires on ``bad_example`` only), and a ``check``
method that yields :class:`~repro.lint.model.Violation` objects for one
parsed file.

Third-party or experiment-local rules can plug in with::

    from repro.lint import Rule, register_rule

    @register_rule
    class MyRule(Rule):
        rule_id = "XYZ001"
        ...
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator, TypeVar

from .model import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import FileContext

__all__ = ["RULES", "Rule", "all_rules", "get_rule", "register_rule"]


class Rule(abc.ABC):
    """One invariant check over a parsed source file."""

    #: Stable identifier, e.g. ``"RPR001"`` (used in output + suppressions).
    rule_id: str = ""
    #: One-line human name.
    title: str = ""
    #: Why the invariant matters for this repo.
    rationale: str = ""
    #: Snippet the rule must flag (fixture tests + docs).
    bad_example: str = ""
    #: Minimal fix of ``bad_example`` the rule must accept.
    good_example: str = ""

    @abc.abstractmethod
    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        """Yield violations found in ``ctx``."""

    def violation(
        self, ctx: "FileContext", line: int, col: int, message: str
    ) -> Violation:
        return Violation(
            path=ctx.path, line=line, col=col, rule_id=self.rule_id, message=message
        )


#: rule_id -> rule instance, in registration order.
RULES: dict[str, Rule] = {}

_R = TypeVar("_R", bound=type[Rule])


def register_rule(cls: _R) -> _R:
    """Class decorator adding an instance of ``cls`` to :data:`RULES`."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} must set a rule_id")
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    RULES[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    return tuple(RULES[rule_id] for rule_id in sorted(RULES))


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule {rule_id!r}") from None
