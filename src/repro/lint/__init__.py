"""``repro lint`` — AST-based invariant checking for this repository.

The paper's empirical theorem checks (the FIFO Ω(log m) lower bound, LPF
optimality, the MC replay lemma) are only reproducible if every run is
bit-deterministic and every scheduler honours the engine's contracts. This
package makes those invariants *machine-checked* instead of
convention-checked: a pluggable static-analysis framework whose rules
encode the repo-specific hazards that code review keeps having to catch by
hand.

Rule families (see :mod:`repro.lint.rules` and ``docs/lint.md``):

* ``RPR0xx`` — determinism hazards (global RNG state, unordered iteration
  feeding scheduler selections, wall-clock/entropy reads);
* ``RPR1xx`` — scheduler-contract rules (fast-forward requires ``resync``,
  ``select`` must not mutate the model, engine-reserved private names);
* ``RPR2xx`` — engine-safety rules (no in-place ops on frozen CSR arrays,
  no bare ``except``, no mutable default arguments);
* ``RPR3xx`` — picklability of experiment-harness callables.

Violations can be suppressed per line with an *explained* pragma::

    risky_call()  # repro-lint: disable=RPR003 (reason the rule is wrong here)

A suppression without a reason is itself an error (``RPR000``).

Use as a library::

    from repro.lint import lint_paths

    report = lint_paths(["src"])
    for violation in report.violations:
        print(violation.format())

or from the command line: ``python -m repro lint src [--format json]``.
"""

from __future__ import annotations

from .engine import FileContext, lint_paths, lint_source
from .model import LintReport, Violation
from .registry import RULES, Rule, all_rules, get_rule, register_rule

# Importing the rule modules registers every built-in rule.
from . import rules as _rules  # noqa: F401

__all__ = [
    "FileContext",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
]
