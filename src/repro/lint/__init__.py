"""``repro lint`` — AST-based invariant checking for this repository.

The paper's empirical theorem checks (the FIFO Ω(log m) lower bound, LPF
optimality, the MC replay lemma) are only reproducible if every run is
bit-deterministic and every scheduler honours the engine's contracts. This
package makes those invariants *machine-checked* instead of
convention-checked: a pluggable static-analysis framework whose rules
encode the repo-specific hazards that code review keeps having to catch by
hand.

Rule families (see :mod:`repro.lint.rules` and ``docs/lint.md``):

* ``RPR0xx`` — determinism hazards (global RNG state, unordered iteration
  feeding scheduler selections, wall-clock/entropy reads);
* ``RPR1xx`` — scheduler-contract rules (fast-forward requires ``resync``,
  ``select`` must not mutate the model, engine-reserved private names);
* ``RPR2xx`` — engine-safety rules (no in-place ops on frozen CSR arrays —
  now interprocedural, following tainted arrays through helper calls —
  no bare ``except``, no mutable default arguments);
* ``RPR30x`` — picklability of experiment-harness callables;
* ``RPR31x`` — whole-program contract verification: declared
  ``batch_capable`` / ``macro_step_safe`` / tie-break purity opt-ins are
  checked against *inferred* per-function effect summaries built over a
  cross-module call graph (:mod:`repro.lint.callgraph`,
  :mod:`repro.lint.summaries`), with the offending call path named in
  every message.

Violations can be suppressed per line with an *explained* pragma::

    risky_call()  # repro-lint: disable=RPR003 (reason the rule is wrong here)

A suppression without a reason is itself an error (``RPR000``).

Use as a library::

    from repro.lint import lint_paths

    report = lint_paths(["src"])
    for violation in report.violations:
        print(violation.format())

or from the command line: ``python -m repro lint src [--format json]``.
"""

from __future__ import annotations

from .callgraph import ProjectIndex, build_index, module_name_for
from .engine import (
    FileContext,
    build_project,
    lint_paths,
    lint_source,
    ruleset_fingerprint,
)
from .model import LintReport, Violation
from .registry import RULES, Rule, all_rules, get_rule, register_rule
from .summaries import FunctionSummary, SummaryTable, build_summaries

# Importing the rule modules registers every built-in rule.
from . import rules as _rules  # noqa: F401

__all__ = [
    "FileContext",
    "FunctionSummary",
    "LintReport",
    "ProjectIndex",
    "RULES",
    "Rule",
    "SummaryTable",
    "Violation",
    "all_rules",
    "build_index",
    "build_project",
    "build_summaries",
    "get_rule",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register_rule",
    "ruleset_fingerprint",
]
