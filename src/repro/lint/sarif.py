"""SARIF 2.1.0 emitter for ``repro lint`` reports.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests; emitting it lets lint findings annotate PR diffs
instead of living in CI logs. One run object, one driver
(``repro-lint``), one ``rules`` entry per registered rule (so the rule
metadata — title, rationale — travels with the results), one ``result``
per violation.

Only format-stable fields are emitted: no timestamps, no absolute paths,
no tool versions beyond the rule-set fingerprint (which is content-based).
Two runs over the same tree therefore produce byte-identical SARIF, which
keeps the golden-file test honest and diffs reviewable.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from .model import LintReport
from .registry import Rule

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Rule ids that indicate broken input rather than a policy violation;
#: code scanning treats them as errors, everything else as warnings.
_ERROR_RULES = frozenset({"RPR999"})


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": "error" if rule.rule_id in _ERROR_RULES else "warning"
        },
    }


def _result(violation: Any) -> dict[str, Any]:
    return {
        "ruleId": violation.rule_id,
        "level": "error" if violation.rule_id in _ERROR_RULES else "warning",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        # SARIF columns are 1-based; ours are 0-based.
                        "startColumn": violation.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(
    report: LintReport,
    rules: Sequence[Rule],
    ruleset_fingerprint: str,
) -> dict[str, Any]:
    """SARIF 2.1.0 log object for a lint report."""
    known_ids = {rule.rule_id for rule in rules}
    descriptors = [
        _rule_descriptor(rule)
        for rule in sorted(rules, key=lambda r: r.rule_id)
    ]
    # RPR999/RPR000 are engine-reserved and have no Rule class; synthesize
    # descriptors on demand so every result's ruleId resolves.
    for violation in report.violations:
        if violation.rule_id not in known_ids:
            known_ids.add(violation.rule_id)
            descriptors.append(
                {
                    "id": violation.rule_id,
                    "name": violation.rule_id,
                    "shortDescription": {"text": "engine-reserved rule"},
                    "defaultConfiguration": {
                        "level": "error"
                        if violation.rule_id in _ERROR_RULES
                        else "warning"
                    },
                }
            )
    descriptors.sort(key=lambda d: str(d["id"]))
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}

    results = []
    for violation in report.violations:
        result = _result(violation)
        result["ruleIndex"] = rule_index[violation.rule_id]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/lint.md",
                        "semanticVersion": "1.0.0",
                        "properties": {
                            "rulesetFingerprint": ruleset_fingerprint,
                        },
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(
    report: LintReport,
    rules: Sequence[Rule],
    ruleset_fingerprint: str,
) -> str:
    """Serialized SARIF with stable key order (byte-identical across runs)."""
    return json.dumps(
        to_sarif(report, rules, ruleset_fingerprint), indent=2, sort_keys=True
    )
